//! Quickstart: build a small graph on disk, decompose it, query k-cores,
//! and apply a couple of dynamic updates.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use graphstore::TempDir;
use kcore_suite::CoreIndex;
use semicore::fixtures::PAPER_EXAMPLE_EDGES;

fn main() -> graphstore::Result<()> {
    // Work in a scratch directory; real applications point at a data dir.
    let dir = TempDir::new("kcore-quickstart")?;
    let base = dir.path().join("example");

    // The running example graph of the paper (Fig. 1): 9 nodes, 15 edges.
    let mut index = CoreIndex::create(&base, PAPER_EXAMPLE_EDGES, 9)?;

    println!(
        "graph: {} nodes, {} edges",
        index.num_nodes(),
        index.num_edges()
    );
    println!("kmax (degeneracy): {}", index.kmax());
    for v in 0..index.num_nodes() {
        println!("  core(v{v}) = {}", index.core(v));
    }
    println!("3-core nodes: {:?}", index.kcore_nodes(3));

    let s = index.decompose_stats();
    println!(
        "decomposition: {} iterations, {} node computations, {} read I/Os, {} B state",
        s.iterations, s.node_computations, s.io.read_ios, s.peak_memory_bytes
    );

    // Dynamic updates are maintained incrementally (Algorithms 6 and 8).
    println!("\ndelete (v0, v1) — Example 5.1:");
    let st = index.delete_edge(0, 1)?;
    println!(
        "  cores now {:?} ({} node computations, {} I/Os)",
        index.cores(),
        st.node_computations,
        st.total_ios()
    );

    println!("insert (v4, v6) — Example 5.3:");
    let st = index.insert_edge(4, 6)?;
    println!(
        "  cores now {:?} ({} node computations, {} I/Os)",
        index.cores(),
        st.node_computations,
        st.total_ios()
    );

    // Results are self-certifying via the Theorem 4.1 conditions.
    assert!(index.verify()?);
    println!("\nTheorem 4.1 certificate: OK");
    Ok(())
}
