//! Core maintenance under a live edge stream.
//!
//! Replays a stream of edge insertions and deletions against a disk-resident
//! graph, maintaining core numbers incrementally (SemiInsert\* /
//! SemiDelete\*), and periodically cross-checks against recomputation from
//! scratch — demonstrating §V end to end, including the update buffer that
//! batches disk rewrites.
//!
//! ```sh
//! cargo run --release --example dynamic_stream
//! ```

use graphgen::preferential_attachment;
use graphstore::snapshot_mem;
use graphstore::{mem_to_disk, BufferedGraph, IoCounter, MemGraph, TempDir, DEFAULT_BLOCK_SIZE};
use kcore_suite::CoreIndex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use semicore::imcore;

fn main() -> graphstore::Result<()> {
    let n = 20_000u32;
    let g = MemGraph::from_edges(preferential_attachment(n, 5, 42), n);
    println!(
        "base graph: {} nodes, {} edges",
        g.num_nodes(),
        g.num_edges()
    );

    let dir = TempDir::new("kcore-stream")?;
    let disk = mem_to_disk(
        &dir.path().join("g"),
        &g,
        IoCounter::new(DEFAULT_BLOCK_SIZE),
    )?;
    // A small buffer forces periodic flushes so their cost is visible.
    let mut index = CoreIndex::from_disk(BufferedGraph::new(disk, 4096))?;
    println!(
        "initial decomposition: kmax = {}, {} iterations, {} read I/Os",
        index.kmax(),
        index.decompose_stats().iterations,
        index.decompose_stats().io.read_ios
    );

    let mut rng = SmallRng::seed_from_u64(7);
    let mut live: Vec<(u32, u32)> = g.edges().collect();
    let mut ins_ios = 0u64;
    let mut del_ios = 0u64;
    let mut ins_ops = 0u64;
    let mut del_ops = 0u64;
    let steps = 2_000u32;

    let t0 = std::time::Instant::now();
    for step in 0..steps {
        if rng.gen_bool(0.5) && !live.is_empty() {
            // Delete a random existing edge.
            let i = rng.gen_range(0..live.len());
            let (u, v) = live.swap_remove(i);
            let st = index.delete_edge(u, v)?;
            del_ios += st.total_ios();
            del_ops += 1;
        } else {
            // Insert a random absent edge.
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u == v || index.has_edge(u, v)? {
                continue;
            }
            let st = index.insert_edge(u, v)?;
            ins_ios += st.total_ios();
            ins_ops += 1;
            live.push((u, v));
        }
        if step % 500 == 499 {
            println!(
                "  step {:>5}: kmax = {}, pending buffer edits = {}, flushes = {}",
                step + 1,
                index.kmax(),
                index.graph_mut().pending_edits(),
                index.graph_mut().flushes()
            );
        }
    }
    let elapsed = t0.elapsed();

    println!(
        "\n{} inserts (avg {:.1} I/Os), {} deletes (avg {:.1} I/Os) in {:.2} s ({:.0} µs/op)",
        ins_ops,
        ins_ios as f64 / ins_ops.max(1) as f64,
        del_ops,
        del_ios as f64 / del_ops.max(1) as f64,
        elapsed.as_secs_f64(),
        elapsed.as_micros() as f64 / (ins_ops + del_ops) as f64
    );

    // Cross-check the maintained result against recomputation from scratch.
    let mem_now = snapshot_mem(index.graph_mut())?;
    let oracle = imcore(&mem_now);
    assert_eq!(index.cores(), oracle.core.as_slice());
    println!("maintained cores match recomputation from scratch: OK");
    Ok(())
}
