//! Community detection via k-core peeling on a social-network stand-in.
//!
//! One of the paper's motivating applications (§I): the k-core hierarchy
//! exposes the densest nuclei of a social graph. This example generates a
//! preferential-attachment network shaped like the paper's LJ dataset,
//! decomposes it on disk, and reports the core-size distribution plus the
//! innermost community.
//!
//! ```sh
//! cargo run --release --example community_detection
//! ```

use graphgen::dataset_by_name;
use graphstore::{mem_to_disk, IoCounter, TempDir, DEFAULT_BLOCK_SIZE};
use semicore::{semicore_star, DecomposeOptions};

fn main() -> graphstore::Result<()> {
    let spec = dataset_by_name("LJ").expect("LJ preset exists");
    // A small scale keeps this example snappy; bump it to stress-test.
    let g = spec.generate_mem(0.1);
    println!(
        "generated {} stand-in: {} nodes, {} edges (paper's real LJ: {} nodes, {} edges)",
        spec.name,
        g.num_nodes(),
        g.num_edges(),
        spec.paper.nodes,
        spec.paper.edges
    );

    let dir = TempDir::new("kcore-community")?;
    let mut disk = mem_to_disk(
        &dir.path().join("lj"),
        &g,
        IoCounter::new(DEFAULT_BLOCK_SIZE),
    )?;

    let d = semicore_star(&mut disk, &DecomposeOptions::default())?;
    println!(
        "SemiCore*: {} iterations, {:.2} s, {} read I/Os",
        d.stats.iterations,
        d.stats.wall_time.as_secs_f64(),
        d.stats.io.read_ios
    );

    // Core-size distribution: |{v : core(v) >= k}| for k = 1..kmax.
    let kmax = d.kmax();
    println!("\nk-core onion (k, nodes in k-core):");
    let mut k = 1;
    while k <= kmax {
        println!("  {:>4}  {:>8}", k, d.kcore_size(k));
        k = (k * 2).max(k + 1);
    }
    println!(
        "  {kmax:>4}  {:>8}  <- innermost (kmax) core",
        d.kcore_size(kmax)
    );

    // The kmax-core is the densest nucleus: report its density.
    let nucleus = d.kcore_nodes(kmax);
    let in_nucleus: std::collections::HashSet<u32> = nucleus.iter().copied().collect();
    let mut internal_edges = 0u64;
    let mut buf = Vec::new();
    for &v in &nucleus {
        disk.adjacency(v, &mut buf)?;
        internal_edges += buf.iter().filter(|u| in_nucleus.contains(u)).count() as u64;
    }
    internal_edges /= 2;
    let nn = nucleus.len() as f64;
    println!(
        "\ninnermost community: {} nodes, {} internal edges, density {:.1} (graph avg {:.1})",
        nucleus.len(),
        internal_edges,
        internal_edges as f64 / nn,
        g.num_edges() as f64 / g.num_nodes() as f64
    );
    Ok(())
}
