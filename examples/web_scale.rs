//! Web-scale decomposition with bounded memory.
//!
//! Mirrors the paper's headline claim — decomposing a web graph whose edge
//! table dwarfs the memory the algorithm is allowed — scaled to this
//! machine. The graph is *generated straight to disk* with the
//! memory-bounded external builder, then decomposed by all three
//! semi-external variants; the report shows time, I/O and the `O(n)` node
//! state each one holds (compare Fig. 9 b/d/f).
//!
//! ```sh
//! cargo run --release --example web_scale            # default scale
//! cargo run --release --example web_scale -- 2.0     # bigger
//! ```

use graphgen::dataset_by_name;
use graphstore::{DiskGraph, IoCounter, TempDir, DEFAULT_BLOCK_SIZE};
use semicore::{DecomposeOptions, Decomposition};

fn main() -> graphstore::Result<()> {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.5);

    let spec = dataset_by_name("UK").expect("UK preset exists");
    let dir = TempDir::new("kcore-webscale")?;
    let base = dir.path().join("uk");

    println!(
        "building the UK web-graph stand-in at scale {scale} (paper's real UK: {} nodes, {} edges)…",
        spec.paper.nodes, spec.paper.edges
    );
    let t0 = std::time::Instant::now();
    let counter = IoCounter::new(DEFAULT_BLOCK_SIZE);
    let disk = spec.build_disk(&base, scale, counter)?;
    let n = disk.num_nodes();
    let m = disk.num_edges();
    let edge_bytes = disk.meta().edge_file_len();
    println!(
        "  built in {:.1} s: {} nodes, {} edges, edge table {:.1} MiB on disk",
        t0.elapsed().as_secs_f64(),
        n,
        m,
        edge_bytes as f64 / (1 << 20) as f64
    );
    drop(disk);

    println!(
        "\n{:<12} {:>9} {:>7} {:>12} {:>12} {:>12}",
        "algorithm", "time(s)", "iters", "read I/Os", "write I/Os", "state bytes"
    );
    let report = |name: &str, d: &Decomposition| {
        println!(
            "{:<12} {:>9.2} {:>7} {:>12} {:>12} {:>12}",
            name,
            d.stats.wall_time.as_secs_f64(),
            d.stats.iterations,
            d.stats.io.read_ios,
            d.stats.io.write_ios,
            d.stats.peak_memory_bytes
        );
    };

    let opts = DecomposeOptions::default();
    let open = |p: &std::path::Path| DiskGraph::open(p, IoCounter::new(DEFAULT_BLOCK_SIZE));

    let d_star = semicore::semicore_star(&mut open(&base)?, &opts)?;
    report("SemiCore*", &d_star);
    let d_plus = semicore::semicore_plus(&mut open(&base)?, &opts)?;
    report("SemiCore+", &d_plus);
    let d_base = semicore::semicore(&mut open(&base)?, &opts)?;
    report("SemiCore", &d_base);

    assert_eq!(d_star.core, d_plus.core);
    assert_eq!(d_star.core, d_base.core);
    println!(
        "\nall three agree; kmax = {}; node state is {:.2}% of the edge table",
        d_star.kmax(),
        100.0 * d_star.stats.peak_memory_bytes as f64 / edge_bytes as f64
    );
    Ok(())
}
