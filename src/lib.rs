//! # kcore-suite — semi-external k-core decomposition at web scale
//!
//! Facade crate for the reproduction of *"I/O Efficient Core Graph
//! Decomposition at Web Scale"* (Wen et al., ICDE 2016). It re-exports the
//! three layers —
//!
//! * [`graphstore`]: disk-resident graph substrate with block-accurate I/O
//!   accounting,
//! * [`semicore`]: the SemiCore / SemiCore+ / SemiCore\* algorithms, the
//!   EMCore / IMCore baselines, and the maintenance algorithms,
//! * [`graphgen`]: seeded workload generators standing in for the paper's
//!   12 datasets,
//!
//! — and adds two batteries-included handles:
//!
//! * [`CoreIndex`] — one disk-resident dynamic graph with its maintained
//!   core numbers;
//! * [`CoreService`] — many such graphs served concurrently against **one**
//!   process-wide memory budget (a [`graphstore::SharedPool`]), with
//!   per-graph registration, eviction, deterministic charged I/O and —
//!   via [`CoreService::create_durable`] / [`CoreService::open_catalog`] —
//!   a persistent catalog plus per-graph maintenance journal, so a
//!   restart restores every maintained graph without re-decomposing.
//!
//! ```
//! use kcore_suite::CoreIndex;
//! use graphstore::TempDir;
//!
//! let dir = TempDir::new("doc").unwrap();
//! let mut index = CoreIndex::create(
//!     &dir.path().join("g"),
//!     [(0, 1), (1, 2), (0, 2), (2, 3)],
//!     4,
//! ).unwrap();
//! assert_eq!(index.core(0), 2);
//! index.insert_edge(1, 3).unwrap();
//! index.insert_edge(0, 3).unwrap();   // 0,1,2,3 now form a K4
//! assert_eq!(index.core(3), 3);
//! index.delete_edge(0, 1).unwrap();
//! assert_eq!(index.core(3), 2);
//! ```

#![warn(missing_docs)]

pub use graphgen;
pub use graphstore;
pub use semicore;

// The serving layer must never bring the process down on one tenant's
// failure: panicking unwraps are banned outright (tests excepted).
#[cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
mod service;

/// Line-protocol dispatch and the multi-client TCP front-end.
#[cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
pub mod server;

/// Offline integrity checking and repair of durable data directories.
#[cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
pub mod fsck;

pub use fsck::{fsck, fsck_graph, fsck_graph_with, FsckFinding, FsckReport};
pub use server::{Server, ServerOptions};
pub use service::{
    start_self_heal, CoreService, DurableOptions, HealthReport, HealthStatus, SelfHealHandle,
    SelfHealOptions, DEFAULT_COMPACT_AFTER_EDITS, DEFAULT_SCRUB_RATE,
};

use std::path::Path;

use graphstore::{
    AdjacencyRead, BufferedGraph, DiskGraph, IoCounter, IoSnapshot, MemGraph, Result, SharedPool,
    DEFAULT_BLOCK_SIZE, DEFAULT_BUFFER_CAPACITY,
};
use semicore::{
    semicore_star_state, semicore_star_state_with, CoreState, DecomposeOptions, MaintainOp,
    MaintainStats, MaintenanceEngine, RunStats, ScanExecutor,
};

/// A disk-resident dynamic graph with continuously maintained core numbers.
///
/// Construction runs SemiCore\* once; every subsequent edge update is
/// maintained incrementally with SemiDelete\* / SemiInsert\* — the paper's
/// recommended configuration. All I/O flows through a block-granular
/// counter, exposed via [`CoreIndex::io`].
#[derive(Debug)]
pub struct CoreIndex {
    graph: BufferedGraph,
    state: CoreState,
    engine: MaintenanceEngine,
    decompose_stats: RunStats,
}

impl CoreIndex {
    /// Build a graph from `edges` (undirected; self-loops and duplicates
    /// dropped) at `<base>.nodes/.edges`, then decompose it.
    pub fn create(
        base: &Path,
        edges: impl IntoIterator<Item = (u32, u32)>,
        min_nodes: u32,
    ) -> Result<CoreIndex> {
        Self::create_with_cache(base, edges, min_nodes, 0)
    }

    /// Like [`CoreIndex::create`], but serve disk blocks through a cache of
    /// `cache_bytes` (the external-memory model's `M`). Zero keeps the
    /// uncached O(1)-buffer behaviour.
    pub fn create_with_cache(
        base: &Path,
        edges: impl IntoIterator<Item = (u32, u32)>,
        min_nodes: u32,
        cache_bytes: u64,
    ) -> Result<CoreIndex> {
        let mem = MemGraph::from_edges(edges, min_nodes);
        let counter = IoCounter::new(DEFAULT_BLOCK_SIZE);
        graphstore::write_mem_graph(base, &mem, counter.clone())?;
        let disk = graphstore::DiskGraph::open_with_cache(base, counter, cache_bytes)?;
        Self::from_disk(BufferedGraph::with_default_capacity(disk))
    }

    /// Open an existing on-disk graph and decompose it.
    pub fn open(base: &Path) -> Result<CoreIndex> {
        Self::open_with_cache(base, 0)
    }

    /// Like [`CoreIndex::open`], with a block-cache budget of `cache_bytes`.
    pub fn open_with_cache(base: &Path, cache_bytes: u64) -> Result<CoreIndex> {
        let counter = IoCounter::new(DEFAULT_BLOCK_SIZE);
        let disk = graphstore::DiskGraph::open_with_cache(base, counter, cache_bytes)?;
        Self::from_disk(BufferedGraph::new(disk, DEFAULT_BUFFER_CAPACITY))
    }

    /// Hit/miss statistics of the disk block cache (`None` when opened
    /// without a budget).
    pub fn cache_stats(&self) -> Option<graphstore::CacheStats> {
        self.graph.disk().cache_stats()
    }

    /// Open a graph against a process-wide [`SharedPool`] and decompose it
    /// with the given executor: bytes come from the pool's shared budget,
    /// while charged `read_ios` follows a private charge cache of
    /// `charge_bytes` (the graph's own model budget `M`) so the charge is
    /// bit-identical however many other graphs contend for the pool. This
    /// is the constructor [`CoreService`] serves graphs through.
    pub fn open_pooled(
        base: &Path,
        pool: &SharedPool,
        charge_bytes: u64,
        exec: ScanExecutor,
    ) -> Result<CoreIndex> {
        let counter = IoCounter::new(pool.block_size());
        let disk = DiskGraph::open_pooled(base, counter, pool, charge_bytes)?;
        Self::from_disk_graph(disk, DEFAULT_BUFFER_CAPACITY, exec)
    }

    /// Decompose `disk` with the given executor (the disk graph is still
    /// shardable at this point, so parallel executors fan out), then wrap
    /// it with an update buffer of `capacity` edit entries for maintenance.
    pub fn from_disk_graph(
        mut disk: DiskGraph,
        capacity: usize,
        exec: ScanExecutor,
    ) -> Result<CoreIndex> {
        let (state, decompose_stats) =
            semicore_star_state_with(&mut disk, &DecomposeOptions::default(), exec)?;
        let graph = BufferedGraph::new(disk, capacity);
        let n = graph.num_nodes();
        Ok(CoreIndex {
            graph,
            state,
            engine: MaintenanceEngine::new(n),
            decompose_stats,
        })
    }

    /// Wrap an already-buffered graph and decompose it.
    pub fn from_disk(mut graph: BufferedGraph) -> Result<CoreIndex> {
        let (state, decompose_stats) =
            semicore_star_state(&mut graph, &DecomposeOptions::default())?;
        let n = graph.num_nodes();
        Ok(CoreIndex {
            graph,
            state,
            engine: MaintenanceEngine::new(n),
            decompose_stats,
        })
    }

    /// Adopt `disk` with an already-maintained `state` — **no**
    /// decomposition runs. This is the recovery constructor: the state
    /// comes from a checkpoint (one sequential read) and the caller then
    /// replays the journal tail through [`CoreIndex::apply`], so reopening
    /// a maintained graph costs a scan plus the tail instead of the
    /// multi-pass decomposition the incremental algorithms exist to avoid.
    ///
    /// `state` must be the exact decomposition (with the Eq. 2 `cnt`
    /// invariant) of the graph `disk` + the edits the caller is about to
    /// replay from; a mismatched node count is rejected.
    pub fn restore(disk: DiskGraph, capacity: usize, state: CoreState) -> Result<CoreIndex> {
        if state.num_nodes() != disk.num_nodes() {
            return Err(graphstore::Error::Corrupt {
                reason: format!(
                    "restored state covers {} nodes but the graph has {}",
                    state.num_nodes(),
                    disk.num_nodes()
                ),
            });
        }
        let graph = BufferedGraph::new(disk, capacity);
        let n = graph.num_nodes();
        Ok(CoreIndex {
            graph,
            state,
            engine: MaintenanceEngine::new(n),
            decompose_stats: RunStats::new("Restored"),
        })
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> u32 {
        self.graph.num_nodes()
    }

    /// Number of undirected edges (including buffered updates).
    pub fn num_edges(&self) -> u64 {
        self.graph.degree_sum() / 2
    }

    /// Core number of `v`.
    pub fn core(&self, v: u32) -> u32 {
        self.state.core[v as usize]
    }

    /// All core numbers.
    pub fn cores(&self) -> &[u32] {
        &self.state.core
    }

    /// The degeneracy `kmax`.
    pub fn kmax(&self) -> u32 {
        self.state.kmax()
    }

    /// Nodes of the k-core (`core(v) ≥ k`), per Lemma 2.1.
    pub fn kcore_nodes(&self, k: u32) -> Vec<u32> {
        (0..self.num_nodes())
            .filter(|&v| self.state.core[v as usize] >= k)
            .collect()
    }

    /// Statistics of the initial decomposition run.
    pub fn decompose_stats(&self) -> &RunStats {
        &self.decompose_stats
    }

    /// Apply one typed maintenance operation, updating the cores
    /// incrementally through the index's [`MaintenanceEngine`] (SemiInsert\*
    /// for insertions, SemiDelete\* for deletions). This is the single
    /// mutation path: the convenience wrappers, the journal replay in
    /// [`CoreService::open_catalog`] and any future batch ingestion all
    /// dispatch the same value.
    pub fn apply(&mut self, op: MaintainOp) -> Result<MaintainStats> {
        self.engine.apply(&mut self.graph, &mut self.state, op)
    }

    /// Insert edge `(u, v)` (must be absent) and maintain the cores
    /// incrementally (SemiInsert\*).
    pub fn insert_edge(&mut self, u: u32, v: u32) -> Result<MaintainStats> {
        self.apply(MaintainOp::Insert(u, v))
    }

    /// Delete edge `(u, v)` (must be present) and maintain the cores
    /// incrementally (SemiDelete\*).
    pub fn delete_edge(&mut self, u: u32, v: u32) -> Result<MaintainStats> {
        self.apply(MaintainOp::Delete(u, v))
    }

    /// The maintained per-node state (cores plus Eq. 2 counters) — what a
    /// durability checkpoint persists.
    pub fn maintained_state(&self) -> &CoreState {
        &self.state
    }

    /// True when `(u, v)` exists (costs one adjacency read).
    pub fn has_edge(&mut self, u: u32, v: u32) -> Result<bool> {
        self.graph.has_edge(u, v)
    }

    /// Cumulative I/O performed through this index.
    pub fn io(&self) -> IoSnapshot {
        self.graph.io()
    }

    /// Bytes of in-memory node state (`core` + `cnt` + flags + buffer) —
    /// the semi-external footprint.
    pub fn resident_bytes(&self) -> u64 {
        self.state.resident_bytes() + self.engine.resident_bytes() + self.graph.buffer_bytes()
    }

    /// Mutable access to the underlying graph (flush control, etc.).
    pub fn graph_mut(&mut self) -> &mut BufferedGraph {
        &mut self.graph
    }

    /// Edge-table encoding of the backing disk graph (v1 raw `u32`s or v2
    /// delta-varints) — what `kcore serve` reports per served graph.
    pub fn format_version(&self) -> graphstore::FormatVersion {
        self.graph.disk().format_version()
    }

    /// Check the Theorem 4.1 fixpoint certificate on the current state.
    pub fn verify(&mut self) -> Result<bool> {
        semicore::verify_cores(&mut self.graph, &self.state.core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphstore::TempDir;

    #[test]
    fn create_query_update_cycle() {
        let dir = TempDir::new("suite").unwrap();
        let mut idx = CoreIndex::create(
            &dir.path().join("g"),
            semicore::fixtures::PAPER_EXAMPLE_EDGES,
            9,
        )
        .unwrap();
        assert_eq!(idx.cores(), &[3, 3, 3, 3, 2, 2, 2, 2, 1]);
        assert_eq!(idx.kmax(), 3);
        assert_eq!(idx.kcore_nodes(3), vec![0, 1, 2, 3]);
        assert!(idx.verify().unwrap());

        idx.delete_edge(0, 1).unwrap();
        assert_eq!(idx.kmax(), 2);
        idx.insert_edge(4, 6).unwrap();
        assert_eq!(idx.cores(), &[2, 2, 2, 3, 3, 3, 3, 2, 1]);
        assert!(idx.verify().unwrap());
        assert_eq!(idx.num_edges(), 15);
    }

    #[test]
    fn open_reuses_files() {
        let dir = TempDir::new("suite").unwrap();
        let base = dir.path().join("g");
        {
            CoreIndex::create(&base, [(0u32, 1u32), (1, 2), (0, 2)], 3).unwrap();
        }
        let idx = CoreIndex::open(&base).unwrap();
        assert_eq!(idx.cores(), &[2, 2, 2]);
    }
}
