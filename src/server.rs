//! Multi-client network serving: the line protocol, factored out of the
//! `kcore serve` REPL, plus a TCP front-end that runs it for many
//! concurrent connections.
//!
//! ## Protocol
//!
//! One request line in, one (occasionally several) reply lines out — the
//! same commands the stdin REPL accepts (`open`, `core`, `kmax`, `insert`,
//! `delete`, `stats`, `weight`, `qos`, `graphs`, `save`, `compact`,
//! `verify`, `health`, `scrub`, `repair`, `pool`, `evict`, `quit`,
//! `help`). Failures never end a session: every error is
//! one structured `err <kind>: <detail>` line (kinds: `io`, `corrupt`,
//! `range`, `usage`, `limit`, `overloaded`, `quarantined`, `readonly`,
//! `timeout`), so a scripted
//! client can match on the prefix and carry on. [`dispatch`](crate::server::dispatch) is the whole
//! protocol; the stdin REPL and every TCP connection call it.
//!
//! ## Threading model
//!
//! [`Server`] is deliberately boring: one accept thread, one thread per
//! connection, all of them stateless frames around the shared
//! [`CoreService`] — whose own locking already gives the right
//! concurrency (registry lock for lookups only, one mutex per graph, so
//! different tenants proceed in parallel and one tenant's requests
//! serialize). Fairness between tenants is not the server's job either:
//! it falls out of the service's admission controller
//! ([`CoreService::set_qos`]). What the server *does* own is protection of
//! the process itself:
//!
//! * **bounded accept** — at most [`ServerOptions::max_connections`]
//!   concurrent connections; an over-limit client gets one
//!   `err overloaded: …` line and is closed, it is never silently queued;
//! * **read/write timeouts** — a stalled peer cannot pin a connection
//!   thread: reads tick every [`ServerOptions::read_timeout`] (also the
//!   shutdown poll), writes abort after [`ServerOptions::write_timeout`]
//!   and drop the connection.
//!
//! `quit` ends that connection only; [`Server::shutdown`] (or dropping the
//! server) is a **graceful drain**: it stops accepting, joins every
//! connection thread (each finishes its in-flight command and writes the
//! reply first), then flushes pending group-commit journal barriers
//! ([`CoreService::flush_journals`]) so no acknowledged op is lost to the
//! process exiting between the ack and its batch's fsync.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use graphstore::Result;

use crate::CoreService;

/// Knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Concurrent connections served; the next one is refused with an
    /// `err overloaded` line.
    pub max_connections: usize,
    /// Idle-read tick per connection: how long a blocking read may sit
    /// before the thread rechecks the shutdown flag. Bounds how long a
    /// silent peer can pin a thread past shutdown, not an idle disconnect.
    pub read_timeout: Duration,
    /// A reply write blocked longer than this drops the connection.
    pub write_timeout: Duration,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            max_connections: 64,
            read_timeout: Duration::from_millis(500),
            write_timeout: Duration::from_secs(10),
        }
    }
}

/// A TCP front-end serving the line protocol for one [`CoreService`].
/// See the [module docs](self) for the threading model.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    svc: Arc<CoreService>,
    shutdown: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    accept: Option<std::thread::JoinHandle<()>>,
    conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// accepting connections against `svc`.
    pub fn start(svc: Arc<CoreService>, addr: &str, opts: ServerOptions) -> Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicUsize::new(0));
        let conns = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let svc = Arc::clone(&svc);
            let shutdown = Arc::clone(&shutdown);
            let active = Arc::clone(&active);
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || accept_loop(listener, svc, opts, shutdown, active, conns))
        };
        Ok(Server {
            addr,
            svc,
            shutdown,
            active,
            accept: Some(accept),
            conns,
        })
    }

    /// The bound address (with the real port when `:0` was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> usize {
        self.active.load(Ordering::Relaxed)
    }

    /// Graceful drain: stop accepting, let every in-flight command finish
    /// (connection threads notice the flag within one read tick; their
    /// current command always completes and its reply is written), then
    /// flush pending group-commit journal barriers so every acknowledged
    /// op is durable before the port is released.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // The accept loop sits in a blocking accept(); a throwaway
        // connection from ourselves is the portable way to wake it.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        let drained = match self.conns.lock() {
            Ok(mut conns) => std::mem::take(&mut *conns),
            Err(poisoned) => std::mem::take(&mut *poisoned.into_inner()),
        };
        for conn in drained {
            let _ = conn.join();
        }
        // Every reply already written has now left dispatch; make the ops
        // behind them durable before the caller tears the process down.
        self.svc.flush_journals();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    svc: Arc<CoreService>,
    opts: ServerOptions,
    shutdown: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    for conn in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        // Single acceptor, so load-then-increment cannot race with itself;
        // concurrent decrements only make the check conservative.
        if active.load(Ordering::Relaxed) >= opts.max_connections {
            refuse(stream, opts.max_connections, opts.write_timeout);
            continue;
        }
        let guard = ConnGuard::new(Arc::clone(&active));
        let svc = Arc::clone(&svc);
        let opts = opts.clone();
        let shutdown_flag = Arc::clone(&shutdown);
        let handle = std::thread::spawn(move || {
            let _guard = guard;
            serve_connection(stream, &svc, &opts, &shutdown_flag);
        });
        if let Ok(mut conns) = conns.lock() {
            // Sweep finished threads so a long-lived server does not
            // accumulate one dead handle per past connection.
            conns.retain(|h| !h.is_finished());
            conns.push(handle);
        }
    }
}

/// Over-capacity connections get one structured line, then the socket
/// closes — a client that can parse `err overloaded` can back off, and one
/// that cannot at least is not silently hung.
fn refuse(mut stream: TcpStream, limit: usize, write_timeout: Duration) {
    let _ = stream.set_write_timeout(Some(write_timeout));
    let _ = writeln!(
        stream,
        "err overloaded: connection limit ({limit}) reached, try again later"
    );
}

/// Decrements the active-connection count however the thread exits.
struct ConnGuard(Arc<AtomicUsize>);

impl ConnGuard {
    fn new(active: Arc<AtomicUsize>) -> ConnGuard {
        active.fetch_add(1, Ordering::Relaxed);
        ConnGuard(active)
    }
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

fn serve_connection(
    stream: TcpStream,
    svc: &CoreService,
    opts: &ServerOptions,
    shutdown: &AtomicBool,
) {
    let _ = stream.set_read_timeout(Some(opts.read_timeout));
    let _ = stream.set_write_timeout(Some(opts.write_timeout));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut out = stream;
    let mut line = String::new();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        // `read_line` appends, so a partial line that straddles a timeout
        // tick survives in `line` and completes on a later read.
        match reader.read_line(&mut line) {
            Ok(0) => return, // peer closed
            Ok(_) => {
                let response = dispatch(svc, line.trim_end_matches(['\r', '\n']));
                line.clear();
                for reply in &response.lines {
                    if writeln!(out, "{reply}").is_err() {
                        return;
                    }
                }
                if out.flush().is_err() || response.quit {
                    return;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        }
    }
}

/// One dispatched command's outcome: the reply lines, and whether the
/// session asked to end (`quit`/`exit`).
#[derive(Debug, Default)]
pub struct Response {
    /// Reply lines, in order, without trailing newlines.
    pub lines: Vec<String>,
    /// True when the command ends the session (the connection, over TCP).
    pub quit: bool,
}

impl Response {
    fn say(text: String) -> Response {
        Response {
            lines: vec![text],
            quit: false,
        }
    }

    fn result(res: Result<String>) -> Response {
        Response::say(match res {
            Ok(text) => text,
            Err(e) => err_line(&e),
        })
    }
}

/// Execute one protocol line against the service — the single
/// implementation behind the stdin REPL and every TCP connection. Never
/// panics on malformed input; unknown commands and bad arguments come back
/// as `err usage: …` lines.
pub fn dispatch(svc: &CoreService, line: &str) -> Response {
    let words: Vec<&str> = line.split_whitespace().collect();
    let parse_node = |w: &str| w.parse::<u32>().ok();
    match words.as_slice() {
        [] => Response::default(),
        ["quit"] | ["exit"] => Response {
            lines: Vec::new(),
            quit: true,
        },
        ["help"] => Response::say(
            "commands: open <name> <base> | core <name> <v> | kmax <name> | \
             insert <name> <u> <v> | delete <name> <u> <v> | stats <name> | \
             verify <name> | health <name> | scrub <name> | repair <name> | \
             weight <name> <w> | qos | graphs | save [<name>] | \
             compact <name> | pool | list | evict <name> | quit"
                .to_string(),
        ),
        ["open", name, base] => Response::say(open_report(svc, name, Path::new(base))),
        ["core", name, v] => match parse_node(v) {
            Some(v) => Response::result(svc.core(name, v).map(|c| format!("core({v}) = {c}"))),
            None => Response::say(format!("err usage: node id {v:?} is not a number")),
        },
        ["kmax", name] => Response::result(svc.kmax(name).map(|k| format!("kmax = {k}"))),
        ["insert", name, u, v] | ["delete", name, u, v] => {
            match (parse_node(u), parse_node(v)) {
                (Some(u), Some(v)) => {
                    let res = if words[0] == "insert" {
                        svc.insert_edge(name, u, v)
                    } else {
                        svc.delete_edge(name, u, v)
                    };
                    Response::result(res.map(|s| {
                        format!(
                            "{}: {} node computations, {} read I/Os",
                            s.algorithm, s.node_computations, s.io.read_ios
                        )
                    }))
                }
                _ => Response::say("err usage: edge endpoints must be numbers".to_string()),
            }
        }
        ["stats", name] => Response::result(svc.with_graph(name, |idx| {
            let io = idx.io();
            Ok(format!(
                "{} nodes, {} edges, kmax {}, format {}; charged reads {}, physical reads {}, writes {}",
                idx.num_nodes(),
                idx.num_edges(),
                idx.kmax(),
                idx.format_version().tag(),
                io.read_ios,
                io.physical_reads,
                io.write_ios
            ))
        })),
        ["weight", name, w] => match w.parse::<u32>() {
            Ok(w) => Response::result(
                svc.set_tenant_weight(name, w)
                    .map(|()| format!("weight({name}) = {}", w.max(1))),
            ),
            Err(_) => Response::say(format!("err usage: weight {w:?} is not a number")),
        },
        ["qos"] => Response::say(match svc.qos() {
            Some(ctl) => format!(
                "qos: {}/{} B admitted, {} queued ({} B demand)",
                ctl.in_use_bytes(),
                ctl.capacity_bytes(),
                ctl.queue_len(),
                ctl.queued_demand_bytes()
            ),
            None => "qos: off (admit everything)".to_string(),
        }),
        ["pool"] => {
            let p = svc.pool();
            let s = p.stats();
            Response::say(format!(
                "pool: {} graphs, {}/{} B resident, {} hits / {} misses / {} evictions",
                p.registered_graphs(),
                p.resident_bytes(),
                p.budget_bytes(),
                s.hits,
                s.misses,
                s.evictions
            ))
        }
        ["list"] | ["graphs"] => {
            // Each served graph is listed with its edge-table format, so an
            // operator can see at a glance which tenants run compressed
            // tables.
            let listed: Vec<String> = svc
                .graph_names()
                .into_iter()
                .map(|n| match svc.format_version(&n) {
                    Ok(v) => format!("{n}({})", v.tag()),
                    Err(_) => n,
                })
                .collect();
            Response::say(format!("serving: {}", listed.join(", ")))
        }
        ["save"] => Response::result(svc.save_all().map(|()| "saved all graphs".to_string())),
        ["save", name] => Response::result(svc.save(name).map(|()| format!("saved {name}"))),
        ["compact", name] => Response::result(
            svc.compact(name)
                .map(|generation| format!("compacted {name}: now generation {generation}")),
        ),
        ["verify", name] => Response::result(svc.verify(name).map(|ok| {
            if ok {
                format!("{name}: certificate holds (Theorem 4.1 fixpoint)")
            } else {
                format!("{name}: CERTIFICATE VIOLATED")
            }
        })),
        ["evict", name] => Response::result(svc.evict(name).map(|()| format!("evicted {name}"))),
        ["health", name] => health_report(svc, name),
        ["scrub", name] => Response::result(svc.scrub(name).map(|report| {
            let bad = report.unrepaired();
            if bad == 0 {
                format!("scrub {name}: clean")
            } else {
                let problems: Vec<String> = report
                    .findings
                    .iter()
                    .filter(|f| !f.repaired)
                    .map(|f| f.problem.clone())
                    .collect();
                format!(
                    "scrub {name}: {bad} problem(s) found, graph quarantined: {}",
                    problems.join("; ")
                )
            }
        })),
        ["repair", name] => Response::result(
            svc.repair(name)
                .map(|()| format!("repaired {name}: certificate verified, graph re-admitted")),
        ),
        _ => Response::say("err usage: unrecognised command (try 'help')".to_string()),
    }
}

/// Render one graph's health as a single machine-matchable line: the
/// status tag first, then the bounded reason chain (oldest surviving
/// first) and the repair log — the full causal chain, not only the first
/// failure, without breaking the one-reply-line protocol.
fn health_report(svc: &CoreService, name: &str) -> Response {
    let report = match svc.health(name) {
        Ok(r) => r,
        Err(e) => return Response::say(err_line(&e)),
    };
    let mut line = format!("health {name}: {}", report.status.tag());
    if report.repair_attempts > 0 {
        line.push_str(&format!(
            ", {} repair attempt(s) this episode",
            report.repair_attempts
        ));
    }
    if report.sticky {
        line.push_str(", sticky (automatic repair exhausted)");
    }
    if report.dropped_reasons > 0 {
        line.push_str(&format!(
            " ({} older reason(s) dropped; root cause kept)",
            report.dropped_reasons
        ));
    }
    for reason in &report.reasons {
        line.push_str(&format!(" | reason: {reason}"));
    }
    for entry in &report.repair_log {
        line.push_str(&format!(" | repair: {entry}"));
    }
    Response::say(line)
}

/// Open `base` as `name` on the service, reporting the outcome either way.
fn open_report(svc: &CoreService, name: &str, base: &Path) -> String {
    let res = svc.open(name, base).and_then(|()| {
        svc.with_graph(name, |idx| {
            Ok(format!(
                "opened {name} ({}): {} nodes, {} edges, kmax {} ({} read I/Os to decompose)",
                idx.format_version().tag(),
                idx.num_nodes(),
                idx.num_edges(),
                idx.kmax(),
                idx.decompose_stats().io.read_ios
            ))
        })
    });
    match res {
        Ok(text) => text,
        Err(e) => err_line(&e),
    }
}

/// One stable machine-matchable token per error class, shared by the REPL
/// and the TCP protocol.
pub fn err_line(e: &graphstore::Error) -> String {
    let kind = match e {
        graphstore::Error::Io(_) => "io",
        graphstore::Error::Corrupt { .. } => "corrupt",
        graphstore::Error::NodeOutOfRange { .. } => "range",
        graphstore::Error::InvalidArgument(_) => "usage",
        graphstore::Error::TooLarge(_) => "limit",
        graphstore::Error::Overloaded { .. } => "overloaded",
        graphstore::Error::Quarantined { .. } => "quarantined",
        graphstore::Error::ReadOnly { .. } => "readonly",
        graphstore::Error::Timeout { .. } => "timeout",
    };
    format!("err {kind}: {e}")
}
