//! Multi-graph serving: many [`CoreIndex`]es against one memory budget.
//!
//! The paper prices everything against a single memory budget `M`;
//! [`CoreService`] makes that budget a *process-wide* resource. It owns one
//! [`SharedPool`] and a registry of named graphs, each opened through
//! [`CoreIndex::open_pooled`]: the pool arbitrates the global byte budget
//! across whichever graphs are busy, while every graph keeps a private
//! deterministic charge cache so its charged `read_ios` is bit-identical
//! whether it is served alone or alongside `K` contending graphs — only
//! [`physical_reads`](graphstore::IoSnapshot::physical_reads) move with
//! contention (see [`graphstore::pool`] for the accounting contract).
//!
//! Concurrency: the registry lock is held only to look names up; each graph
//! sits behind its own mutex, so operations on *different* graphs proceed
//! in parallel while operations on the same graph serialize. Evicting a
//! graph drops it from the registry; its pool frames are invalidated when
//! the last in-flight operation on it finishes (invalidate-on-drop via the
//! graph's [`PoolLease`](graphstore::PoolLease)).

use std::collections::HashMap;
use std::path::Path;
use std::sync::{Arc, Mutex};

use graphstore::{
    working_set_charge_budget, EvictionPolicy, IoSnapshot, Result, SharedPool, DEFAULT_BLOCK_SIZE,
};
use semicore::{MaintainStats, ScanExecutor};

use crate::CoreIndex;

/// A process-wide k-core serving layer: open, decompose, maintain, query
/// and evict many disk-resident graphs concurrently against **one** global
/// byte budget.
///
/// ```
/// use graphstore::TempDir;
/// use kcore_suite::CoreService;
///
/// let dir = TempDir::new("doc-service").unwrap();
/// let service = CoreService::new(1 << 20).unwrap(); // 1 MiB for everyone
/// service
///     .create("tri", &dir.path().join("tri"), [(0, 1), (1, 2), (0, 2)], 3)
///     .unwrap();
/// service
///     .create("path", &dir.path().join("path"), [(0, 1), (1, 2)], 3)
///     .unwrap();
/// assert_eq!(service.kmax("tri").unwrap(), 2);
/// assert_eq!(service.kmax("path").unwrap(), 1);
/// service.insert_edge("path", 0, 2).unwrap(); // now a triangle too
/// assert_eq!(service.kmax("path").unwrap(), 2);
/// service.evict("tri").unwrap(); // frames return to the pool
/// assert_eq!(service.graph_names(), vec!["path".to_string()]);
/// ```
#[derive(Debug)]
pub struct CoreService {
    pool: SharedPool,
    exec: ScanExecutor,
    graphs: Mutex<HashMap<String, Arc<Mutex<CoreIndex>>>>,
}

impl CoreService {
    /// A service arbitrating `budget_bytes` across all served graphs, with
    /// the default block size, the scan-resistant eviction policy and the
    /// sequential executor. Errors when the budget holds fewer than two
    /// blocks.
    pub fn new(budget_bytes: u64) -> Result<CoreService> {
        Self::with_config(
            DEFAULT_BLOCK_SIZE,
            budget_bytes,
            EvictionPolicy::ScanLifo,
            ScanExecutor::Sequential,
        )
    }

    /// [`CoreService::new`] with every knob explicit: block size `B`,
    /// global budget, pool eviction policy (also used by each graph's
    /// charge cache), and the scan executor used for initial
    /// decompositions.
    pub fn with_config(
        block_size: usize,
        budget_bytes: u64,
        policy: EvictionPolicy,
        exec: ScanExecutor,
    ) -> Result<CoreService> {
        Ok(CoreService {
            pool: SharedPool::with_policy(block_size, budget_bytes, policy)?,
            exec,
            graphs: Mutex::new(HashMap::new()),
        })
    }

    /// The shared pool, for budget/occupancy/hit-rate introspection.
    pub fn pool(&self) -> &SharedPool {
        &self.pool
    }

    /// Names of the graphs currently being served, sorted.
    pub fn graph_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.registry().keys().cloned().collect();
        names.sort();
        names
    }

    /// True when `name` is currently being served.
    pub fn contains(&self, name: &str) -> bool {
        self.registry().contains_key(name)
    }

    /// Open the graph stored at `<base>.nodes/.edges` and serve it as
    /// `name`, decomposing it on the way in. The charge budget defaults to
    /// the graph's whole working set (both tables plus headroom), which
    /// makes its charged `read_ios` equal *distinct blocks touched* —
    /// schedule-independent, so the guarantee holds at any worker count.
    pub fn open(&self, name: &str, base: &Path) -> Result<()> {
        let charge = working_set_charge_budget(base, self.pool.block_size())?;
        self.open_with_charge(name, base, charge)
    }

    /// [`CoreService::open`] with an explicit per-graph charge budget (the
    /// model `M` this graph's `read_ios` is priced against). Budgets below
    /// two blocks charge per shared-pool miss instead — honest, but
    /// dependent on the other graphs' traffic.
    pub fn open_with_charge(&self, name: &str, base: &Path, charge_bytes: u64) -> Result<()> {
        if self.contains(name) {
            return Err(already_serving(name));
        }
        // Decompose outside the registry lock: other graphs keep serving.
        let index = CoreIndex::open_pooled(base, &self.pool, charge_bytes, self.exec)?;
        let mut graphs = self.registry();
        if graphs.contains_key(name) {
            // A racing open beat us; the loser's lease frees its frames.
            return Err(already_serving(name));
        }
        graphs.insert(name.to_string(), Arc::new(Mutex::new(index)));
        Ok(())
    }

    /// Build a graph from `edges` at `<base>.nodes/.edges`, then serve it
    /// as `name` (see [`CoreIndex::create`] for the edge-list semantics).
    pub fn create(
        &self,
        name: &str,
        base: &Path,
        edges: impl IntoIterator<Item = (u32, u32)>,
        min_nodes: u32,
    ) -> Result<()> {
        if self.contains(name) {
            return Err(already_serving(name));
        }
        let mem = graphstore::MemGraph::from_edges(edges, min_nodes);
        let counter = graphstore::IoCounter::new(self.pool.block_size());
        graphstore::write_mem_graph(base, &mem, counter)?;
        self.open(name, base)
    }

    /// Stop serving `name`. In-flight operations on the graph finish
    /// normally; its pool frames are invalidated when the last one drops
    /// its handle.
    pub fn evict(&self, name: &str) -> Result<()> {
        self.registry()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| not_serving(name))
    }

    /// Run `f` against the named graph's [`CoreIndex`], holding that
    /// graph's lock (and no other) for the duration. This is the generic
    /// access path every convenience method goes through.
    pub fn with_graph<R>(
        &self,
        name: &str,
        f: impl FnOnce(&mut CoreIndex) -> Result<R>,
    ) -> Result<R> {
        let handle = self
            .registry()
            .get(name)
            .map(Arc::clone)
            .ok_or_else(|| not_serving(name))?;
        // The registry lock is released; only this graph serializes.
        let mut index = handle.lock().expect("served graph poisoned");
        f(&mut index)
    }

    /// All core numbers of the named graph.
    pub fn cores(&self, name: &str) -> Result<Vec<u32>> {
        self.with_graph(name, |idx| Ok(idx.cores().to_vec()))
    }

    /// Core number of node `v` in the named graph. Unlike
    /// [`CoreIndex::core`], an out-of-range node is an error, not a panic —
    /// a serving layer must survive bad queries.
    pub fn core(&self, name: &str, v: u32) -> Result<u32> {
        self.with_graph(name, |idx| {
            if v >= idx.num_nodes() {
                return Err(graphstore::Error::NodeOutOfRange {
                    node: v,
                    num_nodes: idx.num_nodes(),
                });
            }
            Ok(idx.core(v))
        })
    }

    /// Degeneracy `kmax` of the named graph.
    pub fn kmax(&self, name: &str) -> Result<u32> {
        self.with_graph(name, |idx| Ok(idx.kmax()))
    }

    /// Insert an edge into the named graph, maintaining its cores
    /// (SemiInsert\*). Unlike [`CoreIndex::insert_edge`] — which trusts
    /// its caller and silently corrupts state on a duplicate — the serving
    /// layer validates first (one adjacency read): inserting a present
    /// edge is an error, because this path is fed raw user input.
    pub fn insert_edge(&self, name: &str, u: u32, v: u32) -> Result<MaintainStats> {
        self.with_graph(name, |idx| {
            if idx.has_edge(u, v)? {
                return Err(graphstore::Error::InvalidArgument(format!(
                    "edge ({u}, {v}) already present"
                )));
            }
            idx.insert_edge(u, v)
        })
    }

    /// Delete an edge from the named graph, maintaining its cores
    /// (SemiDelete\*). As with [`CoreService::insert_edge`], deleting an
    /// absent edge is an error rather than silent state corruption.
    pub fn delete_edge(&self, name: &str, u: u32, v: u32) -> Result<MaintainStats> {
        self.with_graph(name, |idx| {
            if !idx.has_edge(u, v)? {
                return Err(graphstore::Error::InvalidArgument(format!(
                    "edge ({u}, {v}) not present"
                )));
            }
            idx.delete_edge(u, v)
        })
    }

    /// Cumulative I/O charged to the named graph (its own counter: charged
    /// reads are contention-independent, physical reads are not).
    pub fn io(&self, name: &str) -> Result<IoSnapshot> {
        self.with_graph(name, |idx| Ok(idx.io()))
    }

    /// Check the Theorem 4.1 fixpoint certificate on the named graph.
    pub fn verify(&self, name: &str) -> Result<bool> {
        self.with_graph(name, |idx| idx.verify())
    }

    fn registry(&self) -> std::sync::MutexGuard<'_, HashMap<String, Arc<Mutex<CoreIndex>>>> {
        self.graphs.lock().expect("service registry poisoned")
    }
}

fn already_serving(name: &str) -> graphstore::Error {
    graphstore::Error::InvalidArgument(format!("a graph named {name:?} is already being served"))
}

fn not_serving(name: &str) -> graphstore::Error {
    graphstore::Error::InvalidArgument(format!("no graph named {name:?} is being served"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphstore::TempDir;

    fn triangle_plus_tail() -> Vec<(u32, u32)> {
        vec![(0, 1), (1, 2), (0, 2), (2, 3)]
    }

    #[test]
    fn serve_two_graphs_and_evict() {
        let dir = TempDir::new("svc").unwrap();
        let svc = CoreService::new(1 << 20).unwrap();
        svc.create("a", &dir.path().join("a"), triangle_plus_tail(), 4)
            .unwrap();
        svc.create("b", &dir.path().join("b"), [(0u32, 1u32), (1, 2)], 3)
            .unwrap();
        assert_eq!(svc.graph_names(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(svc.pool().registered_graphs(), 2);
        assert_eq!(svc.cores("a").unwrap(), vec![2, 2, 2, 1]);
        assert_eq!(svc.kmax("b").unwrap(), 1);
        assert!(svc.verify("a").unwrap());

        svc.evict("a").unwrap();
        assert!(!svc.contains("a"));
        assert_eq!(svc.pool().registered_graphs(), 1);
        assert!(svc.cores("a").is_err());
        // b is untouched by a's teardown.
        assert_eq!(svc.kmax("b").unwrap(), 1);
    }

    #[test]
    fn maintenance_is_per_graph() {
        let dir = TempDir::new("svc").unwrap();
        let svc = CoreService::new(1 << 20).unwrap();
        svc.create("a", &dir.path().join("a"), triangle_plus_tail(), 4)
            .unwrap();
        svc.create("b", &dir.path().join("b"), triangle_plus_tail(), 4)
            .unwrap();
        svc.insert_edge("a", 1, 3).unwrap();
        svc.insert_edge("a", 0, 3).unwrap(); // a is now K4
        assert_eq!(svc.kmax("a").unwrap(), 3);
        assert_eq!(svc.kmax("b").unwrap(), 2, "b must not see a's updates");
        svc.delete_edge("a", 0, 1).unwrap();
        assert_eq!(svc.kmax("a").unwrap(), 2);
        assert!(svc.verify("a").unwrap() && svc.verify("b").unwrap());
    }

    #[test]
    fn duplicate_and_missing_names_are_errors() {
        let dir = TempDir::new("svc").unwrap();
        let svc = CoreService::new(1 << 20).unwrap();
        svc.create("a", &dir.path().join("a"), triangle_plus_tail(), 4)
            .unwrap();
        assert!(svc
            .create("a", &dir.path().join("a2"), triangle_plus_tail(), 4)
            .is_err());
        assert!(svc.evict("ghost").is_err());
        assert!(svc.insert_edge("ghost", 0, 1).is_err());
    }

    #[test]
    fn duplicate_insert_and_absent_delete_are_errors_not_corruption() {
        let dir = TempDir::new("svc").unwrap();
        let svc = CoreService::new(1 << 20).unwrap();
        svc.create("a", &dir.path().join("a"), triangle_plus_tail(), 4)
            .unwrap();
        let edges_before = svc.with_graph("a", |idx| Ok(idx.num_edges())).unwrap();
        assert!(svc.insert_edge("a", 0, 1).is_err(), "edge already present");
        assert!(svc.delete_edge("a", 1, 3).is_err(), "edge absent");
        assert!(svc.delete_edge("a", 1, 3).is_err(), "still absent");
        assert_eq!(
            svc.with_graph("a", |idx| Ok(idx.num_edges())).unwrap(),
            edges_before,
            "rejected updates must not drift the edge count"
        );
        assert!(svc.verify("a").unwrap(), "state untouched by bad updates");
    }

    #[test]
    fn out_of_range_queries_error_instead_of_panicking() {
        let dir = TempDir::new("svc").unwrap();
        let svc = CoreService::new(1 << 20).unwrap();
        svc.create("a", &dir.path().join("a"), triangle_plus_tail(), 4)
            .unwrap();
        assert!(matches!(
            svc.core("a", 99),
            Err(graphstore::Error::NodeOutOfRange { node: 99, .. })
        ));
        assert!(svc.insert_edge("a", 0, 99).is_err());
        assert_eq!(svc.core("a", 3).unwrap(), 1);
    }
}
