//! Multi-graph serving: many [`CoreIndex`]es against one memory budget,
//! optionally durable across restarts.
//!
//! The paper prices everything against a single memory budget `M`;
//! [`CoreService`] makes that budget a *process-wide* resource. It owns one
//! [`SharedPool`] and a registry of named graphs, each opened through
//! [`CoreIndex::open_pooled`]: the pool arbitrates the global byte budget
//! across whichever graphs are busy, while every graph keeps a private
//! deterministic charge cache so its charged `read_ios` is bit-identical
//! whether it is served alone or alongside `K` contending graphs — only
//! [`physical_reads`](graphstore::IoSnapshot::physical_reads) move with
//! contention (see [`graphstore::pool`] for the accounting contract).
//!
//! Concurrency: the registry lock is held only to look names up; each graph
//! sits behind its own mutex, so operations on *different* graphs proceed
//! in parallel while operations on the same graph serialize. Evicting a
//! graph drops it from the registry; its pool frames are invalidated when
//! the last in-flight operation on it finishes (invalidate-on-drop via the
//! graph's [`PoolLease`](graphstore::PoolLease)).
//!
//! ## Durability
//!
//! A service built with [`CoreService::create_durable`] (or reopened with
//! [`CoreService::open_catalog`]) journals every maintenance operation and
//! survives restarts — including `SIGKILL` — without re-decomposing:
//!
//! * the **catalog** ([`graphstore::catalog::Catalog`], `catalog.kc`)
//!   records the pool configuration and every served graph's name, base
//!   path and charge budget;
//! * each graph has a **checkpoint** (`<name>.ckpt`): its maintained
//!   cores + `cnt` and pending update-buffer edits at a journal sequence
//!   number, replaced atomically;
//! * and a **write-ahead journal** (`<name>.wal`): every applied
//!   [`MaintainOp`], appended and fsynced *before* it is applied.
//!
//! [`CoreService::apply`] is the single journaling mutation path (append →
//! apply → checkpoint once `checkpoint_every` ops accumulate → truncate the
//! journal); recovery loads the checkpoint in one sequential scan and
//! replays the journal tail through the very same [`CoreIndex::apply`]
//! dispatch. Durable graphs never rewrite their tables *in place*: a
//! table file is immutable from creation to deletion while edits
//! accumulate in the (checkpointed) update buffer, which is what makes
//! recovery exact at any kill point. What bounds that accumulation is
//! **generational compaction** ([`CoreService::compact`], triggered
//! automatically at [`DurableOptions::compact_after_edits`]): tables plus
//! buffered edits are rewritten into a fresh generation of files and the
//! catalog manifest's bumped generation number is the single commit
//! point, after which buffer and journal are truncated. The full
//! crash-window analysis lives in ARCHITECTURE.md ("Durability" and
//! "Compaction").
//!
//! ## Failure containment and self-healing
//!
//! The service is multi-tenant, so one graph's failure must never take the
//! others down. Every fallible path returns a typed
//! [`graphstore::Error`] — nothing in this module panics on I/O failure —
//! and each served graph carries a four-state health machine
//! ([`HealthStatus`]):
//!
//! * **Healthy → Quarantined**: an operation failing with an I/O or
//!   corruption error (or a mutex poisoned by a panicking thread) seals
//!   the graph — its slot stays in the registry but every further
//!   operation is rejected with [`graphstore::Error::Quarantined`], while
//!   all other graphs keep serving. After a mid-mutation failure the
//!   in-memory cores/`cnt` can no longer be trusted; the on-disk
//!   journal/checkpoint protocol is what makes recovery safe.
//! * **Healthy → ReadOnly**: a *disk-full* failure on the journal or
//!   checkpoint writers damages nothing — it only stops writers — so the
//!   graph degrades instead of sealing: queries keep serving the last
//!   committed state, mutations are refused with
//!   [`graphstore::Error::ReadOnly`], and the graph is promoted back once
//!   a probe ([`CoreService::probe_read_only`]) proves space returned.
//! * **Quarantined → Repairing → Healthy**: [`CoreService::repair`]
//!   rebuilds a quarantined graph *online* — fsck tail-repair of its
//!   durable artefacts, the same recovery path a restart uses, and the
//!   Theorem 4.1 fixpoint certificate as the re-admission gate — without
//!   disturbing any other tenant.
//!
//! The [`start_self_heal`] supervisor automates all three transitions
//! (bounded repair retries with exponential backoff, read-only probing,
//! and a rate-limited background scrub through the fsck invariants);
//! every reason along the way is kept in a bounded per-graph history so
//! [`CoreService::health`] can show the full causal chain.
//! [`CoreService::evict`] (which bypasses quarantine) followed by a
//! re-open remains the manual big hammer. All file I/O flows through a
//! [`graphstore::Vfs`], so the crash-point torture tests inject faults
//! here without touching production code paths.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use graphstore::{
    working_set_charge_budget, AdmissionController, AdmissionPermit, Catalog, CatalogEntry,
    DiskGraph, EvictionPolicy, FormatVersion, GroupCommitOptions, GroupCommitWal, IoCounter,
    IoSnapshot, QosConfig, Result, SharedPool, StateCheckpoint, StdVfs, ThrottledVfs, Vfs, Wal,
    DEFAULT_BLOCK_SIZE,
};
use semicore::{CoreState, MaintainOp, MaintainStats, ScanExecutor};

use crate::fsck::{
    check_generation_debris, check_journal, check_tables_and_checkpoint, FsckReport,
};
use crate::CoreIndex;

/// Update-buffer capacity for durable graphs: self-flush is disabled (a
/// buffer-triggered flush would rewrite the base tables behind the
/// checkpoint protocol's back and double-apply edits on recovery). The
/// *actual* memory bound comes from the service instead: once a graph's
/// pending edits reach [`DurableOptions::compact_after_edits`] the apply
/// path runs a generational compaction, which rewrites the tables
/// *through* the commit protocol and empties the buffer.
const DURABLE_BUFFER_CAPACITY: usize = usize::MAX;

/// Default [`DurableOptions::compact_after_edits`]: one million buffered
/// edit entries (~16 MiB of buffer) before the apply path compacts.
pub const DEFAULT_COMPACT_AFTER_EDITS: usize = 1 << 20;

/// Durability knobs for [`CoreService::create_durable_with`] /
/// [`CoreService::open_catalog_with`].
#[derive(Debug, Clone)]
pub struct DurableOptions {
    /// Checkpoint (and truncate the journal) after this many maintenance
    /// ops per graph. Smaller values bound the replay tail; larger values
    /// amortise the `O(n)` checkpoint write. Clamped to at least 1.
    pub checkpoint_every: u64,
    /// `Some` switches every graph's journal to **group commit**: appends
    /// land unsynced, [`CoreService::apply`] waits on a shared fsync
    /// barrier *after* releasing the graph's lock, and concurrent appliers
    /// coalesce into one fsync (see [`GroupCommitWal`]). `None` keeps the
    /// fsync-per-op journal. The acknowledgement contract is identical
    /// either way — an op whose success was reported is durable — only
    /// unacknowledged in-flight ops ride a wider crash window.
    pub group_commit: Option<GroupCommitOptions>,
    /// Compact a graph once its update buffer holds this many edit
    /// entries (an undirected edge op buffers two entries, one per
    /// endpoint). This is the durable path's **memory bound**: without
    /// it the buffer — and with it every checkpoint and every recovery
    /// replay — grows without limit, because durable graphs never
    /// self-flush. Each buffered entry costs a few tens of bytes
    /// (hash-map node + `u32` id), so the per-graph buffer ceiling is
    /// `O(compact_after_edits)`. Clamped to at least 2 (one edge op).
    pub compact_after_edits: usize,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            checkpoint_every: 64,
            group_commit: None,
            compact_after_edits: DEFAULT_COMPACT_AFTER_EDITS,
        }
    }
}

/// A served graph's journal: fsync-per-append, or batched group commit.
#[derive(Debug)]
enum Journal {
    /// Every appended op is fsynced before `apply` proceeds.
    PerOp(Wal),
    /// Appends land unsynced under the graph lock; the submitter gets an
    /// LSN and waits for the shared barrier after the lock is released,
    /// so concurrent appliers (and whole batches) share fsyncs.
    Group(Arc<GroupCommitWal>),
}

impl Journal {
    fn mark(&mut self) -> u64 {
        match self {
            Journal::PerOp(w) => w.len_bytes(),
            Journal::Group(g) => g.mark(),
        }
    }

    fn rollback_to(&mut self, mark: u64) -> Result<()> {
        match self {
            Journal::PerOp(w) => w.rollback_to(mark),
            Journal::Group(g) => g.rollback_to(mark),
        }
    }

    fn truncate(&mut self) -> Result<()> {
        match self {
            Journal::PerOp(w) => w.truncate(),
            // The caller just checkpointed (durably) past every journaled
            // op, so emptying the file also satisfies any waiter still
            // queued on the barrier.
            Journal::Group(g) => g.truncate_satisfy(),
        }
    }
}

/// What [`CoreService::apply`] still owes after the graph lock is gone:
/// the group-commit barrier to wait on, if the journal batches fsyncs.
type DurabilityTicket = Option<(Arc<GroupCommitWal>, u64)>;

/// Wire encoding of one journal record: sequence number, then the op.
fn encode_record(seq: u64, op: MaintainOp) -> Vec<u8> {
    let mut payload = Vec::with_capacity(8 + semicore::MAINTAIN_OP_LEN);
    payload.extend_from_slice(&seq.to_le_bytes());
    payload.extend_from_slice(&op.encode());
    payload
}

/// One served graph: its index plus the journaling state of the durable
/// apply path. The whole struct sits behind the graph's mutex, so sequence
/// numbers never race with the ops they number.
#[derive(Debug)]
struct Served {
    index: CoreIndex,
    /// The graph's journal (durable services only).
    wal: Option<Journal>,
    /// Sequence number of the last applied op.
    seq: u64,
    /// Sequence number of the last completed checkpoint.
    ck_seq: u64,
}

/// Catalog bookkeeping of a durable service.
#[derive(Debug)]
struct Durable {
    dir: PathBuf,
    checkpoint_every: u64,
    /// Compaction threshold in buffered edit entries (see
    /// [`DurableOptions::compact_after_edits`]).
    compact_after_edits: usize,
    /// `Some` wraps every journal in a [`GroupCommitWal`] at create/open.
    group_commit: Option<GroupCommitOptions>,
    entries: Mutex<HashMap<String, DurableEntry>>,
}

impl Durable {
    /// Wrap a freshly created/opened journal per the service's commit mode.
    fn journal(&self, wal: Wal) -> Result<Journal> {
        Ok(match self.group_commit {
            Some(opts) => Journal::Group(Arc::new(GroupCommitWal::wrap(wal, opts)?)),
            None => Journal::PerOp(wal),
        })
    }
}

#[derive(Debug, Clone)]
struct DurableEntry {
    base: PathBuf,
    charge_bytes: u64,
    checkpoint_seq: u64,
    format: FormatVersion,
    /// Table generation: 0 reads the registered base verbatim, g > 0
    /// reads `<base>.g<g>` (see [`graphstore::generation_base`]).
    generation: u64,
}

/// Checkpoint path for a graph at a given table generation. Generation 0
/// keeps the historical `<name>.ckpt` name (so pre-generation catalogs
/// recover unchanged); generation `g > 0` uses `<name>.g<g>.ckpt`.
///
/// Keying the checkpoint by generation is what makes the catalog rewrite
/// the *single* commit point of a compaction: the bumped manifest entry
/// atomically switches both the tables **and** the checkpoint that
/// describes them. A shared checkpoint path could not be ordered safely —
/// written before the catalog commit, a crash between the two would pair
/// the old tables with an empty-edits checkpoint (edits lost); written
/// after, a crash would pair the new tables (edits baked in) with the old
/// checkpoint (edits re-applied twice).
fn ckpt_path(dir: &Path, name: &str, generation: u64) -> PathBuf {
    if generation == 0 {
        dir.join(format!("{name}.ckpt"))
    } else {
        dir.join(format!("{name}.g{generation}.ckpt"))
    }
}

fn wal_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.wal"))
}

/// Durable graph names become file names; restrict them so they can never
/// traverse out of the data directory.
fn validate_durable_name(name: &str) -> Result<()> {
    let ok = !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
    if ok {
        Ok(())
    } else {
        Err(graphstore::Error::InvalidArgument(format!(
            "durable graph name {name:?} must match [A-Za-z0-9_-]+ (it names on-disk files)"
        )))
    }
}

/// A process-wide k-core serving layer: open, decompose, maintain, query
/// and evict many disk-resident graphs concurrently against **one** global
/// byte budget — with optional on-disk durability of the whole registry.
///
/// ```
/// use graphstore::TempDir;
/// use kcore_suite::CoreService;
///
/// let dir = TempDir::new("doc-service").unwrap();
/// let service = CoreService::new(1 << 20).unwrap(); // 1 MiB for everyone
/// service
///     .create("tri", &dir.path().join("tri"), [(0, 1), (1, 2), (0, 2)], 3)
///     .unwrap();
/// service
///     .create("path", &dir.path().join("path"), [(0, 1), (1, 2)], 3)
///     .unwrap();
/// assert_eq!(service.kmax("tri").unwrap(), 2);
/// assert_eq!(service.kmax("path").unwrap(), 1);
/// service.insert_edge("path", 0, 2).unwrap(); // now a triangle too
/// assert_eq!(service.kmax("path").unwrap(), 2);
/// service.evict("tri").unwrap(); // frames return to the pool
/// assert_eq!(service.graph_names(), vec!["path".to_string()]);
/// ```
///
/// The durable variant survives a restart with its maintained state:
///
/// ```
/// use graphstore::TempDir;
/// use kcore_suite::CoreService;
///
/// let dir = TempDir::new("doc-durable").unwrap();
/// let data = dir.path().join("data");
/// {
///     let svc = CoreService::create_durable(&data, 1 << 20).unwrap();
///     svc.create("g", &dir.path().join("g"), [(0, 1), (1, 2)], 3).unwrap();
///     svc.insert_edge("g", 0, 2).unwrap(); // journaled, then applied
/// } // process "dies" here
/// let svc = CoreService::open_catalog(&data).unwrap();
/// assert_eq!(svc.kmax("g").unwrap(), 2); // restored without re-decomposing
/// ```
#[derive(Debug)]
pub struct CoreService {
    pool: SharedPool,
    exec: ScanExecutor,
    graphs: Mutex<HashMap<String, Slot>>,
    durable: Option<Durable>,
    /// Filesystem seam every counter (and the catalog writer) goes
    /// through; [`StdVfs`] in production, a fault-injecting
    /// [`graphstore::FaultVfs`] under the torture tests.
    vfs: Arc<dyn Vfs>,
    /// Per-tenant admission control over the charge budget (`None` admits
    /// everything). Installed by [`CoreService::set_qos`]; every serving
    /// entry point takes a permit sized by the graph's working set before
    /// touching its lock.
    qos: Mutex<Option<Arc<AdmissionController>>>,
    /// Per-operation deadline (`None` runs unlimited). Installed by
    /// [`CoreService::set_op_timeout`]; armed on the graph's I/O counter
    /// for the cancellable stretch of each operation.
    op_timeout: Mutex<Option<Duration>>,
}

/// Bound on a graph's degradation-reason history: enough to show a causal
/// chain (first failure → scrub finding → failed repairs) without letting
/// a crash-looping graph grow it without limit.
const MAX_HEALTH_REASONS: usize = 8;

/// Bound on a graph's repair/promotion event log.
const MAX_REPAIR_LOG: usize = 16;

/// Default physical-read pacing of the online scrubber, bytes per second.
pub const DEFAULT_SCRUB_RATE: u64 = 8 << 20;

/// Serving state of one graph (see the module docs, "Failure containment
/// and self-healing").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthStatus {
    /// Serving reads and writes.
    Healthy,
    /// Serving the last committed state read-only: a recoverable
    /// durability failure (a full disk) stopped the journal and
    /// checkpoint writers. Mutations are refused with
    /// [`graphstore::Error::ReadOnly`]; the supervisor probes for space
    /// and promotes the graph back automatically.
    ReadOnly,
    /// An online repair is rebuilding the graph from its durable state;
    /// operations are refused until it finishes.
    Repairing,
    /// Untrusted after an I/O failure, corruption or a panicked
    /// operation; every operation is refused with
    /// [`graphstore::Error::Quarantined`] until the repair supervisor (or
    /// an explicit [`CoreService::repair`]) brings the graph back, or
    /// [`CoreService::evict`] clears the slot.
    Quarantined,
}

impl HealthStatus {
    /// Stable lowercase tag (`healthy`, `read-only`, `repairing`,
    /// `quarantined`) used by the wire protocol's `health` verb.
    pub fn tag(&self) -> &'static str {
        match self {
            HealthStatus::Healthy => "healthy",
            HealthStatus::ReadOnly => "read-only",
            HealthStatus::Repairing => "repairing",
            HealthStatus::Quarantined => "quarantined",
        }
    }
}

/// Mutable health record of one served graph. Lives behind its own mutex,
/// shared out of the registry slot, so a failing operation can update it
/// after the registry lock is gone.
#[derive(Debug)]
struct HealthState {
    status: HealthStatus,
    /// Causal chain of degradations, oldest first (bounded; see
    /// [`HealthState::push_reason`]).
    reasons: Vec<String>,
    /// How many reasons the bound dropped from the middle of the chain.
    dropped_reasons: u64,
    /// Failed repair attempts since the graph was last healthy.
    repair_attempts: u32,
    /// Set by the supervisor once its retries are spent; sticky graphs
    /// are left alone by the supervisor (a manual [`CoreService::repair`]
    /// still works and clears the flag on success).
    sticky: bool,
    /// Supervisor backoff: no automatic repair before this instant.
    next_attempt_at: Option<Instant>,
    /// Bounded log of repair/promotion events, oldest first.
    repair_log: Vec<String>,
}

impl HealthState {
    fn new() -> HealthState {
        HealthState {
            status: HealthStatus::Healthy,
            reasons: Vec::new(),
            dropped_reasons: 0,
            repair_attempts: 0,
            sticky: false,
            next_attempt_at: None,
            repair_log: Vec::new(),
        }
    }

    /// Append to the reason chain. Every distinct failure is kept — not
    /// just the first — bounded by dropping the *second* entry when full,
    /// so the root cause and the freshest failures both survive. An exact
    /// repeat of the newest reason (a retry loop hitting one failure) is
    /// recorded once.
    fn push_reason(&mut self, reason: &str) {
        if self.reasons.last().is_some_and(|last| last == reason) {
            return;
        }
        if self.reasons.len() >= MAX_HEALTH_REASONS {
            self.reasons.remove(1);
            self.dropped_reasons += 1;
        }
        self.reasons.push(reason.to_string());
    }

    fn push_log(&mut self, line: String) {
        if self.repair_log.len() >= MAX_REPAIR_LOG {
            self.repair_log.remove(0);
        }
        self.repair_log.push(line);
    }

    fn last_reason(&self) -> String {
        self.reasons
            .last()
            .cloned()
            .unwrap_or_else(|| "unrecorded failure".to_string())
    }
}

/// Point-in-time snapshot of one graph's health, as returned by
/// [`CoreService::health`] (and rendered by the server's `health` verb).
#[derive(Debug, Clone)]
pub struct HealthReport {
    /// Current serving state.
    pub status: HealthStatus,
    /// Causal chain of degradation reasons, oldest first (bounded — see
    /// `dropped_reasons`).
    pub reasons: Vec<String>,
    /// Reasons the bound dropped from the middle of the chain.
    pub dropped_reasons: u64,
    /// Failed repair attempts since the graph was last healthy.
    pub repair_attempts: u32,
    /// True once the supervisor exhausted its retries; the graph stays
    /// quarantined until repaired manually or evicted.
    pub sticky: bool,
    /// Repair/promotion event log, oldest first (bounded).
    pub repair_log: Vec<String>,
}

/// Registry slot: the graph's lock plus metadata readable without it.
#[derive(Debug)]
struct Slot {
    handle: Arc<Mutex<Served>>,
    /// Edge-table encoding, fixed at open. Listing/diagnostic commands
    /// read it under the registry lock alone, so they never stall behind
    /// a graph that is mid-scan or mid-maintenance.
    format: FormatVersion,
    /// The graph's charge budget — also the working-set size its
    /// operations are admitted at when QoS is enabled.
    charge_bytes: u64,
    /// Registered base path of the graph's generation-0 tables — what a
    /// repair of a *non-durable* graph re-opens and re-decomposes.
    base: PathBuf,
    /// The graph's health record. Shared (not inline in the slot) so a
    /// failing operation can update it after the registry lock has been
    /// released, without re-entering the registry.
    health: Arc<Mutex<HealthState>>,
}

impl Slot {
    fn new(
        handle: Arc<Mutex<Served>>,
        format: FormatVersion,
        charge_bytes: u64,
        base: &Path,
    ) -> Slot {
        Slot {
            handle,
            format,
            charge_bytes,
            base: base.to_path_buf(),
            health: Arc::new(Mutex::new(HealthState::new())),
        }
    }
}

/// Lock a metadata mutex, recovering from poison. Safe for the registry,
/// health and catalog-entry maps: they hold plain lookup data that is
/// updated in single assignments, so a panicking holder cannot leave them
/// half-written the way a mid-maintenance graph can be.
fn lock_meta<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Record a failure and escalate the graph to quarantine. Every reason is
/// kept in the bounded chain — not just the first — so the `health` verb
/// and the repair log can show the full causal history.
fn set_quarantine(health: &Mutex<HealthState>, reason: &str) {
    let mut h = lock_meta(health);
    h.push_reason(reason);
    h.status = HealthStatus::Quarantined;
}

/// Record a recoverable durability failure and degrade the graph to
/// read-only. Never *downgrades* a quarantine or an in-flight repair:
/// a full disk hit while a graph is already sealed must not re-admit
/// queries against untrusted state.
fn set_read_only(health: &Mutex<HealthState>, reason: &str) {
    let mut h = lock_meta(health);
    h.push_reason(reason);
    if matches!(h.status, HealthStatus::Healthy | HealthStatus::ReadOnly) {
        h.status = HealthStatus::ReadOnly;
    }
}

/// Route an operation failure into the health machine: disk-full degrades
/// to read-only (a full disk damages nothing, it only stops writers), any
/// other I/O failure or corruption quarantines (the in-memory state can
/// no longer be trusted), and validation/range/timeout errors leave the
/// graph untouched — they are the caller's fault, or a deadline expiring
/// at a safe point.
fn fail_graph(health: &Mutex<HealthState>, e: &graphstore::Error, what: &str) {
    if e.is_disk_full() {
        set_read_only(health, &format!("{what}: {e}"));
    } else if matches!(
        e,
        graphstore::Error::Io(_) | graphstore::Error::Corrupt { .. }
    ) {
        set_quarantine(health, &format!("{what}: {e}"));
    }
}

/// Route a compaction failure: before the catalog commit point nothing
/// has switched, so a full disk only degrades the graph to read-only (the
/// old generation keeps serving, new-generation debris is swept by fsck);
/// after the commit — or on any non-space failure — the artefacts may sit
/// between states, so the graph is sealed and the committed manifest
/// decides on re-open.
fn compact_failure(health: &Mutex<HealthState>, e: &graphstore::Error, committed: bool) {
    if !committed && e.is_disk_full() {
        set_read_only(
            health,
            &format!("compaction ran out of disk space before its commit point: {e}"),
        );
    } else if matches!(
        e,
        graphstore::Error::Io(_) | graphstore::Error::Corrupt { .. }
    ) {
        set_quarantine(health, &format!("compaction failed: {e}"));
    }
}

/// RAII per-op deadline on a graph's I/O counter: armed at construction,
/// disarmed on drop whatever path the operation exits through.
struct DeadlineGuard {
    counter: Option<Arc<IoCounter>>,
}

impl Drop for DeadlineGuard {
    fn drop(&mut self) {
        if let Some(c) = &self.counter {
            c.set_deadline(None);
        }
    }
}

impl CoreService {
    /// A service arbitrating `budget_bytes` across all served graphs, with
    /// the default block size, the scan-resistant eviction policy and the
    /// sequential executor. Errors when the budget holds fewer than two
    /// blocks. Nothing is persisted — see [`CoreService::create_durable`].
    pub fn new(budget_bytes: u64) -> Result<CoreService> {
        Self::with_config(
            DEFAULT_BLOCK_SIZE,
            budget_bytes,
            EvictionPolicy::ScanLifo,
            ScanExecutor::Sequential,
        )
    }

    /// [`CoreService::new`] with every knob explicit: block size `B`,
    /// global budget, pool eviction policy (also used by each graph's
    /// charge cache), and the scan executor used for initial
    /// decompositions.
    pub fn with_config(
        block_size: usize,
        budget_bytes: u64,
        policy: EvictionPolicy,
        exec: ScanExecutor,
    ) -> Result<CoreService> {
        Self::with_config_vfs(block_size, budget_bytes, policy, exec, StdVfs::arc())
    }

    /// [`CoreService::with_config`] with an explicit filesystem seam. Every
    /// I/O counter the service creates routes through `vfs`, so a
    /// [`graphstore::FaultVfs`] here puts the whole serving stack under
    /// fault injection.
    pub fn with_config_vfs(
        block_size: usize,
        budget_bytes: u64,
        policy: EvictionPolicy,
        exec: ScanExecutor,
        vfs: Arc<dyn Vfs>,
    ) -> Result<CoreService> {
        Ok(CoreService {
            pool: SharedPool::with_policy(block_size, budget_bytes, policy)?,
            exec,
            graphs: Mutex::new(HashMap::new()),
            durable: None,
            vfs,
            qos: Mutex::new(None),
            op_timeout: Mutex::new(None),
        })
    }

    /// A durable service persisting its registry under `dir` (created if
    /// absent), with the default block size, policy, sequential executor
    /// and checkpoint cadence. Errors if `dir` already holds a catalog —
    /// reopen an existing one with [`CoreService::open_catalog`].
    pub fn create_durable(dir: &Path, budget_bytes: u64) -> Result<CoreService> {
        Self::create_durable_with(
            dir,
            DEFAULT_BLOCK_SIZE,
            budget_bytes,
            EvictionPolicy::ScanLifo,
            ScanExecutor::Sequential,
            DurableOptions::default(),
        )
    }

    /// [`CoreService::create_durable`] with every knob explicit. The pool
    /// configuration (block size, budget, policy) is written into the
    /// catalog and restored by [`CoreService::open_catalog`]; the executor
    /// and checkpoint cadence are runtime choices and are not.
    pub fn create_durable_with(
        dir: &Path,
        block_size: usize,
        budget_bytes: u64,
        policy: EvictionPolicy,
        exec: ScanExecutor,
        opts: DurableOptions,
    ) -> Result<CoreService> {
        Self::create_durable_with_vfs(
            dir,
            block_size,
            budget_bytes,
            policy,
            exec,
            opts,
            StdVfs::arc(),
        )
    }

    /// [`CoreService::create_durable_with`] with an explicit filesystem
    /// seam (see [`CoreService::with_config_vfs`]).
    pub fn create_durable_with_vfs(
        dir: &Path,
        block_size: usize,
        budget_bytes: u64,
        policy: EvictionPolicy,
        exec: ScanExecutor,
        opts: DurableOptions,
        vfs: Arc<dyn Vfs>,
    ) -> Result<CoreService> {
        std::fs::create_dir_all(dir)?;
        if Catalog::exists_in(dir) {
            return Err(graphstore::Error::InvalidArgument(format!(
                "{} already holds a catalog; reopen it with open_catalog",
                dir.display()
            )));
        }
        let svc = CoreService {
            pool: SharedPool::with_policy(block_size, budget_bytes, policy)?,
            exec,
            graphs: Mutex::new(HashMap::new()),
            durable: Some(Durable {
                dir: dir.to_path_buf(),
                checkpoint_every: opts.checkpoint_every.max(1),
                compact_after_edits: opts.compact_after_edits.max(2),
                group_commit: opts.group_commit,
                entries: Mutex::new(HashMap::new()),
            }),
            vfs,
            qos: Mutex::new(None),
            op_timeout: Mutex::new(None),
        };
        svc.rewrite_catalog()?;
        Ok(svc)
    }

    /// Reopen the durable service persisted under `dir`: load the manifest,
    /// rebuild the pool it describes, and restore every catalogued graph —
    /// checkpoint first (one sequential scan, **no** re-decomposition),
    /// then the journal tail replayed through the same typed-op path live
    /// traffic uses. Uses the sequential executor; see
    /// [`CoreService::open_catalog_with`] for the knobs.
    pub fn open_catalog(dir: &Path) -> Result<CoreService> {
        Self::open_catalog_with(dir, ScanExecutor::Sequential, DurableOptions::default())
    }

    /// [`CoreService::open_catalog`] with an explicit executor (used for
    /// decompositions of graphs opened *after* recovery) and durability
    /// options.
    pub fn open_catalog_with(
        dir: &Path,
        exec: ScanExecutor,
        opts: DurableOptions,
    ) -> Result<CoreService> {
        Self::open_catalog_with_vfs(dir, exec, opts, StdVfs::arc())
    }

    /// [`CoreService::open_catalog_with`] with an explicit filesystem seam
    /// (see [`CoreService::with_config_vfs`]). Recovery itself — catalog,
    /// checkpoint and journal reads — goes through `vfs` too.
    pub fn open_catalog_with_vfs(
        dir: &Path,
        exec: ScanExecutor,
        opts: DurableOptions,
        vfs: Arc<dyn Vfs>,
    ) -> Result<CoreService> {
        let catalog = Catalog::read_with(dir, vfs.as_ref())?;
        let svc = CoreService {
            pool: SharedPool::with_policy(
                catalog.block_size,
                catalog.budget_bytes,
                catalog.policy,
            )?,
            exec,
            graphs: Mutex::new(HashMap::new()),
            durable: Some(Durable {
                dir: dir.to_path_buf(),
                checkpoint_every: opts.checkpoint_every.max(1),
                compact_after_edits: opts.compact_after_edits.max(2),
                group_commit: opts.group_commit,
                entries: Mutex::new(HashMap::new()),
            }),
            vfs,
            qos: Mutex::new(None),
            op_timeout: Mutex::new(None),
        };
        for entry in &catalog.entries {
            svc.recover_entry(entry)?;
        }
        Ok(svc)
    }

    /// The data directory of a durable service (`None` when nothing is
    /// persisted).
    pub fn data_dir(&self) -> Option<&Path> {
        self.durable.as_ref().map(|d| d.dir.as_path())
    }

    /// The shared pool, for budget/occupancy/hit-rate introspection.
    pub fn pool(&self) -> &SharedPool {
        &self.pool
    }

    /// Install (or, with `None`, remove) per-tenant admission control.
    /// With QoS enabled, every query/maintenance entry point first admits
    /// the graph's working set against [`QosConfig::capacity_bytes`]:
    /// concurrent ops on one graph share a single admission (they share a
    /// working set), distinct graphs queue in weighted-fair order, and
    /// requests that cannot be queued are shed with
    /// [`graphstore::Error::Overloaded`]. Replacing the controller drops
    /// the old queue's bookkeeping once its in-flight permits finish.
    pub fn set_qos(&self, config: Option<QosConfig>) {
        *lock_meta(&self.qos) = config.map(AdmissionController::new);
    }

    /// The live admission controller, for introspection (`None` when QoS
    /// is off).
    pub fn qos(&self) -> Option<Arc<AdmissionController>> {
        lock_meta(&self.qos).clone()
    }

    /// Set a tenant's QoS weight (see
    /// [`AdmissionController::set_weight`]). Errors when QoS is off.
    pub fn set_tenant_weight(&self, name: &str, weight: u32) -> Result<()> {
        let ctl = self.qos().ok_or_else(|| {
            graphstore::Error::InvalidArgument("no QoS configured; set a budget first".to_string())
        })?;
        ctl.set_weight(name, weight);
        Ok(())
    }

    /// Take an admission permit for one operation on `name` (a no-op
    /// `None` when QoS is off). Called *before* the graph lock so a
    /// queued request never blocks the graph it is waiting to use.
    fn admit(&self, name: &str) -> Result<Option<AdmissionPermit>> {
        let Some(ctl) = self.qos() else {
            return Ok(None);
        };
        let bytes = self
            .registry()
            .get(name)
            .map(|s| s.charge_bytes)
            .ok_or_else(|| not_serving(name))?;
        ctl.admit(name, bytes).map(Some)
    }

    /// Names of the graphs currently being served, sorted.
    pub fn graph_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.registry().keys().cloned().collect();
        names.sort();
        names
    }

    /// True when `name` is currently being served.
    pub fn contains(&self, name: &str) -> bool {
        self.registry().contains_key(name)
    }

    /// Open the graph stored at `<base>.nodes/.edges` and serve it as
    /// `name`, decomposing it on the way in. The charge budget defaults to
    /// the graph's whole working set (both tables plus headroom), which
    /// makes its charged `read_ios` equal *distinct blocks touched* —
    /// schedule-independent, so the guarantee holds at any worker count.
    pub fn open(&self, name: &str, base: &Path) -> Result<()> {
        let charge = working_set_charge_budget(base, self.pool.block_size())?;
        self.open_with_charge(name, base, charge)
    }

    /// [`CoreService::open`] with an explicit per-graph charge budget (the
    /// model `M` this graph's `read_ios` is priced against). Budgets below
    /// two blocks charge per shared-pool miss instead — honest, but
    /// dependent on the other graphs' traffic.
    ///
    /// On a durable service this also registers the graph in the catalog,
    /// writes its initial checkpoint and creates its journal, so a restart
    /// restores it.
    pub fn open_with_charge(&self, name: &str, base: &Path, charge_bytes: u64) -> Result<()> {
        if self.durable.is_some() {
            validate_durable_name(name)?;
        }
        if self.contains(name) {
            return Err(already_serving(name));
        }
        // Decompose outside the registry lock: other graphs keep serving.
        let counter = IoCounter::with_vfs(self.pool.block_size(), Arc::clone(&self.vfs));
        let disk = DiskGraph::open_pooled(base, counter, &self.pool, charge_bytes)?;
        let format = disk.format_version();
        let capacity = if self.durable.is_some() {
            DURABLE_BUFFER_CAPACITY
        } else {
            graphstore::DEFAULT_BUFFER_CAPACITY
        };
        let index = CoreIndex::from_disk_graph(disk, capacity, self.exec)?;

        // Win the name *before* touching any on-disk sidecar: a losing
        // racer must never overwrite the winner's checkpoint or truncate a
        // journal the winner is already appending to. The graph's own lock
        // is held across the sidecar writes so no apply can slip in while
        // `wal` is still `None` (which would skip journaling on a durable
        // service). Lock order (graph, then catalog entries) matches
        // `checkpoint_locked`; nothing locks a graph while holding the
        // registry lock, so holding the graph lock across the registry
        // insert below cannot deadlock.
        let handle = Arc::new(Mutex::new(Served {
            index,
            wal: None,
            seq: 0,
            ck_seq: 0,
        }));
        // Freshly created mutex: nothing else holds it, so locking cannot
        // observe poison — but recover anyway rather than assert.
        let mut served = lock_meta(&handle);
        {
            let mut graphs = self.registry();
            if graphs.contains_key(name) {
                // A racing open beat us; the loser's lease frees its frames.
                return Err(already_serving(name));
            }
            graphs.insert(
                name.to_string(),
                Slot::new(Arc::clone(&handle), format, charge_bytes, base),
            );
        }
        if let Some(d) = &self.durable {
            let publish = (|| -> Result<()> {
                // The seq-0 checkpoint: same writer as every later one
                // (`served.wal` is still None, so no journal to truncate,
                // and the entry map has nothing to refresh yet).
                self.checkpoint_locked(name, &mut served)?;
                let counter = served.index.graph_mut().disk().counter().clone();
                served.wal = Some(d.journal(Wal::create(&wal_path(&d.dir, name), counter)?)?);
                lock_meta(&d.entries).insert(
                    name.to_string(),
                    DurableEntry {
                        base: base.to_path_buf(),
                        charge_bytes,
                        checkpoint_seq: 0,
                        format,
                        generation: 0,
                    },
                );
                self.rewrite_catalog()
            })();
            if let Err(e) = publish {
                // Roll the registration back rather than serve a graph the
                // catalog will not restore.
                self.registry().remove(name);
                lock_meta(&d.entries).remove(name);
                let _ = self.vfs.remove_file(&ckpt_path(&d.dir, name, 0));
                let _ = self.vfs.remove_file(&wal_path(&d.dir, name));
                return Err(e);
            }
        }
        Ok(())
    }

    /// Build a graph from `edges` at `<base>.nodes/.edges`, then serve it
    /// as `name` (see [`CoreIndex::create`] for the edge-list semantics).
    pub fn create(
        &self,
        name: &str,
        base: &Path,
        edges: impl IntoIterator<Item = (u32, u32)>,
        min_nodes: u32,
    ) -> Result<()> {
        if self.contains(name) {
            return Err(already_serving(name));
        }
        let mem = graphstore::MemGraph::from_edges(edges, min_nodes);
        let counter = IoCounter::with_vfs(self.pool.block_size(), Arc::clone(&self.vfs));
        graphstore::write_mem_graph(base, &mem, counter)?;
        self.open(name, base)
    }

    /// Stop serving `name`. In-flight operations on the graph finish
    /// normally; its pool frames are invalidated when the last one drops
    /// its handle. On a durable service the graph also leaves the catalog
    /// and its checkpoint/journal files are removed — the base tables are
    /// untouched, so it can be re-opened (and re-decomposed) later.
    ///
    /// Eviction deliberately **bypasses quarantine**: removing a poisoned
    /// or corrupted graph is how an operator clears it for re-open.
    pub fn evict(&self, name: &str) -> Result<()> {
        self.registry()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| not_serving(name))?;
        if let Some(d) = &self.durable {
            let entry = lock_meta(&d.entries).remove(name);
            self.rewrite_catalog()?;
            // Sidecars of an uncatalogued graph are dead weight; failures
            // here are harmless (recovery never reads uncatalogued files).
            let generation = entry.as_ref().map_or(0, |e| e.generation);
            let _ = self.vfs.remove_file(&ckpt_path(&d.dir, name, generation));
            let _ = self.vfs.remove_file(&wal_path(&d.dir, name));
            // Generation > 0 tables are service-created (compaction
            // output); unlike the user's registered base they go too.
            if let Some(e) = entry.filter(|e| e.generation > 0) {
                let paths = graphstore::GraphPaths::from_base(&graphstore::generation_base(
                    &e.base,
                    e.generation,
                ));
                let _ = self.vfs.remove_file(&paths.nodes);
                let _ = self.vfs.remove_file(&paths.edges);
            }
        }
        Ok(())
    }

    /// Run `f` against the named graph's [`CoreIndex`], holding that
    /// graph's lock (and no other) for the duration. This is the generic
    /// access path every convenience *query* goes through. On a durable
    /// service, mutate only via [`CoreService::apply`] (or its wrappers):
    /// edits made directly through `f` bypass the journal and will not
    /// survive a restart.
    ///
    /// A quarantined graph rejects `f` outright; an `f` that fails with an
    /// I/O or corruption error quarantines the graph, a disk-full failure
    /// degrades it to read-only (see the module docs, "Failure containment
    /// and self-healing"). A read-only graph still runs `f` — this is the
    /// query path; durable mutations go through [`CoreService::apply`],
    /// which is gated.
    pub fn with_graph<R>(
        &self,
        name: &str,
        f: impl FnOnce(&mut CoreIndex) -> Result<R>,
    ) -> Result<R> {
        let _permit = self.admit(name)?;
        let (handle, health) = self.served_for(name, false)?;
        // The registry lock is released; only this graph serializes.
        let mut served = lock_served(name, &handle, &health)?;
        let _deadline = self.arm_deadline(&mut served);
        let res = f(&mut served.index);
        if let Err(e) = &res {
            fail_graph(&health, e, "operation failed");
        }
        res
    }

    /// Why the named graph is quarantined (`None` while it is serving —
    /// healthy, read-only or under repair). Kept as the stable one-line
    /// answer; the full state machine is exposed by
    /// [`CoreService::health`]. Errors when `name` is not being served at
    /// all.
    pub fn quarantine_reason(&self, name: &str) -> Result<Option<String>> {
        let registry = self.registry();
        let slot = registry.get(name).ok_or_else(|| not_serving(name))?;
        let h = lock_meta(&slot.health);
        Ok(match h.status {
            HealthStatus::Quarantined => Some(h.last_reason()),
            _ => None,
        })
    }

    /// Point-in-time health snapshot of the named graph: its status, the
    /// bounded causal chain of degradation reasons, the repair-attempt
    /// counters and the repair log. Reads slot metadata only — never
    /// blocks on the graph's own lock, so an operator can inspect a graph
    /// that is wedged mid-operation.
    pub fn health(&self, name: &str) -> Result<HealthReport> {
        let registry = self.registry();
        let slot = registry.get(name).ok_or_else(|| not_serving(name))?;
        let h = lock_meta(&slot.health);
        Ok(HealthReport {
            status: h.status,
            reasons: h.reasons.clone(),
            dropped_reasons: h.dropped_reasons,
            repair_attempts: h.repair_attempts,
            sticky: h.sticky,
            repair_log: h.repair_log.clone(),
        })
    }

    /// Install (or with `None`, remove) a **per-operation deadline**:
    /// charged block reads check it and abort the operation with
    /// [`graphstore::Error::Timeout`] once it expires. Queries are
    /// cancellable at any read; mutations only during their *validation*
    /// read — once an op is journaled it always runs to completion, so a
    /// deadline can never leave maintenance half-applied. Timeouts never
    /// quarantine, and the admission claim is released like any other
    /// return.
    pub fn set_op_timeout(&self, timeout: Option<Duration>) {
        *lock_meta(&self.op_timeout) = timeout;
    }

    /// The current per-operation deadline (`None` when unlimited).
    pub fn op_timeout(&self) -> Option<Duration> {
        *lock_meta(&self.op_timeout)
    }

    /// Arm the configured per-op deadline on the graph's I/O counter (a
    /// no-op guard when no timeout is set). The graph's lock is held by
    /// the caller, so exactly one operation owns the counter's deadline
    /// at a time.
    fn arm_deadline(&self, served: &mut Served) -> DeadlineGuard {
        let Some(budget) = *lock_meta(&self.op_timeout) else {
            return DeadlineGuard { counter: None };
        };
        let counter = served.index.graph_mut().disk().counter().clone();
        counter.set_deadline(Some((Instant::now() + budget, budget)));
        DeadlineGuard {
            counter: Some(counter),
        }
    }

    /// All core numbers of the named graph.
    pub fn cores(&self, name: &str) -> Result<Vec<u32>> {
        self.with_graph(name, |idx| Ok(idx.cores().to_vec()))
    }

    /// Core number of node `v` in the named graph. Unlike
    /// [`CoreIndex::core`], an out-of-range node is an error, not a panic —
    /// a serving layer must survive bad queries.
    pub fn core(&self, name: &str, v: u32) -> Result<u32> {
        self.with_graph(name, |idx| {
            if v >= idx.num_nodes() {
                return Err(graphstore::Error::NodeOutOfRange {
                    node: v,
                    num_nodes: idx.num_nodes(),
                });
            }
            Ok(idx.core(v))
        })
    }

    /// Degeneracy `kmax` of the named graph.
    pub fn kmax(&self, name: &str) -> Result<u32> {
        self.with_graph(name, |idx| Ok(idx.kmax()))
    }

    /// Apply one typed maintenance operation to the named graph — **the**
    /// mutation path: validation, journaling, dispatch and checkpointing
    /// all live here, and [`CoreService::insert_edge`] /
    /// [`CoreService::delete_edge`] are thin wrappers over it.
    ///
    /// Unlike [`CoreIndex::apply`] — which trusts its caller and silently
    /// corrupts state on a duplicate insert or absent delete — this path is
    /// fed raw user input and validates first (one adjacency read). On a
    /// durable service the validated op is then appended (and fsynced) to
    /// the graph's journal *before* it is applied, so a crash at any
    /// instant loses at most an op whose success was never reported; every
    /// `checkpoint_every` ops the maintained state is checkpointed and the
    /// journal truncated.
    ///
    /// Failure containment: a quarantined graph rejects the op; an op that
    /// fails with an I/O or corruption error — journal append, dispatch, or
    /// the validating adjacency read — quarantines the graph, because after
    /// a mid-mutation failure the in-memory state can no longer be trusted.
    /// Validation rejections (duplicate insert, absent delete, bad node)
    /// leave the graph serving.
    pub fn apply(&self, name: &str, op: MaintainOp) -> Result<MaintainStats> {
        let _permit = self.admit(name)?;
        let (handle, health) = self.served_for(name, true)?;
        let mut served = lock_served(name, &handle, &health)?;
        let res = self.apply_locked(name, &mut served, op, &health);
        // Under group commit the fsync barrier is crossed *after* the
        // graph lock is gone: the next applier can validate, journal and
        // apply while this op's batch is being synced — that overlap is
        // the whole point. The op is acknowledged only once the barrier
        // reports its LSN durable.
        drop(served);
        let res = match res {
            Ok((stats, Some((group, lsn)))) => match group.wait_durable(lsn, true) {
                Ok(()) => Ok(stats),
                Err(e) => {
                    // A failed barrier is never a read-only downgrade,
                    // even on a full disk: the op is applied in memory
                    // but its durability is unknown, so the state must
                    // be sealed and rebuilt from the journal's durable
                    // prefix.
                    set_quarantine(&health, &format!("group-commit barrier failed: {e}"));
                    return Err(e);
                }
            },
            Ok((stats, None)) => Ok(stats),
            Err(e) => Err(e),
        };
        if let Err(e) = &res {
            fail_graph(&health, e, "maintenance failed");
        }
        res
    }

    /// Validate `op` against the graph's current edges (one adjacency
    /// read): duplicate inserts and absent deletes are rejected before
    /// anything is journaled.
    fn validate_op(served: &mut Served, op: MaintainOp) -> Result<()> {
        let (u, v) = op.endpoints();
        if op.is_insert() {
            if served.index.has_edge(u, v)? {
                return Err(graphstore::Error::InvalidArgument(format!(
                    "edge ({u}, {v}) already present"
                )));
            }
        } else if !served.index.has_edge(u, v)? {
            return Err(graphstore::Error::InvalidArgument(format!(
                "edge ({u}, {v}) not present"
            )));
        }
        Ok(())
    }

    /// [`CoreService::apply`] past the registry/quarantine gate, with the
    /// graph's lock held. Returns the stats plus the barrier the caller
    /// must wait on once the lock is released (group commit only).
    fn apply_locked(
        &self,
        name: &str,
        served: &mut Served,
        op: MaintainOp,
        health: &Mutex<HealthState>,
    ) -> Result<(MaintainStats, DurabilityTicket)> {
        {
            // The validation read is the only cancellable stretch of a
            // mutation: nothing is journaled or applied yet, so a
            // deadline expiry here is a clean typed rejection.
            let _deadline = self.arm_deadline(served);
            Self::validate_op(served, op)?;
        }
        let seq = served.seq + 1;
        let mut journal_mark = None;
        let mut ticket = None;
        if let Some(journal) = served.wal.as_mut() {
            let payload = encode_record(seq, op);
            let mark = journal.mark();
            journal_mark = Some(mark);
            let appended = match journal {
                Journal::PerOp(w) => w.append(&payload),
                Journal::Group(g) => g.submit(&payload).map(|lsn| {
                    ticket = Some((Arc::clone(g), lsn));
                }),
            };
            if let Err(e) = appended {
                // The journal already tried to clean its own partial
                // record up; retry via rollback (idempotent) to *prove*
                // it clean. Proven, a full disk is a degraded-mode
                // condition the caller classifies; unproven, a record
                // whose failure we report might replay after a crash —
                // seal the graph here.
                if journal.rollback_to(mark).is_err() {
                    set_quarantine(
                        health,
                        &format!("journal append failed and its rollback failed too: {e}"),
                    );
                }
                return Err(e);
            }
        }
        let stats = match served.index.apply(op) {
            Ok(stats) => stats,
            Err(e) => {
                // The op failed after it was journaled: undo the append so
                // the journal never records an op whose failure we report
                // (replaying it would diverge from the acknowledged
                // history). If even the rollback fails, the record stays —
                // then the op *is* durably recorded, so consume its
                // sequence number rather than let the next op reuse it and
                // poison the journal's gap check. (A rolled-back group
                // record's LSN stays consumed too — the barrier can still
                // advance past it, it just vouches for nothing.)
                if let (Some(journal), Some(mark)) = (served.wal.as_mut(), journal_mark) {
                    if journal.rollback_to(mark).is_err() {
                        served.seq = seq;
                    }
                }
                return Err(e);
            }
        };
        served.seq = seq;
        if let Some(d) = &self.durable {
            if served.seq - served.ck_seq >= d.checkpoint_every {
                // The op itself is journaled and applied — durable either
                // way — so a failed threshold checkpoint must not turn its
                // acknowledgement into an error (the caller would retry an
                // op that actually happened). `ck_seq` stays put, the next
                // op retries the checkpoint, and the journal simply grows
                // until one succeeds. A *full disk*, though, is actionable
                // now: degrade to read-only so later mutations get the
                // typed refusal instead of failing their appends one by
                // one.
                if let Err(e) = self.checkpoint_locked(name, served) {
                    if e.is_disk_full() {
                        set_read_only(
                            health,
                            &format!("threshold checkpoint hit a full disk: {e}"),
                        );
                    }
                }
            }
            self.maybe_compact_locked(name, served, health);
        }
        Ok((stats, ticket))
    }

    /// Apply a whole batch of ops to the named graph under **one** fsync:
    /// every op is validated, journaled (unsynced) and applied in order
    /// under the graph's lock, then a single barrier makes the batch
    /// durable. On an fsync-per-op journal this is the only batching path;
    /// under group commit the barrier may additionally coalesce with other
    /// appliers' batches.
    ///
    /// Error semantics: ops are applied in order until the first failure;
    /// the already-applied prefix *stays* applied and is made durable
    /// before the error is returned (a batch is a convenience, not a
    /// transaction). Journal/dispatch failures quarantine the graph
    /// exactly like [`CoreService::apply`]; a validation rejection mid-
    /// batch leaves it serving.
    pub fn apply_batch(&self, name: &str, ops: &[MaintainOp]) -> Result<Vec<MaintainStats>> {
        let _permit = self.admit(name)?;
        let (handle, health) = self.served_for(name, true)?;
        let mut served = lock_served(name, &handle, &health)?;
        let (res, ticket) = self.apply_batch_locked(name, &mut served, ops, &health);
        drop(served);
        let res = match ticket {
            Some((group, lsn)) => match (group.wait_durable(lsn, false), res) {
                (Ok(()), res) => res,
                // A failed barrier outranks a validation rejection: the
                // applied prefix cannot be promised durable any more, so
                // the graph is sealed whatever the in-lock outcome was.
                (Err(e), _) => {
                    set_quarantine(&health, &format!("group-commit barrier failed: {e}"));
                    return Err(e);
                }
            },
            None => res,
        };
        if let Err(e) = &res {
            fail_graph(&health, e, "maintenance failed");
        }
        res
    }

    /// [`CoreService::apply_batch`] under the graph lock. The ticket is
    /// returned even when the result is an error so the caller can finish
    /// the barrier covering the applied prefix.
    #[allow(clippy::type_complexity)]
    fn apply_batch_locked(
        &self,
        name: &str,
        served: &mut Served,
        ops: &[MaintainOp],
        health: &Mutex<HealthState>,
    ) -> (Result<Vec<MaintainStats>>, DurabilityTicket) {
        let mut all = Vec::with_capacity(ops.len());
        let mut last_lsn = None;
        let mut appended = false;
        let mut outcome: Result<()> = Ok(());
        for &op in ops {
            let vres = {
                // Same deadline contract as the single-op path: only the
                // validation read of each op is cancellable.
                let _deadline = self.arm_deadline(served);
                Self::validate_op(served, op)
            };
            if let Err(e) = vres {
                outcome = Err(e);
                break;
            }
            let seq = served.seq + 1;
            let mut journal_mark = None;
            let mut journal_err = None;
            if let Some(journal) = served.wal.as_mut() {
                let payload = encode_record(seq, op);
                let mark = journal.mark();
                journal_mark = Some(mark);
                match journal {
                    Journal::PerOp(w) => {
                        if let Err(e) = w.append_unsynced(&payload) {
                            journal_err = Some(e);
                        }
                    }
                    Journal::Group(g) => match g.submit(&payload) {
                        Ok(lsn) => last_lsn = Some(lsn),
                        Err(e) => journal_err = Some(e),
                    },
                }
                if journal_err.is_none() {
                    appended = true;
                } else if journal.rollback_to(mark).is_err() {
                    // Same contract as the single-op path: an append
                    // whose cleanup cannot be proven leaves a record
                    // that might replay after a crash.
                    set_quarantine(
                        health,
                        &format!(
                            "journal append failed and its rollback failed too: {}",
                            journal_err
                                .as_ref()
                                .map_or_else(String::new, |e| e.to_string())
                        ),
                    );
                }
            }
            if let Some(e) = journal_err {
                outcome = Err(e);
                break;
            }
            match served.index.apply(op) {
                Ok(stats) => {
                    served.seq = seq;
                    all.push(stats);
                }
                Err(e) => {
                    // Same contract as the single-op path: never leave a
                    // journaled record whose failure we report.
                    if let (Some(journal), Some(mark)) = (served.wal.as_mut(), journal_mark) {
                        if journal.rollback_to(mark).is_err() {
                            served.seq = seq;
                        }
                    }
                    outcome = Err(e);
                    break;
                }
            }
        }
        // One barrier for whatever was journaled — even on early error,
        // the applied prefix must be durable before it is reported.
        let mut ticket = None;
        if appended {
            if let Some(journal) = served.wal.as_mut() {
                match journal {
                    Journal::PerOp(w) => {
                        if let Err(e) = w.sync() {
                            if outcome.is_ok() {
                                outcome = Err(e);
                            }
                        }
                    }
                    Journal::Group(g) => {
                        if let Some(lsn) = last_lsn {
                            ticket = Some((Arc::clone(g), lsn));
                        }
                    }
                }
            }
        }
        if outcome.is_ok() {
            if let Some(d) = &self.durable {
                if served.seq - served.ck_seq >= d.checkpoint_every {
                    // Best-effort, exactly like the single-op path — but
                    // a full disk degrades the graph to read-only.
                    if let Err(e) = self.checkpoint_locked(name, served) {
                        if e.is_disk_full() {
                            set_read_only(
                                health,
                                &format!("threshold checkpoint hit a full disk: {e}"),
                            );
                        }
                    }
                }
                self.maybe_compact_locked(name, served, health);
            }
        }
        (outcome.map(|()| all), ticket)
    }

    /// Insert an edge into the named graph, maintaining its cores
    /// (SemiInsert\*). Equivalent to [`CoreService::apply`] with
    /// [`MaintainOp::Insert`]; inserting a present edge is an error.
    pub fn insert_edge(&self, name: &str, u: u32, v: u32) -> Result<MaintainStats> {
        self.apply(name, MaintainOp::Insert(u, v))
    }

    /// Delete an edge from the named graph, maintaining its cores
    /// (SemiDelete\*). Equivalent to [`CoreService::apply`] with
    /// [`MaintainOp::Delete`]; deleting an absent edge is an error.
    pub fn delete_edge(&self, name: &str, u: u32, v: u32) -> Result<MaintainStats> {
        self.apply(name, MaintainOp::Delete(u, v))
    }

    /// Checkpoint the named graph now — maintained state to `<name>.ckpt`,
    /// journal truncated — regardless of the `checkpoint_every` cadence.
    /// Errors on a non-durable service.
    pub fn save(&self, name: &str) -> Result<()> {
        if self.durable.is_none() {
            return Err(graphstore::Error::InvalidArgument(
                "service has no data directory; nothing to save".into(),
            ));
        }
        let _permit = self.admit(name)?;
        let (handle, health) = self.served_for(name, true)?;
        let mut served = lock_served(name, &handle, &health)?;
        let res = self.checkpoint_locked(name, &mut served);
        if let Err(e) = &res {
            fail_graph(&health, e, "checkpoint failed");
        }
        res
    }

    /// [`CoreService::save`] for every served graph.
    pub fn save_all(&self) -> Result<()> {
        for name in self.graph_names() {
            self.save(&name)?;
        }
        Ok(())
    }

    /// Compact the named graph **now**, regardless of the
    /// [`DurableOptions::compact_after_edits`] threshold: rewrite its
    /// current tables plus every buffered edit into a fresh *generation*
    /// of table files (same encoding), commit the bumped generation in
    /// the catalog manifest, then truncate the update buffer and the
    /// journal. Afterwards the graph's checkpoint carries an empty edit
    /// list, so recovery is one sequential table scan with nothing to
    /// replay. Returns the new generation number.
    ///
    /// Errors on a non-durable service. A compaction that fails with an
    /// I/O or corruption error **quarantines** the graph: unlike a
    /// best-effort threshold checkpoint it may have died anywhere inside
    /// the multi-file commit protocol, and re-opening from the committed
    /// manifest is the safe way back (it recovers exactly the pre- or
    /// post-compaction state, never a third).
    pub fn compact(&self, name: &str) -> Result<u64> {
        self.compact_with(name, None)
    }

    /// [`CoreService::compact`] that additionally migrates the graph to
    /// the delta-varint edge encoding (format v2): the new generation's
    /// tables are written compressed whatever the current encoding, and
    /// the catalog entry's format switches at the same commit point as
    /// its generation. Existing v2 graphs just compact. Returns the new
    /// generation number.
    pub fn recompress(&self, name: &str) -> Result<u64> {
        self.compact_with(name, Some(FormatVersion::V2))
    }

    /// [`CoreService::recompress`] with an explicit target encoding —
    /// e.g. [`FormatVersion::V3`] for the stream-vbyte group layout whose
    /// decode is vectorized, or [`FormatVersion::V1`] to migrate back to
    /// raw `u32` runs. Graphs already in the target format just compact.
    /// Returns the new generation number.
    pub fn recompress_to(&self, name: &str, format: FormatVersion) -> Result<u64> {
        self.compact_with(name, Some(format))
    }

    fn compact_with(&self, name: &str, format: Option<FormatVersion>) -> Result<u64> {
        if self.durable.is_none() {
            return Err(graphstore::Error::InvalidArgument(
                "service has no data directory; nothing to compact".into(),
            ));
        }
        let _permit = self.admit(name)?;
        let (handle, health) = self.served_for(name, true)?;
        let mut served = lock_served(name, &handle, &health)?;
        let mut committed = false;
        let res = self.compact_locked_with(name, &mut served, format, &mut committed);
        if let Err(e) = &res {
            compact_failure(&health, e, committed);
        }
        res
    }

    /// The named graph's current table generation (0 until its first
    /// compaction). Errors on a non-durable service or an unknown name.
    pub fn generation(&self, name: &str) -> Result<u64> {
        let Some(d) = &self.durable else {
            return Err(graphstore::Error::InvalidArgument(
                "service has no data directory; graphs have no generations".into(),
            ));
        };
        lock_meta(&d.entries)
            .get(name)
            .map(|e| e.generation)
            .ok_or_else(|| not_serving(name))
    }

    /// Threshold-triggered compaction on the apply path. The triggering
    /// op is journaled, applied and about to be acknowledged — its fate
    /// must not ride on the compaction — so the error is swallowed here;
    /// but a compaction that failed mid-protocol may have left the
    /// on-disk artefacts between states, so the graph is sealed
    /// (quarantined) and the committed manifest decides on re-open. The
    /// exception is running out of disk *before* the commit point, which
    /// only degrades the graph to read-only.
    fn maybe_compact_locked(&self, name: &str, served: &mut Served, health: &Mutex<HealthState>) {
        let Some(d) = &self.durable else {
            return;
        };
        if served.index.graph_mut().pending_edits() < d.compact_after_edits {
            return;
        }
        let mut committed = false;
        if let Err(e) = self.compact_locked_with(name, served, None, &mut committed) {
            compact_failure(health, &e, committed);
        }
    }

    /// The generational compaction protocol, with the graph lock held.
    /// Sync-point order (each a crash window the torture suite walks):
    ///
    /// 1. rewrite base ∪ buffered edits into `<base>.g<G>` tables — the
    ///    generation suffix *is* the temp name until the catalog points
    ///    at it (3 sync events in the table writer);
    /// 2. write the new generation's checkpoint (`served.seq`, **empty**
    ///    edits — they are baked into the new tables) at its
    ///    generation-keyed path, leaving the old checkpoint untouched
    ///    (3 sync events, atomic replace);
    /// 3. rewrite the catalog manifest with the bumped generation — THE
    ///    commit point: one rename atomically switches which tables and
    ///    which checkpoint recovery reads (3 sync events);
    /// 4. truncate the journal — safe on either side of a crash, every
    ///    journaled record is `<= served.seq` and the committed
    ///    checkpoint sits exactly at `served.seq`, so recovery skips
    ///    them by sequence number whether or not the truncate landed;
    /// 5. swap the live index onto the new tables and drop the old
    ///    generation's files (plain unlinks: no sync points, no new
    ///    crash windows; failures leave orphans for fsck to sweep). The
    ///    registered generation-0 base is the user's file and is never
    ///    deleted; compaction output (g > 0) is service-owned.
    fn compact_locked_with(
        &self,
        name: &str,
        served: &mut Served,
        format_override: Option<FormatVersion>,
        committed: &mut bool,
    ) -> Result<u64> {
        let Some(d) = &self.durable else {
            return Err(graphstore::Error::InvalidArgument(
                "compaction on a service with no data directory".into(),
            ));
        };
        let (base, old_gen, charge_bytes, old_format) = {
            let guard = lock_meta(&d.entries);
            let e = guard.get(name).ok_or_else(|| not_serving(name))?;
            (e.base.clone(), e.generation, e.charge_bytes, e.format)
        };
        let format = format_override.unwrap_or(old_format);
        let new_gen = old_gen + 1;
        let new_base = graphstore::generation_base(&base, new_gen);
        served.index.graph_mut().rewrite_to(&new_base, format)?;
        let counter = served.index.graph_mut().disk().counter().clone();
        let state = served.index.maintained_state().clone();
        StateCheckpoint::write_parts(
            &ckpt_path(&d.dir, name, new_gen),
            &counter,
            served.seq,
            &state.core,
            &state.cnt,
            &[],
        )?;
        {
            let mut guard = lock_meta(&d.entries);
            if let Some(e) = guard.get_mut(name) {
                e.generation = new_gen;
                e.checkpoint_seq = served.seq;
                e.format = format;
            }
        }
        if let Err(e) = self.rewrite_catalog() {
            // Both generations' files exist on disk, so whichever
            // manifest actually survived is self-consistent; the
            // in-memory entry just must match what a re-open would pick
            // if the old manifest won.
            if let Some(en) = lock_meta(&d.entries).get_mut(name) {
                en.generation = old_gen;
                en.format = old_format;
            }
            return Err(e);
        }
        // The catalog rename landed: failures past this point leave the
        // artefacts between states, which the caller's classification
        // treats as seal-worthy whatever the error kind.
        *committed = true;
        if let Some(wal) = served.wal.as_mut() {
            wal.truncate()?;
        }
        served.ck_seq = served.seq;
        let disk = DiskGraph::open_pooled(&new_base, counter, &self.pool, charge_bytes)?;
        served.index = CoreIndex::restore(disk, DURABLE_BUFFER_CAPACITY, state)?;
        if let Some(slot) = self.registry().get_mut(name) {
            slot.format = format;
        }
        if old_gen > 0 {
            let paths =
                graphstore::GraphPaths::from_base(&graphstore::generation_base(&base, old_gen));
            let _ = self.vfs.remove_file(&paths.nodes);
            let _ = self.vfs.remove_file(&paths.edges);
        }
        let _ = self.vfs.remove_file(&ckpt_path(&d.dir, name, old_gen));
        Ok(new_gen)
    }

    /// Cumulative I/O charged to the named graph (its own counter: charged
    /// reads are contention-independent, physical reads are not). On a
    /// recovered graph this starts at the recovery cost — checkpoint scan
    /// plus journal-tail replay — the number the restart differential
    /// suite compares against a fresh decomposition.
    pub fn io(&self, name: &str) -> Result<IoSnapshot> {
        self.with_graph(name, |idx| Ok(idx.io()))
    }

    /// Check the Theorem 4.1 fixpoint certificate on the named graph.
    pub fn verify(&self, name: &str) -> Result<bool> {
        self.with_graph(name, |idx| idx.verify())
    }

    /// Attempt an **online repair** of a quarantined graph: drop its live
    /// index, run the single-graph fsck tail-repair over its durable
    /// artefacts ([`crate::fsck::fsck_graph`]), rebuild it through the
    /// same recovery path a restart uses, and gate re-admission on the
    /// Theorem 4.1 fixpoint certificate. On success the graph returns to
    /// [`HealthStatus::Healthy`] with its repair counters (and any sticky
    /// flag) reset; on failure it goes back to quarantine with the
    /// failure appended to its reason chain. Other graphs keep serving
    /// throughout.
    ///
    /// On a non-durable service nothing journaled survives, but the
    /// immutable base tables do: repair re-opens and re-decomposes them.
    ///
    /// Errors when the graph is not quarantined (there is nothing to
    /// repair), when a repair is already running, or when the repair
    /// itself fails. The graph's lock is held for the duration and the
    /// `Repairing` status refuses new operations at the gate.
    pub fn repair(&self, name: &str) -> Result<()> {
        let (handle, health) = self.slot_parts(name)?;
        let attempt = {
            let mut h = lock_meta(&health);
            match h.status {
                HealthStatus::Quarantined => {}
                HealthStatus::Repairing => {
                    return Err(graphstore::Error::InvalidArgument(format!(
                        "a repair of {name:?} is already in progress"
                    )));
                }
                status => {
                    return Err(graphstore::Error::InvalidArgument(format!(
                        "graph {name:?} is {}; repair applies to quarantined graphs",
                        status.tag()
                    )));
                }
            }
            h.status = HealthStatus::Repairing;
            let attempt = h.repair_attempts + 1;
            h.push_log(format!("repair attempt {attempt} started"));
            attempt
        };
        // A poisoned lock is exactly what repair exists for: take it
        // through the poison and clear the flag — the old state is about
        // to be dropped wholesale, never recovered into.
        let mut served = match handle.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                handle.clear_poison();
                poisoned.into_inner()
            }
        };
        let res = self.repair_locked(name, &mut served);
        drop(served);
        let mut h = lock_meta(&health);
        match &res {
            Ok(()) => {
                h.status = HealthStatus::Healthy;
                h.repair_attempts = 0;
                h.sticky = false;
                h.next_attempt_at = None;
                h.push_log(format!(
                    "repair attempt {attempt} succeeded; graph re-admitted"
                ));
            }
            Err(e) => {
                h.status = HealthStatus::Quarantined;
                h.repair_attempts = attempt;
                h.push_reason(&format!("repair attempt {attempt} failed: {e}"));
                h.push_log(format!("repair attempt {attempt} failed: {e}"));
            }
        }
        res
    }

    /// The rebuild inside [`CoreService::repair`], with the graph's lock
    /// held.
    fn repair_locked(&self, name: &str, served: &mut Served) -> Result<()> {
        let mut new_served = if let Some(d) = &self.durable {
            // 1. Repair the durable artefacts — journal-tail truncation,
            //    generation-debris sweep — through the same checks `kcore
            //    fsck` runs offline. Damage fsck refuses to repair (live
            //    tables, checkpoint, catalog) fails the attempt.
            let report = crate::fsck::fsck_graph_with(&d.dir, name, true, Arc::clone(&self.vfs))?;
            if report.unrepaired() > 0 {
                let problems: Vec<String> = report
                    .findings
                    .iter()
                    .filter(|f| !f.repaired)
                    .map(|f| f.problem.clone())
                    .collect();
                return Err(graphstore::Error::Corrupt {
                    reason: format!(
                        "{} problem(s) fsck cannot repair: {}",
                        problems.len(),
                        problems.join("; ")
                    ),
                });
            }
            // 2. Rebuild from the repaired artefacts through the same
            //    path a restart would use.
            let entry = self.catalog_entry_snapshot(name)?;
            self.rebuild_served(&entry)?
        } else {
            let (base, charge_bytes) = {
                let registry = self.registry();
                let slot = registry.get(name).ok_or_else(|| not_serving(name))?;
                (slot.base.clone(), slot.charge_bytes)
            };
            let counter = IoCounter::with_vfs(self.pool.block_size(), Arc::clone(&self.vfs));
            let disk = DiskGraph::open_pooled(&base, counter, &self.pool, charge_bytes)?;
            let index =
                CoreIndex::from_disk_graph(disk, graphstore::DEFAULT_BUFFER_CAPACITY, self.exec)?;
            Served {
                index,
                wal: None,
                seq: 0,
                ck_seq: 0,
            }
        };
        // 3. The fixpoint certificate gates re-admission: a rebuild that
        //    recovered structurally valid but *wrong* state must not
        //    serve.
        if !new_served.index.verify()? {
            return Err(graphstore::Error::Corrupt {
                reason: "fixpoint certificate failed after rebuild".to_string(),
            });
        }
        // 4. Swap. The old index — and its pool lease — drops here; the
        //    overlap with the new lease during the rebuild is fine, the
        //    pool keys leases by id, not path.
        *served = new_served;
        Ok(())
    }

    /// The in-memory catalog entry for `name`, as a [`CatalogEntry`] the
    /// fsck/recovery helpers consume.
    fn catalog_entry_snapshot(&self, name: &str) -> Result<CatalogEntry> {
        let Some(d) = &self.durable else {
            return Err(graphstore::Error::InvalidArgument(
                "service has no data directory; no catalog entries".into(),
            ));
        };
        let guard = lock_meta(&d.entries);
        let e = guard.get(name).ok_or_else(|| not_serving(name))?;
        Ok(CatalogEntry {
            name: name.to_string(),
            base: e.base.clone(),
            charge_bytes: e.charge_bytes,
            checkpoint_seq: e.checkpoint_seq,
            format: e.format,
            generation: e.generation,
        })
    }

    /// Run the **online integrity scrubber** over the named graph without
    /// taking it out of service: the current-generation tables and the
    /// checkpoint are walked lock-free (they are immutable between
    /// compactions, and a checkpoint replace is an atomic rename), then
    /// the journal scan and generation-debris sweep run under the graph's
    /// lock (a live append mid-scan would read as a torn tail). Physical
    /// reads are paced by a token bucket at `bytes_per_sec`
    /// ([`graphstore::ThrottledVfs`]); the scrub runs on a scratch I/O
    /// counter, so the graph's own charged `read_ios` stays bit-identical
    /// with and without scrubbing.
    ///
    /// Findings quarantine the graph — routing it into the repair
    /// supervisor — and the report is returned either way. If a
    /// compaction swaps the table generation mid-scrub, the stale
    /// findings are discarded and an empty report returned; the next pass
    /// rechecks the new generation. Errors on a non-durable service.
    pub fn scrub_with_rate(&self, name: &str, bytes_per_sec: u64) -> Result<FsckReport> {
        let Some(d) = &self.durable else {
            return Err(graphstore::Error::InvalidArgument(
                "service has no data directory; nothing to scrub".into(),
            ));
        };
        let (handle, health) = self.slot_parts(name)?;
        let entry = self.catalog_entry_snapshot(name)?;
        let vfs: Arc<dyn Vfs> = if bytes_per_sec == u64::MAX {
            Arc::clone(&self.vfs)
        } else {
            ThrottledVfs::new(Arc::clone(&self.vfs), bytes_per_sec)
        };
        let mut report = FsckReport {
            graphs_checked: 1,
            ..FsckReport::default()
        };
        let mut probe =
            check_tables_and_checkpoint(&d.dir, &entry, self.pool.block_size(), &vfs, &mut report);
        {
            let served = lock_served(name, &handle, &health)?;
            let generation_now = lock_meta(&d.entries).get(name).map(|e| e.generation);
            if generation_now != Some(entry.generation) {
                // A compaction swapped the tables mid-scrub: every
                // unlocked finding is about files that are no longer
                // live.
                return Ok(FsckReport {
                    graphs_checked: 1,
                    ..FsckReport::default()
                });
            }
            // The live `ck_seq` is the truth the journal must extend —
            // the unlocked checkpoint read may predate a checkpoint that
            // truncated the journal since.
            probe.ck_seq = Some(served.ck_seq);
            check_journal(
                &d.dir,
                &entry,
                probe,
                self.pool.block_size(),
                false,
                &vfs,
                &mut report,
            );
            check_generation_debris(&d.dir, &entry, false, &vfs, &mut report);
        }
        if report.unrepaired() > 0 {
            let first = report
                .findings
                .iter()
                .find(|f| !f.repaired)
                .map(|f| f.problem.clone())
                .unwrap_or_default();
            set_quarantine(
                &health,
                &format!(
                    "scrub found {} problem(s), first: {first}",
                    report.unrepaired()
                ),
            );
        }
        Ok(report)
    }

    /// [`CoreService::scrub_with_rate`] at [`DEFAULT_SCRUB_RATE`].
    pub fn scrub(&self, name: &str) -> Result<FsckReport> {
        self.scrub_with_rate(name, DEFAULT_SCRUB_RATE)
    }

    /// Probe a read-only graph for recovery by attempting a real
    /// checkpoint — the cheapest write that proves both the checkpoint
    /// and journal paths have space again. On success the graph is
    /// promoted back to [`HealthStatus::Healthy`]; the checkpoint also
    /// truncated its journal, so the next mutation starts on a clean log.
    /// A still-full disk returns `Ok(false)` quietly; any other failure
    /// routes through the normal quarantine classification. A graph that
    /// is not read-only returns `Ok(false)` untouched.
    pub fn probe_read_only(&self, name: &str) -> Result<bool> {
        let (handle, health) = self.slot_parts(name)?;
        if lock_meta(&health).status != HealthStatus::ReadOnly {
            return Ok(false);
        }
        let mut served = lock_served(name, &handle, &health)?;
        let res = self.checkpoint_locked(name, &mut served);
        drop(served);
        match res {
            Ok(()) => {
                let mut h = lock_meta(&health);
                if h.status == HealthStatus::ReadOnly {
                    h.status = HealthStatus::Healthy;
                    h.push_log("disk space returned; promoted back to read-write".to_string());
                }
                Ok(true)
            }
            Err(e) if e.is_disk_full() => Ok(false),
            Err(e) => {
                set_quarantine(&health, &format!("read-only probe failed: {e}"));
                Err(e)
            }
        }
    }

    /// Flush every served graph's journal — the drain hook the server
    /// calls before closing sockets: group-commit records still awaiting
    /// a barrier are fsynced now (fsync-per-op journals have nothing
    /// pending by construction). Best-effort: a graph whose flush fails
    /// is quarantined through the normal classification and the drain
    /// keeps going.
    pub fn flush_journals(&self) {
        for name in self.graph_names() {
            let Ok((handle, health)) = self.slot_parts(&name) else {
                continue;
            };
            // Skip poisoned graphs: their journals stop at the last
            // acknowledged op, which is exactly what recovery wants.
            let Ok(served) = handle.lock() else { continue };
            let pending = match &served.wal {
                Some(Journal::Group(g)) => Some(Arc::clone(g)),
                _ => None,
            };
            drop(served);
            if let Some(g) = pending {
                if let Err(e) = g.flush() {
                    set_quarantine(&health, &format!("drain flush failed: {e}"));
                }
            }
        }
    }

    /// Supervisor poll: `(status, repair_attempts, sticky,
    /// next_attempt_at)` of a graph, or `None` once it left the registry.
    fn health_brief(&self, name: &str) -> Option<(HealthStatus, u32, bool, Option<Instant>)> {
        let registry = self.registry();
        let slot = registry.get(name)?;
        let h = lock_meta(&slot.health);
        Some((h.status, h.repair_attempts, h.sticky, h.next_attempt_at))
    }

    /// Mark a quarantine sticky after the supervisor exhausted its
    /// retries, recording the escalation in the repair log.
    fn escalate_sticky(&self, name: &str) {
        if let Ok((_, health)) = self.slot_parts(name) {
            let mut h = lock_meta(&health);
            if h.status == HealthStatus::Quarantined && !h.sticky {
                h.sticky = true;
                let attempts = h.repair_attempts;
                h.push_log(format!(
                    "automatic repair gave up after {attempts} attempt(s); \
                     quarantine is sticky until repaired manually or evicted"
                ));
            }
        }
    }

    /// Supervisor backoff: delay the next automatic repair attempt.
    fn set_next_attempt(&self, name: &str, at: Instant) {
        if let Ok((_, health)) = self.slot_parts(name) {
            lock_meta(&health).next_attempt_at = Some(at);
        }
    }

    /// Edge-table encoding of the named graph's base tables (v1 raw
    /// `u32`s or v2 delta-varints). Reads registry metadata only — never
    /// blocks on the graph's own lock, so listings stay responsive while
    /// a graph is mid-scan.
    pub fn format_version(&self, name: &str) -> Result<FormatVersion> {
        self.registry()
            .get(name)
            .map(|s| s.format)
            .ok_or_else(|| not_serving(name))
    }

    /// Write the current catalog manifest (atomic replace). Caller must
    /// have already updated the entry map. The entries lock is held across
    /// the write: snapshot-then-write-unlocked would let two racing
    /// registry changes rename their manifests in either order, and the
    /// stale one could land last — durably resurrecting an evicted graph
    /// whose sidecars are already gone.
    fn rewrite_catalog(&self) -> Result<()> {
        let Some(d) = self.durable.as_ref() else {
            return Err(graphstore::Error::InvalidArgument(
                "catalog rewrite on a service with no data directory".into(),
            ));
        };
        let guard = lock_meta(&d.entries);
        let mut entries: Vec<CatalogEntry> = guard
            .iter()
            .map(|(name, e)| CatalogEntry {
                name: name.clone(),
                base: e.base.clone(),
                charge_bytes: e.charge_bytes,
                checkpoint_seq: e.checkpoint_seq,
                format: e.format,
                generation: e.generation,
            })
            .collect();
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        Catalog {
            block_size: self.pool.block_size(),
            budget_bytes: self.pool.budget_bytes(),
            policy: self.pool.policy(),
            entries,
        }
        .write_with(&d.dir, self.vfs.as_ref())
        // `guard` drops here, after the manifest is durably in place.
    }

    /// Checkpoint `served` (whose lock the caller holds): atomically
    /// replace `<name>.ckpt` with the maintained state at `served.seq`,
    /// then truncate the journal. The checkpoint rename is the commit
    /// point — a crash before it replays the old checkpoint plus the full
    /// journal, a crash after it skips the already-covered records by
    /// sequence number.
    fn checkpoint_locked(&self, name: &str, served: &mut Served) -> Result<()> {
        let Some(d) = &self.durable else {
            return Ok(());
        };
        // The checkpoint file is keyed by the graph's current table
        // generation (0 while the entry map has nothing yet, i.e. the
        // seq-0 checkpoint written during publication).
        let generation = lock_meta(&d.entries).get(name).map_or(0, |e| e.generation);
        let edits = served.index.graph_mut().pending_net_edits();
        let counter = served.index.graph_mut().disk().counter().clone();
        let state = served.index.maintained_state();
        StateCheckpoint::write_parts(
            &ckpt_path(&d.dir, name, generation),
            &counter,
            served.seq,
            &state.core,
            &state.cnt,
            &edits,
        )?;
        if let Some(wal) = served.wal.as_mut() {
            wal.truncate()?;
        }
        served.ck_seq = served.seq;
        // Refresh the in-memory entry so the *next* registry-shape rewrite
        // carries a current value, but do not rewrite the manifest here:
        // `checkpoint_seq` is advisory (the checkpoint file's own sequence
        // number is what recovery trusts), and three fsyncs per checkpoint
        // on the hot apply path would buy nothing.
        if let Some(e) = lock_meta(&d.entries).get_mut(name) {
            e.checkpoint_seq = served.seq;
        }
        Ok(())
    }

    /// Restore one catalogued graph and serve it.
    fn recover_entry(&self, entry: &CatalogEntry) -> Result<()> {
        let Some(d) = self.durable.as_ref() else {
            return Err(graphstore::Error::InvalidArgument(
                "recovery on a service with no data directory".into(),
            ));
        };
        if self.contains(&entry.name) {
            return Err(graphstore::Error::Corrupt {
                reason: format!("catalog lists {:?} twice", entry.name),
            });
        }
        let served = self.rebuild_served(entry)?;
        let ck_seq = served.ck_seq;
        let handle = Arc::new(Mutex::new(served));
        self.registry().insert(
            entry.name.clone(),
            Slot::new(handle, entry.format, entry.charge_bytes, &entry.base),
        );
        lock_meta(&d.entries).insert(
            entry.name.clone(),
            DurableEntry {
                base: entry.base.clone(),
                charge_bytes: entry.charge_bytes,
                checkpoint_seq: ck_seq,
                format: entry.format,
                generation: entry.generation,
            },
        );
        Ok(())
    }

    /// Rebuild a served graph from its durable artefacts — the shared
    /// core of restart recovery ([`CoreService::recover_entry`]) and
    /// online repair ([`CoreService::repair`]): open the
    /// current-generation tables against the pool, load the checkpoint,
    /// re-inject the buffered edits, and replay the journal tail through
    /// [`CoreIndex::apply`].
    fn rebuild_served(&self, entry: &CatalogEntry) -> Result<Served> {
        let Some(d) = self.durable.as_ref() else {
            return Err(graphstore::Error::InvalidArgument(
                "recovery on a service with no data directory".into(),
            ));
        };
        let counter = IoCounter::with_vfs(self.pool.block_size(), Arc::clone(&self.vfs));
        // Open the entry's *current generation* tables: the registered
        // base for generation 0, `<base>.g<g>` after `g` compactions.
        let disk = DiskGraph::open_pooled(
            &entry.table_base(),
            counter.clone(),
            &self.pool,
            entry.charge_bytes,
        )?;
        // The tables a durable graph references are immutable between
        // compactions: finding them in a different encoding than
        // catalogued means someone replaced them behind the catalog's
        // back — the checkpointed state could then belong to a different
        // graph entirely.
        if disk.format_version() != entry.format {
            return Err(graphstore::Error::Corrupt {
                reason: format!(
                    "catalog records {:?} as format {} but its base tables are {}",
                    entry.name,
                    entry.format.tag(),
                    disk.format_version().tag()
                ),
            });
        }
        let ck =
            StateCheckpoint::read(&ckpt_path(&d.dir, &entry.name, entry.generation), &counter)?;
        let mut index = CoreIndex::restore(
            disk,
            DURABLE_BUFFER_CAPACITY,
            CoreState {
                core: ck.cores,
                cnt: ck.cnt,
            },
        )?;
        // A flush interrupted by a crash can leave `.rewrite` temp tables
        // next to the graph; they are dead (the rename never happened) and
        // would collide with the next rewrite, so sweep them on the way in.
        index.graph_mut().clean_stale_temps()?;
        // The checkpointed update-buffer edits: graph mutations only — the
        // restored cores/cnt already reflect them. The checked variants
        // cross-validate each edit against the merged view: a checkpoint
        // whose edits are already present in the tables (or vice versa)
        // is a protocol violation, not a state to silently absorb.
        for (u, v, inserted) in ck.edits {
            let res = if inserted {
                index.graph_mut().insert_edge_checked(u, v)
            } else {
                index.graph_mut().delete_edge_checked(u, v)
            };
            res.map_err(|e| match e {
                graphstore::Error::InvalidArgument(msg) => graphstore::Error::Corrupt {
                    reason: format!(
                        "checkpointed edit for {:?} contradicts its tables: {msg}",
                        entry.name
                    ),
                },
                other => other,
            })?;
        }
        // Replay the journal tail through the same typed-op dispatch used
        // live. Records at or below the checkpoint sequence are already in
        // the checkpoint (the crash landed between its commit and the
        // journal truncation); anything else must be gap-free.
        let (wal, records) = Wal::open(&wal_path(&d.dir, &entry.name), counter)?;
        let mut seq = ck.seq;
        for record in records {
            if record.len() < 8 {
                return Err(graphstore::Error::Corrupt {
                    reason: format!("undersized journal record for {:?}", entry.name),
                });
            }
            let mut seq_bytes = [0u8; 8];
            seq_bytes.copy_from_slice(&record[..8]);
            let rseq = u64::from_le_bytes(seq_bytes);
            let op = MaintainOp::decode(&record[8..])?;
            if rseq <= ck.seq {
                continue;
            }
            if rseq != seq + 1 {
                return Err(graphstore::Error::Corrupt {
                    reason: format!(
                        "journal gap for {:?}: record {rseq} after {seq}",
                        entry.name
                    ),
                });
            }
            index.apply(op)?;
            seq = rseq;
        }
        Ok(Served {
            index,
            wal: Some(d.journal(wal)?),
            seq,
            ck_seq: ck.seq,
        })
    }

    /// Look the graph up without any health gate, returning its handle
    /// plus the shared health record (so a failing caller can update it
    /// after this registry guard is gone). The repair/scrub/probe paths
    /// use this directly — they exist to operate on unhealthy graphs.
    #[allow(clippy::type_complexity)]
    fn slot_parts(&self, name: &str) -> Result<(Arc<Mutex<Served>>, Arc<Mutex<HealthState>>)> {
        let registry = self.registry();
        let slot = registry.get(name).ok_or_else(|| not_serving(name))?;
        Ok((Arc::clone(&slot.handle), Arc::clone(&slot.health)))
    }

    /// [`CoreService::slot_parts`] behind the health gate: quarantined and
    /// under-repair graphs refuse everything; read-only graphs refuse
    /// mutating entry points (`write`) with the typed
    /// [`graphstore::Error::ReadOnly`] but keep serving queries.
    #[allow(clippy::type_complexity)]
    fn served_for(
        &self,
        name: &str,
        write: bool,
    ) -> Result<(Arc<Mutex<Served>>, Arc<Mutex<HealthState>>)> {
        let (handle, health) = self.slot_parts(name)?;
        {
            let h = lock_meta(&health);
            match h.status {
                HealthStatus::Healthy => {}
                HealthStatus::ReadOnly => {
                    if write {
                        return Err(graphstore::Error::ReadOnly {
                            graph: name.to_string(),
                            reason: h.last_reason(),
                        });
                    }
                }
                HealthStatus::Repairing => {
                    return Err(graphstore::Error::Quarantined {
                        graph: name.to_string(),
                        reason: "an online repair is rebuilding this graph".to_string(),
                    });
                }
                HealthStatus::Quarantined => {
                    return Err(graphstore::Error::Quarantined {
                        graph: name.to_string(),
                        reason: h.last_reason(),
                    });
                }
            }
        }
        Ok((handle, health))
    }

    fn registry(&self) -> MutexGuard<'_, HashMap<String, Slot>> {
        lock_meta(&self.graphs)
    }
}

/// Lock a served graph, converting a poisoned mutex into quarantine. A
/// panicking holder may have left the index mid-mutation, so — unlike the
/// metadata maps — the state must **not** be recovered into; it is sealed
/// off and rebuilt from durable state by the repair path instead.
fn lock_served<'a>(
    name: &str,
    handle: &'a Mutex<Served>,
    health: &Mutex<HealthState>,
) -> Result<MutexGuard<'a, Served>> {
    match handle.lock() {
        Ok(guard) => Ok(guard),
        Err(_) => {
            let reason =
                "a thread panicked while operating on this graph; in-memory state is untrusted"
                    .to_string();
            set_quarantine(health, &reason);
            Err(graphstore::Error::Quarantined {
                graph: name.to_string(),
                reason,
            })
        }
    }
}

fn already_serving(name: &str) -> graphstore::Error {
    graphstore::Error::InvalidArgument(format!("a graph named {name:?} is already being served"))
}

fn not_serving(name: &str) -> graphstore::Error {
    graphstore::Error::InvalidArgument(format!("no graph named {name:?} is being served"))
}

/// Tuning knobs for the self-heal supervisor ([`start_self_heal`]).
#[derive(Debug, Clone)]
pub struct SelfHealOptions {
    /// How often each healthy graph is scrubbed; `None` disables the
    /// scrubber (quarantine repair and read-only probing still run).
    pub scrub_interval: Option<Duration>,
    /// Automatic repair attempts per quarantine episode before the
    /// quarantine is escalated to sticky.
    pub repair_retries: u32,
    /// Base delay of the exponential backoff between repair attempts:
    /// attempt `n` waits `backoff_base * 2^n`.
    pub backoff_base: Duration,
    /// Scrubber read-rate ceiling in bytes per second
    /// ([`CoreService::scrub_with_rate`]).
    pub scrub_rate: u64,
    /// How often the supervisor wakes up to look at graph health.
    pub poll_interval: Duration,
}

impl Default for SelfHealOptions {
    fn default() -> Self {
        SelfHealOptions {
            scrub_interval: None,
            repair_retries: 3,
            backoff_base: Duration::from_millis(50),
            scrub_rate: DEFAULT_SCRUB_RATE,
            poll_interval: Duration::from_millis(50),
        }
    }
}

/// Handle to a running self-heal supervisor. Dropping it (or calling
/// [`SelfHealHandle::stop`]) signals the worker and joins it.
pub struct SelfHealHandle {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl SelfHealHandle {
    /// Stop the supervisor and wait for its thread to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for SelfHealHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Start the **self-heal supervisor**: a background worker that, on every
/// poll tick,
///
/// * attempts an online [`CoreService::repair`] of each non-sticky
///   quarantined graph, with exponential backoff between attempts and
///   escalation to sticky quarantine once `repair_retries` attempts have
///   failed;
/// * probes each read-only graph for returned disk space
///   ([`CoreService::probe_read_only`]) and promotes it back to
///   read-write when a checkpoint succeeds;
/// * scrubs each healthy graph's durable artefacts on `scrub_interval`
///   ([`CoreService::scrub_with_rate`]), routing findings into the
///   quarantine → repair pipeline.
///
/// The returned handle owns the worker; drop it to stop.
pub fn start_self_heal(svc: &Arc<CoreService>, opts: SelfHealOptions) -> SelfHealHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let svc = Arc::clone(svc);
    let flag = Arc::clone(&stop);
    let thread = std::thread::Builder::new()
        .name("kcore-self-heal".to_string())
        .spawn(move || {
            let mut last_scrub: HashMap<String, Instant> = HashMap::new();
            while !flag.load(Ordering::Acquire) {
                heal_tick(&svc, &opts, &mut last_scrub);
                std::thread::sleep(opts.poll_interval);
            }
        })
        .ok();
    SelfHealHandle { stop, thread }
}

/// One supervisor pass over every served graph.
fn heal_tick(svc: &CoreService, opts: &SelfHealOptions, last_scrub: &mut HashMap<String, Instant>) {
    for name in svc.graph_names() {
        let Some((status, attempts, sticky, next_at)) = svc.health_brief(&name) else {
            last_scrub.remove(&name);
            continue;
        };
        match status {
            HealthStatus::Quarantined if !sticky => {
                if attempts >= opts.repair_retries {
                    svc.escalate_sticky(&name);
                } else if next_at.is_none_or(|t| Instant::now() >= t) && svc.repair(&name).is_err()
                {
                    // `repair` bumped `repair_attempts`; schedule the
                    // next try with exponential backoff.
                    let backoff = opts.backoff_base * 2u32.saturating_pow(attempts.min(16));
                    svc.set_next_attempt(&name, Instant::now() + backoff);
                }
            }
            HealthStatus::ReadOnly => {
                let _ = svc.probe_read_only(&name);
            }
            HealthStatus::Healthy => {
                if let Some(interval) = opts.scrub_interval {
                    let due = last_scrub
                        .get(&name)
                        .is_none_or(|t| t.elapsed() >= interval);
                    if due {
                        last_scrub.insert(name.clone(), Instant::now());
                        let _ = svc.scrub_with_rate(&name, opts.scrub_rate);
                    }
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphstore::TempDir;

    fn triangle_plus_tail() -> Vec<(u32, u32)> {
        vec![(0, 1), (1, 2), (0, 2), (2, 3)]
    }

    #[test]
    fn serve_two_graphs_and_evict() {
        let dir = TempDir::new("svc").unwrap();
        let svc = CoreService::new(1 << 20).unwrap();
        svc.create("a", &dir.path().join("a"), triangle_plus_tail(), 4)
            .unwrap();
        svc.create("b", &dir.path().join("b"), [(0u32, 1u32), (1, 2)], 3)
            .unwrap();
        assert_eq!(svc.graph_names(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(svc.pool().registered_graphs(), 2);
        assert_eq!(svc.cores("a").unwrap(), vec![2, 2, 2, 1]);
        assert_eq!(svc.kmax("b").unwrap(), 1);
        assert!(svc.verify("a").unwrap());

        svc.evict("a").unwrap();
        assert!(!svc.contains("a"));
        assert_eq!(svc.pool().registered_graphs(), 1);
        assert!(svc.cores("a").is_err());
        // b is untouched by a's teardown.
        assert_eq!(svc.kmax("b").unwrap(), 1);
    }

    #[test]
    fn maintenance_is_per_graph() {
        let dir = TempDir::new("svc").unwrap();
        let svc = CoreService::new(1 << 20).unwrap();
        svc.create("a", &dir.path().join("a"), triangle_plus_tail(), 4)
            .unwrap();
        svc.create("b", &dir.path().join("b"), triangle_plus_tail(), 4)
            .unwrap();
        svc.insert_edge("a", 1, 3).unwrap();
        svc.insert_edge("a", 0, 3).unwrap(); // a is now K4
        assert_eq!(svc.kmax("a").unwrap(), 3);
        assert_eq!(svc.kmax("b").unwrap(), 2, "b must not see a's updates");
        svc.delete_edge("a", 0, 1).unwrap();
        assert_eq!(svc.kmax("a").unwrap(), 2);
        assert!(svc.verify("a").unwrap() && svc.verify("b").unwrap());
    }

    #[test]
    fn duplicate_and_missing_names_are_errors() {
        let dir = TempDir::new("svc").unwrap();
        let svc = CoreService::new(1 << 20).unwrap();
        svc.create("a", &dir.path().join("a"), triangle_plus_tail(), 4)
            .unwrap();
        assert!(svc
            .create("a", &dir.path().join("a2"), triangle_plus_tail(), 4)
            .is_err());
        assert!(svc.evict("ghost").is_err());
        assert!(svc.insert_edge("ghost", 0, 1).is_err());
    }

    #[test]
    fn duplicate_insert_and_absent_delete_are_errors_not_corruption() {
        let dir = TempDir::new("svc").unwrap();
        let svc = CoreService::new(1 << 20).unwrap();
        svc.create("a", &dir.path().join("a"), triangle_plus_tail(), 4)
            .unwrap();
        let edges_before = svc.with_graph("a", |idx| Ok(idx.num_edges())).unwrap();
        assert!(svc.insert_edge("a", 0, 1).is_err(), "edge already present");
        assert!(svc.delete_edge("a", 1, 3).is_err(), "edge absent");
        assert!(svc.delete_edge("a", 1, 3).is_err(), "still absent");
        assert_eq!(
            svc.with_graph("a", |idx| Ok(idx.num_edges())).unwrap(),
            edges_before,
            "rejected updates must not drift the edge count"
        );
        assert!(svc.verify("a").unwrap(), "state untouched by bad updates");
    }

    #[test]
    fn out_of_range_queries_error_instead_of_panicking() {
        let dir = TempDir::new("svc").unwrap();
        let svc = CoreService::new(1 << 20).unwrap();
        svc.create("a", &dir.path().join("a"), triangle_plus_tail(), 4)
            .unwrap();
        assert!(matches!(
            svc.core("a", 99),
            Err(graphstore::Error::NodeOutOfRange { node: 99, .. })
        ));
        assert!(svc.insert_edge("a", 0, 99).is_err());
        assert_eq!(svc.core("a", 3).unwrap(), 1);
    }

    #[test]
    fn save_without_data_dir_is_an_error() {
        let dir = TempDir::new("svc").unwrap();
        let svc = CoreService::new(1 << 20).unwrap();
        svc.create("a", &dir.path().join("a"), triangle_plus_tail(), 4)
            .unwrap();
        assert!(svc.data_dir().is_none());
        assert!(svc.save("a").is_err());
    }

    #[test]
    fn durable_restart_restores_registry_and_state() {
        let dir = TempDir::new("svc-durable").unwrap();
        let data = dir.path().join("data");
        {
            let svc = CoreService::create_durable(&data, 1 << 20).unwrap();
            assert_eq!(svc.data_dir(), Some(data.as_path()));
            svc.create("a", &dir.path().join("a"), triangle_plus_tail(), 4)
                .unwrap();
            svc.create("b", &dir.path().join("b"), [(0u32, 1u32), (1, 2)], 3)
                .unwrap();
            svc.insert_edge("a", 1, 3).unwrap();
            svc.insert_edge("a", 0, 3).unwrap(); // K4
            svc.delete_edge("b", 0, 1).unwrap();
            // No save: the journal alone must carry the tail.
        }
        let svc = CoreService::open_catalog(&data).unwrap();
        assert_eq!(svc.graph_names(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(svc.kmax("a").unwrap(), 3);
        assert_eq!(svc.cores("b").unwrap(), vec![0, 1, 1]);
        assert!(svc.verify("a").unwrap() && svc.verify("b").unwrap());
        // The restored graph keeps serving updates durably.
        svc.delete_edge("a", 0, 1).unwrap();
        assert_eq!(svc.kmax("a").unwrap(), 2);
    }

    #[test]
    fn durable_restart_after_explicit_save_replays_nothing() {
        let dir = TempDir::new("svc-durable").unwrap();
        let data = dir.path().join("data");
        {
            let svc = CoreService::create_durable(&data, 1 << 20).unwrap();
            svc.create("g", &dir.path().join("g"), triangle_plus_tail(), 4)
                .unwrap();
            svc.insert_edge("g", 1, 3).unwrap();
            svc.save("g").unwrap();
        }
        // After save, the journal is empty: recovery is checkpoint-only.
        let wal_len = std::fs::metadata(data.join("g.wal")).unwrap().len();
        assert_eq!(wal_len, 8, "journal truncated to its header by save");
        let svc = CoreService::open_catalog(&data).unwrap();
        assert_eq!(svc.kmax("g").unwrap(), 2);
        assert!(svc.verify("g").unwrap());
    }

    #[test]
    fn checkpoint_threshold_truncates_journal_mid_stream() {
        let dir = TempDir::new("svc-durable").unwrap();
        let data = dir.path().join("data");
        let svc = CoreService::create_durable_with(
            &data,
            DEFAULT_BLOCK_SIZE,
            1 << 20,
            EvictionPolicy::ScanLifo,
            ScanExecutor::Sequential,
            DurableOptions {
                checkpoint_every: 2,
                ..Default::default()
            },
        )
        .unwrap();
        svc.create("g", &dir.path().join("g"), [(0u32, 1u32)], 6)
            .unwrap();
        svc.insert_edge("g", 1, 2).unwrap();
        svc.insert_edge("g", 2, 3).unwrap(); // threshold: checkpoint + truncate
        let wal_len = std::fs::metadata(data.join("g.wal")).unwrap().len();
        assert_eq!(wal_len, 8, "threshold checkpoint must truncate the journal");
        svc.insert_edge("g", 3, 4).unwrap(); // journaled on the fresh log
        drop(svc);
        let svc = CoreService::open_catalog(&data).unwrap();
        assert_eq!(svc.cores("g").unwrap(), vec![1, 1, 1, 1, 1, 0]);
        assert!(svc.verify("g").unwrap());
    }

    #[test]
    fn explicit_compact_commits_a_new_generation_and_survives_restart() {
        let dir = TempDir::new("svc-compact").unwrap();
        let data = dir.path().join("data");
        let base = dir.path().join("g");
        {
            let svc = CoreService::create_durable(&data, 1 << 20).unwrap();
            svc.create("g", &base, triangle_plus_tail(), 5).unwrap();
            svc.insert_edge("g", 1, 3).unwrap();
            svc.insert_edge("g", 3, 4).unwrap();
            let cores_before = svc.cores("g").unwrap();
            assert_eq!(svc.generation("g").unwrap(), 0);

            assert_eq!(svc.compact("g").unwrap(), 1);
            assert_eq!(svc.generation("g").unwrap(), 1);
            // New generation tables + checkpoint, old checkpoint gone,
            // journal truncated to its header, buffer empty.
            assert!(dir.path().join("g.g1.nodes").exists());
            assert!(dir.path().join("g.g1.edges").exists());
            assert!(data.join("g.g1.ckpt").exists());
            assert!(!data.join("g.ckpt").exists());
            assert_eq!(std::fs::metadata(data.join("g.wal")).unwrap().len(), 8);
            let pending = svc
                .with_graph("g", |idx| Ok(idx.graph_mut().pending_edits()))
                .unwrap();
            assert_eq!(pending, 0, "compaction must empty the update buffer");
            // The user's registered base is never deleted.
            assert!(base.with_extension("nodes").exists());
            // State is preserved bit-for-bit and keeps serving.
            assert_eq!(svc.cores("g").unwrap(), cores_before);
            assert!(svc.verify("g").unwrap());
            svc.insert_edge("g", 0, 3).unwrap();

            // A second compaction supersedes (and removes) the first.
            assert_eq!(svc.compact("g").unwrap(), 2);
            assert!(!dir.path().join("g.g1.nodes").exists());
            assert!(!data.join("g.g1.ckpt").exists());
            assert!(dir.path().join("g.g2.nodes").exists());
        }
        let svc = CoreService::open_catalog(&data).unwrap();
        assert_eq!(svc.generation("g").unwrap(), 2);
        assert_eq!(svc.kmax("g").unwrap(), 3, "0-1-2-3 is a K4 after (0,3)");
        assert!(svc.verify("g").unwrap());
        // Compacted graphs keep taking durable updates.
        svc.delete_edge("g", 0, 3).unwrap();
        assert!(svc.verify("g").unwrap());
    }

    #[test]
    fn compaction_threshold_bounds_buffer_and_journal_on_the_apply_path() {
        let dir = TempDir::new("svc-compact").unwrap();
        let data = dir.path().join("data");
        let svc = CoreService::create_durable_with(
            &data,
            DEFAULT_BLOCK_SIZE,
            1 << 20,
            EvictionPolicy::ScanLifo,
            ScanExecutor::Sequential,
            DurableOptions {
                // Checkpoints alone would let the buffer grow without
                // bound; the compaction threshold is the memory bound.
                checkpoint_every: 1000,
                compact_after_edits: 4,
                ..Default::default()
            },
        )
        .unwrap();
        svc.create("g", &dir.path().join("g"), [(0u32, 1u32)], 8)
            .unwrap();
        for (u, v) in [(1u32, 2u32), (2, 3), (3, 4), (4, 5), (5, 6)] {
            svc.insert_edge("g", u, v).unwrap();
            let pending = svc
                .with_graph("g", |idx| Ok(idx.graph_mut().pending_edits()))
                .unwrap();
            assert!(
                pending < 4,
                "apply path must compact at the threshold (pending = {pending})"
            );
        }
        assert!(
            svc.generation("g").unwrap() >= 2,
            "five ops over a 2-op threshold compact more than once"
        );
        drop(svc);
        let svc = CoreService::open_catalog(&data).unwrap();
        assert_eq!(svc.cores("g").unwrap(), vec![1, 1, 1, 1, 1, 1, 1, 0]);
        assert!(svc.verify("g").unwrap());
    }

    #[test]
    fn recompress_migrates_a_v1_graph_to_v2_at_the_commit_point() {
        let dir = TempDir::new("svc-recompress").unwrap();
        let data = dir.path().join("data");
        // A graph big enough that delta-varint actually shrinks the table.
        let edges: Vec<(u32, u32)> = (0..300u32).map(|v| (v, v + 1)).collect();
        {
            let svc = CoreService::create_durable(&data, 1 << 20).unwrap();
            svc.create("g", &dir.path().join("g"), edges, 301).unwrap();
            assert_eq!(svc.format_version("g").unwrap(), FormatVersion::V1);
            let cores = svc.cores("g").unwrap();

            assert_eq!(svc.recompress("g").unwrap(), 1);
            assert_eq!(svc.format_version("g").unwrap(), FormatVersion::V2);
            assert_eq!(svc.cores("g").unwrap(), cores);
            assert!(svc.verify("g").unwrap());
            // The compressed generation's edge table is strictly smaller
            // than the raw-u32 original.
            let v1_len = std::fs::metadata(dir.path().join("g.edges")).unwrap().len();
            let v2_len = std::fs::metadata(dir.path().join("g.g1.edges"))
                .unwrap()
                .len();
            assert!(v2_len < v1_len, "v2 {v2_len} B !< v1 {v1_len} B");
        }
        // The migrated format survives a restart (catalog + tables agree).
        let svc = CoreService::open_catalog(&data).unwrap();
        assert_eq!(svc.format_version("g").unwrap(), FormatVersion::V2);
        assert!(svc.verify("g").unwrap());
        svc.insert_edge("g", 0, 2).unwrap();
        assert!(svc.verify("g").unwrap());
    }

    #[test]
    fn compact_without_data_dir_is_an_error() {
        let dir = TempDir::new("svc").unwrap();
        let svc = CoreService::new(1 << 20).unwrap();
        svc.create("a", &dir.path().join("a"), triangle_plus_tail(), 4)
            .unwrap();
        assert!(svc.compact("a").is_err());
        assert!(svc.generation("a").is_err());
    }

    #[test]
    fn durable_evict_removes_catalog_entry_and_sidecars() {
        let dir = TempDir::new("svc-durable").unwrap();
        let data = dir.path().join("data");
        let svc = CoreService::create_durable(&data, 1 << 20).unwrap();
        svc.create("gone", &dir.path().join("gone"), triangle_plus_tail(), 4)
            .unwrap();
        svc.create("kept", &dir.path().join("kept"), triangle_plus_tail(), 4)
            .unwrap();
        svc.evict("gone").unwrap();
        assert!(!data.join("gone.ckpt").exists());
        assert!(!data.join("gone.wal").exists());
        drop(svc);
        let svc = CoreService::open_catalog(&data).unwrap();
        assert_eq!(svc.graph_names(), vec!["kept".to_string()]);
    }

    #[test]
    fn durable_names_are_restricted_to_safe_characters() {
        let dir = TempDir::new("svc-durable").unwrap();
        let svc = CoreService::create_durable(&dir.path().join("data"), 1 << 20).unwrap();
        for bad in ["", "../escape", "a/b", "dot.dot", "sp ace"] {
            assert!(
                svc.create(bad, &dir.path().join("g"), triangle_plus_tail(), 4)
                    .is_err(),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn io_failure_quarantines_only_the_failing_graph() {
        let dir = TempDir::new("svc-quarantine").unwrap();
        let svc = CoreService::new(1 << 20).unwrap();
        svc.create("sick", &dir.path().join("sick"), triangle_plus_tail(), 4)
            .unwrap();
        svc.create("well", &dir.path().join("well"), triangle_plus_tail(), 4)
            .unwrap();
        assert_eq!(svc.quarantine_reason("sick").unwrap(), None);

        // An operation that fails with an I/O error trips quarantine…
        let err = svc
            .with_graph("sick", |_idx| -> Result<()> {
                Err(graphstore::Error::Io(std::io::Error::other("injected")))
            })
            .unwrap_err();
        assert!(
            matches!(err, graphstore::Error::Io(_)),
            "first failure surfaces as-is"
        );

        // …so every further operation is rejected with the typed error.
        assert!(svc.kmax("sick").unwrap_err().is_quarantined());
        assert!(svc.insert_edge("sick", 1, 3).unwrap_err().is_quarantined());
        assert!(svc.quarantine_reason("sick").unwrap().is_some());

        // Other tenants are untouched.
        assert_eq!(svc.kmax("well").unwrap(), 2);
        assert!(svc.verify("well").unwrap());

        // Eviction bypasses quarantine and clears the slot for re-open.
        svc.evict("sick").unwrap();
        svc.open("sick", &dir.path().join("sick")).unwrap();
        assert_eq!(svc.kmax("sick").unwrap(), 2);
    }

    #[test]
    fn validation_errors_do_not_quarantine() {
        let dir = TempDir::new("svc-quarantine").unwrap();
        let svc = CoreService::new(1 << 20).unwrap();
        svc.create("a", &dir.path().join("a"), triangle_plus_tail(), 4)
            .unwrap();
        assert!(svc.insert_edge("a", 0, 1).is_err()); // duplicate
        assert!(svc.core("a", 99).is_err()); // out of range
        assert_eq!(svc.quarantine_reason("a").unwrap(), None);
        assert_eq!(svc.kmax("a").unwrap(), 2, "graph keeps serving");
    }

    #[test]
    fn poisoned_graph_lock_becomes_quarantine_not_a_crash() {
        let dir = TempDir::new("svc-poison").unwrap();
        let svc = Arc::new(CoreService::new(1 << 20).unwrap());
        svc.create("p", &dir.path().join("p"), triangle_plus_tail(), 4)
            .unwrap();
        svc.create("q", &dir.path().join("q"), triangle_plus_tail(), 4)
            .unwrap();
        let svc2 = Arc::clone(&svc);
        let panicked = std::thread::spawn(move || {
            let _ = svc2.with_graph("p", |_idx| -> Result<()> {
                panic!("simulated crash mid-operation");
            });
        })
        .join();
        assert!(panicked.is_err(), "the worker thread must have panicked");

        // The poisoned graph is quarantined, not `.expect(...)`-fatal…
        let err = svc.kmax("p").unwrap_err();
        assert!(err.is_quarantined(), "got {err}");
        // …the registry (locked by graph_names) recovered fine, and the
        // other tenant still serves.
        assert_eq!(svc.graph_names().len(), 2);
        assert_eq!(svc.kmax("q").unwrap(), 2);
        svc.evict("p").unwrap();
        assert!(!svc.contains("p"));
    }

    #[test]
    fn create_durable_refuses_an_existing_catalog() {
        let dir = TempDir::new("svc-durable").unwrap();
        let data = dir.path().join("data");
        drop(CoreService::create_durable(&data, 1 << 20).unwrap());
        assert!(CoreService::create_durable(&data, 1 << 20).is_err());
        assert!(CoreService::open_catalog(&data).is_ok());
    }
}
