//! Offline integrity checking — and bounded repair — of a durable data
//! directory.
//!
//! [`fsck()`] walks the catalog the way [`crate::CoreService::open_catalog`]
//! would, but keeps going after the first problem and never mutates
//! anything unless asked: for every catalogued graph it
//!
//! 1. opens the **current-generation tables** (the registered base for
//!    generation 0, `<base>.g<g>` after `g` compactions) and walks the
//!    full adjacency (header magics, per-block CRCs and extent bounds are
//!    validated by the block reader on the way; on top, every neighbor
//!    list must be strictly ascending, in `0..n`, and degree-consistent
//!    with the node table);
//! 2. reads the **checkpoint** (`<name>.ckpt`, or `<name>.g<g>.ckpt`
//!    after compaction; magic + CRC) and checks its vectors against the
//!    graph's node count;
//! 3. scans the **journal** (`<name>.wal`) read-only: magic, per-record
//!    framing CRCs, op decodability, endpoint ranges, and gap-free
//!    sequence numbers above the checkpoint's;
//! 4. sweeps for **generation debris**: stale `.rewrite` flush temps
//!    beside the live tables, and off-generation table/checkpoint files —
//!    what a compaction leaves when it crashes before its catalog commit
//!    (next generation's files) or dies after it (the superseded
//!    generation's).
//!
//! With `repair` set, two classes of problem are fixed. The *journal
//! tail* problems — a torn or CRC-damaged tail, an undecodable op, a
//! sequence gap — are repaired by truncating the journal back to its
//! longest good prefix, which makes the next
//! [`crate::CoreService::open_catalog`] recover the checkpoint plus
//! exactly that prefix (the "fall back to the last good checkpoint"
//! degenerate case is a truncation to the bare header). *Generation
//! debris* is repaired by deleting it: the catalog manifest is the single
//! source of truth for which generation is live, so every off-generation
//! file is dead weight recovery will never read. Repair never touches the
//! live tables, the live checkpoint or the catalog itself: damage there
//! means acknowledged state would have to be invented, and fsck refuses
//! to guess — those findings stay unrepaired and the exit is nonzero.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use graphstore::{
    AdjacencyRead, Catalog, DiskGraph, IoCounter, Result, StateCheckpoint, StdVfs, Vfs, Wal,
    WAL_MAGIC,
};
use semicore::MaintainOp;

/// One problem found by [`fsck`], tagged with whether a repair fixed it.
#[derive(Debug, Clone)]
pub struct FsckFinding {
    /// Graph the problem belongs to; `None` for directory-level damage
    /// (an unreadable catalog).
    pub graph: Option<String>,
    /// What is wrong, human-readable.
    pub problem: String,
    /// True when `repair` was requested **and** the problem was fixed.
    pub repaired: bool,
}

/// Outcome of an [`fsck`] pass.
#[derive(Debug, Default)]
pub struct FsckReport {
    /// Every problem found, in catalog order.
    pub findings: Vec<FsckFinding>,
    /// Number of catalogued graphs examined.
    pub graphs_checked: usize,
}

impl FsckReport {
    /// True when nothing at all was wrong.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Problems that remain after any repairs — the exit-status signal.
    pub fn unrepaired(&self) -> usize {
        self.findings.iter().filter(|f| !f.repaired).count()
    }

    fn push(&mut self, graph: Option<&str>, problem: String, repaired: bool) {
        self.findings.push(FsckFinding {
            graph: graph.map(str::to_string),
            problem,
            repaired,
        });
    }
}

/// Check the durable data directory at `dir`; with `repair`, truncate
/// damaged journal tails back to their longest good prefix. See the
/// module docs for exactly what is validated and what repair will and
/// will not touch.
pub fn fsck(dir: &Path, repair: bool) -> Result<FsckReport> {
    fsck_with(dir, repair, StdVfs::arc())
}

/// [`fsck`] through an explicit filesystem seam, so the fault-injection
/// tests can aim bit-flips at specific reads.
pub fn fsck_with(dir: &Path, repair: bool, vfs: Arc<dyn Vfs>) -> Result<FsckReport> {
    if !Catalog::exists_in(dir) {
        return Err(graphstore::Error::InvalidArgument(format!(
            "{} holds no catalog; nothing to check",
            dir.display()
        )));
    }
    let mut report = FsckReport::default();
    let catalog = match Catalog::read_with(dir, vfs.as_ref()) {
        Ok(c) => c,
        Err(e) => {
            // Without the catalog there is no graph list to walk; report
            // and stop rather than guess at file names.
            report.push(None, format!("catalog unreadable: {e}"), false);
            return Ok(report);
        }
    };
    for entry in &catalog.entries {
        report.graphs_checked += 1;
        check_graph(dir, entry, catalog.block_size, repair, &vfs, &mut report);
    }
    Ok(report)
}

/// Check (and with `repair`, tail-repair) a **single catalogued graph** —
/// the library entry point the serving layer's repair supervisor drives.
/// Identical validation to [`fsck`], scoped to `name`; errors with
/// [`graphstore::Error::InvalidArgument`] when `name` is not in the
/// catalog.
pub fn fsck_graph(dir: &Path, name: &str, repair: bool) -> Result<FsckReport> {
    fsck_graph_with(dir, name, repair, StdVfs::arc())
}

/// [`fsck_graph`] through an explicit filesystem seam.
pub fn fsck_graph_with(
    dir: &Path,
    name: &str,
    repair: bool,
    vfs: Arc<dyn Vfs>,
) -> Result<FsckReport> {
    let catalog = Catalog::read_with(dir, vfs.as_ref())?;
    let entry = catalog
        .entries
        .iter()
        .find(|e| e.name == name)
        .ok_or_else(|| {
            graphstore::Error::InvalidArgument(format!("graph {name:?} is not in the catalog"))
        })?;
    let mut report = FsckReport {
        graphs_checked: 1,
        ..FsckReport::default()
    };
    check_graph(dir, entry, catalog.block_size, repair, &vfs, &mut report);
    Ok(report)
}

/// Generation-keyed checkpoint path — must mirror the service's naming:
/// `<name>.ckpt` for generation 0, `<name>.g<g>.ckpt` afterwards.
fn ckpt_path(dir: &Path, name: &str, generation: u64) -> PathBuf {
    if generation == 0 {
        dir.join(format!("{name}.ckpt"))
    } else {
        dir.join(format!("{name}.g{generation}.ckpt"))
    }
}

fn wal_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.wal"))
}

/// What the table/checkpoint phases learned about a graph — the context
/// the journal phase validates records against. `None` fields mean the
/// corresponding artifact was unreadable (already reported).
#[derive(Debug, Clone, Copy)]
pub(crate) struct GraphProbe {
    pub(crate) num_nodes: Option<u32>,
    pub(crate) ck_seq: Option<u64>,
}

fn check_graph(
    dir: &Path,
    entry: &graphstore::CatalogEntry,
    block_size: usize,
    repair: bool,
    vfs: &Arc<dyn Vfs>,
    report: &mut FsckReport,
) {
    let probe = check_tables_and_checkpoint(dir, entry, block_size, vfs, report);
    check_journal(dir, entry, probe, block_size, repair, vfs, report);
    check_generation_debris(dir, entry, repair, vfs, report);
}

/// Phases 1–2: walk the current-generation tables and validate the
/// checkpoint. Read-only — the online scrubber runs this without the
/// graph's lock (tables and checkpoints are immutable between
/// compactions, and a checkpoint replace is an atomic rename).
pub(crate) fn check_tables_and_checkpoint(
    dir: &Path,
    entry: &graphstore::CatalogEntry,
    block_size: usize,
    vfs: &Arc<dyn Vfs>,
    report: &mut FsckReport,
) -> GraphProbe {
    let name = entry.name.as_str();
    let counter = IoCounter::with_vfs(block_size, Arc::clone(vfs));

    // 1. Current-generation tables: headers validate on open, blocks on
    //    read; the walk adds the structural invariants a CRC cannot see.
    let num_nodes = match DiskGraph::open(&entry.table_base(), counter.clone()) {
        Ok(mut disk) => {
            if disk.format_version() != entry.format {
                report.push(
                    Some(name),
                    format!(
                        "catalog records format {} but base tables are {}",
                        entry.format.tag(),
                        disk.format_version().tag()
                    ),
                    false,
                );
            }
            if let Err(e) = walk_adjacency(&mut disk) {
                report.push(Some(name), format!("base tables: {e}"), false);
            }
            Some(disk.num_nodes())
        }
        Err(e) => {
            report.push(Some(name), format!("base tables unreadable: {e}"), false);
            None
        }
    };

    // 2. Checkpoint: magic + CRC inside StateCheckpoint::read; shape here.
    let ck_seq = match StateCheckpoint::read(&ckpt_path(dir, name, entry.generation), &counter) {
        Ok(ck) => {
            if let Some(n) = num_nodes {
                if ck.cores.len() != n as usize || ck.cnt.len() != n as usize {
                    report.push(
                        Some(name),
                        format!(
                            "checkpoint sized for {} nodes but the graph has {n}",
                            ck.cores.len()
                        ),
                        false,
                    );
                }
                if let Some(&(u, v, _)) = ck.edits.iter().find(|&&(u, v, _)| u >= n || v >= n) {
                    report.push(
                        Some(name),
                        format!("checkpoint edit ({u}, {v}) out of range for {n} nodes"),
                        false,
                    );
                }
            }
            Some(ck.seq)
        }
        Err(e) => {
            report.push(Some(name), format!("checkpoint unreadable: {e}"), false);
            None
        }
    };

    GraphProbe { num_nodes, ck_seq }
}

/// Phase 3: read-only scan and record-level validation of the journal
/// (with `repair`, truncation back to the longest good prefix). The
/// online scrubber runs this *holding the graph's lock* — a live append
/// mid-scan would otherwise read as a torn tail.
pub(crate) fn check_journal(
    dir: &Path,
    entry: &graphstore::CatalogEntry,
    probe: GraphProbe,
    block_size: usize,
    repair: bool,
    vfs: &Arc<dyn Vfs>,
    report: &mut FsckReport,
) {
    let counter = IoCounter::with_vfs(block_size, Arc::clone(vfs));
    check_wal(
        &wal_path(dir, entry.name.as_str()),
        entry.name.as_str(),
        probe.num_nodes,
        probe.ck_seq,
        &counter,
        repair,
        vfs,
        report,
    );
}

/// Sweep for files a crashed or interrupted compaction/flush left behind:
/// stale `.rewrite` temps beside the live tables, tables of generations
/// other than the catalogued one (the user-owned generation-0 base is
/// legitimate and never flagged), and checkpoints keyed to a generation
/// other than the catalogued one. All are dead — recovery reads only the
/// manifest's generation — so repair deletes them.
pub(crate) fn check_generation_debris(
    dir: &Path,
    entry: &graphstore::CatalogEntry,
    repair: bool,
    vfs: &Arc<dyn Vfs>,
    report: &mut FsckReport,
) {
    let name = entry.name.as_str();
    let live = graphstore::GraphPaths::from_base(&entry.table_base());
    let temps = graphstore::rewrite_temp_paths(&live);
    for path in [&temps.nodes, &temps.edges] {
        if path.exists() {
            let repaired = repair && vfs.remove_file(path).is_ok();
            report.push(
                Some(name),
                format!("stale rewrite temp {}", path.display()),
                repaired,
            );
        }
    }
    // A compaction crash can strand the next generation's files (died
    // before the commit) or the previous generation's (died after, before
    // the unlinks); unlink failures can strand older ones. Probe every
    // generation up to one past the live one.
    for g in 0..=entry.generation + 1 {
        if g == entry.generation {
            continue;
        }
        if g > 0 {
            let paths =
                graphstore::GraphPaths::from_base(&graphstore::generation_base(&entry.base, g));
            for path in [&paths.nodes, &paths.edges] {
                if path.exists() {
                    let repaired = repair && vfs.remove_file(path).is_ok();
                    report.push(
                        Some(name),
                        format!("orphaned generation-{g} table {}", path.display()),
                        repaired,
                    );
                }
            }
        }
        let ck = ckpt_path(dir, name, g);
        if ck.exists() {
            let repaired = repair && vfs.remove_file(&ck).is_ok();
            report.push(
                Some(name),
                format!("orphaned generation-{g} checkpoint {}", ck.display()),
                repaired,
            );
        }
    }
}

/// Full adjacency walk: every list strictly ascending, in range, and
/// degree-consistent with the node table; total degree must match the
/// header.
fn walk_adjacency(disk: &mut DiskGraph) -> Result<()> {
    let n = disk.num_nodes();
    let degrees = disk.read_degrees()?;
    let mut buf = Vec::new();
    let mut total: u64 = 0;
    for v in 0..n {
        disk.adjacency(v, &mut buf)?;
        let expect = degrees.get(v as usize).copied().unwrap_or(0);
        if buf.len() as u64 != u64::from(expect) {
            return Err(graphstore::Error::corrupt(format!(
                "node {v}: adjacency holds {} entries but degree is {expect}",
                buf.len()
            )));
        }
        if let Some(&w) = buf.iter().find(|&&w| w >= n) {
            return Err(graphstore::Error::corrupt(format!(
                "node {v}: neighbor {w} out of range for {n} nodes"
            )));
        }
        if buf.windows(2).any(|p| p[0] >= p[1]) {
            return Err(graphstore::Error::corrupt(format!(
                "node {v}: adjacency not strictly ascending"
            )));
        }
        total += buf.len() as u64;
    }
    if total != disk.degree_sum() {
        return Err(graphstore::Error::corrupt(format!(
            "adjacency lists sum to degree {total} but the header says {}",
            disk.degree_sum()
        )));
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn check_wal(
    path: &Path,
    name: &str,
    num_nodes: Option<u32>,
    ck_seq: Option<u64>,
    counter: &Arc<IoCounter>,
    repair: bool,
    vfs: &Arc<dyn Vfs>,
    report: &mut FsckReport,
) {
    let scan = match Wal::scan(path, counter) {
        Ok(scan) => scan,
        Err(e) => {
            // Bad magic or missing file: the journal carries no decodable
            // history at all. Repairing means declaring the checkpoint the
            // whole truth: recreate an empty journal.
            let repaired = repair && recreate_wal(path, counter, vfs).is_ok();
            report.push(Some(name), format!("journal unreadable: {e}"), repaired);
            return;
        }
    };

    // Framing-valid prefix vs. physical length: a torn tail is the normal
    // crash signature (recovery tolerates it silently), but fsck reports
    // it so `--repair` can scrub the evidence.
    if scan.valid_len < scan.file_len {
        let repaired = repair && truncate_to(path, scan.valid_len, vfs).is_ok();
        report.push(
            Some(name),
            format!(
                "torn journal tail: {} trailing bytes after the last whole record",
                scan.file_len - scan.valid_len
            ),
            repaired,
        );
    }

    // Record-level validation of the framing-valid prefix. The first bad
    // record poisons everything after it (replay is sequential), so repair
    // truncates back to the end of the last good record.
    let mut seq = ck_seq.unwrap_or(0);
    let mut good_end = WAL_MAGIC.len() as u64;
    for (i, record) in scan.records.iter().enumerate() {
        let verdict = validate_record(record, num_nodes, ck_seq, &mut seq);
        if let Err(problem) = verdict {
            let repaired = repair && truncate_to(path, good_end, vfs).is_ok();
            report.push(
                Some(name),
                format!("journal record {i}: {problem}"),
                repaired,
            );
            return;
        }
        good_end = scan.record_ends[i];
    }
}

/// One journal record: `seq u64 | MaintainOp`. Returns a description of
/// what is wrong, or advances `seq` past the record.
fn validate_record(
    record: &[u8],
    num_nodes: Option<u32>,
    ck_seq: Option<u64>,
    seq: &mut u64,
) -> std::result::Result<(), String> {
    if record.len() < 8 {
        return Err(format!("undersized ({} bytes)", record.len()));
    }
    let mut seq_bytes = [0u8; 8];
    seq_bytes.copy_from_slice(&record[..8]);
    let rseq = u64::from_le_bytes(seq_bytes);
    let op = MaintainOp::decode(&record[8..]).map_err(|e| format!("undecodable op: {e}"))?;
    if let Some(n) = num_nodes {
        let (u, v) = op.endpoints();
        if u >= n || v >= n {
            return Err(format!(
                "op endpoints ({u}, {v}) out of range for {n} nodes"
            ));
        }
    }
    // Records at or below the checkpoint sequence are covered by the
    // checkpoint (crash between its rename and the journal truncation);
    // everything above must be gap-free — mirrors recovery's check.
    if let Some(ck) = ck_seq {
        if rseq <= ck {
            return Ok(());
        }
    }
    // With no readable checkpoint the baseline is unknown, so the first
    // record anchors the sequence instead of being gap-checked.
    let anchored = *seq != 0 || ck_seq.is_some();
    if anchored && rseq != *seq + 1 {
        return Err(format!("sequence gap: record {rseq} after {seq}"));
    }
    *seq = rseq;
    Ok(())
}

fn truncate_to(path: &Path, len: u64, vfs: &Arc<dyn Vfs>) -> Result<()> {
    let mut f = vfs.open_read_write(path)?;
    f.set_len(len)?;
    f.sync_all()?;
    Ok(())
}

fn recreate_wal(path: &Path, counter: &Arc<IoCounter>, vfs: &Arc<dyn Vfs>) -> Result<()> {
    let _ = vfs.remove_file(path);
    Wal::create(path, counter.clone()).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CoreService;
    use graphstore::TempDir;
    use std::io::{Seek, SeekFrom, Write};

    fn seeded_dir(tmp: &TempDir) -> PathBuf {
        let data = tmp.path().join("data");
        let svc = CoreService::create_durable(&data, 1 << 20).unwrap();
        svc.create(
            "g",
            &tmp.path().join("g"),
            vec![(0u32, 1u32), (1, 2), (0, 2), (2, 3)],
            4,
        )
        .unwrap();
        svc.insert_edge("g", 1, 3).unwrap();
        svc.insert_edge("g", 0, 3).unwrap();
        data
    }

    #[test]
    fn clean_directory_reports_clean() {
        let tmp = TempDir::new("fsck").unwrap();
        let data = seeded_dir(&tmp);
        let report = fsck(&data, false).unwrap();
        assert!(report.clean(), "unexpected findings: {:?}", report.findings);
        assert_eq!(report.graphs_checked, 1);
    }

    #[test]
    fn missing_catalog_is_an_error_not_a_report() {
        let tmp = TempDir::new("fsck").unwrap();
        assert!(fsck(tmp.path(), false).is_err());
    }

    #[test]
    fn torn_wal_tail_is_found_and_repaired() {
        let tmp = TempDir::new("fsck").unwrap();
        let data = seeded_dir(&tmp);
        // Append garbage: a torn half-record.
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(data.join("g.wal"))
            .unwrap();
        f.write_all(&[0xde, 0xad, 0xbe]).unwrap();
        drop(f);

        let report = fsck(&data, false).unwrap();
        assert_eq!(report.unrepaired(), 1, "{:?}", report.findings);
        assert!(report.findings[0].problem.contains("torn journal tail"));

        let report = fsck(&data, true).unwrap();
        assert_eq!(report.unrepaired(), 0, "{:?}", report.findings);
        assert!(report.findings[0].repaired);

        // Clean after repair, and the directory still opens.
        assert!(fsck(&data, false).unwrap().clean());
        let svc = CoreService::open_catalog(&data).unwrap();
        assert_eq!(svc.kmax("g").unwrap(), 3);
    }

    #[test]
    fn single_graph_fsck_scopes_to_the_named_graph() {
        let tmp = TempDir::new("fsck").unwrap();
        let data = seeded_dir(&tmp);
        // A second, healthy graph beside the damaged one.
        let svc = CoreService::open_catalog(&data).unwrap();
        svc.create("h", &tmp.path().join("h"), vec![(0u32, 1u32), (1, 2)], 3)
            .unwrap();
        drop(svc);
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(data.join("g.wal"))
            .unwrap();
        f.write_all(&[0xde, 0xad, 0xbe]).unwrap();
        drop(f);

        // The healthy graph reports clean; the damaged one is found and
        // repaired without touching anything else.
        assert!(fsck_graph(&data, "h", false).unwrap().clean());
        let report = fsck_graph(&data, "g", false).unwrap();
        assert_eq!(report.graphs_checked, 1);
        assert_eq!(report.unrepaired(), 1, "{:?}", report.findings);
        let report = fsck_graph(&data, "g", true).unwrap();
        assert_eq!(report.unrepaired(), 0, "{:?}", report.findings);
        assert!(fsck(&data, false).unwrap().clean());
        assert!(fsck_graph(&data, "nope", false).is_err());
    }

    #[test]
    fn compacted_directory_reports_clean() {
        let tmp = TempDir::new("fsck").unwrap();
        let data = seeded_dir(&tmp);
        let svc = CoreService::open_catalog(&data).unwrap();
        svc.insert_edge("g", 2, 3).unwrap_err(); // present already — no-op
        assert_eq!(svc.compact("g").unwrap(), 1);
        drop(svc);
        let report = fsck(&data, false).unwrap();
        assert!(report.clean(), "unexpected findings: {:?}", report.findings);
    }

    #[test]
    fn generation_debris_is_found_and_swept() {
        let tmp = TempDir::new("fsck").unwrap();
        let data = seeded_dir(&tmp);
        let svc = CoreService::open_catalog(&data).unwrap();
        assert_eq!(svc.compact("g").unwrap(), 1);
        drop(svc);
        // Plant what a crashed compaction would leave: next-generation
        // tables, an off-generation checkpoint, and a stale rewrite temp.
        std::fs::write(tmp.path().join("g.g2.nodes"), b"junk").unwrap();
        std::fs::write(tmp.path().join("g.g2.edges"), b"junk").unwrap();
        std::fs::write(data.join("g.ckpt"), b"junk").unwrap();
        std::fs::write(tmp.path().join("g.g1.nodes.rewrite.nodes"), b"junk").unwrap();

        let report = fsck(&data, false).unwrap();
        assert_eq!(report.unrepaired(), 4, "{:?}", report.findings);
        assert!(report
            .findings
            .iter()
            .any(|f| f.problem.contains("stale rewrite temp")));
        assert!(report
            .findings
            .iter()
            .any(|f| f.problem.contains("orphaned generation-2 table")));
        assert!(report
            .findings
            .iter()
            .any(|f| f.problem.contains("orphaned generation-0 checkpoint")));

        let report = fsck(&data, true).unwrap();
        assert_eq!(report.unrepaired(), 0, "{:?}", report.findings);
        assert!(fsck(&data, false).unwrap().clean());
        assert!(!tmp.path().join("g.g2.nodes").exists());
        assert!(!data.join("g.ckpt").exists());
        // The live generation still recovers.
        let svc = CoreService::open_catalog(&data).unwrap();
        assert_eq!(svc.kmax("g").unwrap(), 3);
    }

    #[test]
    fn corrupt_checkpoint_is_reported_unrepaired() {
        let tmp = TempDir::new("fsck").unwrap();
        let data = seeded_dir(&tmp);
        // Flip one byte in the checkpoint body (past the magic).
        let path = data.join("g.ckpt");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        let mut f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.seek(SeekFrom::Start(mid as u64)).unwrap();
        f.write_all(&bytes[mid..=mid]).unwrap();
        drop(f);

        let report = fsck(&data, true).unwrap();
        assert!(report.unrepaired() >= 1, "{:?}", report.findings);
        assert!(report
            .findings
            .iter()
            .any(|f| f.problem.contains("checkpoint") && !f.repaired));
    }

    #[test]
    fn garbage_wal_magic_is_repaired_to_empty_journal() {
        let tmp = TempDir::new("fsck").unwrap();
        let data = seeded_dir(&tmp);
        std::fs::write(data.join("g.wal"), b"NOTAWAL!").unwrap();

        let report = fsck(&data, false).unwrap();
        assert_eq!(report.unrepaired(), 1);
        let report = fsck(&data, true).unwrap();
        assert_eq!(report.unrepaired(), 0, "{:?}", report.findings);
        assert!(fsck(&data, false).unwrap().clean());
        // Recovery falls back to the checkpoint alone.
        assert!(CoreService::open_catalog(&data).is_ok());
    }
}
