//! `kcore` — command-line front end for the suite.
//!
//! ```text
//! kcore build  <edges.txt> <graph-base>      ingest a text edge list to disk
//! kcore decompose <graph-base> [--algo star|plus|basic|emcore]
//!                 [--workers N] [--cache-mb M] [--out cores.txt]
//! kcore query  <graph-base> --k 8            print the k-core's nodes/components
//! kcore stats  <graph-base>                  core profile (onion levels, nucleus)
//! kcore serve  [--budget-mb M] [--workers N] [--policy lru|scanlifo]
//!              [--data-dir DIR] [--listen ADDR] [--max-conns N]
//!              [--qos-mb M] [--qos-queue N] [--group-commit-us U]
//!              [--compact-after E] [--scrub-interval S]
//!              [--repair-retries R] [--op-timeout-ms T]
//!              [name=graph-base ...]         serve many graphs on one budget
//! kcore fsck   <data-dir> [--repair]         check (and repair) a durable dir
//! kcore compact <data-dir> <name>            fold buffered edits into fresh tables
//! kcore recompress <data-dir> [--to v1|v2|v3]  migrate a catalog's tables
//! ```
//!
//! All runs print the I/O and memory accounting the paper reports.
//! `--workers N` (or the `SEMICORE_WORKERS` environment variable) shards the
//! decomposition's convergence scans across `N` threads; `--cache-mb M`
//! serves disk blocks through an `M`-MiB shared buffer pool (required for
//! the parallel scans to pay sequential-equivalent I/O).
//!
//! `kcore serve` starts a [`CoreService`]: every named graph is opened
//! against one process-wide pool of `--budget-mb` MiB, then commands are
//! read line by line from stdin (`open`, `core`, `kmax`, `insert`,
//! `delete`, `stats`, `weight`, `qos`, `graphs`, `save`, `compact`,
//! `verify`, `pool`, `evict`, `quit` — see `help`). With `--data-dir DIR`
//! the registry is durable: every maintenance op is journaled before it is
//! applied, and restarting with the same directory restores every graph —
//! maintained cores included — without re-decomposing (the directory's
//! catalog then also supplies the pool budget and policy, so those flags
//! are ignored on reopen). `--group-commit-us U` (durable mode only)
//! batches concurrent journal fsyncs into one barrier with a `U`-µs
//! gather window. `--compact-after E` (durable mode only) bounds every
//! graph's update buffer: once `E` buffered edit entries accumulate the
//! apply path folds tables + edits into a fresh table generation and
//! truncates buffer and journal (default one million entries).
//!
//! `kcore compact <data-dir> <name>` runs that same generational rewrite
//! offline, and `kcore recompress <data-dir> [--to v1|v2|v3]` migrates
//! every catalogued graph to the chosen encoding through it (default v2;
//! v3 is the vectorized stream-vbyte layout), reporting the charged-read
//! savings per graph.
//!
//! `--listen ADDR` additionally serves the same line protocol over TCP
//! (thread per connection, at most `--max-conns` of them) while stdin
//! keeps working as a local admin console. `--qos-mb M` caps admitted
//! working sets at `M` MiB across all clients: requests beyond the budget
//! queue weighted-fair (`weight <name> <w>` favours a tenant), and
//! requests that cannot queue are shed with `err overloaded`.
//!
//! The REPL never dies on a failed command: every error is reported as one
//! structured `err <kind>: <detail>` line (kinds: `io`, `corrupt`,
//! `quarantined`, `readonly`, `timeout`, `range`, `usage`, `limit`,
//! `overloaded`) and the session keeps reading, so a scripted driver can
//! match on the prefix and carry on.
//!
//! `kcore serve` also runs the **self-heal supervisor**: quarantined
//! graphs are repaired online (`--repair-retries R` attempts with
//! exponential backoff, then sticky quarantine), graphs degraded to
//! read-only by a full disk are probed and promoted back automatically,
//! and with `--scrub-interval S` each healthy graph's durable artefacts
//! are re-walked through the fsck invariants every `S` seconds at a
//! throttled read rate, feeding findings into the same quarantine →
//! repair pipeline. `--op-timeout-ms T` bounds each query's charged-read
//! phase; over-deadline ops return `err timeout:` without quarantining.
//! The `health`, `scrub` and `repair` REPL verbs drive the same machinery
//! manually.
//!
//! `kcore fsck` walks a durable data directory offline: catalog, base
//! tables (full adjacency walk), checkpoints and journals. `--repair`
//! truncates damaged journal tails back to the last good record; exit
//! status is nonzero while unrepaired problems remain.

use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use graphstore::{
    edgelist, DiskGraph, EvictionPolicy, GroupCommitOptions, IoCounter, QosConfig,
    DEFAULT_BLOCK_SIZE,
};
use kcore_suite::semicore::{self, analysis, DecomposeOptions, EmCoreOptions, ScanExecutor};
use kcore_suite::server::{dispatch, Server, ServerOptions};
use kcore_suite::CoreService;

fn usage() -> ! {
    eprintln!(
        "usage:\n  kcore build <edges.txt> <graph-base> [--compress[=v2|v3]]\n  kcore decompose <graph-base> [--algo star|plus|basic|emcore] [--workers N] [--cache-mb M] [--out cores.txt]\n  kcore query <graph-base> --k <K>\n  kcore stats <graph-base>\n  kcore serve [--budget-mb M] [--workers N] [--policy lru|scanlifo] [--data-dir DIR]\n              [--listen ADDR] [--max-conns N] [--qos-mb M] [--qos-queue N]\n              [--group-commit-us U] [--compact-after E] [--scrub-interval S]\n              [--repair-retries R] [--op-timeout-ms T] [name=graph-base ...]\n  kcore fsck <data-dir> [--repair]\n  kcore compact <data-dir> <name>\n  kcore recompress <data-dir> [--to v1|v2|v3]"
    );
    std::process::exit(2)
}

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Parse a `v1|v2|v3` format tag (as `--compress=` and `--to` take).
fn parse_format(tag: &str) -> graphstore::FormatVersion {
    match tag {
        "v1" => graphstore::FormatVersion::V1,
        "v2" => graphstore::FormatVersion::V2,
        "v3" => graphstore::FormatVersion::V3,
        other => {
            eprintln!("unknown format {other:?} (expected v1|v2|v3)");
            std::process::exit(2)
        }
    }
}

/// The compressed format `kcore build` was asked for: bare `--compress`
/// means v2 (the original compressed encoding), `--compress=vN` is
/// explicit. `None` = uncompressed v1.
fn compress_flag(args: &[String]) -> Option<graphstore::FormatVersion> {
    for a in args {
        if a == "--compress" {
            return Some(graphstore::FormatVersion::V2);
        }
        if let Some(tag) = a.strip_prefix("--compress=") {
            return Some(parse_format(tag));
        }
    }
    None
}

fn open(base: &Path) -> graphstore::Result<DiskGraph> {
    DiskGraph::open(base, IoCounter::new(DEFAULT_BLOCK_SIZE))
}

// Internal decompositions (query/stats) run uncached, where the sequential
// schedule is the right configuration regardless of SEMICORE_WORKERS — the
// parallel path wants a cache budget so shard handles share fetched blocks.
fn decompose(base: &Path, algo: &str) -> graphstore::Result<semicore::Decomposition> {
    decompose_with(base, algo, ScanExecutor::Sequential, 0)
}

fn decompose_with(
    base: &Path,
    algo: &str,
    exec: ScanExecutor,
    cache_bytes: u64,
) -> graphstore::Result<semicore::Decomposition> {
    let mut g = DiskGraph::open_with_cache(base, IoCounter::new(DEFAULT_BLOCK_SIZE), cache_bytes)?;
    let opts = DecomposeOptions::default();
    match algo {
        "star" => semicore::semicore_star_with(&mut g, &opts, exec),
        "plus" => semicore::semicore_plus_with(&mut g, &opts, exec),
        "basic" => semicore::semicore_with(&mut g, &opts, exec),
        "emcore" => {
            if exec != ScanExecutor::Sequential {
                eprintln!("note: --workers applies to the semi-external algorithms only; EMCore runs sequentially");
            }
            semicore::emcore(&mut g, &EmCoreOptions::default())
        }
        other => {
            eprintln!("unknown algorithm {other:?} (expected star|plus|basic|emcore)");
            std::process::exit(2)
        }
    }
}

fn main() -> graphstore::Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    match cmd.as_str() {
        "build" => {
            let (Some(input), Some(base)) = (args.get(1), args.get(2)) else {
                usage()
            };
            // `--compress` writes the delta-varint edge table (format v2):
            // same adjacency lists, typically 2–3× fewer edge-table bytes —
            // and proportionally fewer charged read I/Os on every scan.
            // `--compress=v3` picks the stream-vbyte group layout instead,
            // whose decode is vectorized (quad gathers, SSSE3 when
            // available).
            let version = match compress_flag(&args) {
                Some(v) => v,
                None => graphstore::FormatVersion::V1,
            };
            let t0 = std::time::Instant::now();
            let counter = IoCounter::new(DEFAULT_BLOCK_SIZE);
            let g = edgelist::edge_list_to_disk_with(
                Path::new(input),
                Path::new(base),
                counter,
                version,
            )?;
            let meta = g.meta();
            println!(
                "built {base}.nodes/.edges ({}): {} nodes, {} edges, edge table {} B ({:.2} B/neighbour) in {:.2} s",
                meta.version.tag(),
                g.num_nodes(),
                g.num_edges(),
                meta.edge_bytes,
                meta.edge_bytes as f64 / meta.degree_sum.max(1) as f64,
                t0.elapsed().as_secs_f64()
            );
        }
        "decompose" => {
            let Some(base) = args.get(1) else { usage() };
            let algo = arg_value(&args, "--algo").unwrap_or_else(|| "star".into());
            let exec = match arg_value(&args, "--workers").map(|w| w.parse::<usize>()) {
                Some(Ok(w)) if w >= 2 => ScanExecutor::parallel(w),
                Some(Ok(_)) => ScanExecutor::Sequential,
                Some(Err(_)) => usage(),
                None => ScanExecutor::from_env(),
            };
            let cache_bytes = match arg_value(&args, "--cache-mb").map(|m| m.parse::<u64>()) {
                Some(Ok(mb)) => mb << 20,
                Some(Err(_)) => usage(),
                None => 0,
            };
            let d = decompose_with(Path::new(base), &algo, exec, cache_bytes)?;
            let s = &d.stats;
            println!(
                "{}: kmax = {}, {} iterations, {} node computations",
                s.algorithm,
                d.kmax(),
                s.iterations,
                s.node_computations
            );
            println!(
                "time {:.3} s | memory {} B | read I/Os {} | write I/Os {}",
                s.wall_time.as_secs_f64(),
                s.peak_memory_bytes,
                s.io.read_ios,
                s.io.write_ios
            );
            if let Some(out) = arg_value(&args, "--out") {
                let mut text = String::with_capacity(d.core.len() * 8);
                for (v, c) in d.core.iter().enumerate() {
                    text.push_str(&format!("{v} {c}\n"));
                }
                std::fs::write(PathBuf::from(&out), text)?;
                println!("core numbers written to {out}");
            }
        }
        "query" => {
            let Some(base) = args.get(1) else { usage() };
            let k: u32 = arg_value(&args, "--k")
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage());
            let d = decompose(Path::new(base), "star")?;
            let mut g = open(Path::new(base))?;
            let comps = analysis::kcore_components(&mut g, &d.core, k)?;
            let total: usize = comps.iter().map(|c| c.len()).sum();
            println!(
                "{k}-core: {total} nodes in {} connected component(s)",
                comps.len()
            );
            for (i, c) in comps.iter().enumerate().take(5) {
                let preview: Vec<u32> = c.iter().copied().take(12).collect();
                println!("  component {i}: {} nodes, e.g. {preview:?}", c.len());
            }
        }
        "stats" => {
            let Some(base) = args.get(1) else { usage() };
            let d = decompose(Path::new(base), "star")?;
            print!("{}", analysis::CoreProfile::new(&d.core));
            let mut g = open(Path::new(base))?;
            let (nucleus, density) = analysis::densest_core(&mut g, &d.core)?;
            println!(
                "densest-core approximation: {} nodes at density {:.2}",
                nucleus.len(),
                density
            );
        }
        "serve" => serve(&args)?,
        "fsck" => fsck_cmd(&args)?,
        "compact" => compact_cmd(&args)?,
        "recompress" => recompress_cmd(&args)?,
        _ => usage(),
    }
    Ok(())
}

/// `kcore fsck <data-dir> [--repair]`: offline integrity check of a durable
/// directory. Prints one line per finding, then a summary; exits 1 while
/// unrepaired problems remain so scripts can gate on it.
fn fsck_cmd(args: &[String]) -> graphstore::Result<()> {
    let Some(dir) = args.get(1).filter(|a| !a.starts_with("--")) else {
        usage()
    };
    let repair = args.iter().any(|a| a == "--repair");
    let report = kcore_suite::fsck(Path::new(dir), repair)?;
    for f in &report.findings {
        let scope = f.graph.as_deref().unwrap_or("<catalog>");
        let status = if f.repaired { " [repaired]" } else { "" };
        println!("{scope}: {}{status}", f.problem);
    }
    let unrepaired = report.unrepaired();
    println!(
        "fsck: {} graph(s) checked, {} problem(s), {} repaired",
        report.graphs_checked,
        report.findings.len(),
        report.findings.len() - unrepaired
    );
    if unrepaired > 0 {
        std::process::exit(1);
    }
    Ok(())
}

/// `kcore compact <data-dir> <name>`: open the durable catalog, fold the
/// named graph's buffered edits into a fresh generation of table files
/// (the same commit protocol the serving path uses at its threshold),
/// and truncate its update buffer and journal.
fn compact_cmd(args: &[String]) -> graphstore::Result<()> {
    let (Some(dir), Some(name)) = (args.get(1), args.get(2)) else {
        usage()
    };
    let svc = CoreService::open_catalog(Path::new(dir))?;
    let generation = svc.compact(name)?;
    println!("compacted {name}: now generation {generation} (update buffer and journal empty)");
    Ok(())
}

/// `kcore recompress <data-dir> [--to v1|v2|v3]`: migrate every
/// catalogued graph to the requested edge encoding in place (default v2,
/// the delta-varint layout), through the same generational rewrite
/// `compact` uses — the catalog commit switches tables, checkpoint and
/// format atomically per graph. Reports the edge table shrink and the
/// equivalent full-scan charged-read savings.
fn recompress_cmd(args: &[String]) -> graphstore::Result<()> {
    let Some(dir) = args.get(1).filter(|a| !a.starts_with("--")) else {
        usage()
    };
    let to = match arg_value(args, "--to") {
        Some(tag) => parse_format(&tag),
        None => graphstore::FormatVersion::V2,
    };
    let svc = CoreService::open_catalog(Path::new(dir))?;
    let block = svc.pool().block_size() as u64;
    let table = |name: &str| {
        svc.with_graph(name, |idx| {
            let meta = idx.graph_mut().disk().meta();
            Ok((meta.edge_bytes, meta.version.tag()))
        })
    };
    let names = svc.graph_names();
    for name in &names {
        let (old_bytes, old_tag) = table(name)?;
        let generation = svc.recompress_to(name, to)?;
        let (new_bytes, new_tag) = table(name)?;
        println!(
            "{name}: {old_tag} -> {new_tag} (generation {generation}); edge table {old_bytes} -> {new_bytes} B, full-scan charged reads {} -> {}",
            old_bytes.div_ceil(block),
            new_bytes.div_ceil(block),
        );
    }
    println!("recompressed {} graph(s) in {dir}", names.len());
    Ok(())
}

/// The value-taking flags of `kcore serve` — the single list both the
/// flag parsers and the positional-argument scan below work from.
const SERVE_FLAGS: [&str; 13] = [
    "--budget-mb",
    "--workers",
    "--policy",
    "--data-dir",
    "--listen",
    "--max-conns",
    "--qos-mb",
    "--qos-queue",
    "--group-commit-us",
    "--compact-after",
    "--scrub-interval",
    "--repair-retries",
    "--op-timeout-ms",
];

/// `kcore serve`: a [`CoreService`] REPL over stdin, optionally also
/// served over TCP with `--listen`. Non-interactive use pipes a command
/// script in; every response is a single line, errors are reported and do
/// not end the session.
fn serve(args: &[String]) -> graphstore::Result<()> {
    // A trailing flag with its value forgotten would otherwise be
    // indistinguishable from an absent flag and silently get the default.
    if args
        .last()
        .is_some_and(|a| SERVE_FLAGS.contains(&a.as_str()))
    {
        usage()
    }
    let budget_mb: u64 = match arg_value(args, SERVE_FLAGS[0]).map(|v| v.parse()) {
        Some(Ok(mb)) => mb,
        Some(Err(_)) => usage(),
        None => 64,
    };
    let exec = match arg_value(args, SERVE_FLAGS[1]).map(|w| w.parse::<usize>()) {
        Some(Ok(w)) if w >= 2 => ScanExecutor::parallel(w),
        Some(Ok(_)) => ScanExecutor::Sequential,
        Some(Err(_)) => usage(),
        None => ScanExecutor::from_env(),
    };
    let policy = match arg_value(args, SERVE_FLAGS[2]).as_deref() {
        Some("lru") => EvictionPolicy::Lru,
        Some("scanlifo") | None => EvictionPolicy::ScanLifo,
        Some(_) => usage(),
    };
    // `--group-commit-us U` batches concurrent journal fsyncs; it only
    // means anything when there is a journal, i.e. with `--data-dir`.
    let group_commit = match arg_value(args, SERVE_FLAGS[8]).map(|v| v.parse::<u64>()) {
        Some(Ok(us)) => Some(GroupCommitOptions {
            max_delay: Duration::from_micros(us),
        }),
        Some(Err(_)) => usage(),
        None => None,
    };
    if group_commit.is_some() && arg_value(args, SERVE_FLAGS[3]).is_none() {
        eprintln!("--group-commit-us requires --data-dir (there is no journal without one)");
        usage()
    }
    // `--compact-after E` bounds each durable graph's update buffer at
    // `E` edit entries before the apply path compacts it.
    let compact_after = match arg_value(args, SERVE_FLAGS[9]).map(|v| v.parse::<usize>()) {
        Some(Ok(entries)) => Some(entries),
        Some(Err(_)) => usage(),
        None => None,
    };
    if compact_after.is_some() && arg_value(args, SERVE_FLAGS[3]).is_none() {
        eprintln!("--compact-after requires --data-dir (only durable graphs compact)");
        usage()
    }
    let durable_opts = kcore_suite::DurableOptions {
        group_commit,
        compact_after_edits: compact_after.unwrap_or(kcore_suite::DEFAULT_COMPACT_AFTER_EDITS),
        ..kcore_suite::DurableOptions::default()
    };
    let svc = match arg_value(args, SERVE_FLAGS[3]) {
        Some(dir) => {
            let dir = Path::new(&dir);
            if graphstore::Catalog::exists_in(dir) {
                let svc = CoreService::open_catalog_with(dir, exec, durable_opts)?;
                println!(
                    "reopened catalog {} ({} MiB pool from manifest): restored [{}]",
                    dir.display(),
                    svc.pool().budget_bytes() >> 20,
                    svc.graph_names().join(", ")
                );
                svc
            } else {
                let svc = CoreService::create_durable_with(
                    dir,
                    DEFAULT_BLOCK_SIZE,
                    budget_mb << 20,
                    policy,
                    exec,
                    durable_opts,
                )?;
                println!(
                    "serving durably from {} on a {budget_mb} MiB shared pool ({policy:?}, {exec:?})",
                    dir.display()
                );
                svc
            }
        }
        None => {
            let svc = CoreService::with_config(DEFAULT_BLOCK_SIZE, budget_mb << 20, policy, exec)?;
            println!(
                "serving on a {budget_mb} MiB shared pool ({policy:?}, {exec:?}); 'help' lists commands"
            );
            svc
        }
    };
    let svc = Arc::new(svc);

    // `--qos-mb M` turns on per-tenant admission control over the charge
    // budget; `--qos-queue N` bounds how many requests may wait (default
    // 16) and is meaningless without a budget to wait for.
    let qos_mb = match arg_value(args, SERVE_FLAGS[6]).map(|v| v.parse::<u64>()) {
        Some(Ok(mb)) => Some(mb),
        Some(Err(_)) => usage(),
        None => None,
    };
    let qos_queue = match arg_value(args, SERVE_FLAGS[7]).map(|v| v.parse::<usize>()) {
        Some(Ok(n)) => Some(n),
        Some(Err(_)) => usage(),
        None => None,
    };
    match (qos_mb, qos_queue) {
        (Some(mb), queue) => {
            svc.set_qos(Some(QosConfig {
                capacity_bytes: mb << 20,
                max_waiters: queue.unwrap_or(16),
            }));
            println!(
                "qos: {} MiB admission budget, {} queued requests max",
                mb,
                queue.unwrap_or(16)
            );
        }
        (None, Some(_)) => {
            eprintln!("--qos-queue requires --qos-mb (there is no queue without a budget)");
            usage()
        }
        (None, None) => {}
    }

    // `--op-timeout-ms T` bounds every query's charged-read phase: an op
    // over its deadline comes back as one `err timeout:` line (and never
    // quarantines — a slow graph is not a broken graph).
    match arg_value(args, SERVE_FLAGS[12]).map(|v| v.parse::<u64>()) {
        Some(Ok(ms)) => {
            svc.set_op_timeout(Some(Duration::from_millis(ms)));
            println!("per-op deadline: {ms} ms");
        }
        Some(Err(_)) => usage(),
        None => {}
    }

    // Self-healing: `--scrub-interval S` walks each healthy graph's
    // durable artefacts through the fsck invariants every `S` seconds;
    // `--repair-retries R` bounds automatic online repairs per quarantine
    // episode. The supervisor always runs under `serve` — quarantined
    // graphs get repaired and read-only graphs re-probed even with the
    // scrubber off.
    let scrub_interval = match arg_value(args, SERVE_FLAGS[10]).map(|v| v.parse::<u64>()) {
        Some(Ok(secs)) => Some(Duration::from_secs(secs)),
        Some(Err(_)) => usage(),
        None => None,
    };
    if scrub_interval.is_some() && arg_value(args, SERVE_FLAGS[3]).is_none() {
        eprintln!("--scrub-interval requires --data-dir (the scrubber walks durable artefacts)");
        usage()
    }
    let repair_retries = match arg_value(args, SERVE_FLAGS[11]).map(|v| v.parse::<u32>()) {
        Some(Ok(n)) => Some(n),
        Some(Err(_)) => usage(),
        None => None,
    };
    let heal_opts = kcore_suite::SelfHealOptions {
        scrub_interval,
        repair_retries: repair_retries
            .unwrap_or(kcore_suite::SelfHealOptions::default().repair_retries),
        ..kcore_suite::SelfHealOptions::default()
    };
    let _self_heal = kcore_suite::start_self_heal(&svc, heal_opts);

    // Positional `name=base` specs pre-open graphs before the REPL starts.
    let mut i = 1usize;
    while i < args.len() {
        if SERVE_FLAGS.contains(&args[i].as_str()) {
            i += 2; // skip the flag and its value
        } else {
            let Some((name, base)) = args[i].split_once('=') else {
                usage()
            };
            let resp = dispatch(&svc, &format!("open {name} {base}"));
            for l in &resp.lines {
                println!("{l}");
            }
            i += 1;
        }
    }

    // `--listen ADDR` serves the same protocol over TCP alongside stdin.
    let mut server = match arg_value(args, SERVE_FLAGS[4]) {
        Some(addr) => {
            let max_connections = match arg_value(args, SERVE_FLAGS[5]).map(|v| v.parse()) {
                Some(Ok(n)) => n,
                Some(Err(_)) => usage(),
                None => ServerOptions::default().max_connections,
            };
            let opts = ServerOptions {
                max_connections,
                ..ServerOptions::default()
            };
            let server = Server::start(Arc::clone(&svc), &addr, opts)?;
            println!(
                "listening on {} ({} connections max)",
                server.local_addr(),
                max_connections
            );
            Some(server)
        }
        None => None,
    };

    let stdin = std::io::stdin();
    let mut quit = false;
    for line in stdin.lock().lines() {
        let line = line?;
        let resp = dispatch(&svc, &line);
        for l in &resp.lines {
            println!("{l}");
        }
        if resp.quit {
            quit = true;
            break;
        }
    }

    if let Some(server) = server.as_mut() {
        if quit {
            server.shutdown();
        } else {
            // stdin closed (e.g. the server was started with </dev/null):
            // keep serving TCP until the process is killed.
            loop {
                std::thread::sleep(Duration::from_secs(3600));
            }
        }
    }
    Ok(())
}
