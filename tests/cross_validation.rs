//! Property tests: every decomposition algorithm agrees with the IMCore
//! oracle on arbitrary graphs, over both in-memory and on-disk backends.

use graphstore::{mem_to_disk, IoCounter, MemGraph, TempDir, DEFAULT_BLOCK_SIZE};
use proptest::prelude::*;
use semicore::{verify_exact, DecomposeOptions, EmCoreOptions};
use testutil::{arb_graph, oracle_cores};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_decomposition_algorithms_agree(g in arb_graph()) {
        let mut g = g;
        let oracle = oracle_cores(&g);
        let opts = DecomposeOptions::default();

        let a = semicore::semicore(&mut g, &opts).unwrap();
        prop_assert_eq!(&a.core, &oracle);

        let b = semicore::semicore_plus(&mut g, &opts).unwrap();
        prop_assert_eq!(&b.core, &oracle);

        let c = semicore::semicore_star(&mut g, &opts).unwrap();
        prop_assert_eq!(&c.core, &oracle);

        let e = semicore::emcore(&mut g, &EmCoreOptions {
            partition_bytes: 4096,
            memory_budget: 8192,
            ..Default::default()
        }).unwrap();
        prop_assert_eq!(&e.core, &oracle);

        // And the oracle itself satisfies the independent certificate.
        prop_assert!(verify_exact(&mut g, &oracle).unwrap());
    }

    #[test]
    fn node_computation_hierarchy_holds(g in arb_graph()) {
        // The paper's optimisation ladder: SemiCore* <= SemiCore+ <= SemiCore
        // in node computations.
        let mut g = g;
        let opts = DecomposeOptions::default();
        let a = semicore::semicore(&mut g, &opts).unwrap();
        let b = semicore::semicore_plus(&mut g, &opts).unwrap();
        let c = semicore::semicore_star(&mut g, &opts).unwrap();
        prop_assert!(b.stats.node_computations <= a.stats.node_computations);
        prop_assert!(c.stats.node_computations <= b.stats.node_computations);
    }

    #[test]
    fn disk_backend_matches_memory_backend(g in arb_graph()) {
        let oracle = oracle_cores(&g);
        let dir = TempDir::new("xval").unwrap();
        let mut disk = mem_to_disk(
            &dir.path().join("g"),
            &g,
            IoCounter::new(DEFAULT_BLOCK_SIZE),
        ).unwrap();
        let opts = DecomposeOptions::default();
        let d = semicore::semicore_star(&mut disk, &opts).unwrap();
        prop_assert_eq!(&d.core, &oracle);
        // Semi-external decomposition never writes.
        prop_assert_eq!(d.stats.io.write_ios, 0);
    }

    #[test]
    fn changed_node_series_sums_are_consistent(g in arb_graph()) {
        // Fig. 3 instrumentation: total changes must be identical across
        // variants (they converge through the same monotone updates), and
        // each per-iteration series must be recorded when requested.
        let mut g = g;
        let opts = DecomposeOptions { track_changed_per_iteration: true };
        let a = semicore::semicore(&mut g, &opts).unwrap();
        let c = semicore::semicore_star(&mut g, &opts).unwrap();
        let sum_a: u64 = a.stats.changed_per_iteration.as_ref().unwrap().iter().sum();
        let sum_c: u64 = c.stats.changed_per_iteration.as_ref().unwrap().iter().sum();
        prop_assert_eq!(sum_a, sum_c);
    }
}

#[test]
fn kmax_of_known_structures() {
    // Deterministic sanity points used by the figures.
    let clique6: Vec<(u32, u32)> = (0..6u32)
        .flat_map(|u| ((u + 1)..6).map(move |v| (u, v)))
        .collect();
    let mut g = MemGraph::from_edges(clique6, 6);
    let d = semicore::semicore_star(&mut g, &DecomposeOptions::default()).unwrap();
    assert_eq!(d.kmax(), 5);

    // Two cliques joined by a bridge: cores stay clique-local.
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for u in 0..5u32 {
        for v in (u + 1)..5 {
            edges.push((u, v));
            edges.push((u + 5, v + 5));
        }
    }
    edges.push((0, 5));
    let mut g = MemGraph::from_edges(edges, 10);
    let d = semicore::semicore_star(&mut g, &DecomposeOptions::default()).unwrap();
    assert!(d.core.iter().all(|&c| c == 4));
}
