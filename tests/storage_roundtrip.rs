//! Property tests for the storage substrate: round trips, update-buffer
//! equivalence, I/O model invariants, and failure injection on corrupted
//! files (errors, never panics).

use graphstore::{
    disk_to_mem, mem_to_disk, snapshot_mem, BufferedGraph, DiskGraph, DynGraph,
    ExternalGraphBuilder, GraphPaths, IoCounter, MemGraph, TempDir,
};
use proptest::prelude::*;

fn arb_edges() -> impl Strategy<Value = (u32, Vec<(u32, u32)>)> {
    (2u32..150, 0usize..500).prop_flat_map(|(n, m)| {
        proptest::collection::vec((0..n, 0..n), m).prop_map(move |e| (n, e))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn disk_round_trip_preserves_graph((n, edges) in arb_edges()) {
        let g = MemGraph::from_edges(edges, n);
        let dir = TempDir::new("rt").unwrap();
        let mut disk = mem_to_disk(&dir.path().join("g"), &g, IoCounter::new(512)).unwrap();
        let back = disk_to_mem(&mut disk).unwrap();
        prop_assert_eq!(back, g);
    }

    #[test]
    fn external_builder_equals_in_memory_normalisation((n, edges) in arb_edges()) {
        let g = MemGraph::from_edges(edges.clone(), n);
        let dir = TempDir::new("rt").unwrap();
        let mut b = ExternalGraphBuilder::new(32).unwrap();
        for (u, v) in edges {
            b.add_edge(u, v).unwrap();
        }
        let mut disk = b.finish(&dir.path().join("g"), n, IoCounter::new(512)).unwrap();
        let back = disk_to_mem(&mut disk).unwrap();
        prop_assert_eq!(back, g);
    }

    #[test]
    fn buffered_updates_equal_dyn_mirror((n, edges) in arb_edges(), toggles in proptest::collection::vec((0u32..150, 0u32..150), 0..60)) {
        let g = MemGraph::from_edges(edges, n);
        let dir = TempDir::new("rt").unwrap();
        let disk = mem_to_disk(&dir.path().join("g"), &g, IoCounter::new(512)).unwrap();
        let mut buffered = BufferedGraph::new(disk, 8); // frequent flushes
        let mut mirror = DynGraph::from_mem(&g);
        for (a, b) in toggles {
            let (a, b) = (a % n, b % n);
            if a == b {
                continue;
            }
            if mirror.has_edge(a, b) {
                mirror.delete_edge(a, b).unwrap();
                buffered.delete_edge(a, b).unwrap();
            } else {
                mirror.insert_edge(a, b).unwrap();
                buffered.insert_edge(a, b).unwrap();
            }
        }
        let snap = snapshot_mem(&mut buffered).unwrap();
        prop_assert_eq!(snap, mirror.to_mem());
    }

    #[test]
    fn sequential_scan_io_close_to_optimal((n, edges) in arb_edges()) {
        let g = MemGraph::from_edges(edges, n);
        let dir = TempDir::new("rt").unwrap();
        let block = 512usize;
        let counter = IoCounter::new(block);
        let mut disk = mem_to_disk(&dir.path().join("g"), &g, counter.clone()).unwrap();
        counter.reset();
        let mut buf = Vec::new();
        for v in 0..g.num_nodes() {
            graphstore::AdjacencyRead::adjacency(&mut disk, v, &mut buf).unwrap();
        }
        let total_bytes = disk.meta().node_file_len() + disk.meta().edge_file_len();
        let optimal = total_bytes / block as u64 + 2;
        prop_assert!(
            counter.snapshot().read_ios <= optimal + 2,
            "read_ios {} vs optimal {}",
            counter.snapshot().read_ios,
            optimal
        );
    }

    #[test]
    fn truncated_files_error_not_panic((n, edges) in arb_edges(), cut in 1u64..64) {
        let g = MemGraph::from_edges(edges, n);
        prop_assume!(g.num_edges() > 0);
        let dir = TempDir::new("rt").unwrap();
        let base = dir.path().join("g");
        mem_to_disk(&base, &g, IoCounter::new(512)).unwrap();
        let paths = GraphPaths::from_base(&base);
        // Truncate the edge table by `cut` bytes.
        let len = std::fs::metadata(&paths.edges).unwrap().len();
        prop_assume!(len > cut);
        let f = std::fs::OpenOptions::new().write(true).open(&paths.edges).unwrap();
        f.set_len(len - cut).unwrap();
        drop(f);
        match DiskGraph::open(&base, IoCounter::new(512)) {
            Err(e) => prop_assert!(e.is_corrupt()),
            Ok(mut d) => {
                // If the header still matches (cut inside trailing block
                // slack is impossible here since lengths are validated),
                // any adjacency access must error.
                let mut buf = Vec::new();
                let mut saw_err = false;
                for v in 0..d.num_nodes() {
                    if d.adjacency(v, &mut buf).is_err() {
                        saw_err = true;
                        break;
                    }
                }
                prop_assert!(saw_err);
            }
        }
    }

    #[test]
    fn garbage_node_table_rejected(junk in proptest::collection::vec(any::<u8>(), 0..256)) {
        let dir = TempDir::new("rt").unwrap();
        let base = dir.path().join("g");
        let paths = GraphPaths::from_base(&base);
        std::fs::write(&paths.nodes, &junk).unwrap();
        std::fs::write(&paths.edges, b"KCOREDG1").unwrap();
        // Whatever the junk, open must return an error (magic/length checks).
        prop_assert!(DiskGraph::open(&base, IoCounter::new(512)).is_err());
    }
}
