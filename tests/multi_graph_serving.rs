//! Differential tests for [`CoreService`]: serving N graphs concurrently
//! against one shared budget must be *observably identical*, per graph, to
//! serving each graph alone.
//!
//! The contract under test (see `graphstore::pool` and
//! `kcore_suite::CoreService`):
//!
//! * **Cores are bit-identical** solo vs shared, at any worker count and
//!   under either eviction policy — the pool serves bytes, it never
//!   touches results.
//! * **Charged `read_ios` is bit-identical** solo vs shared: each graph's
//!   charge comes from its private deterministic charge cache (its own
//!   model budget `M`), never from shared-pool residency. Only
//!   `physical_reads` may move with contention.
//! * The shared pool **never exceeds its global byte budget**, no matter
//!   how many graphs hammer it from how many threads.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};

use graphstore::{mem_to_disk, EvictionPolicy, IoCounter, IoSnapshot, TempDir, DEFAULT_BLOCK_SIZE};
use kcore_suite::CoreService;
use semicore::ScanExecutor;
use testutil::{fixtures, worker_counts, working_set_budget, Lcg};

/// A deterministic per-graph maintenance script: toggle a seeded stream of
/// edges through the service (insert when absent, delete when present).
fn run_updates(svc: &CoreService, name: &str, seed: u64, steps: u32) {
    let mut rng = Lcg::new(seed);
    let n = svc.with_graph(name, |idx| Ok(idx.num_nodes())).unwrap();
    for _ in 0..steps {
        let a = rng.below(n);
        let b = rng.below(n);
        if a == b {
            continue;
        }
        svc.with_graph(name, |idx| {
            if idx.has_edge(a, b)? {
                idx.delete_edge(a, b)?;
            } else {
                idx.insert_edge(a, b)?;
            }
            Ok(())
        })
        .unwrap();
    }
}

/// What one graph's full serving session (decompose + maintenance stream)
/// observably produced.
#[derive(Debug, PartialEq, Eq)]
struct Observation {
    cores: Vec<u32>,
    charged_reads: u64,
    kmax: u32,
}

fn observe(svc: &CoreService, name: &str, seed: u64, steps: u32) -> Observation {
    run_updates(svc, name, seed, steps);
    let io: IoSnapshot = svc.io(name).unwrap();
    Observation {
        cores: svc.cores(name).unwrap(),
        charged_reads: io.read_ios,
        kmax: svc.kmax(name).unwrap(),
    }
}

/// Write the fixture trio to disk once, returning `(name, base)` pairs.
fn fixture_bases(dir: &TempDir) -> Vec<(String, PathBuf)> {
    fixtures()
        .into_iter()
        .map(|(name, g)| {
            let base = dir.path().join(name);
            mem_to_disk(&base, &g, IoCounter::new(DEFAULT_BLOCK_SIZE)).unwrap();
            (name.to_string(), base)
        })
        .collect()
}

/// A pool budget tight enough that three graphs contend hard for frames:
/// 8 frames against a fixture trio whose combined working set spans dozens
/// of blocks, so eviction is constant — exactly the regime where physical
/// reads diverge and charged reads must not.
const TIGHT_POOL_BUDGET: u64 = 8 * DEFAULT_BLOCK_SIZE as u64;

fn service(policy: EvictionPolicy, exec: ScanExecutor, budget: u64) -> CoreService {
    CoreService::with_config(DEFAULT_BLOCK_SIZE, budget, policy, exec).unwrap()
}

#[test]
fn n_graphs_shared_equals_n_solo_runs_across_policies_and_workers() {
    let dir = TempDir::new("svc-diff").unwrap();
    let bases = fixture_bases(&dir);
    let steps = 30u32;

    for policy in [EvictionPolicy::Lru, EvictionPolicy::ScanLifo] {
        for workers in worker_counts() {
            let exec = ScanExecutor::parallel(workers);

            // Solo baseline: each graph gets its own service (same tight
            // global budget, of which it is the only tenant).
            let mut solo: Vec<Observation> = Vec::new();
            for (i, (name, base)) in bases.iter().enumerate() {
                let svc = service(policy, exec, TIGHT_POOL_BUDGET);
                svc.open(name, base).unwrap();
                solo.push(observe(&svc, name, 0xA11CE + i as u64, steps));
            }

            // Shared run: one service, every graph served concurrently
            // from its own thread.
            let svc = service(policy, exec, TIGHT_POOL_BUDGET);
            let shared: Vec<Observation> = std::thread::scope(|s| {
                let handles: Vec<_> = bases
                    .iter()
                    .enumerate()
                    .map(|(i, (name, base))| {
                        let svc = &svc;
                        s.spawn(move || {
                            svc.open(name, base).unwrap();
                            observe(svc, name, 0xA11CE + i as u64, steps)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });

            for (i, (name, _)) in bases.iter().enumerate() {
                assert_eq!(
                    solo[i].cores, shared[i].cores,
                    "{name}/{policy:?}/w{workers}: cores solo vs shared"
                );
                assert_eq!(
                    solo[i].charged_reads, shared[i].charged_reads,
                    "{name}/{policy:?}/w{workers}: charged read_ios solo vs shared"
                );
                assert_eq!(solo[i].kmax, shared[i].kmax);
                assert!(
                    solo[i].charged_reads > 0,
                    "{name}: a disk-served session must charge I/O"
                );
            }
            assert!(
                svc.pool().resident_bytes() <= svc.pool().budget_bytes(),
                "{policy:?}/w{workers}: pool over budget after the shared run"
            );
        }
    }
}

#[test]
fn shared_serving_matches_the_oracle_per_graph() {
    // The cores a served graph reports are not just solo-consistent but
    // *correct*: after every graph's maintenance stream, recomputing from
    // the merged on-disk + buffered state matches the oracle.
    let dir = TempDir::new("svc-oracle").unwrap();
    let bases = fixture_bases(&dir);
    let svc = service(
        EvictionPolicy::ScanLifo,
        ScanExecutor::Sequential,
        TIGHT_POOL_BUDGET,
    );
    for (i, (name, base)) in bases.iter().enumerate() {
        svc.open(name, base).unwrap();
        run_updates(&svc, name, 0xBEEF + i as u64, 20);
    }
    for (name, _) in &bases {
        assert!(
            svc.verify(name).unwrap(),
            "{name}: Theorem 4.1 certificate after shared maintenance"
        );
    }
}

#[test]
fn pool_budget_holds_under_concurrent_load_with_monitor() {
    // Hammer three graphs from three threads while a monitor thread
    // samples pool occupancy: the budget must hold at every sample, not
    // just at quiescence.
    let dir = TempDir::new("svc-budget").unwrap();
    let bases = fixture_bases(&dir);
    let svc = service(
        EvictionPolicy::ScanLifo,
        ScanExecutor::Sequential,
        TIGHT_POOL_BUDGET,
    );
    for (name, base) in &bases {
        svc.open(name, base).unwrap();
    }

    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        let monitor = {
            let svc = &svc;
            let done = &done;
            s.spawn(move || {
                let mut samples = 0u64;
                while !done.load(Ordering::Relaxed) {
                    assert!(
                        svc.pool().resident_bytes() <= svc.pool().budget_bytes(),
                        "pool over budget mid-load"
                    );
                    samples += 1;
                    std::thread::yield_now();
                }
                samples
            })
        };
        let workers: Vec<_> = bases
            .iter()
            .enumerate()
            .map(|(i, (name, _))| {
                let svc = &svc;
                s.spawn(move || run_updates(svc, name, 0xF00D + i as u64, 60))
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        done.store(true, Ordering::Relaxed);
        assert!(monitor.join().unwrap() > 0, "monitor never sampled");
    });

    // Contention was real: the pool evicted under the tight budget.
    assert!(
        svc.pool().stats().evictions > 0,
        "load never thrashed the pool"
    );
}

#[test]
fn eviction_frees_capacity_for_the_survivors() {
    let dir = TempDir::new("svc-evict").unwrap();
    let bases = fixture_bases(&dir);
    let svc = service(
        EvictionPolicy::ScanLifo,
        ScanExecutor::Sequential,
        TIGHT_POOL_BUDGET,
    );
    for (name, base) in &bases {
        svc.open(name, base).unwrap();
    }
    assert_eq!(svc.pool().registered_graphs(), 3);
    let victim = &bases[0].0;
    svc.evict(victim).unwrap();
    assert_eq!(svc.pool().registered_graphs(), 2);
    // No frame of the evicted graph survives; the others still serve.
    run_updates(&svc, &bases[1].0, 7, 10);
    assert!(svc.verify(&bases[1].0).unwrap());
    assert!(svc.io(victim).is_err());
}

#[test]
fn explicit_charge_budget_is_the_model_m_knob() {
    // A smaller per-graph charge budget charges *more* read I/Os for the
    // same session (less model memory absorbs fewer re-reads), without any
    // other graph or the pool size being involved.
    let dir = TempDir::new("svc-charge").unwrap();
    let (name, g) = &fixtures()[0];
    let base = dir.path().join(name);
    mem_to_disk(&base, g, IoCounter::new(DEFAULT_BLOCK_SIZE)).unwrap();

    let mut charged = Vec::new();
    for budget in [working_set_budget(&base), 4 * DEFAULT_BLOCK_SIZE as u64] {
        let svc = service(
            EvictionPolicy::ScanLifo,
            ScanExecutor::Sequential,
            TIGHT_POOL_BUDGET,
        );
        svc.open_with_charge(name, &base, budget).unwrap();
        charged.push(observe(&svc, name, 0xCAFE, 10).charged_reads);
    }
    assert!(
        charged[1] > charged[0],
        "4-block charge budget ({}) must charge more than the working set ({})",
        charged[1],
        charged[0]
    );
}
