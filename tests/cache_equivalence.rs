//! Property tests for the memory-budgeted block cache: a cached
//! [`DiskGraph`] must be observably identical to an uncached one (bytes and
//! errors), never charge more I/O, and deliver the paper-style memory
//! scalability the cache exists for (fewer physical reads as `M` grows).

use graphstore::{
    mem_to_disk, AdjacencyRead, BufferedGraph, DiskGraph, DynGraph, EvictionPolicy, IoCounter,
    MemGraph, TempDir, DEFAULT_BLOCK_SIZE,
};
use proptest::prelude::*;
use semicore::DecomposeOptions;

/// An arbitrary small graph plus a random access pattern over it.
fn arb_graph_and_accesses() -> impl Strategy<Value = (u32, Vec<(u32, u32)>, Vec<u32>)> {
    (2u32..120, 0usize..400, 1usize..300).prop_flat_map(|(n, m, a)| {
        let edges = proptest::collection::vec((0..n, 0..n), m);
        let accesses = proptest::collection::vec(0..n, a);
        (edges, accesses).prop_map(move |(e, acc)| (n, e, acc))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn cached_graph_is_byte_identical_to_uncached(
        (n, edges, accesses) in arb_graph_and_accesses(),
        budget_blocks in 0u64..12,
    ) {
        let g = MemGraph::from_edges(edges, n);
        let dir = TempDir::new("cacheq").unwrap();
        let base = dir.path().join("g");
        // A small block size so even tiny graphs span many blocks.
        let block = 256usize;
        mem_to_disk(&base, &g, IoCounter::new(block)).unwrap();

        let mut plain = DiskGraph::open(&base, IoCounter::new(block)).unwrap();
        let mut cached = DiskGraph::open_with_cache(
            &base,
            IoCounter::new(block),
            budget_blocks * block as u64,
        ).unwrap();

        prop_assert_eq!(plain.read_degrees().unwrap(), cached.read_degrees().unwrap());
        let mut a = Vec::new();
        let mut b = Vec::new();
        for &v in &accesses {
            plain.adjacency(v, &mut a).unwrap();
            cached.adjacency(v, &mut b).unwrap();
            prop_assert_eq!(&a, &b, "adjacency({}) diverged", v);
            // The borrowed visit agrees with the copying path on both.
            let owned = cached.with_adjacency(v, |nbrs| nbrs.to_vec()).unwrap();
            prop_assert_eq!(&owned, &b, "with_adjacency({}) diverged", v);
        }
    }

    #[test]
    fn cache_never_charges_more_than_no_cache(
        (n, edges, accesses) in arb_graph_and_accesses(),
        budget_blocks in 1u64..16,
    ) {
        let g = MemGraph::from_edges(edges, n);
        let dir = TempDir::new("cacheq").unwrap();
        let base = dir.path().join("g");
        let block = 256usize;
        mem_to_disk(&base, &g, IoCounter::new(block)).unwrap();

        let run = |budget: u64, policy: EvictionPolicy| {
            let mut disk = DiskGraph::open_with_cache_policy(
                &base,
                IoCounter::new(block),
                budget,
                policy,
            ).unwrap();
            let mut buf = Vec::new();
            disk.read_degrees().unwrap();
            for &v in &accesses {
                disk.adjacency(v, &mut buf).unwrap();
            }
            disk.io().read_ios
        };

        // The uncached-domination guarantee belongs to the pinned ScanLifo
        // policy (the DiskGraph default); pure LRU trades the pins away for
        // its warm-start guarantee.
        let uncached = run(0, EvictionPolicy::ScanLifo);
        let cached = run(budget_blocks * block as u64, EvictionPolicy::ScanLifo);
        prop_assert!(
            cached <= uncached,
            "budget of {} blocks charged {} reads vs {} uncached",
            budget_blocks, cached, uncached
        );
    }

    // The anomaly-freedom guarantee is specific to the LRU stack policy;
    // the scan-resistant default trades it for cross-iteration retention
    // (see cache.rs module docs) and is covered by the cyclic-replay test
    // below instead.
    #[test]
    fn lru_warm_cache_never_charges_more_than_cold(
        (n, edges, accesses) in arb_graph_and_accesses(),
        budget_blocks in 2u64..16,
    ) {
        let g = MemGraph::from_edges(edges, n);
        let dir = TempDir::new("cacheq").unwrap();
        let base = dir.path().join("g");
        let block = 256usize;
        mem_to_disk(&base, &g, IoCounter::new(block)).unwrap();

        let mut disk = DiskGraph::open_with_cache_policy(
            &base,
            IoCounter::new(block),
            budget_blocks * block as u64,
            EvictionPolicy::Lru,
        ).unwrap();
        // Drop the header block the open pre-loaded: the warm-vs-cold
        // inclusion argument needs the cold run to start empty.
        disk.invalidate_buffers();
        let mut buf = Vec::new();
        let cold_start = disk.io().read_ios;
        for &v in &accesses {
            disk.adjacency(v, &mut buf).unwrap();
        }
        let cold = disk.io().read_ios - cold_start;
        // Replay the identical pattern against the warm cache.
        let warm_start = disk.io().read_ios;
        for &v in &accesses {
            disk.adjacency(v, &mut buf).unwrap();
        }
        let warm = disk.io().read_ios - warm_start;
        prop_assert!(warm <= cold, "warm replay charged {warm} vs cold {cold}");
    }

    // The default policy's design target: repeated ascending sweeps (the
    // shape of every semi-external convergence loop). Warm laps must charge
    // no more than the cold lap, and with a non-trivial budget they must
    // charge strictly less.
    #[test]
    fn scan_policy_profits_from_repeated_sweeps(
        (n, edges, _) in arb_graph_and_accesses(),
        budget_blocks in 4u64..24,
    ) {
        let g = MemGraph::from_edges(edges, n);
        let dir = TempDir::new("cacheq").unwrap();
        let base = dir.path().join("g");
        let block = 256usize;
        mem_to_disk(&base, &g, IoCounter::new(block)).unwrap();

        let mut disk = DiskGraph::open_with_cache(
            &base,
            IoCounter::new(block),
            budget_blocks * block as u64,
        ).unwrap();
        let mut buf = Vec::new();
        let mut lap = |d: &mut DiskGraph| {
            let before = d.io().read_ios;
            for v in 0..n {
                d.adjacency(v, &mut buf).unwrap();
            }
            d.io().read_ios - before
        };
        let cold = lap(&mut disk);
        let warm1 = lap(&mut disk);
        let warm2 = lap(&mut disk);
        prop_assert!(warm1 <= cold, "warm lap {warm1} vs cold {cold}");
        prop_assert!(warm2 <= cold, "warm lap {warm2} vs cold {cold}");
        // With at least a few frames beyond the pins, laps must score hits.
        if cold > budget_blocks {
            let stats = disk.cache_stats().unwrap();
            prop_assert!(stats.hits > 0, "no reuse across sweeps");
        }
    }

    #[test]
    fn cached_maintenance_stream_matches_mirror(
        (n, edges, _) in arb_graph_and_accesses(),
        toggles in proptest::collection::vec((0u32..120, 0u32..120), 0usize..40),
    ) {
        let g = MemGraph::from_edges(edges, n);
        let dir = TempDir::new("cacheq").unwrap();
        let base = dir.path().join("g");
        mem_to_disk(&base, &g, IoCounter::new(DEFAULT_BLOCK_SIZE)).unwrap();
        // Cached disk graph under a buffered dynamic view with a tiny flush
        // capacity, so rewrites invalidate cached frames mid-stream.
        let disk = DiskGraph::open_with_cache(
            &base,
            IoCounter::new(DEFAULT_BLOCK_SIZE),
            8 * DEFAULT_BLOCK_SIZE as u64,
        ).unwrap();
        let mut buffered = BufferedGraph::new(disk, 8);
        let mut mirror = DynGraph::from_mem(&g);
        for (a, b) in toggles {
            let (a, b) = (a % n, b % n);
            if a == b {
                continue;
            }
            if mirror.has_edge(a, b) {
                mirror.delete_edge(a, b).unwrap();
                graphstore::DynamicGraph::delete_edge(&mut buffered, a, b).unwrap();
            } else {
                mirror.insert_edge(a, b).unwrap();
                graphstore::DynamicGraph::insert_edge(&mut buffered, a, b).unwrap();
            }
        }
        let snap = graphstore::snapshot_mem(&mut buffered).unwrap();
        prop_assert_eq!(snap, mirror.to_mem());
    }
}

/// The headline acceptance property: on an R-MAT workload of at least 10^5
/// edges, SemiCore* with a cache budget of ~10% of the edge table performs
/// measurably fewer physical block reads than the uncached baseline, and a
/// whole-graph budget approaches the single-scan floor.
#[test]
fn semicore_star_cache_budget_reduces_physical_reads() {
    let p = graphgen::Rmat::web(13);
    let g = MemGraph::from_edges(graphgen::rmat_edges(p, 850_000, 42), p.num_nodes());
    assert!(
        g.num_edges() >= 100_000,
        "workload too small: {}",
        g.num_edges()
    );
    let dir = TempDir::new("cacheabl").unwrap();
    let base = dir.path().join("g");
    mem_to_disk(&base, &g, IoCounter::new(DEFAULT_BLOCK_SIZE)).unwrap();

    let run = |budget: u64| {
        let mut disk =
            DiskGraph::open_with_cache(&base, IoCounter::new(DEFAULT_BLOCK_SIZE), budget).unwrap();
        let d = semicore::semicore_star(&mut disk, &DecomposeOptions::default()).unwrap();
        (d.stats.io.read_ios, d.core, disk.meta())
    };

    let (uncached, core_uncached, meta) = run(0);
    let (ten_pct, core_ten, _) = run(meta.edge_file_len() / 10);
    let (whole, core_whole, _) =
        run(meta.node_file_len() + meta.edge_file_len() + DEFAULT_BLOCK_SIZE as u64);

    assert_eq!(core_uncached, core_ten, "cache must not change results");
    assert_eq!(core_uncached, core_whole);

    // ~10% of the edge table: measurably fewer physical reads (>= 3%).
    assert!(
        ten_pct as f64 <= 0.97 * uncached as f64,
        "10% budget: {ten_pct} reads vs {uncached} uncached"
    );
    // Whole-graph budget: every block fetched at most once per open, so the
    // total sits within a small factor of one sequential scan.
    let scan_blocks = (meta.node_file_len() + meta.edge_file_len()) / DEFAULT_BLOCK_SIZE as u64 + 2;
    assert!(
        whole <= scan_blocks + scan_blocks / 10,
        "whole-graph budget: {whole} reads vs scan floor {scan_blocks}"
    );
    // And the sweep is monotone at these three points.
    assert!(whole < ten_pct && ten_pct < uncached);
}

/// Graph handles are `Send` now that counters are atomics and the cache sits
/// behind a `Mutex` — the prerequisite for parallel scans.
#[test]
fn graph_handles_are_send() {
    fn assert_send<T: Send>() {}
    assert_send::<DiskGraph>();
    assert_send::<BufferedGraph>();
    assert_send::<MemGraph>();
    assert_send::<DynGraph>();
    assert_send::<kcore_suite::CoreIndex>();
    assert_send::<graphstore::IoCounter>();
}

/// The facade exposes the budget end to end.
#[test]
fn core_index_cache_plumbing() {
    let dir = TempDir::new("cacheidx").unwrap();
    let base = dir.path().join("g");
    let edges: Vec<(u32, u32)> = (0..400u32).map(|i| (i, (i + 1) % 400)).collect();
    {
        let idx =
            kcore_suite::CoreIndex::create_with_cache(&base, edges.clone(), 400, 1 << 20).unwrap();
        let stats = idx.cache_stats().expect("cache attached");
        assert!(
            stats.hits + stats.misses > 0,
            "decomposition went through the cache"
        );
        assert!(idx.cores().iter().all(|&c| c == 2), "cycle is a 2-core");
    }
    let idx = kcore_suite::CoreIndex::open_with_cache(&base, 1 << 20).unwrap();
    assert!(idx.cache_stats().is_some());
    let plain = kcore_suite::CoreIndex::open(&base).unwrap();
    assert!(plain.cache_stats().is_none());
    assert_eq!(idx.cores(), plain.cores());
}
