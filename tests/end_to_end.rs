//! End-to-end flows across all crates: dataset presets → disk graphs →
//! decomposition → maintenance → verification, exactly as the bench harness
//! drives them.

use graphgen::{dataset_by_name, paper_datasets, sample_edges, sample_nodes};
use graphstore::{snapshot_mem, IoCounter, TempDir, DEFAULT_BLOCK_SIZE};
use kcore_suite::CoreIndex;
use semicore::{verify_exact, DecomposeOptions, EmCoreOptions};

#[test]
fn every_dataset_standin_decomposes_consistently() {
    // A tiny scale keeps this under a second per dataset while still
    // exercising every preset's generator path.
    for spec in paper_datasets() {
        let mut g = spec.generate_mem(0.01);
        let star = semicore::semicore_star(&mut g, &DecomposeOptions::default()).unwrap();
        let oracle = semicore::imcore(&g);
        assert_eq!(star.core, oracle.core, "{}", spec.name);
        assert!(star.kmax() >= 1, "{} stand-in degenerate", spec.name);
    }
}

#[test]
fn emcore_runs_on_disk_built_dataset() {
    let spec = dataset_by_name("DBLP").unwrap();
    let dir = TempDir::new("e2e").unwrap();
    let mut disk = spec
        .build_disk(
            &dir.path().join("g"),
            0.05,
            IoCounter::new(DEFAULT_BLOCK_SIZE),
        )
        .unwrap();
    let opts = EmCoreOptions {
        partition_bytes: 8192,
        memory_budget: 64 << 10,
        ..Default::default()
    };
    let em = semicore::emcore(&mut disk, &opts).unwrap();
    let mem = snapshot_mem(&mut disk).unwrap();
    assert_eq!(em.core, semicore::imcore(&mem).core);
    assert!(em.stats.io.write_ios > 0);
}

#[test]
fn scalability_samplers_preserve_decomposability() {
    let spec = dataset_by_name("Twitter").unwrap();
    let g = spec.generate_mem(0.02);
    for pct in [0.2, 0.6, 1.0] {
        let mut sn = sample_nodes(&g, pct, 9);
        let mut se = sample_edges(&g, pct, 9);
        let dn = semicore::semicore_star(&mut sn, &DecomposeOptions::default()).unwrap();
        let de = semicore::semicore_star(&mut se, &DecomposeOptions::default()).unwrap();
        assert!(verify_exact(&mut sn, &dn.core).unwrap());
        assert!(verify_exact(&mut se, &de.core).unwrap());
    }
}

#[test]
fn core_index_maintains_through_heavy_stream() {
    let spec = dataset_by_name("Youtube").unwrap();
    let g = spec.generate_mem(0.02);
    let dir = TempDir::new("e2e").unwrap();
    let edges: Vec<(u32, u32)> = g.edges().collect();
    let mut idx =
        CoreIndex::create(&dir.path().join("g"), edges.iter().copied(), g.num_nodes()).unwrap();

    // Delete 50 edges, reinsert them (the Fig. 10 protocol), then verify.
    let victims: Vec<(u32, u32)> = edges.iter().step_by(edges.len() / 50).copied().collect();
    for &(u, v) in &victims {
        idx.delete_edge(u, v).unwrap();
    }
    for &(u, v) in &victims {
        idx.insert_edge(u, v).unwrap();
    }
    // After delete+reinsert the decomposition must equal the original.
    let mut g2 = g.clone();
    let fresh = semicore::semicore_star(&mut g2, &DecomposeOptions::default()).unwrap();
    assert_eq!(idx.cores(), fresh.core.as_slice());
    assert!(idx.verify().unwrap());
}

#[test]
fn decomposition_io_scales_with_iterations_not_updates() {
    // SemiCore* on a disk graph: re-running on the identical graph performs
    // identical I/O (deterministic accounting).
    let spec = dataset_by_name("WIKI").unwrap();
    let g = spec.generate_mem(0.02);
    let dir = TempDir::new("e2e").unwrap();
    let run = || {
        let mut disk = graphstore::mem_to_disk(
            &dir.path().join(format!("g{}", std::process::id())),
            &g,
            IoCounter::new(DEFAULT_BLOCK_SIZE),
        )
        .unwrap();
        semicore::semicore_star(&mut disk, &DecomposeOptions::default()).unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.stats.io, b.stats.io);
    assert_eq!(a.stats.node_computations, b.stats.node_computations);
}
