//! Self-healing differential tests: every detect → quarantine → repair
//! cycle must converge back to serving state **bit-identical** to an
//! uninjected twin that ran the same acknowledged workload — the repair
//! must reconstruct exactly what durability promised, not merely
//! something structurally valid.
//!
//! Covered cycles:
//! * an injected I/O failure on the op path quarantines the graph; an
//!   online [`CoreService::repair`] rebuilds it from checkpoint + journal
//!   and re-admits it behind the fixpoint certificate;
//! * on-disk journal damage is caught by the online scrubber
//!   ([`CoreService::scrub`]) without taking the graph out of service,
//!   routed into quarantine, and repaired;
//! * `ENOSPC` degrades to read-only instead of quarantining — committed
//!   state keeps serving — and the self-heal supervisor promotes the
//!   graph back once space returns;
//! * a repair that cannot succeed (corrupted checkpoint) exhausts the
//!   supervisor's retries and escalates to a sticky quarantine whose
//!   reason chain preserves the whole causal history;
//! * per-op deadlines return typed `timeout` errors without quarantining.

use std::collections::BTreeSet;
use std::io::Write;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use graphstore::{EvictionPolicy, FaultPlan, FaultVfs, TempDir, Vfs, DEFAULT_BLOCK_SIZE};
use kcore_suite::{start_self_heal, CoreService, DurableOptions, HealthStatus, SelfHealOptions};
use semicore::ScanExecutor;

const BUDGET: u64 = 4 << 20;

fn normalized(raw: impl IntoIterator<Item = (u32, u32)>) -> Vec<(u32, u32)> {
    let mut set = BTreeSet::new();
    for (u, v) in raw {
        if u != v {
            set.insert((u.min(v), u.max(v)));
        }
    }
    set.into_iter().collect()
}

/// `count` edges over `n` nodes absent from `present`, seed-determined.
fn fresh_edges(present: &BTreeSet<(u32, u32)>, n: u32, seed: u64, count: usize) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut s = seed;
    let mut taken = present.clone();
    while out.len() < count {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let u = (s >> 33) as u32 % n;
        let v = (s >> 13) as u32 % n;
        let e = (u.min(v), u.max(v));
        if u != v && taken.insert(e) {
            out.push(e);
        }
    }
    out
}

fn durable_with_faults(data: &Path, fault: &Arc<FaultVfs>) -> CoreService {
    CoreService::create_durable_with_vfs(
        data,
        DEFAULT_BLOCK_SIZE,
        BUDGET,
        EvictionPolicy::ScanLifo,
        ScanExecutor::from_env(),
        DurableOptions {
            group_commit: None,
            ..Default::default()
        },
        Arc::clone(fault) as Arc<dyn Vfs>,
    )
    .unwrap()
}

/// The maintained per-node state `(core, cnt)` — the bit-identity probe.
fn state_of(svc: &CoreService, name: &str) -> (Vec<u32>, Vec<i32>) {
    svc.with_graph(name, |idx| {
        let s = idx.maintained_state();
        Ok((s.core.clone(), s.cnt.clone()))
    })
    .unwrap()
}

/// Wait (bounded) until the graph reaches `want`.
fn await_status(svc: &CoreService, name: &str, want: HealthStatus) {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let got = svc.health(name).unwrap();
        if got.status == want {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "graph never reached {want:?}; stuck at {:?} (reasons: {:?}, log: {:?})",
            got.status,
            got.reasons,
            got.repair_log
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// An injected I/O failure quarantines the graph; an **online repair**
/// rebuilds it from its durable artefacts and the post-repair maintained
/// state is bit-identical to an uninjected twin's.
#[test]
fn online_repair_after_io_failure_is_bit_identical_to_uninjected_twin() {
    let dir = TempDir::new("heal-repair").unwrap();
    std::fs::create_dir_all(dir.path().join("bases")).unwrap();
    let edges = normalized(graphgen::gnm(48, 120, 11));
    let present: BTreeSet<(u32, u32)> = edges.iter().copied().collect();
    let w1 = fresh_edges(&present, 48, 1, 6);
    let mut all = present.clone();
    all.extend(w1.iter().copied());
    let w2 = fresh_edges(&all, 48, 2, 6);

    let fault = FaultVfs::new(FaultPlan::default());
    let svc = durable_with_faults(&dir.path().join("data"), &fault);
    svc.create("g", &dir.path().join("bases/g"), edges.iter().copied(), 48)
        .unwrap();
    let twin = CoreService::with_config(
        DEFAULT_BLOCK_SIZE,
        BUDGET,
        EvictionPolicy::ScanLifo,
        ScanExecutor::from_env(),
    )
    .unwrap();
    twin.create("g", &dir.path().join("bases/t"), edges.iter().copied(), 48)
        .unwrap();
    for &(u, v) in &w1 {
        svc.insert_edge("g", u, v).unwrap();
        twin.insert_edge("g", u, v).unwrap();
    }

    // The next checkpoint's fsync fails with EIO — not disk-full, so the
    // graph quarantines, and everything bounces off the gate.
    fault.set_plan(FaultPlan {
        fail_fsync: Some(1),
        ..FaultPlan::default()
    });
    svc.save("g").unwrap_err();
    fault.set_plan(FaultPlan::default());
    assert_eq!(svc.health("g").unwrap().status, HealthStatus::Quarantined);
    assert!(svc.kmax("g").unwrap_err().is_quarantined());
    assert!(svc.quarantine_reason("g").unwrap().is_some());

    // Online repair: fsck + rebuild from checkpoint/journal + certificate.
    svc.repair("g").unwrap();
    let health = svc.health("g").unwrap();
    assert_eq!(health.status, HealthStatus::Healthy);
    assert!(
        health.repair_log.iter().any(|l| l.contains("succeeded")),
        "repair log records the re-admission: {:?}",
        health.repair_log
    );

    // Differential: the repaired graph continues the workload exactly as
    // the never-injected twin does.
    for &(u, v) in &w2 {
        svc.insert_edge("g", u, v).unwrap();
        twin.insert_edge("g", u, v).unwrap();
    }
    assert_eq!(state_of(&svc, "g"), state_of(&twin, "g"));
    assert!(svc.verify("g").unwrap());
}

/// The online scrubber catches on-disk journal damage while the graph
/// keeps serving, quarantines it, and repair truncates the damage away —
/// bit-identical to the twin, since the garbage was never acknowledged.
#[test]
fn scrub_detects_journal_damage_and_repair_restores_bit_identical_state() {
    let dir = TempDir::new("heal-scrub").unwrap();
    std::fs::create_dir_all(dir.path().join("bases")).unwrap();
    let edges = normalized(graphgen::gnm(40, 90, 21));
    let present: BTreeSet<(u32, u32)> = edges.iter().copied().collect();
    let w1 = fresh_edges(&present, 40, 3, 5);

    let fault = FaultVfs::new(FaultPlan::default());
    let data = dir.path().join("data");
    let svc = durable_with_faults(&data, &fault);
    svc.create("g", &dir.path().join("bases/g"), edges.iter().copied(), 40)
        .unwrap();
    let twin = CoreService::with_config(
        DEFAULT_BLOCK_SIZE,
        BUDGET,
        EvictionPolicy::ScanLifo,
        ScanExecutor::from_env(),
    )
    .unwrap();
    twin.create("g", &dir.path().join("bases/t"), edges.iter().copied(), 40)
        .unwrap();
    for &(u, v) in &w1 {
        svc.insert_edge("g", u, v).unwrap();
        twin.insert_edge("g", u, v).unwrap();
    }

    // A clean scrub finds nothing and leaves the graph serving.
    let report = svc.scrub("g").unwrap();
    assert_eq!(report.unrepaired(), 0, "clean scrub: {:?}", report.findings);
    assert_eq!(svc.health("g").unwrap().status, HealthStatus::Healthy);

    // Bit-rot lands on the journal tail behind the service's back.
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(data.join("g.wal"))
        .unwrap();
    f.write_all(&[0xde, 0xad, 0xbe, 0xef]).unwrap();
    f.sync_all().unwrap();
    drop(f);

    // The scrubber finds it — queries were never interrupted — and the
    // finding quarantines the graph.
    let report = svc.scrub("g").unwrap();
    assert!(
        report.unrepaired() > 0,
        "damage found: {:?}",
        report.findings
    );
    assert_eq!(svc.health("g").unwrap().status, HealthStatus::Quarantined);

    // Repair truncates the unacknowledged garbage and rebuilds; the
    // result is exactly the acknowledged state.
    svc.repair("g").unwrap();
    assert_eq!(state_of(&svc, "g"), state_of(&twin, "g"));
    assert!(svc.verify("g").unwrap());
    assert_eq!(svc.scrub("g").unwrap().unrepaired(), 0);
}

/// `ENOSPC` mid-mutation degrades the graph to read-only: queries keep
/// serving committed state, mutations fail typed, and the supervisor
/// promotes the graph back automatically once the disk drains — after
/// which the workload continues bit-identical to the twin.
#[test]
fn enospc_degrades_read_only_and_supervisor_promotes_back() {
    let dir = TempDir::new("heal-enospc").unwrap();
    std::fs::create_dir_all(dir.path().join("bases")).unwrap();
    let edges = normalized(graphgen::gnm(40, 90, 31));
    let present: BTreeSet<(u32, u32)> = edges.iter().copied().collect();
    let w = fresh_edges(&present, 40, 4, 6);

    let fault = FaultVfs::new(FaultPlan::default());
    let svc = Arc::new(durable_with_faults(&dir.path().join("data"), &fault));
    svc.create("g", &dir.path().join("bases/g"), edges.iter().copied(), 40)
        .unwrap();
    let twin = CoreService::with_config(
        DEFAULT_BLOCK_SIZE,
        BUDGET,
        EvictionPolicy::ScanLifo,
        ScanExecutor::from_env(),
    )
    .unwrap();
    twin.create("g", &dir.path().join("bases/t"), edges.iter().copied(), 40)
        .unwrap();

    let kmax_before = svc.kmax("g").unwrap();
    fault.set_plan(FaultPlan {
        enospc_after: Some(0),
        ..FaultPlan::default()
    });
    let e = svc.insert_edge("g", w[0].0, w[0].1).unwrap_err();
    assert!(e.is_disk_full(), "typed disk-full error: {e}");

    // Degraded, not quarantined: reads serve, writes bounce.
    assert_eq!(svc.health("g").unwrap().status, HealthStatus::ReadOnly);
    assert_eq!(svc.kmax("g").unwrap(), kmax_before);
    assert!(svc
        .insert_edge("g", w[0].0, w[0].1)
        .unwrap_err()
        .is_read_only());
    assert!(svc.quarantine_reason("g").unwrap().is_none());

    // Space returns; the supervisor's probe promotes the graph back.
    let heal = start_self_heal(
        &svc,
        SelfHealOptions {
            poll_interval: Duration::from_millis(10),
            ..SelfHealOptions::default()
        },
    );
    fault.set_plan(FaultPlan::default());
    await_status(&svc, "g", HealthStatus::Healthy);
    heal.stop();

    // The full workload now lands — bit-identical to the twin.
    for &(u, v) in &w {
        svc.insert_edge("g", u, v).unwrap();
        twin.insert_edge("g", u, v).unwrap();
    }
    assert_eq!(state_of(&svc, "g"), state_of(&twin, "g"));
    assert!(svc.verify("g").unwrap());
}

/// A repair that cannot succeed — the checkpoint itself is corrupted —
/// exhausts the supervisor's bounded retries and escalates to a sticky
/// quarantine, with the whole causal chain (original failure + repair
/// failures) preserved in the health report.
#[test]
fn repair_exhaustion_escalates_to_sticky_quarantine_with_reason_chain() {
    let dir = TempDir::new("heal-exhaust").unwrap();
    std::fs::create_dir_all(dir.path().join("bases")).unwrap();
    let edges = normalized(graphgen::gnm(32, 60, 41));
    let present: BTreeSet<(u32, u32)> = edges.iter().copied().collect();
    let w = fresh_edges(&present, 32, 5, 3);

    let fault = FaultVfs::new(FaultPlan::default());
    let data = dir.path().join("data");
    let svc = Arc::new(durable_with_faults(&data, &fault));
    svc.create("g", &dir.path().join("bases/g"), edges.iter().copied(), 32)
        .unwrap();
    for &(u, v) in &w {
        svc.insert_edge("g", u, v).unwrap();
    }
    svc.save("g").unwrap();

    // Smash the checkpoint on disk, then trip a quarantine: every repair
    // attempt will reject the unreadable checkpoint.
    let ckpt = data.join("g.ckpt");
    let bytes = std::fs::read(&ckpt).unwrap();
    let mut rot = bytes.clone();
    let mid = rot.len() / 2;
    for b in &mut rot[mid..(mid + 8).min(bytes.len())] {
        *b ^= 0xff;
    }
    std::fs::write(&ckpt, &rot).unwrap();

    fault.set_plan(FaultPlan {
        fail_fsync: Some(1),
        ..FaultPlan::default()
    });
    svc.save("g").unwrap_err();
    fault.set_plan(FaultPlan::default());
    assert_eq!(svc.health("g").unwrap().status, HealthStatus::Quarantined);

    let heal = start_self_heal(
        &svc,
        SelfHealOptions {
            repair_retries: 2,
            backoff_base: Duration::from_millis(5),
            poll_interval: Duration::from_millis(10),
            ..SelfHealOptions::default()
        },
    );
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let h = svc.health("g").unwrap();
        if h.sticky {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "supervisor never went sticky: {h:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    heal.stop();

    let h = svc.health("g").unwrap();
    assert_eq!(h.status, HealthStatus::Quarantined);
    assert_eq!(h.repair_attempts, 2, "bounded retries: {h:?}");
    assert!(
        h.reasons.len() >= 2,
        "causal chain preserved (original failure + repair failures): {:?}",
        h.reasons
    );
    assert!(
        h.repair_log.iter().any(|l| l.contains("gave up")),
        "escalation recorded: {:?}",
        h.repair_log
    );
    // Sticky means the supervisor leaves it alone; the graph still gates.
    assert!(svc.kmax("g").unwrap_err().is_quarantined());
}

/// End-to-end: the supervisor's periodic scrubber finds on-disk damage by
/// itself and drives the full detect → quarantine → repair → re-admit
/// cycle with no operator in the loop.
#[test]
fn supervisor_scrubs_quarantines_and_repairs_end_to_end() {
    let dir = TempDir::new("heal-e2e").unwrap();
    std::fs::create_dir_all(dir.path().join("bases")).unwrap();
    let edges = normalized(graphgen::gnm(32, 60, 51));
    let present: BTreeSet<(u32, u32)> = edges.iter().copied().collect();
    let w = fresh_edges(&present, 32, 6, 4);

    let fault = FaultVfs::new(FaultPlan::default());
    let data = dir.path().join("data");
    let svc = Arc::new(durable_with_faults(&data, &fault));
    svc.create("g", &dir.path().join("bases/g"), edges.iter().copied(), 32)
        .unwrap();
    for &(u, v) in &w {
        svc.insert_edge("g", u, v).unwrap();
    }
    let before = state_of(&svc, "g");

    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(data.join("g.wal"))
        .unwrap();
    f.write_all(&[0xba, 0xad, 0xf0, 0x0d]).unwrap();
    f.sync_all().unwrap();
    drop(f);

    let heal = start_self_heal(
        &svc,
        SelfHealOptions {
            scrub_interval: Some(Duration::from_millis(20)),
            backoff_base: Duration::from_millis(5),
            poll_interval: Duration::from_millis(10),
            ..SelfHealOptions::default()
        },
    );
    // The scrubber must find the damage and the repair loop must bring
    // the graph back — watch the repair log for the full cycle.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let h = svc.health("g").unwrap();
        let healed = h.status == HealthStatus::Healthy
            && h.repair_log.iter().any(|l| l.contains("succeeded"));
        if healed {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "self-heal cycle never completed: {h:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    heal.stop();

    assert_eq!(state_of(&svc, "g"), before, "repair restored acked state");
    assert!(svc.verify("g").unwrap());
    assert!(
        svc.health("g")
            .unwrap()
            .reasons
            .iter()
            .any(|r| r.contains("scrub")),
        "the reason chain attributes the quarantine to the scrubber"
    );
}

/// Per-op deadlines: an over-deadline op returns a typed `timeout` error,
/// releases its claim, and never quarantines — a slow graph is not a
/// broken one.
#[test]
fn op_deadline_times_out_typed_without_quarantining() {
    let dir = TempDir::new("heal-deadline").unwrap();
    let svc = CoreService::with_config(
        DEFAULT_BLOCK_SIZE,
        BUDGET,
        EvictionPolicy::ScanLifo,
        ScanExecutor::from_env(),
    )
    .unwrap();
    let edges = normalized(graphgen::gnm(48, 120, 61));
    let present: BTreeSet<(u32, u32)> = edges.iter().copied().collect();
    let (u, v) = fresh_edges(&present, 48, 7, 1)[0];
    svc.create("g", &dir.path().join("g"), edges.iter().copied(), 48)
        .unwrap();

    // A generous budget must not trip at all: the deadline is an upper
    // bound on wall clock, not a tax on every armed op (regression guard
    // for arming the expiry at `now` instead of `now + budget`).
    svc.set_op_timeout(Some(Duration::from_secs(300)));
    assert!(
        svc.verify("g").unwrap(),
        "generous deadline leaves ops alone"
    );

    // A zero budget trips on the first charged read: `verify` walks
    // adjacency, so it must time out...
    svc.set_op_timeout(Some(Duration::ZERO));
    let e = svc.verify("g").unwrap_err();
    assert!(e.is_timeout(), "typed timeout: {e}");
    // ...and so must a mutation's validation read — before anything is
    // journaled or applied.
    let e = svc.insert_edge("g", u, v).unwrap_err();
    assert!(e.is_timeout(), "mutation validation times out: {e}");
    // In-memory answers are not charged and still serve.
    svc.kmax("g").unwrap();

    // Crucially: a timeout is not a fault. No quarantine, no degradation.
    assert_eq!(svc.health("g").unwrap().status, HealthStatus::Healthy);

    // Lifting the deadline restores full service mid-flight.
    svc.set_op_timeout(None);
    assert!(svc.verify("g").unwrap());
    svc.insert_edge("g", u, v).unwrap();
}
