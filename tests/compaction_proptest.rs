//! Property tests for generational compaction on the durable serving
//! path.
//!
//! The main property interleaves arbitrary maintenance ops with forced
//! compactions and kill/reopen cycles (drop the service without any
//! shutdown courtesy, recover through [`CoreService::open_catalog`]): the
//! surviving service's maintained state — core numbers *and* the Eq. 2
//! `cnt` array — must be bit-identical to a reference service that ran
//! the same op stream with no compaction and no restart. Compaction and
//! recovery are allowed to change how bytes are laid out, never what is
//! served.
//!
//! A second, deterministic test pins the point of compacting at all:
//! recovering a compacted directory charges strictly fewer `read_ios`
//! than recovering the same history by journal replay, because the edits
//! are baked into the tables and the replay loop has nothing to do.

use std::collections::BTreeSet;
use std::path::Path;

use graphstore::{EvictionPolicy, MemGraph, TempDir, DEFAULT_BLOCK_SIZE};
use kcore_suite::{CoreService, DurableOptions};
use proptest::prelude::*;
use semicore::ScanExecutor;
use testutil::{arb_toggle_stream, oracle_cores, Lcg};

const BUDGET: u64 = 8 << 20;
const G: &str = "g";

fn durable(data: &Path) -> CoreService {
    CoreService::create_durable_with(
        data,
        DEFAULT_BLOCK_SIZE,
        BUDGET,
        EvictionPolicy::ScanLifo,
        ScanExecutor::Sequential,
        // Default threshold: the apply path never self-compacts here, so
        // every compaction in the test is one the script forced.
        DurableOptions::default(),
    )
    .unwrap()
}

/// Apply one toggle through the service, tracking presence so every op is
/// valid by construction.
fn toggle(svc: &CoreService, present: &mut BTreeSet<(u32, u32)>, e: (u32, u32)) {
    let res = if present.remove(&e) {
        svc.delete_edge(G, e.0, e.1)
    } else {
        present.insert(e);
        svc.insert_edge(G, e.0, e.1)
    };
    res.unwrap_or_else(|err| panic!("toggle {e:?} failed: {err}"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn compactions_and_restarts_never_change_the_maintained_state(
        (g, raw_ops) in arb_toggle_stream(),
        seed in any::<u64>(),
    ) {
        let ops: Vec<(u32, u32)> = raw_ops
            .into_iter()
            .filter(|&(u, v)| u != v)
            .map(|(u, v)| (u.min(v), u.max(v)))
            .collect();
        let base: Vec<(u32, u32)> = g.edges().collect();
        let nodes = g.num_nodes();
        let dir = TempDir::new("compact-prop").unwrap();

        // Reference: same stream, no compaction, no restart.
        let reference = {
            let svc = durable(&dir.path().join("ref-data"));
            svc.create(G, &dir.path().join("ref-base"), base.iter().copied(), nodes)
                .unwrap();
            let mut present: BTreeSet<(u32, u32)> = base.iter().copied().collect();
            for &e in &ops {
                toggle(&svc, &mut present, e);
            }
            svc.with_graph(G, |idx| Ok(idx.maintained_state().clone()))
                .unwrap()
        };

        // Perturbed: the same stream with compactions forced and the
        // process "killed" (dropped, no save) and reopened, at
        // seed-chosen points.
        let data = dir.path().join("tort-data");
        let mut svc = durable(&data);
        svc.create(G, &dir.path().join("tort-base"), base.iter().copied(), nodes)
            .unwrap();
        let mut present: BTreeSet<(u32, u32)> = base.iter().copied().collect();
        let mut rng = Lcg::new(seed);
        for &e in &ops {
            toggle(&svc, &mut present, e);
            match rng.below(4) {
                0 => {
                    svc.compact(G).unwrap();
                }
                1 => {
                    drop(svc);
                    svc = CoreService::open_catalog(&data).unwrap();
                }
                _ => {}
            }
        }
        // One final kill/reopen so the last segment always recovers too.
        drop(svc);
        let svc = CoreService::open_catalog(&data).unwrap();
        let got = svc
            .with_graph(G, |idx| Ok(idx.maintained_state().clone()))
            .unwrap();

        prop_assert_eq!(&got.core, &reference.core, "core numbers diverged");
        prop_assert_eq!(&got.cnt, &reference.cnt, "Eq. 2 cnt diverged");
        prop_assert!(svc.verify(G).unwrap(), "fixpoint certificate");
        prop_assert_eq!(
            &got.core,
            &oracle_cores(&MemGraph::from_edges(present, nodes)),
            "oracle mismatch"
        );
        drop(svc);
        let report = kcore_suite::fsck(&data, false).unwrap();
        prop_assert!(report.clean(), "fsck: {:?}", report.findings);
    }
}

/// Compaction's I/O dividend, on the paper's charged-block model: two
/// directories with identical histories, one compacted before the kill.
/// Recovery of the compacted directory must charge strictly fewer
/// `read_ios` — its checkpoint already covers every edit, while the
/// uncompacted twin re-runs the whole journal through the maintenance
/// algorithms and pays their adjacency reads again.
#[test]
fn recovering_a_compacted_directory_charges_strictly_fewer_reads() {
    let mut rng = Lcg::new(0xC0FFEE);
    let base: BTreeSet<(u32, u32)> = graphgen::gnm(64, 150, 9)
        .into_iter()
        .filter(|&(u, v)| u != v)
        .map(|(u, v)| (u.min(v), u.max(v)))
        .collect();
    let base: Vec<(u32, u32)> = base.into_iter().collect();
    let dir = TempDir::new("compact-io").unwrap();

    let mut services = ["compacted", "replayed"].map(|tag| {
        let data = dir.path().join(format!("{tag}-data"));
        let svc = CoreService::create_durable_with(
            &data,
            DEFAULT_BLOCK_SIZE,
            BUDGET,
            EvictionPolicy::ScanLifo,
            ScanExecutor::Sequential,
            DurableOptions {
                // No checkpoint threshold in range: the uncompacted twin
                // must recover by journal replay alone.
                checkpoint_every: 1_000_000,
                ..Default::default()
            },
        )
        .unwrap();
        svc.create(
            G,
            &dir.path().join(format!("{tag}-base")),
            base.iter().copied(),
            64,
        )
        .unwrap();
        (data, svc)
    });

    let mut present: BTreeSet<(u32, u32)> = base.iter().copied().collect();
    for _ in 0..60 {
        let u = rng.below(64);
        let mut v = rng.below(64);
        if v == u {
            v = (v + 1) % 64;
        }
        let e = (u.min(v), u.max(v));
        let inserting = !present.remove(&e);
        if inserting {
            present.insert(e);
        }
        for (_, svc) in &mut services {
            if inserting {
                svc.insert_edge(G, e.0, e.1).unwrap();
            } else {
                svc.delete_edge(G, e.0, e.1).unwrap();
            }
        }
    }

    let [(compacted_data, compacted_svc), (replayed_data, replayed_svc)] = services;
    compacted_svc.compact(G).unwrap();
    drop(compacted_svc);
    drop(replayed_svc);

    let compacted = CoreService::open_catalog(&compacted_data).unwrap();
    let replayed = CoreService::open_catalog(&replayed_data).unwrap();
    let (a, b) = (
        compacted.io(G).unwrap().read_ios,
        replayed.io(G).unwrap().read_ios,
    );
    assert!(
        a < b,
        "compacted recovery charged {a} read I/Os, replay charged {b}: \
         compaction must make recovery strictly cheaper"
    );
    // And both recovered the same world.
    assert_eq!(compacted.cores(G).unwrap(), replayed.cores(G).unwrap());
    assert_eq!(
        compacted.cores(G).unwrap(),
        oracle_cores(&MemGraph::from_edges(present, 64))
    );
}
