//! Format-v1 vs format-v2 differential suite.
//!
//! The compressed edge table must be invisible to every algorithm: the same
//! graph built in both formats yields **bit-identical** cores and Eq. 2
//! counters — decomposition and maintenance alike, at any worker count,
//! under either eviction policy, pooled or durable — while v2's charged
//! `read_ios` is **strictly lower** at equal cache budget (fewer edge-table
//! blocks exist to read).

use graphstore::{
    write_mem_graph_with, DiskGraph, EvictionPolicy, FormatVersion, GraphPaths, IoCounter,
    MemGraph, TempDir, DEFAULT_BLOCK_SIZE,
};
use kcore_suite::semicore::{
    semicore_plus_with, semicore_star_state_with, semicore_star_with, semicore_with,
    DecomposeOptions, ScanExecutor,
};
use kcore_suite::{CoreIndex, CoreService};
use testutil::{fixtures, oracle_cores, random_mem_graph, worker_counts, Lcg};

/// Write `g` in both formats under `dir`, returning the `(v1, v2)` bases.
fn write_pair(dir: &TempDir, g: &MemGraph, tag: &str) -> (std::path::PathBuf, std::path::PathBuf) {
    let b1 = dir.path().join(format!("{tag}-v1"));
    let b2 = dir.path().join(format!("{tag}-v2"));
    write_mem_graph_with(
        &b1,
        g,
        IoCounter::new(DEFAULT_BLOCK_SIZE),
        FormatVersion::V1,
    )
    .unwrap();
    write_mem_graph_with(
        &b2,
        g,
        IoCounter::new(DEFAULT_BLOCK_SIZE),
        FormatVersion::V2,
    )
    .unwrap();
    (b1, b2)
}

fn edge_table_len(base: &std::path::Path) -> u64 {
    std::fs::metadata(GraphPaths::from_base(base).edges)
        .unwrap()
        .len()
}

#[test]
fn decomposition_bit_identical_and_v2_charges_strictly_less() {
    let dir = TempDir::new("fmtdiff").unwrap();
    let opts = DecomposeOptions::default();
    type Algo = (
        &'static str,
        fn(&mut DiskGraph, &DecomposeOptions, ScanExecutor) -> graphstore::Result<Vec<u32>>,
    );
    let algos: Vec<Algo> = vec![
        ("semicore", |g, o, e| Ok(semicore_with(g, o, e)?.core)),
        ("semicore+", |g, o, e| Ok(semicore_plus_with(g, o, e)?.core)),
        ("semicore*", |g, o, e| Ok(semicore_star_with(g, o, e)?.core)),
    ];

    for (family, g) in fixtures() {
        let (b1, b2) = write_pair(&dir, &g, family);
        // Equal budgets for both formats: 10% of the *v1* edge table (the
        // acceptance workload's regime) and the v1 whole working set.
        let budgets = [
            edge_table_len(&b1) / 10,
            edge_table_len(&b1) + 64 * DEFAULT_BLOCK_SIZE as u64,
        ];
        for policy in [EvictionPolicy::Lru, EvictionPolicy::ScanLifo] {
            for &budget in &budgets {
                for workers in worker_counts() {
                    let exec = if workers == 1 {
                        ScanExecutor::Sequential
                    } else {
                        ScanExecutor::parallel(workers)
                    };
                    for (name, run) in &algos {
                        let tag = format!("{family}/{name}/{policy:?}/M={budget}/w{workers}");
                        let mut d1 = DiskGraph::open_with_cache_policy(
                            &b1,
                            IoCounter::new(DEFAULT_BLOCK_SIZE),
                            budget,
                            policy,
                        )
                        .unwrap();
                        let mut d2 = DiskGraph::open_with_cache_policy(
                            &b2,
                            IoCounter::new(DEFAULT_BLOCK_SIZE),
                            budget,
                            policy,
                        )
                        .unwrap();
                        let c1 = run(&mut d1, &opts, exec).unwrap();
                        let c2 = run(&mut d2, &opts, exec).unwrap();
                        assert_eq!(c1, c2, "{tag}: cores must be bit-identical");
                        assert_eq!(c1, oracle_cores(&g), "{tag}: oracle");
                        let (r1, r2) = (d1.io().read_ios, d2.io().read_ios);
                        assert!(
                            r2 < r1,
                            "{tag}: v2 must charge strictly fewer read I/Os ({r2} vs {r1})"
                        );
                    }
                }
            }
        }

        // The Eq. 2 counters the maintained state carries must match too.
        let mut d1 = DiskGraph::open(&b1, IoCounter::new(DEFAULT_BLOCK_SIZE)).unwrap();
        let mut d2 = DiskGraph::open(&b2, IoCounter::new(DEFAULT_BLOCK_SIZE)).unwrap();
        let (s1, _) = semicore_star_state_with(&mut d1, &opts, ScanExecutor::Sequential).unwrap();
        let (s2, _) = semicore_star_state_with(&mut d2, &opts, ScanExecutor::Sequential).unwrap();
        assert_eq!(s1.core, s2.core, "{family}: state cores");
        assert_eq!(s1.cnt, s2.cnt, "{family}: Eq. 2 counters");
    }
}

#[test]
fn maintenance_stream_bit_identical_across_formats() {
    let dir = TempDir::new("fmtdiff-maint").unwrap();
    let mut rng = Lcg::new(0xC0DEC);
    for round in 0..4 {
        let g = random_mem_graph(&mut rng, 12, 60, 3);
        let (b1, b2) = write_pair(&dir, &g, &format!("m{round}"));
        let mut i1 = CoreIndex::open_with_cache(&b1, 1 << 20).unwrap();
        let mut i2 = CoreIndex::open_with_cache(&b2, 1 << 20).unwrap();
        assert_eq!(i1.cores(), i2.cores(), "round {round}: initial cores");
        assert_eq!(
            i1.maintained_state().cnt,
            i2.maintained_state().cnt,
            "round {round}: initial cnt"
        );

        let mut mirror = graphstore::DynGraph::from_mem(&g);
        let n = g.num_nodes();
        for step in 0..120 {
            let (u, v) = (rng.below(n), rng.below(n));
            if u == v {
                continue;
            }
            let (s1, s2) = if mirror.has_edge(u, v) {
                graphstore::DynamicGraph::delete_edge(&mut mirror, u, v).unwrap();
                (i1.delete_edge(u, v).unwrap(), i2.delete_edge(u, v).unwrap())
            } else {
                graphstore::DynamicGraph::insert_edge(&mut mirror, u, v).unwrap();
                (i1.insert_edge(u, v).unwrap(), i2.insert_edge(u, v).unwrap())
            };
            // Same algorithm over the same merged adjacency: the whole
            // execution trace must agree, not just the end state.
            assert_eq!(s1.algorithm, s2.algorithm, "round {round} step {step}");
            assert_eq!(
                s1.node_computations, s2.node_computations,
                "round {round} step {step}: node computations"
            );
            assert_eq!(
                i1.cores(),
                i2.cores(),
                "round {round} step {step}: cores diverged"
            );
            assert_eq!(
                i1.maintained_state().cnt,
                i2.maintained_state().cnt,
                "round {round} step {step}: cnt diverged"
            );
        }
        let mem = graphstore::snapshot_mem(&mut mirror).unwrap();
        assert_eq!(
            i2.cores(),
            oracle_cores(&mem),
            "round {round}: final oracle"
        );
        assert!(i1.verify().unwrap() && i2.verify().unwrap());
    }
}

#[test]
fn durable_kill_reopen_cycle_is_format_transparent() {
    let dir = TempDir::new("fmtdiff-durable").unwrap();
    let g = {
        let mut rng = Lcg::new(77);
        random_mem_graph(&mut rng, 40, 40, 4)
    };
    let (b1, b2) = write_pair(&dir, &g, "dur");

    // Two durable services, one per format, fed the identical op stream;
    // both are dropped *without* an explicit save, so recovery replays the
    // journal tail — the kill window the WAL exists for.
    let mut toggles = Vec::new();
    {
        let mut rng = Lcg::new(4242);
        let mut mirror = graphstore::DynGraph::from_mem(&g);
        for _ in 0..40 {
            let (u, v) = (rng.below(g.num_nodes()), rng.below(g.num_nodes()));
            if u == v {
                continue;
            }
            let insert = !mirror.has_edge(u, v);
            if insert {
                graphstore::DynamicGraph::insert_edge(&mut mirror, u, v).unwrap();
            } else {
                graphstore::DynamicGraph::delete_edge(&mut mirror, u, v).unwrap();
            }
            toggles.push((u, v, insert));
        }
    }
    let data1 = dir.path().join("data-v1");
    let data2 = dir.path().join("data-v2");
    for (data, base) in [(&data1, &b1), (&data2, &b2)] {
        let svc = CoreService::create_durable(data, 1 << 20).unwrap();
        svc.open("g", base).unwrap();
        for &(u, v, insert) in &toggles {
            if insert {
                svc.insert_edge("g", u, v).unwrap();
            } else {
                svc.delete_edge("g", u, v).unwrap();
            }
        }
        // Dropped here: simulated kill with a journal tail outstanding.
    }

    let s1 = CoreService::open_catalog(&data1).unwrap();
    let s2 = CoreService::open_catalog(&data2).unwrap();
    assert_eq!(s1.format_version("g").unwrap(), FormatVersion::V1);
    assert_eq!(s2.format_version("g").unwrap(), FormatVersion::V2);
    assert_eq!(
        s1.cores("g").unwrap(),
        s2.cores("g").unwrap(),
        "recovered cores must be format-independent"
    );
    assert!(s1.verify("g").unwrap() && s2.verify("g").unwrap());
    let (r1, r2) = (s1.io("g").unwrap().read_ios, s2.io("g").unwrap().read_ios);
    assert!(
        r2 <= r1,
        "v2 recovery must not charge more than v1 ({r2} vs {r1})"
    );
    // Both survive further traffic after recovery.
    s2.insert_edge("g", 0, g.num_nodes() - 1).ok();
}

#[test]
fn recovery_rejects_base_tables_swapped_to_another_format() {
    let dir = TempDir::new("fmtdiff-swap").unwrap();
    let g = MemGraph::from_edges([(0, 1), (1, 2), (0, 2), (2, 3)], 4);
    let base = dir.path().join("g");
    write_mem_graph_with(
        &base,
        &g,
        IoCounter::new(DEFAULT_BLOCK_SIZE),
        FormatVersion::V2,
    )
    .unwrap();
    let data = dir.path().join("data");
    {
        let svc = CoreService::create_durable(&data, 1 << 20).unwrap();
        svc.open("g", &base).unwrap();
        svc.insert_edge("g", 1, 3).unwrap();
    }
    // Swap the base tables for a v1 encoding of the *original* graph: the
    // checkpointed state no longer matches what is on disk, and the
    // catalogued format flag is how recovery notices.
    write_mem_graph_with(
        &base,
        &g,
        IoCounter::new(DEFAULT_BLOCK_SIZE),
        FormatVersion::V1,
    )
    .unwrap();
    let err = CoreService::open_catalog(&data).unwrap_err();
    assert!(err.is_corrupt(), "{err}");
    assert!(err.to_string().contains("format"), "{err}");
}
