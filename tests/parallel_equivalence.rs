//! Sequential-vs-parallel executor equivalence over disk-resident graphs.
//!
//! The contract under test (see `semicore::executor`):
//!
//! * **Core numbers are bit-identical** between the sequential schedule and
//!   the parallel executor at any worker count, on any backend.
//! * **Charged `read_ios` is identical** when the shared block cache
//!   absorbs the algorithm's re-read working set: misses then count
//!   *distinct blocks touched*, a schedule-independent quantity, so the
//!   sharded run charges exactly what the sequential run does.
//! * The shared pool itself is safe under concurrent hammering from many
//!   reader handles (the stress test at the bottom).

use graphstore::{mem_to_disk, DiskGraph, IoCounter, MemGraph, TempDir};
use semicore::{
    semicore_plus_with, semicore_star_state_with, semicore_star_with, semicore_with,
    DecomposeOptions, ScanExecutor,
};
use testutil::{disk_full_budget as on_disk_full_budget, fixtures, worker_counts, Lcg};

#[test]
fn all_algorithms_all_families_all_worker_counts() {
    let dir = TempDir::new("pareq").unwrap();
    let opts = DecomposeOptions::default();
    type Algo = (
        &'static str,
        fn(&mut DiskGraph, &DecomposeOptions, ScanExecutor) -> graphstore::Result<Vec<u32>>,
    );
    let algos: Vec<Algo> = vec![
        ("semicore", |g, o, e| Ok(semicore_with(g, o, e)?.core)),
        ("semicore+", |g, o, e| Ok(semicore_plus_with(g, o, e)?.core)),
        ("semicore*", |g, o, e| Ok(semicore_star_with(g, o, e)?.core)),
    ];

    for (family, g) in fixtures() {
        for (name, run) in &algos {
            let mut seq_disk = on_disk_full_budget(&g, &dir, &format!("{family}-{name}-seq"));
            let seq_core = run(&mut seq_disk, &opts, ScanExecutor::Sequential).unwrap();
            let seq_reads = seq_disk.io().read_ios;
            assert!(seq_reads > 0, "{family}/{name}: disk run must charge I/O");

            for workers in worker_counts() {
                let tag = format!("{family}-{name}-w{workers}");
                let mut par_disk = on_disk_full_budget(&g, &dir, &tag);
                let par_core = run(&mut par_disk, &opts, ScanExecutor::parallel(workers)).unwrap();
                let par_reads = par_disk.io().read_ios;
                assert_eq!(seq_core, par_core, "{family}/{name}/w{workers}: cores");
                assert_eq!(
                    seq_reads, par_reads,
                    "{family}/{name}/w{workers}: charged read_ios"
                );
            }
        }
    }
}

#[test]
fn parallel_star_state_satisfies_cnt_invariant_on_disk() {
    let dir = TempDir::new("parcnt").unwrap();
    for (family, g) in fixtures() {
        let mut disk = on_disk_full_budget(&g, &dir, family);
        let (state, stats) = semicore_star_state_with(
            &mut disk,
            &DecomposeOptions::default(),
            ScanExecutor::parallel(4),
        )
        .unwrap();
        assert_eq!(
            state.check_cnt_invariant(&mut disk).unwrap(),
            None,
            "{family}: Eq. 2 invariant"
        );
        assert_eq!(
            stats.io.write_ios, 0,
            "{family}: decomposition is read-only"
        );
    }
}

#[test]
fn parallel_runs_are_read_only_and_deterministic_across_repeats() {
    // Re-running the same parallel decomposition must reproduce the same
    // iteration structure and charged I/O (thread timing must not leak in).
    let dir = TempDir::new("parrep").unwrap();
    let g = MemGraph::from_edges(graphgen::gnm(400, 1600, 77), 400);
    let mut reference: Option<(Vec<u32>, u64, u64)> = None;
    for rep in 0..3 {
        let mut disk = on_disk_full_budget(&g, &dir, &format!("rep{rep}"));
        let d = semicore_star_with(
            &mut disk,
            &DecomposeOptions::default(),
            ScanExecutor::parallel(4),
        )
        .unwrap();
        assert_eq!(d.stats.io.write_ios, 0);
        let obs = (d.core, d.stats.iterations, d.stats.io.read_ios);
        match &reference {
            None => reference = Some(obs),
            Some(r) => assert_eq!(r, &obs, "repeat {rep} diverged"),
        }
    }
}

/// Stress the shared block cache from many threads at once: every handle
/// hammers random adjacency lists of the same cached graph under a budget
/// far smaller than the graph, forcing constant eviction and refill races.
/// Every read must still deliver exactly the right bytes.
#[test]
fn concurrent_cache_access_stress() {
    let n = 3000u32;
    let g = MemGraph::from_edges(graphgen::preferential_attachment(n, 6, 99), n);
    let dir = TempDir::new("stress").unwrap();
    let base = dir.path().join("g");
    // Small blocks so the graph spans many frames; budget of 8 blocks so
    // the pool thrashes.
    let block = 512usize;
    mem_to_disk(&base, &g, IoCounter::new(block)).unwrap();
    let root = DiskGraph::open_with_cache(&base, IoCounter::new(block), 8 * block as u64).unwrap();

    std::thread::scope(|s| {
        for t in 0..8u64 {
            let mut h = root.try_clone().unwrap();
            let expect = &g;
            s.spawn(move || {
                let mut rng = Lcg::new(0x5EED ^ t);
                for _ in 0..4000 {
                    let v = rng.below(n);
                    h.with_adjacency(v, |nbrs| {
                        assert_eq!(nbrs, expect.neighbors(v), "node {v} bytes corrupted");
                    })
                    .unwrap();
                }
            });
        }
    });

    let stats = root.cache_stats().unwrap();
    assert!(
        stats.misses > 0 && stats.evictions > 0,
        "stress must thrash"
    );
    // The pool itself stayed within its 8-frame budget (in-flight readers
    // may briefly keep evicted bytes alive, but never as pool residents).
    assert!(
        root.cache_resident_keys().len() <= 8,
        "pool exceeded its frame budget"
    );
}
