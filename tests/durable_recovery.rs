//! Recovery suite for the durable serving layer.
//!
//! Three families of guarantees:
//!
//! * **Torn-tail tolerance** — truncating the journal at *every* byte
//!   offset of its final record must never corrupt recovery and must drop
//!   at most the torn trailing op (the one whose append never completed).
//! * **Restart differential** — after any seeded maintenance stream, a
//!   process that was dropped and reopened (`CoreService::open_catalog`)
//!   at arbitrary points serves bit-identical `cores`/`kmax` to the
//!   never-restarted process, across both eviction policies, and both
//!   match recomputation from scratch.
//! * **Reopen cost** — restoring a maintained graph charges strictly fewer
//!   read I/Os than the fresh decomposition it replaces (the whole point
//!   of checkpoint + journal-tail replay).

use std::path::Path;

use graphstore::{DynGraph, EvictionPolicy, MemGraph, TempDir, DEFAULT_BLOCK_SIZE};
use kcore_suite::{CoreService, DurableOptions};
use proptest::prelude::*;
use semicore::ScanExecutor;
use testutil::{arb_toggle_stream, oracle_cores, Lcg};

/// Recover the undirected edge list of a memgraph (`u < v` once each).
fn edges_of(g: &MemGraph) -> Vec<(u32, u32)> {
    let mut edges = Vec::new();
    for v in 0..g.num_nodes() {
        for &u in g.neighbors(v) {
            if v < u {
                edges.push((v, u));
            }
        }
    }
    edges
}

/// Copy a data directory's durability artefacts (catalog + sidecars) so a
/// test can mutilate the copy while the original stays intact. Graph base
/// tables are immutable and referenced by absolute path, so they are
/// shared, not copied.
fn copy_data_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

fn durable_service(data: &Path, policy: EvictionPolicy, checkpoint_every: u64) -> CoreService {
    CoreService::create_durable_with(
        data,
        DEFAULT_BLOCK_SIZE,
        1 << 20,
        policy,
        ScanExecutor::Sequential,
        DurableOptions {
            checkpoint_every,
            group_commit: None,
            ..Default::default()
        },
    )
    .unwrap()
}

/// Apply a toggle to service + mirror, returning whether it was a real op.
fn toggle(svc: &CoreService, mirror: &mut DynGraph, a: u32, b: u32) -> bool {
    if a == b {
        return false;
    }
    if mirror.has_edge(a, b) {
        svc.delete_edge("g", a, b).unwrap();
        mirror.delete_edge(a, b).unwrap();
    } else {
        svc.insert_edge("g", a, b).unwrap();
        mirror.insert_edge(a, b).unwrap();
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Truncate the journal at every byte offset of its final record:
    /// recovery must succeed at every cut, restore exactly the all-ops
    /// state (cut == intact file) or the all-but-last-op state (any torn
    /// cut), and pass the Theorem 4.1 certificate.
    #[test]
    fn torn_journal_tail_drops_at_most_the_trailing_op((g, ops) in arb_toggle_stream()) {
        let dir = TempDir::new("torn").unwrap();
        let data = dir.path().join("data");
        // No threshold checkpoints: the journal must carry the whole stream.
        let svc = durable_service(&data, EvictionPolicy::ScanLifo, u64::MAX);
        svc.create("g", &dir.path().join("g"), edges_of(&g), g.num_nodes())
            .unwrap();
        let mut mirror = DynGraph::from_mem(&g);
        let mut applied: Vec<(u32, u32)> = Vec::new();
        for (a, b) in ops {
            if toggle(&svc, &mut mirror, a, b) {
                applied.push((a, b));
            }
        }
        drop(svc);
        if applied.is_empty() {
            // Nothing journaled; just check the empty-journal reopen.
            let svc = CoreService::open_catalog(&data).unwrap();
            prop_assert_eq!(svc.cores("g").unwrap(), oracle_cores(&mirror.to_mem()));
            return Ok(());
        }

        let oracle_full = oracle_cores(&mirror.to_mem());
        // The state with the final op undone.
        let mut mirror_minus = DynGraph::from_mem(&g);
        for &(a, b) in &applied[..applied.len() - 1] {
            if mirror_minus.has_edge(a, b) {
                mirror_minus.delete_edge(a, b).unwrap();
            } else {
                mirror_minus.insert_edge(a, b).unwrap();
            }
        }
        let oracle_minus = oracle_cores(&mirror_minus.to_mem());

        let wal_bytes = std::fs::read(data.join("g.wal")).unwrap();
        // Record framing: len(4) + crc(4) + payload(8 seq + 9 op).
        let record_len = 4 + 4 + 8 + 9;
        let intact_len = wal_bytes.len() - record_len;
        for cut in intact_len..=wal_bytes.len() {
            let case = dir.path().join(format!("cut{cut}"));
            copy_data_dir(&data, &case);
            std::fs::write(case.join("g.wal"), &wal_bytes[..cut]).unwrap();
            let svc = CoreService::open_catalog(&case).unwrap();
            let cores = svc.cores("g").unwrap();
            if cut == wal_bytes.len() {
                prop_assert_eq!(&cores, &oracle_full, "intact journal at cut {}", cut);
            } else {
                prop_assert_eq!(&cores, &oracle_minus, "torn journal at cut {}", cut);
            }
            prop_assert!(svc.verify("g").unwrap(), "certificate at cut {cut}");
            // The recovered registry keeps serving and journaling.
            let n = g.num_nodes();
            if n >= 2 {
                let _ = svc.insert_edge("g", 0, 1); // may exist: error is fine
            }
        }
    }

    /// Kill (drop without save) + reopen after every prefix of a stream
    /// equals the never-restarted process: the journal alone carries the
    /// maintained state across the restart.
    #[test]
    fn kill_and_reopen_equals_uninterrupted_process((g, ops) in arb_toggle_stream()) {
        let dir = TempDir::new("diff").unwrap();
        let data_a = dir.path().join("data-a");
        let data_b = dir.path().join("data-b");
        let svc_a = durable_service(&data_a, EvictionPolicy::ScanLifo, 4);
        let mut svc_b = Some(durable_service(&data_b, EvictionPolicy::ScanLifo, 4));
        svc_a
            .create("g", &dir.path().join("ga"), edges_of(&g), g.num_nodes())
            .unwrap();
        svc_b
            .as_ref()
            .unwrap()
            .create("g", &dir.path().join("gb"), edges_of(&g), g.num_nodes())
            .unwrap();

        let mut mirror_a = DynGraph::from_mem(&g);
        let mut mirror_b = DynGraph::from_mem(&g);
        for (i, (a, b)) in ops.iter().copied().enumerate() {
            toggle(&svc_a, &mut mirror_a, a, b);
            toggle(svc_b.as_ref().unwrap(), &mut mirror_b, a, b);
            if i % 5 == 2 {
                // SIGKILL stand-in: drop with no save, reopen from disk.
                drop(svc_b.take());
                svc_b = Some(CoreService::open_catalog(&data_b).unwrap());
            }
        }
        let svc_b = svc_b.unwrap();
        prop_assert_eq!(svc_a.cores("g").unwrap(), svc_b.cores("g").unwrap());
        prop_assert_eq!(svc_a.kmax("g").unwrap(), svc_b.kmax("g").unwrap());
        let oracle = oracle_cores(&mirror_a.to_mem());
        prop_assert_eq!(&svc_b.cores("g").unwrap(), &oracle);
        prop_assert!(svc_b.verify("g").unwrap());
        // The Eq. 2 invariant survives recovery (replay runs the real
        // maintenance algorithms, not a state transplant).
        let violation = svc_b
            .with_graph("g", |idx| {
                let state = idx.maintained_state().clone();
                state.check_cnt_invariant(idx.graph_mut())
            })
            .unwrap();
        prop_assert_eq!(violation, None);
    }
}

/// The acceptance differential at a fixed, denser workload: both eviction
/// policies, seeded stream, restarts at arbitrary points — bit-identical
/// `cores`/`kmax` vs the never-restarted process, and the reopen's charged
/// reads strictly below a fresh decomposition's.
#[test]
fn restart_differential_across_policies_with_reopen_cost_bound() {
    for policy in [EvictionPolicy::Lru, EvictionPolicy::ScanLifo] {
        let mut rng = Lcg::new(0xD00D + policy as u64);
        let n = 400u32;
        let g = MemGraph::from_edges(testutil::random_edges(&mut rng, n, 1200), n);
        let dir = TempDir::new("acc").unwrap();
        let data_a = dir.path().join("data-a");
        let data_b = dir.path().join("data-b");
        let svc_a = durable_service(&data_a, policy, 6);
        let mut svc_b = Some(durable_service(&data_b, policy, 6));
        svc_a
            .create("g", &dir.path().join("ga"), edges_of(&g), n)
            .unwrap();
        svc_b
            .as_ref()
            .unwrap()
            .create("g", &dir.path().join("gb"), edges_of(&g), n)
            .unwrap();

        let mut mirror = DynGraph::from_mem(&g);
        let mut mirror_b = DynGraph::from_mem(&g);
        for step in 0..80 {
            let (a, b) = (rng.below(n), rng.below(n));
            toggle(&svc_a, &mut mirror, a, b);
            toggle(svc_b.as_ref().unwrap(), &mut mirror_b, a, b);
            if step == 17 || step == 40 || step == 71 {
                drop(svc_b.take());
                let reopened = CoreService::open_catalog(&data_b).unwrap();
                assert_eq!(reopened.pool().policy(), policy, "policy restored");
                svc_b = Some(reopened);
            }
        }
        let svc_b = svc_b.unwrap();
        assert_eq!(
            svc_a.cores("g").unwrap(),
            svc_b.cores("g").unwrap(),
            "{policy:?}: cores must be bit-identical across restarts"
        );
        assert_eq!(svc_a.kmax("g").unwrap(), svc_b.kmax("g").unwrap());
        assert_eq!(svc_a.cores("g").unwrap(), oracle_cores(&mirror.to_mem()));
        assert!(svc_a.verify("g").unwrap() && svc_b.verify("g").unwrap());
        // The strict reopen-vs-decomposition I/O bound lives in
        // `reopen_charges_strictly_less_than_redecomposition`, on a graph
        // large enough that the comparison has teeth (this one's whole
        // working set is a handful of blocks).
    }
}

/// Reopen cost on a graph large enough that the bound has teeth: recovery
/// after a checkpoint is a small constant number of blocks; even with a
/// journal tail it stays strictly below re-decomposition.
#[test]
fn reopen_charges_strictly_less_than_redecomposition() {
    // A web-like R-MAT graph: skewed degrees keep maintenance local (the
    // paper's regime), so a short journal tail replays a handful of
    // blocks while decomposition must scan every one.
    let params = graphgen::Rmat::web(11);
    let n = params.num_nodes();
    let edges = graphgen::rmat_edges(params, 40_000, 0xBEEF);
    let dir = TempDir::new("cost").unwrap();
    let data = dir.path().join("data");
    let svc = durable_service(&data, EvictionPolicy::ScanLifo, 8);
    svc.create("g", &dir.path().join("g"), edges.iter().copied(), n)
        .unwrap();
    let decompose_ios = svc
        .with_graph("g", |idx| Ok(idx.decompose_stats().io.read_ios))
        .unwrap();

    let mut rng = Lcg::new(0xCAFE);
    let mirror = MemGraph::from_edges(edges.iter().copied(), n);
    let mut mirror = DynGraph::from_mem(&mirror);
    // 21 real ops at checkpoint_every = 8: checkpoints land at 8 and 16,
    // leaving a journal tail of 5 ops — a realistic kill window whose
    // replay touches a handful of adjacency blocks, far under a scan.
    let mut real_ops = 0;
    while real_ops < 21 {
        let (a, b) = (rng.below(n), rng.below(n));
        if toggle(&svc, &mut mirror, a, b) {
            real_ops += 1;
        }
    }

    // Variant 1: the 5-op journal tail is replayed at reopen.
    drop(svc);
    let svc = CoreService::open_catalog(&data).unwrap();
    let reopen_with_tail = svc.io("g").unwrap().read_ios;
    assert!(
        reopen_with_tail < decompose_ios,
        "reopen with journal tail charged {reopen_with_tail} vs decomposition {decompose_ios}"
    );
    assert_eq!(svc.cores("g").unwrap(), oracle_cores(&mirror.to_mem()));

    // Variant 2: checkpointed shutdown — recovery replays nothing and
    // should land far below (checkpoint scan + header blocks only).
    svc.save_all().unwrap();
    drop(svc);
    let svc = CoreService::open_catalog(&data).unwrap();
    let reopen_clean = svc.io("g").unwrap().read_ios;
    assert!(
        reopen_clean * 2 < decompose_ios,
        "clean reopen charged {reopen_clean}, expected well under decomposition {decompose_ios}"
    );
    assert_eq!(svc.cores("g").unwrap(), oracle_cores(&mirror.to_mem()));
    assert!(svc.verify("g").unwrap());
}

/// Checkpoint cadence is an amortisation knob, never a semantic one: the
/// same stream at `checkpoint_every` 1, 3 and ∞ recovers identical state.
#[test]
fn checkpoint_cadence_does_not_change_recovered_state() {
    let mut rng = Lcg::new(0x5EED);
    let n = 60u32;
    let g = MemGraph::from_edges(testutil::random_edges(&mut rng, n, 150), n);
    let stream: Vec<(u32, u32)> = (0..40).map(|_| (rng.below(n), rng.below(n))).collect();

    let mut recovered: Vec<Vec<u32>> = Vec::new();
    for (tag, every) in [("one", 1), ("three", 3), ("inf", u64::MAX)] {
        let dir = TempDir::new("cadence").unwrap();
        let data = dir.path().join(format!("data-{tag}"));
        let svc = durable_service(&data, EvictionPolicy::ScanLifo, every);
        svc.create("g", &dir.path().join("g"), edges_of(&g), n)
            .unwrap();
        let mut mirror = DynGraph::from_mem(&g);
        for &(a, b) in &stream {
            toggle(&svc, &mut mirror, a, b);
        }
        drop(svc);
        let svc = CoreService::open_catalog(&data).unwrap();
        assert_eq!(svc.cores("g").unwrap(), oracle_cores(&mirror.to_mem()));
        recovered.push(svc.cores("g").unwrap());
    }
    assert_eq!(recovered[0], recovered[1]);
    assert_eq!(recovered[1], recovered[2]);
}

/// A corrupted checkpoint or catalog surfaces as a structured error — a
/// durable service must never panic or silently serve garbage on damaged
/// artefacts.
#[test]
fn corrupted_artifacts_error_cleanly() {
    let dir = TempDir::new("corrupt").unwrap();
    let data = dir.path().join("data");
    {
        let svc = durable_service(&data, EvictionPolicy::ScanLifo, 4);
        svc.create(
            "g",
            &dir.path().join("g"),
            [(0u32, 1u32), (1, 2), (0, 2)],
            3,
        )
        .unwrap();
        svc.insert_edge("g", 0, 2).err(); // duplicate: rejected, not journaled
    }
    // Flip a byte inside the checkpoint body.
    let ckpt = data.join("g.ckpt");
    let mut bytes = std::fs::read(&ckpt).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&ckpt, &bytes).unwrap();
    let err = CoreService::open_catalog(&data).unwrap_err();
    assert!(err.is_corrupt(), "checkpoint bitrot: {err}");

    // Same for the catalog.
    bytes[mid] ^= 0x10;
    std::fs::write(&ckpt, &bytes).unwrap(); // restore
    assert!(CoreService::open_catalog(&data).is_ok());
    let cat = data.join("catalog.kc");
    let mut bytes = std::fs::read(&cat).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&cat, &bytes).unwrap();
    assert!(CoreService::open_catalog(&data).unwrap_err().is_corrupt());
}
