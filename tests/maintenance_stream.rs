//! Property tests for core maintenance: arbitrary update streams applied
//! through SemiInsert / SemiInsert* / SemiDelete* must equal recomputation
//! from scratch, preserve the Eq. 2 invariant, and agree across backends
//! (in-memory dynamic graph vs disk graph + update buffer).

use graphstore::{
    mem_to_disk, snapshot_mem, AdjacencyRead, BufferedGraph, DiskGraph, DynGraph, IoCounter,
    MemGraph, SharedPool, TempDir, DEFAULT_BLOCK_SIZE,
};
use proptest::prelude::*;
use semicore::{
    imcore, semi_delete_star, semi_insert, semi_insert_star, semicore_star_state, DecomposeOptions,
    SparseMarks,
};
use testutil::{arb_toggle_stream, oracle_cores};

#[derive(Debug, Clone, Copy)]
enum Op {
    Toggle(u32, u32),
}

fn arb_stream() -> impl Strategy<Value = (MemGraph, Vec<Op>)> {
    arb_toggle_stream()
        .prop_map(|(g, ops)| (g, ops.into_iter().map(|(a, b)| Op::Toggle(a, b)).collect()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn maintained_state_equals_scratch_recomputation((g, ops) in arb_stream()) {
        let mut dynamic = DynGraph::from_mem(&g);
        let (mut state, _) =
            semicore_star_state(&mut dynamic, &DecomposeOptions::default()).unwrap();
        let n = dynamic.num_nodes();
        let mut marks = SparseMarks::new(n);

        for op in ops {
            let Op::Toggle(a, b) = op;
            if a == b {
                continue;
            }
            if dynamic.has_edge(a, b) {
                semi_delete_star(&mut dynamic, &mut state, a, b).unwrap();
            } else {
                semi_insert_star(&mut dynamic, &mut state, &mut marks, a, b).unwrap();
            }
            let oracle = imcore(&dynamic.to_mem());
            prop_assert_eq!(&state.core, &oracle.core);
            prop_assert_eq!(state.check_cnt_invariant(&mut dynamic).unwrap(), None);
        }
    }

    #[test]
    fn two_phase_and_one_phase_insertions_agree((g, ops) in arb_stream()) {
        let mut d1 = DynGraph::from_mem(&g);
        let mut d2 = DynGraph::from_mem(&g);
        let (mut s1, _) = semicore_star_state(&mut d1, &DecomposeOptions::default()).unwrap();
        let mut s2 = s1.clone();
        let n = d1.num_nodes();
        let mut m1 = SparseMarks::new(n);
        let mut m2 = SparseMarks::new(n);

        for op in ops {
            let Op::Toggle(a, b) = op;
            if a == b || d1.has_edge(a, b) {
                continue;
            }
            let r1 = semi_insert(&mut d1, &mut s1, &mut m1, a, b).unwrap();
            let r2 = semi_insert_star(&mut d2, &mut s2, &mut m2, a, b).unwrap();
            prop_assert_eq!(&s1.core, &s2.core);
            prop_assert_eq!(&s1.cnt, &s2.cnt);
            // The pruned expansion never exceeds the unpruned one.
            prop_assert!(r2.candidates <= r1.candidates);
        }
    }

    #[test]
    fn disk_backend_maintenance_matches_in_memory((g, ops) in arb_stream()) {
        let dir = TempDir::new("maint").unwrap();
        let disk = mem_to_disk(
            &dir.path().join("g"),
            &g,
            IoCounter::new(DEFAULT_BLOCK_SIZE),
        ).unwrap();
        // Tiny buffer so flushes trigger mid-stream.
        let mut buffered = BufferedGraph::new(disk, 16);
        let mut dynamic = DynGraph::from_mem(&g);

        let (mut s_disk, _) =
            semicore_star_state(&mut buffered, &DecomposeOptions::default()).unwrap();
        let mut s_mem = s_disk.clone();
        let n = dynamic.num_nodes();
        let mut marks_d = SparseMarks::new(n);
        let mut marks_m = SparseMarks::new(n);

        for op in ops {
            let Op::Toggle(a, b) = op;
            if a == b {
                continue;
            }
            if dynamic.has_edge(a, b) {
                semi_delete_star(&mut buffered, &mut s_disk, a, b).unwrap();
                semi_delete_star(&mut dynamic, &mut s_mem, a, b).unwrap();
            } else {
                semi_insert_star(&mut buffered, &mut s_disk, &mut marks_d, a, b).unwrap();
                semi_insert_star(&mut dynamic, &mut s_mem, &mut marks_m, a, b).unwrap();
            }
            prop_assert_eq!(&s_disk.core, &s_mem.core);
        }
        // The merged disk view equals the in-memory mirror.
        let snap = snapshot_mem(&mut buffered).unwrap();
        prop_assert_eq!(snap, dynamic.to_mem());
    }

    #[test]
    fn two_graphs_sharing_one_pool_maintain_independently((ga, ops_a) in arb_stream(),
                                                          (gb, ops_b) in arb_stream()) {
        // Interleaved insert/delete streams applied to two graphs whose
        // disk blocks live in ONE shared pool, with update-buffer flushes
        // forced mid-stream (capacity 16): after every batch each graph
        // must equal recomputation from scratch — the neighbour's traffic,
        // evictions and flush invalidations included.
        let dir = TempDir::new("maint2").unwrap();
        let pool = SharedPool::new(DEFAULT_BLOCK_SIZE, 8 * DEFAULT_BLOCK_SIZE as u64).unwrap();
        let mut served = Vec::new();
        for (tag, g) in [("a", &ga), ("b", &gb)] {
            let base = dir.path().join(tag);
            mem_to_disk(&base, g, IoCounter::new(DEFAULT_BLOCK_SIZE)).unwrap();
            let disk = DiskGraph::open_pooled(
                &base,
                IoCounter::new(DEFAULT_BLOCK_SIZE),
                &pool,
                1 << 20,
            )
            .unwrap();
            // Tiny buffer so flushes (rewrite + pooled invalidation) trigger.
            let mut buffered = BufferedGraph::new(disk, 16);
            let (state, _) =
                semicore_star_state(&mut buffered, &DecomposeOptions::default()).unwrap();
            let n = buffered.num_nodes();
            let mirror = DynGraph::from_mem(g);
            served.push((buffered, state, SparseMarks::new(n), mirror));
        }

        // Interleave the two streams batch by batch (batches of 4 ops).
        let streams = [ops_a, ops_b];
        let longest = streams[0].len().max(streams[1].len());
        let mut cursor = 0usize;
        while cursor < longest {
            for (which, ops) in streams.iter().enumerate() {
                let (buffered, state, marks, mirror) = &mut served[which];
                for &Op::Toggle(a, b) in ops.iter().skip(cursor).take(4) {
                    if a == b {
                        continue;
                    }
                    if mirror.has_edge(a, b) {
                        semi_delete_star(buffered, state, a, b).unwrap();
                        mirror.delete_edge(a, b).unwrap();
                    } else {
                        semi_insert_star(buffered, state, marks, a, b).unwrap();
                        mirror.insert_edge(a, b).unwrap();
                    }
                }
                // Scratch recomputation after every batch.
                let oracle = oracle_cores(&mirror.to_mem());
                prop_assert_eq!(&state.core, &oracle, "graph {} diverged", which);
            }
            cursor += 4;
        }

        // The merged disk views both equal their mirrors, and the shared
        // pool held its budget throughout the flush/invalidate churn.
        for (buffered, _, _, mirror) in served.iter_mut() {
            let snap = snapshot_mem(buffered).unwrap();
            prop_assert_eq!(snap, mirror.to_mem());
        }
        prop_assert!(pool.resident_bytes() <= pool.budget_bytes());
    }

    #[test]
    fn theorem_3_1_deltas_bounded_by_one((g, ops) in arb_stream()) {
        // Single-edge updates change each core number by at most 1.
        let mut dynamic = DynGraph::from_mem(&g);
        let (mut state, _) =
            semicore_star_state(&mut dynamic, &DecomposeOptions::default()).unwrap();
        let n = dynamic.num_nodes();
        let mut marks = SparseMarks::new(n);
        for op in ops {
            let Op::Toggle(a, b) = op;
            if a == b {
                continue;
            }
            let before = state.core.clone();
            if dynamic.has_edge(a, b) {
                semi_delete_star(&mut dynamic, &mut state, a, b).unwrap();
                for (b4, now) in before.iter().zip(&state.core) {
                    prop_assert!(*b4 == *now || *b4 == *now + 1);
                }
            } else {
                semi_insert_star(&mut dynamic, &mut state, &mut marks, a, b).unwrap();
                for (b4, now) in before.iter().zip(&state.core) {
                    prop_assert!(*now == *b4 || *now == *b4 + 1);
                }
            }
        }
    }
}
