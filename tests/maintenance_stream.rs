//! Property tests for core maintenance: arbitrary update streams applied
//! through SemiInsert / SemiInsert* / SemiDelete* must equal recomputation
//! from scratch, preserve the Eq. 2 invariant, and agree across backends
//! (in-memory dynamic graph vs disk graph + update buffer).

use graphstore::{
    mem_to_disk, snapshot_mem, BufferedGraph, DynGraph, IoCounter, MemGraph, TempDir,
    DEFAULT_BLOCK_SIZE,
};
use proptest::prelude::*;
use semicore::{
    imcore, semi_delete_star, semi_insert, semi_insert_star, semicore_star_state, DecomposeOptions,
    SparseMarks,
};

#[derive(Debug, Clone, Copy)]
enum Op {
    Toggle(u32, u32),
}

fn arb_stream() -> impl Strategy<Value = (MemGraph, Vec<Op>)> {
    (3u32..60, 0usize..150).prop_flat_map(|(n, m)| {
        let edges = proptest::collection::vec((0..n, 0..n), m);
        let ops = proptest::collection::vec((0..n, 0..n), 0usize..40);
        (edges, ops).prop_map(move |(e, o)| {
            (
                MemGraph::from_edges(e, n),
                o.into_iter().map(|(a, b)| Op::Toggle(a, b)).collect(),
            )
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn maintained_state_equals_scratch_recomputation((g, ops) in arb_stream()) {
        let mut dynamic = DynGraph::from_mem(&g);
        let (mut state, _) =
            semicore_star_state(&mut dynamic, &DecomposeOptions::default()).unwrap();
        let n = dynamic.num_nodes();
        let mut marks = SparseMarks::new(n);

        for op in ops {
            let Op::Toggle(a, b) = op;
            if a == b {
                continue;
            }
            if dynamic.has_edge(a, b) {
                semi_delete_star(&mut dynamic, &mut state, a, b).unwrap();
            } else {
                semi_insert_star(&mut dynamic, &mut state, &mut marks, a, b).unwrap();
            }
            let oracle = imcore(&dynamic.to_mem());
            prop_assert_eq!(&state.core, &oracle.core);
            prop_assert_eq!(state.check_cnt_invariant(&mut dynamic).unwrap(), None);
        }
    }

    #[test]
    fn two_phase_and_one_phase_insertions_agree((g, ops) in arb_stream()) {
        let mut d1 = DynGraph::from_mem(&g);
        let mut d2 = DynGraph::from_mem(&g);
        let (mut s1, _) = semicore_star_state(&mut d1, &DecomposeOptions::default()).unwrap();
        let mut s2 = s1.clone();
        let n = d1.num_nodes();
        let mut m1 = SparseMarks::new(n);
        let mut m2 = SparseMarks::new(n);

        for op in ops {
            let Op::Toggle(a, b) = op;
            if a == b || d1.has_edge(a, b) {
                continue;
            }
            let r1 = semi_insert(&mut d1, &mut s1, &mut m1, a, b).unwrap();
            let r2 = semi_insert_star(&mut d2, &mut s2, &mut m2, a, b).unwrap();
            prop_assert_eq!(&s1.core, &s2.core);
            prop_assert_eq!(&s1.cnt, &s2.cnt);
            // The pruned expansion never exceeds the unpruned one.
            prop_assert!(r2.candidates <= r1.candidates);
        }
    }

    #[test]
    fn disk_backend_maintenance_matches_in_memory((g, ops) in arb_stream()) {
        let dir = TempDir::new("maint").unwrap();
        let disk = mem_to_disk(
            &dir.path().join("g"),
            &g,
            IoCounter::new(DEFAULT_BLOCK_SIZE),
        ).unwrap();
        // Tiny buffer so flushes trigger mid-stream.
        let mut buffered = BufferedGraph::new(disk, 16);
        let mut dynamic = DynGraph::from_mem(&g);

        let (mut s_disk, _) =
            semicore_star_state(&mut buffered, &DecomposeOptions::default()).unwrap();
        let mut s_mem = s_disk.clone();
        let n = dynamic.num_nodes();
        let mut marks_d = SparseMarks::new(n);
        let mut marks_m = SparseMarks::new(n);

        for op in ops {
            let Op::Toggle(a, b) = op;
            if a == b {
                continue;
            }
            if dynamic.has_edge(a, b) {
                semi_delete_star(&mut buffered, &mut s_disk, a, b).unwrap();
                semi_delete_star(&mut dynamic, &mut s_mem, a, b).unwrap();
            } else {
                semi_insert_star(&mut buffered, &mut s_disk, &mut marks_d, a, b).unwrap();
                semi_insert_star(&mut dynamic, &mut s_mem, &mut marks_m, a, b).unwrap();
            }
            prop_assert_eq!(&s_disk.core, &s_mem.core);
        }
        // The merged disk view equals the in-memory mirror.
        let snap = snapshot_mem(&mut buffered).unwrap();
        prop_assert_eq!(snap, dynamic.to_mem());
    }

    #[test]
    fn theorem_3_1_deltas_bounded_by_one((g, ops) in arb_stream()) {
        // Single-edge updates change each core number by at most 1.
        let mut dynamic = DynGraph::from_mem(&g);
        let (mut state, _) =
            semicore_star_state(&mut dynamic, &DecomposeOptions::default()).unwrap();
        let n = dynamic.num_nodes();
        let mut marks = SparseMarks::new(n);
        for op in ops {
            let Op::Toggle(a, b) = op;
            if a == b {
                continue;
            }
            let before = state.core.clone();
            if dynamic.has_edge(a, b) {
                semi_delete_star(&mut dynamic, &mut state, a, b).unwrap();
                for (b4, now) in before.iter().zip(&state.core) {
                    prop_assert!(*b4 == *now || *b4 == *now + 1);
                }
            } else {
                semi_insert_star(&mut dynamic, &mut state, &mut marks, a, b).unwrap();
                for (b4, now) in before.iter().zip(&state.core) {
                    prop_assert!(*now == *b4 || *now == *b4 + 1);
                }
            }
        }
    }
}
