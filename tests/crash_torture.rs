//! Crash-point torture matrix over the durable serving layer.
//!
//! A maintenance stream (graph creation, edge toggles, explicit saves on
//! two tenants) first runs fault-free through a counting [`FaultVfs`] to
//! enumerate every durability sync point — file fsyncs, renames and
//! directory fsyncs. The stream is then replayed once per sync point with
//! a crash-stop injected immediately before it: every filesystem
//! operation after the crash fails, exactly as if the process had been
//! killed there. Each crashed directory is reopened through the ordinary
//! production path ([`CoreService::open_catalog`], real filesystem) and
//! the recovered state must equal the replica of the acknowledged prefix,
//! or that prefix plus the single in-flight operation — never a third
//! state — with the Theorem 4.1 certificate holding and `fsck` clean.
//!
//! A second test covers fail-safe multi-tenant serving: an injected
//! `ENOSPC` on one tenant must surface as a typed error and degrade that
//! graph alone to read-only — committed state keeps serving, mutations
//! are refused, and a successful space probe promotes it back — while
//! the other tenant is untouched; injected bit-rot in the degraded
//! tenant's base tables is then caught by `fsck` and correctly reported
//! as unrepairable.

use std::collections::{BTreeMap, BTreeSet};
use std::io::{Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use graphstore::{
    EvictionPolicy, FaultPlan, FaultVfs, GroupCommitOptions, MemGraph, TempDir, Vfs,
    DEFAULT_BLOCK_SIZE,
};
use kcore_suite::{CoreService, DurableOptions};
use semicore::{MaintainOp, ScanExecutor};
use testutil::oracle_cores;

const BUDGET: u64 = 4 << 20;
const ALPHA: &str = "alpha";
const BETA: &str = "beta";

/// One step of the torture scenario's maintenance stream.
#[derive(Clone, Copy, Debug)]
enum Step {
    Create(&'static str),
    Insert(&'static str, u32, u32),
    Delete(&'static str, u32, u32),
    Save(&'static str),
}

/// The deterministic workload: two base graphs plus a step script whose
/// inserts and deletes are valid by construction (fresh pairs inserted,
/// present edges deleted), so every step acks on a fault-free run.
struct Scenario {
    alpha: Vec<(u32, u32)>,
    alpha_nodes: u32,
    beta: Vec<(u32, u32)>,
    beta_nodes: u32,
    steps: Vec<Step>,
}

fn normalized(raw: impl IntoIterator<Item = (u32, u32)>) -> Vec<(u32, u32)> {
    let mut set = BTreeSet::new();
    for (u, v) in raw {
        if u != v {
            set.insert((u.min(v), u.max(v)));
        }
    }
    set.into_iter().collect()
}

/// Canonical pairs over `0..n` absent from `set`, smallest first.
fn fresh_edges(set: &BTreeSet<(u32, u32)>, n: u32, count: usize) -> Vec<(u32, u32)> {
    let mut out = Vec::with_capacity(count);
    'outer: for u in 0..n {
        for v in (u + 1)..n {
            if !set.contains(&(u, v)) {
                out.push((u, v));
                if out.len() == count {
                    break 'outer;
                }
            }
        }
    }
    assert_eq!(out.len(), count, "graph too dense for {count} fresh edges");
    out
}

fn scenario() -> Scenario {
    let rmat = graphgen::Rmat::web(6);
    let alpha_nodes = rmat.num_nodes();
    let alpha = normalized(graphgen::rmat_edges(rmat, 160, 33));
    let beta_nodes = 40;
    let beta = normalized(graphgen::gnm(beta_nodes, 90, 11));

    let aset: BTreeSet<(u32, u32)> = alpha.iter().copied().collect();
    let bset: BTreeSet<(u32, u32)> = beta.iter().copied().collect();
    let af = fresh_edges(&aset, alpha_nodes, 3);
    let bf = fresh_edges(&bset, beta_nodes, 2);
    let (ad, bd) = (alpha[alpha.len() / 2], beta[beta.len() / 3]);

    let steps = vec![
        Step::Create(ALPHA),
        Step::Create(BETA),
        Step::Insert(ALPHA, af[0].0, af[0].1),
        Step::Delete(ALPHA, ad.0, ad.1),
        Step::Insert(BETA, bf[0].0, bf[0].1),
        Step::Save(ALPHA),
        Step::Delete(BETA, bd.0, bd.1),
        Step::Insert(ALPHA, af[1].0, af[1].1),
        Step::Insert(BETA, bf[1].0, bf[1].1),
        // Toggle: remove the edge inserted at step 2 again.
        Step::Delete(ALPHA, af[0].0, af[0].1),
        Step::Save(BETA),
        Step::Insert(ALPHA, af[2].0, af[2].1),
    ];
    Scenario {
        alpha,
        alpha_nodes,
        beta,
        beta_nodes,
        steps,
    }
}

impl Scenario {
    fn base_of(&self, name: &str) -> (&[(u32, u32)], u32) {
        match name {
            ALPHA => (&self.alpha, self.alpha_nodes),
            _ => (&self.beta, self.beta_nodes),
        }
    }

    /// The oracle world after the first `len` steps: graph name → core
    /// numbers, computed by the in-memory reference decomposition over a
    /// replica edge set.
    fn world(&self, len: usize) -> BTreeMap<String, Vec<u32>> {
        let mut sets: BTreeMap<&str, BTreeSet<(u32, u32)>> = BTreeMap::new();
        for step in &self.steps[..len] {
            match *step {
                Step::Create(name) => {
                    let (base, _) = self.base_of(name);
                    sets.insert(name, base.iter().copied().collect());
                }
                Step::Insert(name, u, v) => {
                    sets.get_mut(name).unwrap().insert((u, v));
                }
                Step::Delete(name, u, v) => {
                    sets.get_mut(name).unwrap().remove(&(u, v));
                }
                Step::Save(_) => {}
            }
        }
        sets.into_iter()
            .map(|(name, set)| {
                let (_, n) = self.base_of(name);
                let mem = MemGraph::from_edges(set, n);
                (name.to_string(), oracle_cores(&mem))
            })
            .collect()
    }
}

/// Drive the scenario against a fresh durable directory through `vfs`.
/// Returns whether the service itself was created, and which steps acked.
fn run_scenario(vfs: Arc<dyn Vfs>, data: &Path, bases: &Path, sc: &Scenario) -> (bool, Vec<bool>) {
    let opts = DurableOptions {
        checkpoint_every: 3,
        group_commit: None,
        ..Default::default()
    };
    let svc = match CoreService::create_durable_with_vfs(
        data,
        DEFAULT_BLOCK_SIZE,
        BUDGET,
        EvictionPolicy::ScanLifo,
        ScanExecutor::Sequential,
        opts,
        vfs,
    ) {
        Ok(svc) => svc,
        Err(_) => return (false, vec![false; sc.steps.len()]),
    };
    let acked = sc
        .steps
        .iter()
        .map(|step| match *step {
            Step::Create(name) => {
                let (base, n) = sc.base_of(name);
                svc.create(name, &bases.join(name), base.iter().copied(), n)
                    .is_ok()
            }
            Step::Insert(name, u, v) => svc.insert_edge(name, u, v).is_ok(),
            Step::Delete(name, u, v) => svc.delete_edge(name, u, v).is_ok(),
            Step::Save(name) => svc.save(name).is_ok(),
        })
        .collect();
    (true, acked)
}

/// The recovered world as served: graph name → core numbers, with the
/// fixpoint certificate checked on every graph.
fn observed_world(svc: &CoreService) -> BTreeMap<String, Vec<u32>> {
    let mut out = BTreeMap::new();
    for name in svc.graph_names() {
        assert!(
            svc.verify(&name).unwrap(),
            "recovered graph {name:?} fails the fixpoint certificate"
        );
        out.insert(name.clone(), svc.cores(&name).unwrap());
    }
    out
}

/// The tentpole: enumerate every sync point of the stream, crash-stop
/// before each one, recover through the production path, and demand the
/// acked-prefix ("old") or acked-prefix-plus-in-flight ("new") state —
/// never a third — with fsck clean afterwards.
#[test]
fn crash_point_torture_matrix() {
    let sc = scenario();

    // Count pass: fault-free, but through the FaultVfs so every sync
    // point (fsync, rename, directory fsync) is numbered.
    let dir = TempDir::new("torture-count").unwrap();
    let (data, bases) = (dir.path().join("data"), dir.path().join("bases"));
    std::fs::create_dir_all(&bases).unwrap();
    let fault = FaultVfs::new(FaultPlan::default());
    let (created, acked) = run_scenario(Arc::clone(&fault) as Arc<dyn Vfs>, &data, &bases, &sc);
    assert!(
        created && acked.iter().all(|&a| a),
        "fault-free run must ack"
    );
    let total = fault.sync_events();
    // Keep the matrix bounded so the CI job stays fast; a jump here means
    // a hot path grew extra fsyncs and should be looked at anyway.
    assert!(
        (20..=200).contains(&total),
        "sync-point count {total} outside the expected band"
    );
    let full = sc.world(sc.steps.len());
    let reopened = CoreService::open_catalog(&data).unwrap();
    assert_eq!(observed_world(&reopened), full, "clean-run recovery");
    drop(reopened);

    for k in 1..=total {
        let dir = TempDir::new("torture-crash").unwrap();
        let (data, bases) = (dir.path().join("data"), dir.path().join("bases"));
        std::fs::create_dir_all(&bases).unwrap();
        let fault = FaultVfs::new(FaultPlan {
            crash_before_sync: Some(k),
            ..FaultPlan::default()
        });
        let (created, acked) = run_scenario(Arc::clone(&fault) as Arc<dyn Vfs>, &data, &bases, &sc);
        assert!(fault.crashed(), "crash point {k} never fired");

        // Acks must be a clean prefix: once the crash hits, every later
        // step fails (each one needs at least a journal or table write).
        let j = acked.iter().position(|&a| !a).unwrap_or(sc.steps.len());
        assert!(
            acked[j..].iter().all(|&a| !a),
            "crash {k}: acks not a prefix: {acked:?}"
        );
        if !created {
            assert_eq!(j, 0, "crash {k}: steps ran without a service");
        }

        // Recover with the REAL filesystem — the crash is over.
        match CoreService::open_catalog(&data) {
            Err(e) => assert!(
                !created,
                "crash {k}: reopen failed though create_durable acked: {e}"
            ),
            Ok(svc) => {
                let got = observed_world(&svc);
                let old = sc.world(j);
                let new = sc.world((j + 1).min(sc.steps.len()));
                assert!(
                    got == old || (created && got == new),
                    "crash {k} (step {j} in flight) recovered a third state:\n  \
                     got {got:?}\n  old {old:?}\n  new {new:?}"
                );
                drop(svc);
                // Recovery already truncated any torn journal tail, so the
                // directory must check out clean without --repair.
                let report = kcore_suite::fsck(&data, false).unwrap();
                assert!(
                    report.clean(),
                    "crash {k}: fsck after recovery: {:?}",
                    report.findings
                );
            }
        }
    }
}

/// Fail-safe multi-tenant serving: one tenant's injected `ENOSPC`
/// degrades that graph alone to read-only (queries keep serving, the
/// probe promotes it back once space returns); bit-rot in its base
/// tables is caught by fsck (and correctly refused by `--repair`) while
/// the healthy tenant keeps serving through it all.
#[test]
fn quarantine_isolates_tenant_and_fsck_catches_bit_rot() {
    let dir = TempDir::new("quarantine-rot").unwrap();
    let (data, bases) = (dir.path().join("data"), dir.path().join("bases"));
    std::fs::create_dir_all(&bases).unwrap();

    let fault = FaultVfs::new(FaultPlan::default());
    let svc = CoreService::create_durable_with_vfs(
        &data,
        DEFAULT_BLOCK_SIZE,
        BUDGET,
        EvictionPolicy::ScanLifo,
        ScanExecutor::Sequential,
        DurableOptions {
            checkpoint_every: 8,
            group_commit: None,
            ..Default::default()
        },
        Arc::clone(&fault) as Arc<dyn Vfs>,
    )
    .unwrap();
    let well = normalized(graphgen::gnm(32, 60, 5));
    let sick = normalized(graphgen::gnm(32, 60, 6));
    svc.create("well", &bases.join("well"), well.iter().copied(), 32)
        .unwrap();
    svc.create("sick", &bases.join("sick"), sick.iter().copied(), 32)
        .unwrap();

    // The disk fills: the next write on "sick" fails with a typed I/O
    // error (no panic) and trips its quarantine.
    let sick_set: BTreeSet<(u32, u32)> = sick.iter().copied().collect();
    let well_set: BTreeSet<(u32, u32)> = well.iter().copied().collect();
    let se = fresh_edges(&sick_set, 32, 1)[0];
    let we = fresh_edges(&well_set, 32, 2);
    fault.set_plan(FaultPlan {
        enospc_after: Some(0),
        ..FaultPlan::default()
    });
    let err = svc.insert_edge("sick", se.0, se.1).unwrap_err();
    assert!(
        matches!(err, graphstore::Error::Io(_)),
        "typed error: {err}"
    );

    // Disk pressure clears, but the degradation is sticky until a probe
    // proves space returned: mutations are refused with a typed
    // read-only error while queries keep serving the committed state —
    // and the neighbour is untouched throughout.
    fault.set_plan(FaultPlan::default());
    assert!(svc
        .insert_edge("sick", se.0, se.1)
        .unwrap_err()
        .is_read_only());
    svc.kmax("sick").unwrap();
    assert_eq!(
        svc.health("sick").unwrap().status,
        kcore_suite::HealthStatus::ReadOnly
    );
    assert!(svc.quarantine_reason("sick").unwrap().is_none());
    assert!(svc.quarantine_reason("well").unwrap().is_none());
    svc.insert_edge("well", we[0].0, we[0].1).unwrap();
    svc.insert_edge("well", we[1].0, we[1].1).unwrap();
    assert!(svc.verify("well").unwrap());

    // A successful probe (a real checkpoint) promotes the graph back to
    // read-write, and the refused mutation now lands.
    assert!(svc.probe_read_only("sick").unwrap());
    assert_eq!(
        svc.health("sick").unwrap().status,
        kcore_suite::HealthStatus::Healthy
    );
    svc.insert_edge("sick", se.0, se.1).unwrap();
    assert!(svc.verify("sick").unwrap());
    drop(svc);

    // Nothing actually landed during the ENOSPC window, so the directory
    // is clean...
    let report = kcore_suite::fsck(&data, false).unwrap();
    assert!(report.clean(), "pre-rot fsck: {:?}", report.findings);

    // ...until bit-rot hits "sick"'s base edge table.
    let edges_file = bases.join("sick.edges");
    let len = std::fs::metadata(&edges_file).unwrap().len();
    let mut f = std::fs::OpenOptions::new()
        .write(true)
        .open(&edges_file)
        .unwrap();
    f.seek(SeekFrom::Start(len / 2)).unwrap();
    f.write_all(&[0xff; 16]).unwrap();
    f.sync_all().unwrap();
    drop(f);

    // fsck pins the damage on "sick" alone, and --repair refuses to
    // invent base-table contents: the finding stays unrepaired.
    for repair in [false, true] {
        let report = kcore_suite::fsck(&data, repair).unwrap();
        assert!(!report.findings.is_empty(), "bit-rot must be found");
        assert!(
            report
                .findings
                .iter()
                .all(|f| f.graph.as_deref() == Some("sick") && !f.repaired),
            "only sick, never repaired: {:?}",
            report.findings
        );
    }

    // The healthy tenant still recovers and serves.
    let svc = CoreService::open_catalog(&data).unwrap();
    let mut expect: BTreeSet<(u32, u32)> = well_set.clone();
    expect.insert(we[0]);
    expect.insert(we[1]);
    let mem = MemGraph::from_edges(expect, 32);
    assert_eq!(svc.cores("well").unwrap(), oracle_cores(&mem));
    assert!(svc.verify("well").unwrap());
}

// ---------------------------------------------------------------------------
// Group-commit crash stream: the torture matrix again, but with journal
// fsyncs batched behind `GroupCommitOptions` and the ops arriving as
// `apply_batch` groups. The acknowledgement contract must not weaken: a
// batch that returned `Ok` is an *acked* batch and recovers in full at
// every crash point; the single in-flight batch may recover any prefix of
// itself (including empty) — never a suffix, never a partially-acked
// earlier batch, never a third state.
// ---------------------------------------------------------------------------

const GC: &str = "gc";
const GC_NODES: u32 = 36;

/// The batched stream: each batch is valid by construction when every
/// prior batch and every earlier op of the same batch has been applied.
fn gc_stream() -> (Vec<(u32, u32)>, Vec<Vec<MaintainOp>>) {
    let base = normalized(graphgen::gnm(GC_NODES, 80, 21));
    let mut set: BTreeSet<(u32, u32)> = base.iter().copied().collect();
    let mut batches = Vec::new();
    let mut lcg = 0x9E3779B97F4A7C15u64;
    for round in 0..6 {
        let mut batch = Vec::new();
        for _ in 0..(2 + round % 3) {
            // Alternate fresh inserts and deletes of present edges, driven
            // by a tiny deterministic generator.
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
            if !lcg.is_multiple_of(3) || set.len() < 4 {
                let e = fresh_edges(&set, GC_NODES, 1)[0];
                set.insert(e);
                batch.push(MaintainOp::Insert(e.0, e.1));
            } else {
                let i = (lcg as usize / 3) % set.len();
                let e = *set.iter().nth(i).unwrap();
                set.remove(&e);
                batch.push(MaintainOp::Delete(e.0, e.1));
            }
        }
        batches.push(batch);
    }
    (base, batches)
}

/// Core numbers after `base` plus `ops`, by the in-memory oracle.
fn gc_world(base: &[(u32, u32)], ops: &[MaintainOp]) -> Vec<u32> {
    let mut set: BTreeSet<(u32, u32)> = base.iter().copied().collect();
    for op in ops {
        match *op {
            MaintainOp::Insert(u, v) => {
                set.insert((u, v));
            }
            MaintainOp::Delete(u, v) => {
                set.remove(&(u, v));
            }
        }
    }
    oracle_cores(&MemGraph::from_edges(set, GC_NODES))
}

/// Drive the batched stream against a fresh group-commit directory.
/// Returns whether the graph was created, and which batches acked.
fn run_gc_stream(
    vfs: Arc<dyn Vfs>,
    data: &Path,
    bases: &Path,
    base: &[(u32, u32)],
    batches: &[Vec<MaintainOp>],
) -> (bool, Vec<bool>) {
    let opts = DurableOptions {
        checkpoint_every: 4,
        group_commit: Some(GroupCommitOptions {
            max_delay: Duration::ZERO,
        }),
        ..Default::default()
    };
    let svc = match CoreService::create_durable_with_vfs(
        data,
        DEFAULT_BLOCK_SIZE,
        BUDGET,
        EvictionPolicy::ScanLifo,
        ScanExecutor::Sequential,
        opts,
        vfs,
    ) {
        Ok(svc) => svc,
        Err(_) => return (false, vec![false; batches.len()]),
    };
    if svc
        .create(GC, &bases.join(GC), base.iter().copied(), GC_NODES)
        .is_err()
    {
        return (true, vec![false; batches.len()]);
    }
    let acked = batches
        .iter()
        .map(|batch| svc.apply_batch(GC, batch).is_ok())
        .collect();
    (true, acked)
}

// ---------------------------------------------------------------------------
// Compaction crash stream: a single tenant driven with a tiny
// `compact_after_edits` so the apply path folds tables + buffered edits
// into fresh generations several times mid-stream. Crash-stopping before
// every sync point of that run must recover exactly the acked prefix (or
// prefix plus the in-flight op) — compaction is state-transparent, so
// "pre-compaction" and "post-compaction" worlds serve identical cores and
// the two-state invariant is unchanged. Unlike the plain matrix, a crash
// between a generation's table renames and the catalog commit legitimately
// strands debris (orphaned `.gN` tables / checkpoints, stale `.rewrite`
// temps); fsck must find it all, `--repair` must sweep it, and the swept
// directory must check out clean and keep serving.
// ---------------------------------------------------------------------------

const CP: &str = "cg";
const CP_NODES: u32 = 30;

/// Base graph plus a toggle script long enough to drive several
/// generations at `compact_after_edits: 4` (two buffer entries per op).
fn cp_stream() -> (Vec<(u32, u32)>, Vec<MaintainOp>) {
    let base = normalized(graphgen::gnm(CP_NODES, 70, 77));
    let mut set: BTreeSet<(u32, u32)> = base.iter().copied().collect();
    let mut ops = Vec::new();
    for round in 0..8 {
        if round % 3 == 2 {
            let e = *set.iter().nth(set.len() / 2).unwrap();
            set.remove(&e);
            ops.push(MaintainOp::Delete(e.0, e.1));
        } else {
            let e = fresh_edges(&set, CP_NODES, 1)[0];
            set.insert(e);
            ops.push(MaintainOp::Insert(e.0, e.1));
        }
    }
    (base, ops)
}

/// Core numbers after `base` plus `ops`, by the in-memory oracle.
fn cp_world(base: &[(u32, u32)], ops: &[MaintainOp]) -> Vec<u32> {
    let mut set: BTreeSet<(u32, u32)> = base.iter().copied().collect();
    for op in ops {
        match *op {
            MaintainOp::Insert(u, v) => {
                set.insert((u, v));
            }
            MaintainOp::Delete(u, v) => {
                set.remove(&(u, v));
            }
        }
    }
    oracle_cores(&MemGraph::from_edges(set, CP_NODES))
}

/// Drive the stream one op at a time with compaction armed to fire every
/// couple of ops. Returns whether the graph was created, and which ops
/// acked.
fn run_cp_stream(
    vfs: Arc<dyn Vfs>,
    data: &Path,
    bases: &Path,
    base: &[(u32, u32)],
    ops: &[MaintainOp],
) -> (bool, Vec<bool>) {
    let opts = DurableOptions {
        checkpoint_every: 100,
        group_commit: None,
        compact_after_edits: 4,
    };
    let svc = match CoreService::create_durable_with_vfs(
        data,
        DEFAULT_BLOCK_SIZE,
        BUDGET,
        EvictionPolicy::ScanLifo,
        ScanExecutor::Sequential,
        opts,
        vfs,
    ) {
        Ok(svc) => svc,
        Err(_) => return (false, vec![false; ops.len()]),
    };
    if svc
        .create(CP, &bases.join(CP), base.iter().copied(), CP_NODES)
        .is_err()
    {
        return (true, vec![false; ops.len()]);
    }
    let acked = ops
        .iter()
        .map(|op| match *op {
            MaintainOp::Insert(u, v) => svc.insert_edge(CP, u, v).is_ok(),
            MaintainOp::Delete(u, v) => svc.delete_edge(CP, u, v).is_ok(),
        })
        .collect();
    (true, acked)
}

#[test]
fn compaction_crash_points_recover_pre_or_post_state_and_fsck_sweeps_debris() {
    let (base, ops) = cp_stream();

    // Count pass: fault-free, numbering every sync point, and proving the
    // threshold actually drove multiple generations.
    let dir = TempDir::new("compact-count").unwrap();
    let (data, bases) = (dir.path().join("data"), dir.path().join("bases"));
    std::fs::create_dir_all(&bases).unwrap();
    let fault = FaultVfs::new(FaultPlan::default());
    let (created, acked) = run_cp_stream(
        Arc::clone(&fault) as Arc<dyn Vfs>,
        &data,
        &bases,
        &base,
        &ops,
    );
    assert!(
        created && acked.iter().all(|&a| a),
        "fault-free run must ack"
    );
    let total = fault.sync_events();
    assert!(
        (20..=300).contains(&total),
        "sync-point count {total} outside the expected band"
    );
    let reopened = CoreService::open_catalog(&data).unwrap();
    assert!(
        reopened.generation(CP).unwrap() >= 2,
        "threshold 4 over {} ops must compact more than once",
        ops.len()
    );
    assert_eq!(
        reopened.cores(CP).unwrap(),
        cp_world(&base, &ops),
        "clean-run recovery"
    );
    drop(reopened);

    for k in 1..=total {
        let dir = TempDir::new("compact-crash").unwrap();
        let (data, bases) = (dir.path().join("data"), dir.path().join("bases"));
        std::fs::create_dir_all(&bases).unwrap();
        let fault = FaultVfs::new(FaultPlan {
            crash_before_sync: Some(k),
            ..FaultPlan::default()
        });
        let (created, acked) = run_cp_stream(
            Arc::clone(&fault) as Arc<dyn Vfs>,
            &data,
            &bases,
            &base,
            &ops,
        );
        assert!(fault.crashed(), "crash point {k} never fired");

        let j = acked.iter().position(|&a| !a).unwrap_or(ops.len());
        assert!(
            acked[j..].iter().all(|&a| !a),
            "crash {k}: acks not a prefix: {acked:?}"
        );

        match CoreService::open_catalog(&data) {
            Err(e) => assert!(
                !created,
                "crash {k}: reopen failed though create_durable acked: {e}"
            ),
            Ok(svc) => {
                if !svc.graph_names().iter().any(|n| n == CP) {
                    assert_eq!(j, 0, "crash {k}: acked ops on an unrecovered graph");
                    continue;
                }
                assert!(svc.verify(CP).unwrap(), "crash {k}: certificate");
                let got = svc.cores(CP).unwrap();
                let old = cp_world(&base, &ops[..j]);
                let new = cp_world(&base, &ops[..(j + 1).min(ops.len())]);
                assert!(
                    got == old || got == new,
                    "crash {k} (op {j} in flight) recovered a third state:\n  \
                     got {got:?}\n  old {old:?}\n  new {new:?}"
                );
                drop(svc);

                // A crash inside a compaction's pre-commit window strands
                // orphaned generation files; recovery itself never touches
                // them (the manifest is the source of truth), so fsck must
                // find them, --repair must delete every one, and the swept
                // directory must then be clean.
                let report = kcore_suite::fsck(&data, true).unwrap();
                assert!(
                    report.findings.iter().all(|f| f.repaired),
                    "crash {k}: unrepairable debris: {:?}",
                    report.findings
                );
                let report = kcore_suite::fsck(&data, false).unwrap();
                assert!(
                    report.clean(),
                    "crash {k}: fsck after repair: {:?}",
                    report.findings
                );

                // The sweep removed only debris: the directory still
                // recovers and serves the same world.
                let svc = CoreService::open_catalog(&data).unwrap();
                assert_eq!(svc.cores(CP).unwrap(), got, "crash {k}: post-sweep state");
                assert!(svc.verify(CP).unwrap(), "crash {k}: post-sweep certificate");
            }
        }
    }
}

#[test]
fn group_commit_crash_points_recover_acked_batches_or_in_flight_prefix() {
    let (base, batches) = gc_stream();
    let flat = |n: usize, p: usize| -> Vec<MaintainOp> {
        let mut ops: Vec<MaintainOp> = batches[..n].iter().flatten().copied().collect();
        ops.extend_from_slice(&batches[n][..p]);
        ops
    };

    // Count pass: fault-free, numbering every sync point.
    let dir = TempDir::new("gc-count").unwrap();
    let (data, bases) = (dir.path().join("data"), dir.path().join("bases"));
    std::fs::create_dir_all(&bases).unwrap();
    let fault = FaultVfs::new(FaultPlan::default());
    let (created, acked) = run_gc_stream(
        Arc::clone(&fault) as Arc<dyn Vfs>,
        &data,
        &bases,
        &base,
        &batches,
    );
    assert!(
        created && acked.iter().all(|&a| a),
        "fault-free run must ack"
    );
    let total = fault.sync_events();
    assert!(
        (5..=150).contains(&total),
        "sync-point count {total} outside the expected band"
    );
    let all_ops: Vec<MaintainOp> = batches.iter().flatten().copied().collect();
    let reopened = CoreService::open_catalog(&data).unwrap();
    assert_eq!(
        reopened.cores(GC).unwrap(),
        gc_world(&base, &all_ops),
        "clean-run recovery"
    );
    drop(reopened);

    for k in 1..=total {
        let dir = TempDir::new("gc-crash").unwrap();
        let (data, bases) = (dir.path().join("data"), dir.path().join("bases"));
        std::fs::create_dir_all(&bases).unwrap();
        let fault = FaultVfs::new(FaultPlan {
            crash_before_sync: Some(k),
            ..FaultPlan::default()
        });
        let (created, acked) = run_gc_stream(
            Arc::clone(&fault) as Arc<dyn Vfs>,
            &data,
            &bases,
            &base,
            &batches,
        );
        assert!(fault.crashed(), "crash point {k} never fired");

        // Acked batches must form a clean prefix.
        let j = acked.iter().position(|&a| !a).unwrap_or(batches.len());
        assert!(
            acked[j..].iter().all(|&a| !a),
            "crash {k}: batch acks not a prefix: {acked:?}"
        );

        match CoreService::open_catalog(&data) {
            Err(e) => assert!(
                !created,
                "crash {k}: reopen failed though create_durable acked: {e}"
            ),
            Ok(svc) => {
                if !svc.graph_names().iter().any(|n| n == GC) {
                    // The crash landed inside graph creation itself.
                    assert_eq!(j, 0, "crash {k}: acked batches on an unrecovered graph");
                    continue;
                }
                assert!(svc.verify(GC).unwrap(), "crash {k}: certificate");
                let got = svc.cores(GC).unwrap();
                // Allowed worlds: every acked batch in full, plus any
                // prefix of the single in-flight batch — never a suffix,
                // never a partially-recovered *acked* batch.
                let allowed: Vec<Vec<u32>> = if j < batches.len() {
                    (0..=batches[j].len())
                        .map(|p| gc_world(&base, &flat(j, p)))
                        .collect()
                } else {
                    vec![gc_world(&base, &all_ops)]
                };
                assert!(
                    allowed.contains(&got),
                    "crash {k} (batch {j} in flight) recovered a third state"
                );
                drop(svc);
                let report = kcore_suite::fsck(&data, false).unwrap();
                assert!(
                    report.clean(),
                    "crash {k}: fsck after recovery: {:?}",
                    report.findings
                );
            }
        }
    }
}
