//! The paper's worked examples, asserted end to end — every trace the text
//! gives is reproduced exactly (values, iteration counts and node
//! computation counts).

use graphstore::DynGraph;
use semicore::fixtures::{paper_example_graph, PAPER_EXAMPLE_CORES};
use semicore::{
    semi_delete_star, semi_insert, semi_insert_star, semicore_star_state, DecomposeOptions,
    SparseMarks,
};

#[test]
fn example_2_1_core_numbers() {
    let mut g = paper_example_graph();
    let d = semicore::imcore(&g);
    assert_eq!(d.core, PAPER_EXAMPLE_CORES);
    // "the induced subgraph of {v0, v1, v2, v3} is a 3-core"
    assert_eq!(d.kcore_nodes(3), vec![0, 1, 2, 3]);
    // "no 4-core exists in G"
    assert_eq!(d.kcore_size(4), 0);
    assert!(semicore::verify_exact(&mut g, &d.core).unwrap());
}

#[test]
fn example_4_1_semicore_36_computations_4_iterations() {
    let mut g = paper_example_graph();
    let d = semicore::semicore(&mut g, &DecomposeOptions::default()).unwrap();
    assert_eq!(d.stats.iterations, 4, "Fig. 2: terminates in 4 iterations");
    assert_eq!(d.stats.node_computations, 36, "9 nodes x 4 iterations");
}

#[test]
fn example_4_2_semicore_plus_23_computations() {
    let mut g = paper_example_graph();
    let d = semicore::semicore_plus(&mut g, &DecomposeOptions::default()).unwrap();
    assert_eq!(
        d.stats.node_computations, 23,
        "Example 4.2: reduces node computations from 36 to 23"
    );
}

#[test]
fn example_4_3_semicore_star_11_computations_3_iterations() {
    let mut g = paper_example_graph();
    let d = semicore::semicore_star(&mut g, &DecomposeOptions::default()).unwrap();
    assert_eq!(d.stats.iterations, 3, "Example 4.3: only 3 iterations");
    assert_eq!(
        d.stats.node_computations, 11,
        "Example 4.3: reduces node computations from 23 to 11"
    );
}

#[test]
fn example_4_3_cnt_of_v5_after_iteration_one_logic() {
    // After convergence, cnt follows Eq. 2; the mid-run value the paper
    // quotes (cnt(v5) = 2 after iteration 1) is asserted inside the unit
    // tests of semicore_star; here we check the converged counters.
    let mut g = paper_example_graph();
    let (state, _) = semicore_star_state(&mut g, &DecomposeOptions::default()).unwrap();
    assert_eq!(state.check_cnt_invariant(&mut g).unwrap(), None);
    // v5 (core 2): neighbours v3(3), v4(2), v6(2), v7(2), v8(1) -> 4.
    assert_eq!(state.cnt[5], 4);
}

#[test]
fn example_5_1_delete_then_5_2_and_5_3_inserts() {
    // The full §V narrative: delete (v0,v1), then insert (v4,v6), executed
    // with both insertion algorithms; SemiInsert does 12 computations on a
    // candidate set of 8, SemiInsert* does 5 on a live set of 5.
    let g = paper_example_graph();

    // SemiInsert path (Example 5.2).
    let mut d1 = DynGraph::from_mem(&g);
    let (mut s1, _) = semicore_star_state(&mut d1, &DecomposeOptions::default()).unwrap();
    let del = semi_delete_star(&mut d1, &mut s1, 0, 1).unwrap();
    assert_eq!(del.iterations, 1);
    assert_eq!(del.node_computations, 4, "Example 5.1: 4 node computations");
    assert_eq!(s1.core, vec![2, 2, 2, 2, 2, 2, 2, 2, 1]);

    let mut marks = SparseMarks::new(9);
    let ins = semi_insert(&mut d1, &mut s1, &mut marks, 4, 6).unwrap();
    assert_eq!(
        ins.node_computations, 12,
        "Example 5.2: 12 node computations"
    );
    assert_eq!(s1.core, vec![2, 2, 2, 3, 3, 3, 3, 2, 1]);

    // SemiInsert* path (Example 5.3).
    let mut d2 = DynGraph::from_mem(&g);
    let (mut s2, _) = semicore_star_state(&mut d2, &DecomposeOptions::default()).unwrap();
    semi_delete_star(&mut d2, &mut s2, 0, 1).unwrap();
    let ins = semi_insert_star(&mut d2, &mut s2, &mut marks, 4, 6).unwrap();
    assert_eq!(ins.iterations, 2, "Fig. 8: 2 iterations");
    assert_eq!(
        ins.node_computations, 5,
        "Example 5.3: decreases node computations from 12 to 5"
    );
    assert_eq!(s2.core, s1.core);
    assert_eq!(s2.cnt, s1.cnt, "both insertions leave identical counters");
}

#[test]
fn example_2_1_insertion_of_v7_v8() {
    // "When an edge (v7, v8) is inserted in G, core(v8) increases from 1 to
    // 2, and the core numbers of other nodes keep unchanged."
    let g = paper_example_graph();
    let mut dynamic = DynGraph::from_mem(&g);
    let (mut state, _) = semicore_star_state(&mut dynamic, &DecomposeOptions::default()).unwrap();
    let mut marks = SparseMarks::new(9);
    semi_insert_star(&mut dynamic, &mut state, &mut marks, 7, 8).unwrap();
    assert_eq!(state.core, vec![3, 3, 3, 3, 2, 2, 2, 2, 2]);
}

#[test]
fn theorem_4_2_memory_is_linear_in_nodes() {
    // SemiCore's reported memory must be Θ(n), independent of m.
    let sparse = graphstore::MemGraph::from_edges((0..999u32).map(|i| (i, i + 1)), 1000);
    let dense_edges: Vec<(u32, u32)> = (0..1000u32)
        .flat_map(|u| (0..8u32).map(move |j| (u, (u + j + 1) % 1000)))
        .collect();
    let dense = graphstore::MemGraph::from_edges(dense_edges, 1000);
    let opts = DecomposeOptions::default();
    let a = semicore::semicore(&mut sparse.clone(), &opts).unwrap();
    let b = semicore::semicore(&mut dense.clone(), &opts).unwrap();
    // Same n -> same asymptotic state; allow scratch-buffer slack.
    let ratio = b.stats.peak_memory_bytes as f64 / a.stats.peak_memory_bytes as f64;
    assert!(
        ratio < 1.5,
        "memory should not scale with m (ratio {ratio})"
    );
}
