//! Format-v3 (stream-vbyte groups) differential suite.
//!
//! The vectorised edge table must be invisible to every algorithm: the
//! same graph built in v1, v2 and v3 yields **bit-identical** cores and
//! Eq. 2 counters — decomposition and maintenance alike, at any worker
//! count, under either eviction policy, durable kill/reopen included —
//! while v3's charged `read_ios` stays strictly below v1 and tracks v2
//! within the two tables' size ratio at equal cache budget. Block
//! readahead gets the same treatment: identical decoded bytes and
//! bit-identical charged counters whether the pipeline is on or off.

use graphstore::{
    write_mem_graph_with, DiskGraph, EvictionPolicy, FormatVersion, GraphPaths, IoCounter,
    MemGraph, TempDir, DEFAULT_BLOCK_SIZE,
};
use kcore_suite::semicore::{
    semicore_plus_with, semicore_star_with, semicore_with, DecomposeOptions, ScanExecutor,
};
use kcore_suite::{CoreIndex, CoreService};
use testutil::{fixtures, oracle_cores, random_mem_graph, worker_counts, Lcg};

/// Write `g` in all three formats under `dir`, returning the bases.
fn write_triple(dir: &TempDir, g: &MemGraph, tag: &str) -> [std::path::PathBuf; 3] {
    let versions = [FormatVersion::V1, FormatVersion::V2, FormatVersion::V3];
    versions.map(|v| {
        let base = dir.path().join(format!("{tag}-{}", v.tag()));
        write_mem_graph_with(&base, g, IoCounter::new(DEFAULT_BLOCK_SIZE), v).unwrap();
        base
    })
}

fn edge_table_len(base: &std::path::Path) -> u64 {
    std::fs::metadata(GraphPaths::from_base(base).edges)
        .unwrap()
        .len()
}

#[test]
fn decomposition_bit_identical_and_v3_charging_tracks_the_table_size() {
    let dir = TempDir::new("fmt3diff").unwrap();
    let opts = DecomposeOptions::default();
    type Algo = (
        &'static str,
        fn(&mut DiskGraph, &DecomposeOptions, ScanExecutor) -> graphstore::Result<Vec<u32>>,
    );
    let algos: Vec<Algo> = vec![
        ("semicore", |g, o, e| Ok(semicore_with(g, o, e)?.core)),
        ("semicore+", |g, o, e| Ok(semicore_plus_with(g, o, e)?.core)),
        ("semicore*", |g, o, e| Ok(semicore_star_with(g, o, e)?.core)),
    ];

    for (family, g) in fixtures() {
        let bases = write_triple(&dir, &g, family);
        let (e2, e3) = (edge_table_len(&bases[1]), edge_table_len(&bases[2]));
        // v3 trades some density on mid-sized gaps for decode speed, so its
        // table may run slightly larger than v2's; its charged reads are
        // allowed to scale with that ratio (plus one block of rounding) but
        // must stay strictly below raw-u32 v1.
        let ratio = (e3 as f64 / e2 as f64).max(1.0);
        let budgets = [
            edge_table_len(&bases[0]) / 10,
            edge_table_len(&bases[0]) + 64 * DEFAULT_BLOCK_SIZE as u64,
        ];
        for policy in [EvictionPolicy::Lru, EvictionPolicy::ScanLifo] {
            for &budget in &budgets {
                for workers in worker_counts() {
                    let exec = if workers == 1 {
                        ScanExecutor::Sequential
                    } else {
                        ScanExecutor::parallel(workers)
                    };
                    for (name, run) in &algos {
                        let tag = format!("{family}/{name}/{policy:?}/M={budget}/w{workers}");
                        let mut opened = bases.clone().map(|b| {
                            DiskGraph::open_with_cache_policy(
                                &b,
                                IoCounter::new(DEFAULT_BLOCK_SIZE),
                                budget,
                                policy,
                            )
                            .unwrap()
                        });
                        let cores = opened.each_mut().map(|d| run(d, &opts, exec).unwrap());
                        assert_eq!(cores[0], cores[1], "{tag}: v2 cores");
                        assert_eq!(cores[0], cores[2], "{tag}: v3 cores");
                        assert_eq!(cores[0], oracle_cores(&g), "{tag}: oracle");
                        let [r1, r2, r3] = opened.map(|d| d.io().read_ios);
                        assert!(
                            r3 < r1,
                            "{tag}: v3 must charge strictly fewer read I/Os than v1 ({r3} vs {r1})"
                        );
                        // v3 tables run up to ~15% larger than v2 on these
                        // fixtures, and under the 10%-of-table budget the LRU
                        // thrash amplifies that size delta nonlinearly (worst
                        // surveyed: ER/semicore at tight budget, 29 → 48
                        // charged reads, ~1.45x beyond linear pro-rating). The
                        // 1.75x factor keeps headroom over that while still
                        // tripping on a real charging regression.
                        let bound = (r2 as f64 * ratio * 1.75).ceil() as u64 + 2;
                        assert!(
                            r3 <= bound,
                            "{tag}: v3 charged {r3} > {bound} (v2 {r2} x size ratio {ratio:.3})"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn maintenance_stream_bit_identical_v1_vs_v3() {
    let dir = TempDir::new("fmt3diff-maint").unwrap();
    let mut rng = Lcg::new(0x5B3);
    for round in 0..4 {
        let g = random_mem_graph(&mut rng, 12, 60, 3);
        let bases = write_triple(&dir, &g, &format!("m{round}"));
        let mut i1 = CoreIndex::open_with_cache(&bases[0], 1 << 20).unwrap();
        let mut i3 = CoreIndex::open_with_cache(&bases[2], 1 << 20).unwrap();
        assert_eq!(i1.cores(), i3.cores(), "round {round}: initial cores");
        assert_eq!(
            i1.maintained_state().cnt,
            i3.maintained_state().cnt,
            "round {round}: initial cnt"
        );

        let mut mirror = graphstore::DynGraph::from_mem(&g);
        let n = g.num_nodes();
        for step in 0..120 {
            let (u, v) = (rng.below(n), rng.below(n));
            if u == v {
                continue;
            }
            let (s1, s3) = if mirror.has_edge(u, v) {
                graphstore::DynamicGraph::delete_edge(&mut mirror, u, v).unwrap();
                (i1.delete_edge(u, v).unwrap(), i3.delete_edge(u, v).unwrap())
            } else {
                graphstore::DynamicGraph::insert_edge(&mut mirror, u, v).unwrap();
                (i1.insert_edge(u, v).unwrap(), i3.insert_edge(u, v).unwrap())
            };
            assert_eq!(s1.algorithm, s3.algorithm, "round {round} step {step}");
            assert_eq!(
                s1.node_computations, s3.node_computations,
                "round {round} step {step}: node computations"
            );
            assert_eq!(
                i1.cores(),
                i3.cores(),
                "round {round} step {step}: cores diverged"
            );
            assert_eq!(
                i1.maintained_state().cnt,
                i3.maintained_state().cnt,
                "round {round} step {step}: cnt diverged"
            );
        }
        let mem = graphstore::snapshot_mem(&mut mirror).unwrap();
        assert_eq!(
            i3.cores(),
            oracle_cores(&mem),
            "round {round}: final oracle"
        );
        assert!(i1.verify().unwrap() && i3.verify().unwrap());
    }
}

#[test]
fn readahead_changes_no_result_and_no_charged_counter() {
    let dir = TempDir::new("fmt3diff-ra").unwrap();
    for (family, g) in fixtures() {
        let base = dir.path().join(format!("ra-{family}"));
        write_mem_graph_with(
            &base,
            &g,
            IoCounter::new(DEFAULT_BLOCK_SIZE),
            FormatVersion::V3,
        )
        .unwrap();

        // Full adjacency sweep, pipelined vs synchronous.
        let sweep = |readahead: bool| {
            let counter = IoCounter::new(DEFAULT_BLOCK_SIZE);
            let mut dg = DiskGraph::open(&base, counter.clone()).unwrap();
            dg.set_readahead(readahead).unwrap();
            let mut all = Vec::new();
            let mut buf = Vec::new();
            for v in 0..dg.num_nodes() {
                dg.adjacency(v, &mut buf).unwrap();
                all.extend_from_slice(&buf);
            }
            (all, counter.snapshot())
        };
        let (ids_off, io_off) = sweep(false);
        let (ids_on, io_on) = sweep(true);
        assert_eq!(ids_off, ids_on, "{family}: decoded ids diverged");
        assert_eq!(io_off, io_on, "{family}: charged counters diverged");

        // A whole decomposition must agree too — cores and every counter.
        let run = |readahead: bool| {
            let counter = IoCounter::new(DEFAULT_BLOCK_SIZE);
            let mut dg = DiskGraph::open(&base, counter.clone()).unwrap();
            dg.set_readahead(readahead).unwrap();
            let cores = semicore_star_with(
                &mut dg,
                &DecomposeOptions::default(),
                ScanExecutor::Sequential,
            )
            .unwrap()
            .core;
            (cores, counter.snapshot())
        };
        let (c_off, s_off) = run(false);
        let (c_on, s_on) = run(true);
        assert_eq!(c_off, c_on, "{family}: cores diverged under readahead");
        assert_eq!(c_on, oracle_cores(&g), "{family}: oracle");
        assert_eq!(s_off, s_on, "{family}: decomposition counters diverged");
    }
}

#[test]
fn durable_kill_reopen_cycle_preserves_v3() {
    let dir = TempDir::new("fmt3diff-durable").unwrap();
    let g = {
        let mut rng = Lcg::new(77);
        random_mem_graph(&mut rng, 40, 40, 4)
    };
    let bases = write_triple(&dir, &g, "dur");

    let mut toggles = Vec::new();
    {
        let mut rng = Lcg::new(4242);
        let mut mirror = graphstore::DynGraph::from_mem(&g);
        for _ in 0..40 {
            let (u, v) = (rng.below(g.num_nodes()), rng.below(g.num_nodes()));
            if u == v {
                continue;
            }
            let insert = !mirror.has_edge(u, v);
            if insert {
                graphstore::DynamicGraph::insert_edge(&mut mirror, u, v).unwrap();
            } else {
                graphstore::DynamicGraph::delete_edge(&mut mirror, u, v).unwrap();
            }
            toggles.push((u, v, insert));
        }
    }
    let data1 = dir.path().join("data-v1");
    let data3 = dir.path().join("data-v3");
    for (data, base) in [(&data1, &bases[0]), (&data3, &bases[2])] {
        let svc = CoreService::create_durable(data, 1 << 20).unwrap();
        svc.open("g", base).unwrap();
        for &(u, v, insert) in &toggles {
            if insert {
                svc.insert_edge("g", u, v).unwrap();
            } else {
                svc.delete_edge("g", u, v).unwrap();
            }
        }
        // Dropped here: simulated kill with a journal tail outstanding.
    }

    let s1 = CoreService::open_catalog(&data1).unwrap();
    let s3 = CoreService::open_catalog(&data3).unwrap();
    assert_eq!(s1.format_version("g").unwrap(), FormatVersion::V1);
    assert_eq!(s3.format_version("g").unwrap(), FormatVersion::V3);
    assert_eq!(
        s1.cores("g").unwrap(),
        s3.cores("g").unwrap(),
        "recovered cores must be format-independent"
    );
    assert!(s1.verify("g").unwrap() && s3.verify("g").unwrap());
    let (r1, r3) = (s1.io("g").unwrap().read_ios, s3.io("g").unwrap().read_ios);
    assert!(
        r3 <= r1,
        "v3 recovery must not charge more than v1 ({r3} vs {r1})"
    );
    s3.insert_edge("g", 0, g.num_nodes() - 1).ok();
}

#[test]
fn recompress_to_migrates_a_v1_graph_to_v3_at_the_commit_point() {
    let dir = TempDir::new("fmt3diff-recompress").unwrap();
    let data = dir.path().join("data");
    // Consecutive neighbours: the workload v3's zero-byte gap code wins on.
    let edges: Vec<(u32, u32)> = (0..300u32)
        .flat_map(|v| [(v, v + 1), (v, (v + 2).min(300))])
        .collect();
    {
        let svc = CoreService::create_durable(&data, 1 << 20).unwrap();
        svc.create("g", &dir.path().join("g"), edges, 301).unwrap();
        assert_eq!(svc.format_version("g").unwrap(), FormatVersion::V1);
        let cores = svc.cores("g").unwrap();

        assert_eq!(svc.recompress_to("g", FormatVersion::V3).unwrap(), 1);
        assert_eq!(svc.format_version("g").unwrap(), FormatVersion::V3);
        assert_eq!(svc.cores("g").unwrap(), cores);
        assert!(svc.verify("g").unwrap());
        let v1_len = std::fs::metadata(dir.path().join("g.edges")).unwrap().len();
        let v3_len = std::fs::metadata(dir.path().join("g.g1.edges"))
            .unwrap()
            .len();
        assert!(v3_len < v1_len, "v3 {v3_len} B !< v1 {v1_len} B");
    }
    // The migrated format survives a restart (catalog + tables agree), and
    // a further migration can walk back down to raw v1.
    let svc = CoreService::open_catalog(&data).unwrap();
    assert_eq!(svc.format_version("g").unwrap(), FormatVersion::V3);
    assert!(svc.verify("g").unwrap());
    svc.insert_edge("g", 0, 5).unwrap();
    assert_eq!(svc.recompress_to("g", FormatVersion::V1).unwrap(), 2);
    assert_eq!(svc.format_version("g").unwrap(), FormatVersion::V1);
    assert!(svc.verify("g").unwrap());
}
