//! Concurrency differential over the serving layer: N real client threads
//! hammer one shared [`CoreService`] with a mixed query/maintenance
//! workload, and the result must be *indistinguishable* from each
//! tenant's op stream replayed sequentially on a solo service:
//!
//! * final core numbers per graph bit-identical to the sequential replay
//!   (and to the in-memory oracle over the final edge set);
//! * charged `read_ios` per tenant identical — the paper's cost model is
//!   a property of the op stream, not of scheduling luck;
//! * the Theorem 4.1 fixpoint certificate holds on every graph.
//!
//! Each client owns one graph for updates (so per-tenant op order is
//! well-defined) while its queries (`kmax`, `core`) roam across all
//! tenants — cross-tenant reads are answered from the in-memory core
//! state and charge nothing, which is exactly why the differential can
//! demand equality rather than mere plausibility. A second test runs the
//! same fleet against a durable, group-commit service and demands the
//! reopened catalog recover the final state bit-identically.
//!
//! Client counts run 1/2/4 by default; CI sets `KCORE_CLIENTS` to push
//! the soak wider (e.g. 8) without slowing the local default.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

use graphstore::{
    EvictionPolicy, GroupCommitOptions, MemGraph, QosConfig, TempDir, DEFAULT_BLOCK_SIZE,
};
use kcore_suite::{CoreService, DurableOptions};
use semicore::ScanExecutor;
use testutil::{oracle_cores, Lcg};

const BUDGET: u64 = 32 << 20;
const STEPS: usize = 40;

/// Client counts under test: 1 (sanity), 2, 4, plus whatever
/// `KCORE_CLIENTS` asks for on top (CI uses 8).
fn client_counts() -> Vec<usize> {
    let mut counts = vec![1, 2, 4];
    if let Some(n) = std::env::var("KCORE_CLIENTS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        if n > 0 && !counts.contains(&n) {
            counts.push(n);
        }
    }
    counts
}

fn tenant(c: usize) -> String {
    format!("g{c}")
}

/// Per-client toggle script against its own graph: edge `(u, v)` is
/// inserted when absent and deleted when present, so every op is valid by
/// construction when applied in program order.
#[derive(Clone)]
struct Script {
    base: Vec<(u32, u32)>,
    nodes: u32,
    toggles: Vec<(u32, u32)>,
}

fn script(c: usize) -> Script {
    let nodes = 28 + (c as u32 % 3) * 8;
    let base: BTreeSet<(u32, u32)> = graphgen::gnm(nodes, u64::from(nodes) * 2, 40 + c as u64)
        .into_iter()
        .filter(|&(u, v)| u != v)
        .map(|(u, v)| (u.min(v), u.max(v)))
        .collect();
    let mut rng = Lcg::new(0xC11E17 + c as u64);
    let toggles = (0..STEPS)
        .map(|_| {
            let u = rng.below(nodes);
            let mut v = rng.below(nodes);
            if v == u {
                v = (v + 1) % nodes;
            }
            (u.min(v), u.max(v))
        })
        .collect();
    Script {
        base: base.into_iter().collect(),
        nodes,
        toggles,
    }
}

/// The edge set after the whole script ran, in program order.
fn final_edges(s: &Script) -> BTreeSet<(u32, u32)> {
    let mut set: BTreeSet<(u32, u32)> = s.base.iter().copied().collect();
    for &e in &s.toggles {
        if !set.remove(&e) {
            set.insert(e);
        }
    }
    set
}

/// Apply one toggle through the service, in the op's program-order slot.
fn apply_toggle(svc: &CoreService, name: &str, present: &mut BTreeSet<(u32, u32)>, e: (u32, u32)) {
    let res = if present.remove(&e) {
        svc.delete_edge(name, e.0, e.1)
    } else {
        present.insert(e);
        svc.insert_edge(name, e.0, e.1)
    };
    res.unwrap_or_else(|err| panic!("{name}: toggle {e:?} failed: {err}"));
}

/// Serve the full fleet concurrently: one thread per client, each
/// toggling its own graph and querying everyone's. Returns per-tenant
/// (cores, charged read_ios).
fn run_concurrent(svc: &Arc<CoreService>, scripts: &[Script]) -> Vec<(Vec<u32>, u64)> {
    let n = scripts.len();
    let handles: Vec<_> = (0..n)
        .map(|c| {
            let svc = Arc::clone(svc);
            let script = scripts[c].clone();
            std::thread::spawn(move || {
                let name = tenant(c);
                let mut present: BTreeSet<(u32, u32)> = script.base.iter().copied().collect();
                let mut rng = Lcg::new(0x5EED + c as u64);
                for &e in &script.toggles {
                    apply_toggle(&svc, &name, &mut present, e);
                    // Mixed workload: between updates, read someone
                    // else's core state (charge-free, any interleaving).
                    // `core ≤ kmax` only holds when both come from the
                    // same locked view — the owner may update in between
                    // two separate calls.
                    let other = tenant(rng.below(n as u32) as usize);
                    let v = rng.below(8);
                    let (k, c_of_v) = svc
                        .with_graph(&other, |idx| Ok((idx.kmax(), idx.core(v))))
                        .unwrap();
                    assert!(c_of_v <= k, "{other}: core({v}) = {c_of_v} > kmax {k}");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread panicked");
    }
    (0..n)
        .map(|c| {
            let name = tenant(c);
            let cores = svc.cores(&name).unwrap();
            let ios = svc.io(&name).unwrap().read_ios;
            (cores, ios)
        })
        .collect()
}

/// The sequential referee: a fresh solo service replays each tenant's op
/// stream in program order, one tenant at a time, no concurrency at all.
fn run_sequential(dir: &TempDir, scripts: &[Script]) -> Vec<(Vec<u32>, u64)> {
    let svc = CoreService::with_config(
        DEFAULT_BLOCK_SIZE,
        BUDGET,
        EvictionPolicy::ScanLifo,
        ScanExecutor::Sequential,
    )
    .unwrap();
    scripts
        .iter()
        .enumerate()
        .map(|(c, s)| {
            let name = tenant(c);
            svc.create(
                &name,
                &dir.path().join(format!("seq-{name}")),
                s.base.iter().copied(),
                s.nodes,
            )
            .unwrap();
            let mut present: BTreeSet<(u32, u32)> = s.base.iter().copied().collect();
            for &e in &s.toggles {
                apply_toggle(&svc, &name, &mut present, e);
            }
            let cores = svc.cores(&name).unwrap();
            let ios = svc.io(&name).unwrap().read_ios;
            (cores, ios)
        })
        .collect()
}

fn check_differential(
    svc: &CoreService,
    scripts: &[Script],
    concurrent: &[(Vec<u32>, u64)],
    sequential: &[(Vec<u32>, u64)],
) {
    for (c, s) in scripts.iter().enumerate() {
        let name = tenant(c);
        let (conc_cores, conc_ios) = &concurrent[c];
        let (seq_cores, seq_ios) = &sequential[c];
        assert_eq!(
            conc_cores, seq_cores,
            "{name}: concurrent cores differ from sequential replay"
        );
        assert_eq!(
            conc_ios, seq_ios,
            "{name}: charged read_ios depend on scheduling (concurrent {conc_ios} vs sequential {seq_ios})"
        );
        let mem = MemGraph::from_edges(final_edges(s), s.nodes);
        assert_eq!(
            conc_cores,
            &oracle_cores(&mem),
            "{name}: cores differ from the in-memory oracle"
        );
        assert!(
            svc.verify(&name).unwrap(),
            "{name}: fixpoint certificate violated"
        );
    }
}

/// The differential proper, at every client count, with QoS admission
/// turned on tight enough that requests genuinely queue: fairness
/// machinery must never change *what* is computed, only *when*.
#[test]
fn concurrent_serving_is_indistinguishable_from_sequential_replay() {
    for n in client_counts() {
        let scripts: Vec<Script> = (0..n).map(script).collect();
        let dir = TempDir::new("conc-serve").unwrap();

        let svc = Arc::new(
            CoreService::with_config(
                DEFAULT_BLOCK_SIZE,
                BUDGET,
                EvictionPolicy::ScanLifo,
                ScanExecutor::Sequential,
            )
            .unwrap(),
        );
        for (c, s) in scripts.iter().enumerate() {
            let name = tenant(c);
            svc.create(
                &name,
                &dir.path().join(format!("conc-{name}")),
                s.base.iter().copied(),
                s.nodes,
            )
            .unwrap();
        }
        // Budget a bit over half the summed charges: with 2+ clients
        // someone always waits, but any single tenant still fits and the
        // queue is deep enough that nothing is ever shed.
        let charges: Vec<u64> = (0..n)
            .map(|c| {
                graphstore::working_set_charge_budget(
                    &dir.path().join(format!("conc-{}", tenant(c))),
                    DEFAULT_BLOCK_SIZE,
                )
                .unwrap()
            })
            .collect();
        let total: u64 = charges.iter().sum();
        let max: u64 = charges.iter().copied().max().unwrap_or(0);
        svc.set_qos(Some(QosConfig {
            capacity_bytes: (total / 2).max(max),
            max_waiters: 4 * n * STEPS,
        }));

        let concurrent = run_concurrent(&svc, &scripts);
        let sequential = run_sequential(&dir, &scripts);
        check_differential(&svc, &scripts, &concurrent, &sequential);
    }
}

/// The same fleet against a durable group-commit service: after the soak,
/// closing and reopening the catalog must recover every tenant's final
/// cores bit-identically (group commit batches acknowledgements, it never
/// weakens them).
#[test]
fn group_commit_soak_recovers_final_state_bit_identically() {
    let n = client_counts().into_iter().max().unwrap_or(4);
    let scripts: Vec<Script> = (0..n).map(script).collect();
    let dir = TempDir::new("conc-durable").unwrap();
    let data = dir.path().join("data");

    let svc = Arc::new(
        CoreService::create_durable_with(
            &data,
            DEFAULT_BLOCK_SIZE,
            BUDGET,
            EvictionPolicy::ScanLifo,
            ScanExecutor::Sequential,
            DurableOptions {
                checkpoint_every: 16,
                group_commit: Some(GroupCommitOptions {
                    max_delay: Duration::from_micros(200),
                }),
                ..Default::default()
            },
        )
        .unwrap(),
    );
    for (c, s) in scripts.iter().enumerate() {
        let name = tenant(c);
        svc.create(
            &name,
            &dir.path().join(format!("base-{name}")),
            s.base.iter().copied(),
            s.nodes,
        )
        .unwrap();
    }

    let live = run_concurrent(&svc, &scripts);
    drop(svc);

    let reopened = CoreService::open_catalog(&data).unwrap();
    for (c, s) in scripts.iter().enumerate() {
        let name = tenant(c);
        let recovered = reopened.cores(&name).unwrap();
        assert_eq!(
            recovered, live[c].0,
            "{name}: recovery disagrees with the live service"
        );
        let mem = MemGraph::from_edges(final_edges(s), s.nodes);
        assert_eq!(recovered, oracle_cores(&mem), "{name}: oracle mismatch");
        assert!(reopened.verify(&name).unwrap(), "{name}: certificate");
    }
    let report = kcore_suite::fsck(&data, false).unwrap();
    assert!(report.clean(), "post-soak fsck: {:?}", report.findings);
}
