//! Smoke tests of the `kcore serve` surface: the stdin REPL binary, and
//! the TCP front-end. A session must survive failed commands — each
//! reported as one structured `err <kind>: …` line — and keep answering
//! correctly afterwards; over TCP, one connection degrading a tenant to
//! read-only must not disturb a concurrent connection serving another
//! tenant, the connection limit must shed with a parseable line, and
//! shutdown must drain in-flight ops and flush the group-commit journal
//! before closing sockets.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::Path;
use std::process::{Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use graphstore::{
    EvictionPolicy, FaultPlan, FaultVfs, GroupCommitOptions, IoCounter, MemGraph, QosConfig,
    TempDir, Vfs, DEFAULT_BLOCK_SIZE,
};
use kcore_suite::server::{Server, ServerOptions};
use kcore_suite::{CoreService, DurableOptions};
use semicore::ScanExecutor;

fn write_triangle_tail(base: &Path) {
    let mem = MemGraph::from_edges(vec![(0u32, 1u32), (1, 2), (0, 2), (2, 3)], 4);
    graphstore::write_mem_graph(base, &mem, IoCounter::new(DEFAULT_BLOCK_SIZE)).unwrap();
}

fn run_session(args: &[&str], script: &str) -> (String, bool) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_kcore"))
        .arg("serve")
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn kcore serve");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(script.as_bytes())
        .expect("write script");
    let out = child.wait_with_output().expect("kcore serve exits");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        out.status.success(),
    )
}

#[test]
fn errors_are_structured_and_do_not_end_the_session() {
    let dir = TempDir::new("repl").unwrap();
    let base = dir.path().join("g");
    write_triangle_tail(&base);

    let script = "\
core g 999\n\
core g notanumber\n\
insert g 0 1\n\
kmax nosuchgraph\n\
definitely not a command\n\
kmax g\n\
insert g 1 3\n\
insert g 0 3\n\
kmax g\n\
quit\n";
    let (stdout, ok) = run_session(&[&format!("g={}", base.display())], script);
    assert!(ok, "session must exit cleanly, got:\n{stdout}");

    // Every failure is one structured `err <kind>: …` line.
    assert!(
        stdout.contains("err range:"),
        "out-of-range query:\n{stdout}"
    );
    assert!(
        stdout.contains("err usage: node id"),
        "unparsable node id:\n{stdout}"
    );
    assert!(
        stdout.contains("err usage: invalid argument: edge (0, 1) already present"),
        "duplicate insert:\n{stdout}"
    );
    assert!(
        stdout.contains("err usage: invalid argument: no graph named"),
        "unknown graph:\n{stdout}"
    );
    assert!(
        stdout.contains("err usage: unrecognised command"),
        "unknown command:\n{stdout}"
    );

    // The same session still serves correct answers *after* the errors:
    // kmax twice (2 before the inserts, 3 after the K4-completing edges).
    let answers: Vec<&str> = stdout
        .lines()
        .filter(|l| l.starts_with("kmax = "))
        .collect();
    assert_eq!(answers, vec!["kmax = 2", "kmax = 3"], "\n{stdout}");
    let err_count = stdout.lines().filter(|l| l.starts_with("err ")).count();
    assert_eq!(err_count, 5, "exactly one err line per failure:\n{stdout}");
}

#[test]
fn fsck_reports_clean_directory_and_flags_damage() {
    let dir = TempDir::new("repl-fsck").unwrap();
    let base = dir.path().join("g");
    write_triangle_tail(&base);
    let data = dir.path().join("data");

    // Seed a durable directory through one serve session.
    let script = "insert g 1 3\nsave\nquit\n";
    let (stdout, ok) = run_session(
        &[
            "--data-dir",
            &data.display().to_string(),
            &format!("g={}", base.display()),
        ],
        script,
    );
    assert!(ok, "durable session:\n{stdout}");

    // Clean directory: fsck exits 0.
    let clean = Command::new(env!("CARGO_BIN_EXE_kcore"))
        .args(["fsck", &data.display().to_string()])
        .output()
        .expect("run fsck");
    assert!(clean.status.success(), "clean fsck must exit 0");

    // Tear the journal tail; fsck must fail, repair, then pass again.
    use std::fs::OpenOptions;
    let mut f = OpenOptions::new()
        .append(true)
        .open(data.join("g.wal"))
        .unwrap();
    f.write_all(&[0xba, 0xad]).unwrap();
    drop(f);

    let torn = Command::new(env!("CARGO_BIN_EXE_kcore"))
        .args(["fsck", &data.display().to_string()])
        .output()
        .expect("run fsck");
    assert!(!torn.status.success(), "torn tail must exit nonzero");
    assert!(String::from_utf8_lossy(&torn.stdout).contains("torn journal tail"));

    let repaired = Command::new(env!("CARGO_BIN_EXE_kcore"))
        .args(["fsck", &data.display().to_string(), "--repair"])
        .output()
        .expect("run fsck --repair");
    assert!(repaired.status.success(), "repair must clear the problem");

    let after = Command::new(env!("CARGO_BIN_EXE_kcore"))
        .args(["fsck", &data.display().to_string()])
        .output()
        .expect("run fsck");
    assert!(after.status.success(), "directory clean after repair");
}

// ---------------------------------------------------------------------------
// TCP front-end: the same protocol over sockets, with fault isolation.
// ---------------------------------------------------------------------------

/// One line-protocol exchange over a socket: send the command, read back
/// exactly one reply line.
fn ask(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, cmd: &str) -> String {
    writeln!(stream, "{cmd}").expect("send command");
    stream.flush().expect("flush command");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read reply");
    line.trim_end().to_string()
}

fn connect(server: &Server) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let reader = BufReader::new(stream.try_clone().expect("clone socket"));
    (stream, reader)
}

/// Two concurrent connections: one trips a tenant's quarantine through an
/// injected I/O failure, the other keeps serving its own tenant through
/// it all — and every failure crosses the socket as one structured
/// `err <kind>: …` line.
#[test]
fn tcp_connection_tripping_quarantine_does_not_disturb_the_other() {
    let dir = TempDir::new("tcp-serve").unwrap();
    let (data, bases) = (dir.path().join("data"), dir.path().join("bases"));
    std::fs::create_dir_all(&bases).unwrap();

    // A durable service through a FaultVfs, so one tenant's disk can
    // "fail" on cue while the server stays up.
    let fault = FaultVfs::new(FaultPlan::default());
    let svc = Arc::new(
        CoreService::create_durable_with_vfs(
            &data,
            DEFAULT_BLOCK_SIZE,
            4 << 20,
            EvictionPolicy::ScanLifo,
            ScanExecutor::Sequential,
            DurableOptions {
                checkpoint_every: 8,
                group_commit: None,
                ..Default::default()
            },
            Arc::clone(&fault) as Arc<dyn Vfs>,
        )
        .unwrap(),
    );
    let edges = [(0u32, 1u32), (1, 2), (0, 2), (2, 3)];
    svc.create("well", &bases.join("well"), edges.iter().copied(), 4)
        .unwrap();
    svc.create("sick", &bases.join("sick"), edges.iter().copied(), 4)
        .unwrap();
    svc.set_qos(Some(QosConfig {
        capacity_bytes: 4 << 20,
        max_waiters: 8,
    }));

    let mut server = Server::start(Arc::clone(&svc), "127.0.0.1:0", ServerOptions::default())
        .expect("bind server");
    let (mut a, mut ra) = connect(&server);
    let (mut b, mut rb) = connect(&server);

    // Both connections serve normally first.
    assert_eq!(ask(&mut a, &mut ra, "kmax sick"), "kmax = 2");
    assert_eq!(ask(&mut b, &mut rb, "kmax well"), "kmax = 2");
    assert!(
        ask(&mut b, &mut rb, "qos").starts_with("qos: "),
        "qos line over the socket"
    );
    assert_eq!(ask(&mut b, &mut rb, "weight well 3"), "weight(well) = 3");

    // Connection A's tenant hits disk-full mid-insert: a structured io
    // error crosses the socket and the graph degrades to read-only —
    // mutations are refused with `err readonly:` but queries keep
    // serving the committed state.
    fault.set_plan(FaultPlan {
        enospc_after: Some(0),
        ..FaultPlan::default()
    });
    let io_err = ask(&mut a, &mut ra, "insert sick 1 3");
    assert!(io_err.starts_with("err io:"), "typed io error: {io_err}");
    fault.set_plan(FaultPlan::default());
    let ro_err = ask(&mut a, &mut ra, "insert sick 1 3");
    assert!(
        ro_err.starts_with("err readonly:"),
        "degraded to read-only: {ro_err}"
    );
    assert_eq!(
        ask(&mut a, &mut ra, "kmax sick"),
        "kmax = 2",
        "read-only graphs keep answering queries"
    );
    assert!(
        ask(&mut a, &mut ra, "health sick").starts_with("health sick: read-only"),
        "health verb reports the degradation"
    );

    // Connection B never noticed: its tenant keeps serving and mutating.
    assert!(ask(&mut b, &mut rb, "insert well 1 3").contains("node computations"));
    assert!(ask(&mut b, &mut rb, "insert well 0 3").contains("node computations"));
    assert_eq!(ask(&mut b, &mut rb, "kmax well"), "kmax = 3");
    assert!(ask(&mut b, &mut rb, "verify well").contains("certificate holds"));

    // `quit` ends connection A only; B still answers afterwards.
    writeln!(a, "quit").unwrap();
    let mut rest = String::new();
    ra.read_line(&mut rest).unwrap(); // EOF: server closed A
    assert_eq!(rest, "", "quit closes the connection");
    assert_eq!(ask(&mut b, &mut rb, "kmax well"), "kmax = 3");

    server.shutdown();
}

/// Graceful drain: `Server::shutdown` must let an in-flight command
/// finish and write its reply (never cut the socket mid-op), then flush
/// the group-commit journal so the acknowledged op survives a reopen.
#[test]
fn shutdown_drains_in_flight_ops_and_flushes_group_commit() {
    let dir = TempDir::new("tcp-drain").unwrap();
    let (data, bases) = (dir.path().join("data"), dir.path().join("bases"));
    std::fs::create_dir_all(&bases).unwrap();
    let svc = Arc::new(
        CoreService::create_durable_with(
            &data,
            DEFAULT_BLOCK_SIZE,
            4 << 20,
            EvictionPolicy::ScanLifo,
            ScanExecutor::Sequential,
            DurableOptions {
                // A long gather window keeps the insert's durability
                // barrier in flight while shutdown starts.
                group_commit: Some(GroupCommitOptions {
                    max_delay: Duration::from_millis(150),
                }),
                ..Default::default()
            },
        )
        .unwrap(),
    );
    let edges = [(0u32, 1u32), (1, 2), (0, 2), (2, 3)];
    svc.create("g", &bases.join("g"), edges.iter().copied(), 4)
        .unwrap();

    let mut server = Server::start(Arc::clone(&svc), "127.0.0.1:0", ServerOptions::default())
        .expect("bind server");
    let (mut a, mut ra) = connect(&server);
    assert_eq!(ask(&mut a, &mut ra, "kmax g"), "kmax = 2");

    // Launch the mutation on its own thread, then drain while its
    // group-commit barrier still gathers.
    let inflight = std::thread::spawn(move || ask(&mut a, &mut ra, "insert g 1 3"));
    std::thread::sleep(Duration::from_millis(30));
    server.shutdown();
    let reply = inflight.join().expect("in-flight client thread");
    assert!(
        reply.contains("node computations"),
        "the in-flight insert completed and its reply crossed the socket: {reply:?}"
    );

    // The acknowledged op is durable: a fresh catalog open replays it.
    drop(server);
    drop(svc);
    let svc2 = CoreService::open_catalog(&data).unwrap();
    let edges_after = svc2
        .with_graph("g", |idx| Ok(idx.num_edges()))
        .expect("reopen the drained graph");
    assert_eq!(edges_after, 5, "the drained insert survived the restart");
    assert!(svc2.verify("g").unwrap());
}

/// The accept bound: with `max_connections = 1`, a second client is not
/// silently queued — it gets one `err overloaded: …` line and the socket
/// closes, while the admitted client keeps serving.
#[test]
fn tcp_connection_limit_sheds_with_a_structured_line() {
    let svc = Arc::new(
        CoreService::with_config(
            DEFAULT_BLOCK_SIZE,
            4 << 20,
            EvictionPolicy::ScanLifo,
            ScanExecutor::Sequential,
        )
        .unwrap(),
    );
    let opts = ServerOptions {
        max_connections: 1,
        ..ServerOptions::default()
    };
    let mut server = Server::start(Arc::clone(&svc), "127.0.0.1:0", opts).expect("bind server");

    let (mut a, mut ra) = connect(&server);
    // Prove the first connection is live (so the second is really over
    // the limit, not racing the accept loop).
    assert!(ask(&mut a, &mut ra, "help").starts_with("commands:"));

    let (_b, mut rb) = connect(&server);
    let mut line = String::new();
    rb.read_line(&mut line).expect("read refusal");
    assert!(
        line.starts_with("err overloaded: connection limit (1)"),
        "refusal line: {line}"
    );
    let mut rest = String::new();
    assert_eq!(rb.read_line(&mut rest).unwrap(), 0, "refused socket closes");

    // The admitted connection is untouched.
    assert!(ask(&mut a, &mut ra, "graphs").starts_with("serving:"));
    server.shutdown();
}
