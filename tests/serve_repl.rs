//! Smoke test of the `kcore serve` REPL binary: a session must survive
//! failed commands — each reported as one structured `err <kind>: …` line —
//! and keep answering correctly afterwards.

use std::io::Write;
use std::path::Path;
use std::process::{Command, Stdio};

use graphstore::{IoCounter, MemGraph, TempDir, DEFAULT_BLOCK_SIZE};

fn write_triangle_tail(base: &Path) {
    let mem = MemGraph::from_edges(vec![(0u32, 1u32), (1, 2), (0, 2), (2, 3)], 4);
    graphstore::write_mem_graph(base, &mem, IoCounter::new(DEFAULT_BLOCK_SIZE)).unwrap();
}

fn run_session(args: &[&str], script: &str) -> (String, bool) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_kcore"))
        .arg("serve")
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn kcore serve");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(script.as_bytes())
        .expect("write script");
    let out = child.wait_with_output().expect("kcore serve exits");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        out.status.success(),
    )
}

#[test]
fn errors_are_structured_and_do_not_end_the_session() {
    let dir = TempDir::new("repl").unwrap();
    let base = dir.path().join("g");
    write_triangle_tail(&base);

    let script = "\
core g 999\n\
core g notanumber\n\
insert g 0 1\n\
kmax nosuchgraph\n\
definitely not a command\n\
kmax g\n\
insert g 1 3\n\
insert g 0 3\n\
kmax g\n\
quit\n";
    let (stdout, ok) = run_session(&[&format!("g={}", base.display())], script);
    assert!(ok, "session must exit cleanly, got:\n{stdout}");

    // Every failure is one structured `err <kind>: …` line.
    assert!(
        stdout.contains("err range:"),
        "out-of-range query:\n{stdout}"
    );
    assert!(
        stdout.contains("err usage: node id"),
        "unparsable node id:\n{stdout}"
    );
    assert!(
        stdout.contains("err usage: invalid argument: edge (0, 1) already present"),
        "duplicate insert:\n{stdout}"
    );
    assert!(
        stdout.contains("err usage: invalid argument: no graph named"),
        "unknown graph:\n{stdout}"
    );
    assert!(
        stdout.contains("err usage: unrecognised command"),
        "unknown command:\n{stdout}"
    );

    // The same session still serves correct answers *after* the errors:
    // kmax twice (2 before the inserts, 3 after the K4-completing edges).
    let answers: Vec<&str> = stdout
        .lines()
        .filter(|l| l.starts_with("kmax = "))
        .collect();
    assert_eq!(answers, vec!["kmax = 2", "kmax = 3"], "\n{stdout}");
    let err_count = stdout.lines().filter(|l| l.starts_with("err ")).count();
    assert_eq!(err_count, 5, "exactly one err line per failure:\n{stdout}");
}

#[test]
fn fsck_reports_clean_directory_and_flags_damage() {
    let dir = TempDir::new("repl-fsck").unwrap();
    let base = dir.path().join("g");
    write_triangle_tail(&base);
    let data = dir.path().join("data");

    // Seed a durable directory through one serve session.
    let script = "insert g 1 3\nsave\nquit\n";
    let (stdout, ok) = run_session(
        &[
            "--data-dir",
            &data.display().to_string(),
            &format!("g={}", base.display()),
        ],
        script,
    );
    assert!(ok, "durable session:\n{stdout}");

    // Clean directory: fsck exits 0.
    let clean = Command::new(env!("CARGO_BIN_EXE_kcore"))
        .args(["fsck", &data.display().to_string()])
        .output()
        .expect("run fsck");
    assert!(clean.status.success(), "clean fsck must exit 0");

    // Tear the journal tail; fsck must fail, repair, then pass again.
    use std::fs::OpenOptions;
    let mut f = OpenOptions::new()
        .append(true)
        .open(data.join("g.wal"))
        .unwrap();
    f.write_all(&[0xba, 0xad]).unwrap();
    drop(f);

    let torn = Command::new(env!("CARGO_BIN_EXE_kcore"))
        .args(["fsck", &data.display().to_string()])
        .output()
        .expect("run fsck");
    assert!(!torn.status.success(), "torn tail must exit nonzero");
    assert!(String::from_utf8_lossy(&torn.stdout).contains("torn journal tail"));

    let repaired = Command::new(env!("CARGO_BIN_EXE_kcore"))
        .args(["fsck", &data.display().to_string(), "--repair"])
        .output()
        .expect("run fsck --repair");
    assert!(repaired.status.success(), "repair must clear the problem");

    let after = Command::new(env!("CARGO_BIN_EXE_kcore"))
        .args(["fsck", &data.display().to_string()])
        .output()
        .expect("run fsck");
    assert!(after.status.success(), "directory clean after repair");
}
