#!/usr/bin/env bash
# Kill-and-restart recovery smoke test for `kcore serve --data-dir`.
#
# Starts a durable serve process, feeds it a maintenance stream over a
# FIFO, SIGKILLs it mid-flight (no save, no graceful shutdown), then
# restarts against the same data directory and verifies:
#   * the registry is restored (the graph is listed),
#   * the maintained cores pass the Theorem 4.1 fixpoint certificate,
#   * the restored graph still serves maintenance ops.
#
# The exact kill point is intentionally racy — any prefix of the stream
# may have landed — which is the point: recovery must be correct at every
# kill point, and the certificate check validates whatever state survived
# against the actual recovered graph. The byte-exact kill points are
# covered deterministically by tests/durable_recovery.rs; this script
# checks the real binary + real SIGKILL path end to end.
#
# Usage: scripts/recovery_smoke.sh [workdir]
set -euo pipefail
cd "$(dirname "$0")/.."

workdir="${1:-$(mktemp -d)}"
mkdir -p "${workdir}"
data="${workdir}/data"
rm -rf "${data}"

kcore() {
    cargo run --release -q --bin kcore -- "$@"
}

echo "== build test graph"
printf '0 1\n1 2\n0 2\n2 3\n3 4\n4 5\n' > "${workdir}/edges.txt"
kcore build "${workdir}/edges.txt" "${workdir}/g"

echo "== start durable serve, stream ops, SIGKILL mid-flight"
fifo="${workdir}/pipe"
rm -f "${fifo}"
mkfifo "${fifo}"
cargo run --release -q --bin kcore -- serve --budget-mb 8 --data-dir "${data}" \
    < "${fifo}" > "${workdir}/serve1.log" 2>&1 &
serve_pid=$!
exec 3>"${fifo}"
printf 'open g %s/g\n' "${workdir}" >&3
printf 'insert g 0 3\ninsert g 1 3\ninsert g 2 5\ninsert g 0 4\n' >&3
# Let some (unknown) prefix of the stream land, then kill without mercy.
sleep 2
kill -9 "${serve_pid}" 2>/dev/null || true
wait "${serve_pid}" 2>/dev/null || true
exec 3>&-
rm -f "${fifo}"
echo "-- first process output:"
sed 's/^/   /' "${workdir}/serve1.log"

echo "== restart from the same data dir and verify"
printf 'graphs\nstats g\nverify g\ninsert g 1 5\nverify g\nsave\nquit\n' \
    | cargo run --release -q --bin kcore -- serve --data-dir "${data}" \
    | tee "${workdir}/serve2.log"

grep -q 'restored \[g\]' "${workdir}/serve2.log" \
    || { echo "FAIL: registry not restored after SIGKILL" >&2; exit 1; }
if grep -q 'CERTIFICATE VIOLATED' "${workdir}/serve2.log"; then
    echo "FAIL: recovered state failed the fixpoint certificate" >&2
    exit 1
fi
[ "$(grep -c 'certificate holds' "${workdir}/serve2.log")" -eq 2 ] \
    || { echo "FAIL: expected two passing certificate checks" >&2; exit 1; }
grep -q 'saved all graphs' "${workdir}/serve2.log" \
    || { echo "FAIL: save did not complete" >&2; exit 1; }

echo "== recovery smoke passed"
