#!/usr/bin/env bash
# Run the Criterion micro-benchmark suites and the ablation sweeps,
# accumulating machine-readable results in BENCH_*.json (JSON lines) so the
# perf trajectory of the repo builds up run over run.
#
# Every target is run through `run_target`, which propagates a failing exit
# code and names the target that failed — a broken bench must fail the run,
# not silently skip.
#
# Usage: scripts/bench.sh [output-prefix]
set -euo pipefail
cd "$(dirname "$0")/.."

prefix="${1:-BENCH}"
# Absolute paths: cargo runs bench executables with the package directory
# as their working directory.
criterion_out="$(pwd)/${prefix}_criterion.json"
cache_out="$(pwd)/${prefix}_cache.json"
threads_out="$(pwd)/${prefix}_threads.json"
multigraph_out="$(pwd)/${prefix}_multigraph.json"
recovery_out="$(pwd)/${prefix}_recovery.json"
compress_out="$(pwd)/${prefix}_compress.json"
serve_out="$(pwd)/${prefix}_serve.json"
compact_out="$(pwd)/${prefix}_compact.json"
decode_out="$(pwd)/${prefix}_decode.json"
scrub_out="$(pwd)/${prefix}_scrub.json"

stamp=$(date -u +"%Y-%m-%dT%H:%M:%SZ")
rev=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)

run_target() {
    local label="$1"
    shift
    echo "== ${label}"
    local code=0
    "$@" || code=$?
    if [ "${code}" -ne 0 ]; then
        echo "error: bench target '${label}' failed with exit code ${code}" >&2
        exit "${code}"
    fi
}

echo "# bench run ${stamp} @ ${rev}" >> "${criterion_out}"
for suite in kernels scan decomposition maintenance; do
    run_target "${suite}" \
        env CRITERION_JSON="${criterion_out}" \
        cargo bench -q -p kcore-bench --bench "${suite}"
done

echo "# bench run ${stamp} @ ${rev}" >> "${cache_out}"
run_target ablation_cache \
    cargo run --release -q -p kcore-bench --bin ablation_cache -- --json "${cache_out}"

echo "# bench run ${stamp} @ ${rev}" >> "${threads_out}"
run_target ablation_threads \
    cargo run --release -q -p kcore-bench --bin ablation_threads -- --json "${threads_out}"

echo "# bench run ${stamp} @ ${rev}" >> "${multigraph_out}"
run_target multi_graph \
    cargo run --release -q -p kcore-bench --bin multi_graph -- --json "${multigraph_out}"

echo "# bench run ${stamp} @ ${rev}" >> "${recovery_out}"
run_target recovery \
    cargo run --release -q -p kcore-bench --bin recovery -- --json "${recovery_out}"

# The v1-vs-v2 sweep is also the format's regression gate: the binary exits
# non-zero if v2 ever charges more blocks than v1, or if the R-MAT
# 10%-budget point falls below the 25% reduction bar.
echo "# bench run ${stamp} @ ${rev}" >> "${compress_out}"
run_target ablation_compress \
    cargo run --release -q -p kcore-bench --bin ablation_compress -- --json "${compress_out}"

# Multi-client serving: ops/sec, p99 and fsync counts for fsync-per-op vs
# group commit. The binary is the group-commit regression gate: it exits
# non-zero if batching does not beat per-op durability at the multi-client
# point (throughput and fsyncs both).
echo "# bench run ${stamp} @ ${rev}" >> "${serve_out}"
run_target serve_load \
    cargo run --release -q -p kcore-bench --bin serve_load -- --json "${serve_out}"

# Compaction dividend: durable footprint and reopen charge before vs after
# folding buffered edits into a fresh table generation. The binary is the
# compaction regression gate: it exits non-zero unless the compacted reopen
# charges strictly fewer read I/Os and the data dir strictly shrinks.
echo "# bench run ${stamp} @ ${rev}" >> "${compact_out}"
run_target compaction \
    cargo run --release -q -p kcore-bench --bin compaction -- --json "${compact_out}"

# Decode bandwidth: v2 varint vs v3 stream-vbyte in-memory decode rates and
# the readahead-pipelined full scan. The binary is the v3 regression gate:
# it exits non-zero if the dispatched v3 decoder falls below 2x the v2
# scalar rate, if readahead changes any charged counter, or (with >= 2
# cores) if the readahead scan is slower than the synchronous one.
echo "# bench run ${stamp} @ ${rev}" >> "${decode_out}"
run_target decode \
    cargo run --release -q -p kcore-bench --bin decode_bw -- --json "${decode_out}"

# Scrub overhead: the background integrity scrubber's tax on tenant
# latency. The binary is the self-heal regression gate: it exits non-zero
# if scrub-on p99 op latency exceeds 1.10x the scrub-off p99, or if
# scrubbing changes the tenant's charged reads at all (the scrubber must
# be invisible to the cost model).
echo "# bench run ${stamp} @ ${rev}" >> "${scrub_out}"
run_target scrub_overhead \
    cargo run --release -q -p kcore-bench --bin scrub_overhead -- --json "${scrub_out}"

echo
echo "results appended to ${criterion_out}, ${cache_out}, ${threads_out}, ${multigraph_out}, ${recovery_out}, ${compress_out}, ${serve_out}, ${compact_out}, ${decode_out} and ${scrub_out}"
