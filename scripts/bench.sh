#!/usr/bin/env bash
# Run the Criterion micro-benchmark suites and the cache-budget ablation,
# accumulating machine-readable results in BENCH_*.json (JSON lines) so the
# perf trajectory of the repo builds up run over run.
#
# Usage: scripts/bench.sh [output-prefix]
set -euo pipefail
cd "$(dirname "$0")/.."

prefix="${1:-BENCH}"
# Absolute paths: cargo runs bench executables with the package directory
# as their working directory.
criterion_out="$(pwd)/${prefix}_criterion.json"
cache_out="$(pwd)/${prefix}_cache.json"

stamp=$(date -u +"%Y-%m-%dT%H:%M:%SZ")
rev=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)

echo "# bench run ${stamp} @ ${rev}" >> "${criterion_out}"
for suite in kernels scan decomposition maintenance; do
    echo "== ${suite}"
    CRITERION_JSON="${criterion_out}" cargo bench -q -p kcore-bench --bench "${suite}"
done

echo "== ablation_cache"
echo "# bench run ${stamp} @ ${rev}" >> "${cache_out}"
cargo run --release -q -p kcore-bench --bin ablation_cache -- --json "${cache_out}"

echo
echo "results appended to ${criterion_out} and ${cache_out}"
