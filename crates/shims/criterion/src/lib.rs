//! In-repo shim for the subset of the Criterion benchmarking API this
//! workspace uses (`criterion_group!`/`criterion_main!`, benchmark groups,
//! `iter` / `iter_batched`, throughput annotation).
//!
//! The build environment has no crates-registry access, so this crate stands
//! in for the real Criterion. It measures wall time with a warmup pass and
//! an adaptive iteration count, prints one line per benchmark, and — when
//! `CRITERION_JSON` names a file — appends machine-readable results so
//! `scripts/bench.sh` can accumulate a perf trajectory.
//!
//! When invoked with `--test` (what `cargo test` passes to `harness = false`
//! targets) every benchmark runs exactly one iteration.

#![warn(missing_docs)]

use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement time per benchmark (split across samples).
const MEASURE_BUDGET: Duration = Duration::from_millis(300);

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark id (`group/function[/parameter]`).
    pub id: String,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Iterations measured.
    pub iterations: u64,
    /// Optional throughput annotation (bytes or elements per iteration).
    pub throughput: Option<Throughput>,
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// How `iter_batched` sizes its batches. The shim runs one input per
/// iteration regardless; the variants exist for API compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// Identifier of a parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Id carrying a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Id carrying only a parameter value (function name comes from the
    /// group).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self, group: &str) -> String {
        let mut s = group.to_string();
        if let Some(f) = &self.function {
            s.push('/');
            s.push_str(f);
        }
        if let Some(p) = &self.parameter {
            s.push('/');
            s.push_str(p);
        }
        s
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: Some(s.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: Some(s),
            parameter: None,
        }
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    quick: bool,
    sample_size: usize,
    result_ns: f64,
    iterations: u64,
}

impl Bencher {
    /// Measure `routine` called in a tight loop.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        if self.quick {
            black_box(routine());
            self.result_ns = 0.0;
            self.iterations = 1;
            return;
        }
        // Warmup + calibration: estimate one iteration's cost.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let budget = MEASURE_BUDGET.min(once * self.sample_size as u32 * 4);
        let iters = (budget.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let t1 = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let total = t1.elapsed();
        self.result_ns = total.as_nanos() as f64 / iters as f64;
        self.iterations = iters;
    }

    /// Measure `routine` over fresh inputs produced by `setup` (setup time
    /// excluded from the measurement).
    pub fn iter_batched<S, R>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> R,
        _size: BatchSize,
    ) {
        if self.quick {
            black_box(routine(setup()));
            self.result_ns = 0.0;
            self.iterations = 1;
            return;
        }
        let input = setup();
        let t0 = Instant::now();
        black_box(routine(input));
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let budget = MEASURE_BUDGET.min(once * self.sample_size as u32 * 4);
        let iters = (budget.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let mut measured = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            measured += t.elapsed();
        }
        self.result_ns = measured.as_nanos() as f64 / iters as f64;
        self.iterations = iters;
    }
}

/// Top-level benchmark driver (the shim's stand-in for `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    quick: bool,
    filter: Option<String>,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            quick: false,
            filter: None,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Set the nominal sample count (scales the measurement budget).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Read `--test` / filter settings from the process arguments
    /// (called by `criterion_group!`).
    pub fn configure_from_args(&mut self) {
        let mut args = std::env::args().skip(1).peekable();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--test" => self.quick = true,
                "--bench" | "--profile-time" | "--save-baseline" | "--baseline" => {
                    if args.peek().is_some_and(|v| !v.starts_with('-')) {
                        args.next();
                    }
                }
                flag if flag.starts_with('-') => {}
                filter => self.filter = Some(filter.to_string()),
            }
        }
    }

    fn wants(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Benchmark a standalone function.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        self.run_one(id.to_string(), None, f);
        self
    }

    fn run_one(
        &mut self,
        id: String,
        throughput: Option<Throughput>,
        mut f: impl FnMut(&mut Bencher),
    ) {
        if !self.wants(&id) {
            return;
        }
        let mut b = Bencher {
            quick: self.quick,
            sample_size: self.sample_size,
            result_ns: 0.0,
            iterations: 0,
        };
        f(&mut b);
        let result = BenchResult {
            id,
            mean_ns: b.result_ns,
            iterations: b.iterations,
            throughput,
        };
        report(&result, self.quick);
        self.results.push(result);
    }

    /// Write accumulated results as JSON lines to `CRITERION_JSON`, if set.
    pub fn finalize(&self) {
        let Ok(path) = std::env::var("CRITERION_JSON") else {
            return;
        };
        if path.is_empty() {
            return;
        }
        let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        else {
            eprintln!("criterion shim: cannot open {path}");
            return;
        };
        for r in &self.results {
            let tp = match r.throughput {
                Some(Throughput::Bytes(b)) => format!(",\"bytes_per_iter\":{b}"),
                Some(Throughput::Elements(e)) => format!(",\"elements_per_iter\":{e}"),
                None => String::new(),
            };
            let _ = writeln!(
                file,
                "{{\"id\":\"{}\",\"mean_ns\":{:.1},\"iterations\":{}{}}}",
                r.id, r.mean_ns, r.iterations, tp
            );
        }
    }
}

fn report(r: &BenchResult, quick: bool) {
    if quick {
        println!("{:<44} ok (test mode)", r.id);
        return;
    }
    let human = if r.mean_ns >= 1e9 {
        format!("{:.3} s", r.mean_ns / 1e9)
    } else if r.mean_ns >= 1e6 {
        format!("{:.2} ms", r.mean_ns / 1e6)
    } else if r.mean_ns >= 1e3 {
        format!("{:.2} µs", r.mean_ns / 1e3)
    } else {
        format!("{:.1} ns", r.mean_ns)
    };
    let tp = match r.throughput {
        Some(Throughput::Bytes(b)) if r.mean_ns > 0.0 => {
            let gib_s = b as f64 / r.mean_ns; // bytes/ns == GB/s
            format!("  [{gib_s:.2} GB/s]")
        }
        _ => String::new(),
    };
    println!(
        "{:<44} time: {human:>10}/iter  ({} iters){tp}",
        r.id, r.iterations
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Benchmark a function within this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into().render(&self.name);
        let tp = self.throughput;
        self.criterion.run_one(id, tp, f);
        self
    }

    /// Benchmark a function over an explicit input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.render(&self.name);
        let tp = self.throughput;
        self.criterion.run_one(id, tp, |b| f(b, input));
        self
    }

    /// Close the group (no-op in the shim; exists for API parity).
    pub fn finish(self) {}
}

/// Declare a benchmark group: a function running each target against one
/// configured [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            criterion.configure_from_args();
            $( $target(&mut criterion); )+
            criterion.finalize();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut c = Criterion::default().sample_size(10);
        c.bench_function("spin", |b| {
            b.iter(|| {
                let mut s = 0u64;
                for i in 0..100u64 {
                    s = s.wrapping_add(black_box(i));
                }
                s
            })
        });
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].mean_ns > 0.0);
        assert!(c.results[0].iterations >= 1);
    }

    #[test]
    fn groups_render_ids() {
        let id = BenchmarkId::from_parameter(64).render("local_core");
        assert_eq!(id, "local_core/64");
        let id = BenchmarkId::new("f", "p").render("g");
        assert_eq!(id, "g/f/p");
    }

    #[test]
    fn iter_batched_runs_in_quick_mode() {
        let mut b = Bencher {
            quick: true,
            sample_size: 10,
            result_ns: 1.0,
            iterations: 0,
        };
        let mut calls = 0;
        b.iter_batched(
            || 5u32,
            |x| {
                calls += 1;
                x * 2
            },
            BatchSize::LargeInput,
        );
        assert_eq!(calls, 1);
        assert_eq!(b.iterations, 1);
    }
}
