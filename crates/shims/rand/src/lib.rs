//! In-repo shim for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no access to a crates registry, so the handful
//! of `rand` entry points the generators and benches rely on are implemented
//! here: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], the [`Rng`]
//! methods `gen`, `gen_range`, `gen_bool`, and [`seq::SliceRandom::shuffle`].
//!
//! The generator is SplitMix64 — deterministic per seed, statistically solid
//! for workload generation, and a different stream from upstream `rand`
//! (callers only depend on determinism, never on exact values).

#![warn(missing_docs)]

use core::ops::Range;

/// Low-level entropy source: a stream of `u64` values.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable uniformly from their full domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types uniformly samplable from a `Range` (`rng.gen_range(a..b)`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Draw uniformly from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                // Multiply-shift rejection-free mapping; the modulo bias is
                // below 2^-32 for every span this workspace uses.
                let x = rng.next_u64() % span;
                lo.wrapping_add(x as $t)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i32, i64);

/// The user-facing sampling interface (blanket-implemented for all RNGs).
pub trait Rng: RngCore {
    /// Sample a value uniformly from the type's full domain
    /// (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from `range` (must be non-empty).
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must lie in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: 64 bits of state, passes BigCrush, one multiply-xor step
    /// per output. Stands in for rand's `SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Extension methods on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0usize..5);
            assert!(y < 5);
        }
    }

    #[test]
    fn floats_live_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        let mut rng = SmallRng::seed_from_u64(3);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }
}
