//! In-repo shim for the subset of the `proptest` API this workspace's tests
//! use: the [`Strategy`] trait with `prop_map` / `prop_flat_map`, range and
//! tuple strategies, `collection::vec`, `any::<T>()`, and the `proptest!`,
//! `prop_assert!`, `prop_assert_eq!`, `prop_assume!` macros.
//!
//! Differences from upstream: inputs are drawn from a deterministic
//! per-test seed (derived from the test name) rather than OS entropy, and
//! there is **no shrinking** — a failing case reports the panic message with
//! the case number so it can be replayed by running the same test again.

#![warn(missing_docs)]

use std::ops::Range;

/// Deterministic SplitMix64 driving all value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample an empty range");
        self.next_u64() % bound
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }

    /// Erase the strategy type (API parity; the shim just boxes).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Integers samplable by the range strategies.
pub trait SampleValue: Copy {
    /// Uniform draw from `[lo, hi)`.
    fn from_range(rng: &mut TestRng, lo: Self, hi: Self) -> Self;
    /// Uniform draw from the type's full domain.
    fn from_full(rng: &mut TestRng) -> Self;
}

macro_rules! impl_sample_value {
    ($($t:ty),*) => {$(
        impl SampleValue for $t {
            fn from_range(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                lo.wrapping_add(rng.below(span) as $t)
            }
            fn from_full(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_sample_value!(u8, u16, u32, u64, usize, i32, i64);

impl<T: SampleValue> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::from_range(rng, self.start, self.end)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Strategy for any value of `T` (`any::<T>()`).
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: SampleValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::from_full(rng)
    }
}

/// Strategy over the full domain of `T`.
pub fn any<T: SampleValue>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Number-of-elements specification for [`vec()`]: an exact count or a
    /// half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector of values drawn from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo
                + if span > 1 {
                    rng.below(span) as usize
                } else {
                    0
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Config and runner plumbing used by the `proptest!` macro expansion.
pub mod test_runner {
    use super::{Strategy, TestRng};

    /// Why a generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject,
        /// `prop_assert!`-style failure.
        Fail(String),
    }

    /// Execution parameters for one property.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Drives the cases of one property test.
    pub struct TestRunner {
        config: ProptestConfig,
        rng: TestRng,
    }

    impl TestRunner {
        /// Runner with a seed derived deterministically from the test name.
        pub fn new(config: ProptestConfig, test_name: &str) -> Self {
            // FNV-1a over the name: stable across runs and platforms.
            let mut h = 0xcbf29ce484222325u64;
            for b in test_name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100000001b3);
            }
            TestRunner {
                config,
                rng: TestRng::new(h),
            }
        }

        /// Configured case count.
        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        /// Draw one value from `strategy`.
        pub fn sample<S: Strategy>(&mut self, strategy: &S) -> S::Value {
            strategy.generate(&mut self.rng)
        }
    }
}

/// Everything a property test file needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{any, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declare property tests. Supports the forms this workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     #[test]
///     fn prop(x in 0u32..10, (a, b) in arb_pair()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $(
         $(#[$meta:meta])*
         fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut runner =
                    $crate::test_runner::TestRunner::new(config, stringify!($name));
                for case in 0..runner.cases() {
                    $(let $pat = runner.sample(&{ $strategy });)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body Ok(()) })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::test_runner::TestCaseError::Reject) => {}
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("property failed at case {case}: {msg}");
                        }
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through the property runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` that reports through the property runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// `assert_ne!` that reports through the property runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skip the current case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vecs_generate_in_bounds() {
        let mut rng = crate::TestRng::new(1);
        let strat = collection::vec((0u32..7, 0usize..3), 0usize..20);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!(v.len() < 20);
            for (a, b) in v {
                assert!(a < 7 && b < 3);
            }
        }
    }

    #[test]
    fn flat_map_threads_dependent_values() {
        let mut rng = crate::TestRng::new(2);
        let strat = (2u32..10).prop_flat_map(|n| (Just(n), 0u32..n));
        for _ in 0..200 {
            let (n, x) = strat.generate(&mut rng);
            assert!(x < n);
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        use crate::test_runner::{ProptestConfig, TestRunner};
        let s = 0u64..1_000_000;
        let mut a = TestRunner::new(ProptestConfig::with_cases(5), "same");
        let mut b = TestRunner::new(ProptestConfig::with_cases(5), "same");
        let mut c = TestRunner::new(ProptestConfig::with_cases(5), "different");
        let xs: Vec<u64> = (0..5).map(|_| a.sample(&s)).collect();
        let ys: Vec<u64> = (0..5).map(|_| b.sample(&s)).collect();
        let zs: Vec<u64> = (0..5).map(|_| c.sample(&s)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(x in 1u32..50, v in collection::vec(0u8..10, 0usize..8)) {
            prop_assume!(x != 13);
            prop_assert!(x >= 1);
            prop_assert!(v.len() < 8, "len {} out of bounds", v.len());
            prop_assert_eq!(x + 1, 1 + x);
            prop_assert_ne!(x, 0);
        }
    }
}
