//! Shared test scaffolding for the k-core suite.
//!
//! Before this crate existed, every suite that needed "a seeded random
//! graph checked against recomputation from scratch" grew its own copy of
//! the same three ingredients: an inline LCG, an ad-hoc random edge-list
//! builder, and an `imcore` oracle call. This crate is the single home for
//! that scaffolding — a **dev-dependency only** (it sits above `semicore`
//! in the build graph, which Cargo permits for dev-dependencies), so it can
//! never leak into shipped code.
//!
//! What lives here:
//!
//! * [`Lcg`] — the deterministic generator every seeded test uses;
//! * [`random_mem_graph`] / [`random_edges`] — the seeded multigraph
//!   builders behind the maintenance stream tests;
//! * [`oracle_cores`] — recompute-from-scratch core numbers (the IMCore
//!   oracle);
//! * [`fixtures`] — the ER/BA/RMAT generator-family trio at test size;
//! * [`disk_full_budget`] — write a graph to disk and open it with a
//!   whole-working-set cache budget (the regime where charged I/O is
//!   schedule-independent);
//! * [`arb_graph`] / [`arb_toggle_stream`] — the proptest strategies shared
//!   by the cross-validation and maintenance property suites.

#![deny(missing_docs)]

use graphstore::{mem_to_disk, DiskGraph, IoCounter, MemGraph, TempDir, DEFAULT_BLOCK_SIZE};
use proptest::prelude::*;

/// The suite's standard deterministic generator (a 64-bit LCG with the
/// Knuth multiplier, emitting the high bits). Same stream as the inline
/// closures it replaces.
#[derive(Debug, Clone)]
pub struct Lcg {
    state: u64,
}

impl Lcg {
    /// A generator seeded with `seed` (any value, including 0, is fine).
    pub fn new(seed: u64) -> Lcg {
        Lcg { state: seed }
    }

    /// Next 31 random bits, as the `u32` the tests consume.
    pub fn next_u32(&mut self) -> u32 {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.state >> 33) as u32
    }

    /// Uniform-ish draw from `[0, bound)` (`bound > 0`).
    pub fn below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "cannot sample an empty range");
        self.next_u32() % bound
    }
}

/// `count` random (possibly duplicate, possibly self-loop) node pairs over
/// `0..n` — the raw material of a seeded multigraph.
pub fn random_edges(rng: &mut Lcg, n: u32, count: u32) -> Vec<(u32, u32)> {
    (0..count).map(|_| (rng.below(n), rng.below(n))).collect()
}

/// A seeded random multigraph: `min_nodes + below(node_span)` nodes and
/// roughly `density` times as many candidate edges as nodes (self-loops and
/// duplicates dropped by [`MemGraph::from_edges`]). This is the shape every
/// maintenance suite draws its starting graphs from.
pub fn random_mem_graph(rng: &mut Lcg, min_nodes: u32, node_span: u32, density: u32) -> MemGraph {
    let n = min_nodes + rng.below(node_span.max(1));
    let m = n + rng.below((density * n).max(1));
    MemGraph::from_edges(random_edges(rng, n, m), n)
}

/// Worker counts the executor-equivalence suites sweep: 1/2/4 always, plus
/// whatever `SEMICORE_WORKERS` asks for — the CI knob that re-runs a suite
/// at another width (see `.github/workflows/ci.yml`).
pub fn worker_counts() -> Vec<usize> {
    let mut counts = vec![1usize, 2, 4];
    if let Some(w) = std::env::var("SEMICORE_WORKERS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        if w >= 1 && !counts.contains(&w) {
            counts.push(w);
        }
    }
    counts
}

/// Core numbers recomputed from scratch by the in-memory oracle (IMCore) —
/// the ground truth every incremental or external result is checked
/// against.
pub fn oracle_cores(g: &MemGraph) -> Vec<u32> {
    semicore::imcore(g).core
}

/// The three generator-family fixtures the equivalence and bench suites
/// share, at test size: ER (`gnm`), BA (preferential attachment) and R-MAT
/// (web-like skew).
pub fn fixtures() -> Vec<(&'static str, MemGraph)> {
    let er = MemGraph::from_edges(graphgen::gnm(600, 2400, 11), 600);
    let ba = MemGraph::from_edges(graphgen::preferential_attachment(500, 4, 22), 500);
    let rmat_params = graphgen::Rmat::web(9);
    let rmat = MemGraph::from_edges(
        graphgen::rmat_edges(rmat_params, 3000, 33),
        rmat_params.num_nodes(),
    );
    vec![("ER", er), ("BA", ba), ("RMAT", rmat)]
}

/// Write `g` to disk under `dir/tag` and open it with a cache budget
/// covering the whole graph — the regime in which charged I/O equals
/// *distinct blocks touched* and is therefore schedule-independent (what
/// the sequential-vs-parallel equivalence suites rely on).
///
/// Headroom of a few frames over the byte total: each table rounds up to
/// whole blocks, and a pool one frame short of the working set would evict
/// — making charged misses schedule-dependent again.
pub fn disk_full_budget(g: &MemGraph, dir: &TempDir, tag: &str) -> DiskGraph {
    let base = dir.path().join(tag);
    drop(mem_to_disk(&base, g, IoCounter::new(DEFAULT_BLOCK_SIZE)).unwrap());
    DiskGraph::open_with_cache(
        &base,
        IoCounter::new(DEFAULT_BLOCK_SIZE),
        working_set_budget(&base),
    )
    .unwrap()
}

/// The working-set charge/cache budget of the graph stored at `base`, at
/// the default block size — a panicking test-side wrapper over the one
/// canonical formula, [`graphstore::working_set_charge_budget`].
pub fn working_set_budget(base: &std::path::Path) -> u64 {
    graphstore::working_set_charge_budget(base, DEFAULT_BLOCK_SIZE).unwrap()
}

/// Strategy: an arbitrary small multigraph (edge list plus node count) —
/// the input shape of the cross-validation property suites.
pub fn arb_graph() -> impl Strategy<Value = MemGraph> {
    arb_graph_with(2, 120, 400)
}

/// [`arb_graph`] with explicit bounds: `min_nodes..max_nodes` nodes and up
/// to `max_edges` candidate edges.
pub fn arb_graph_with(
    min_nodes: u32,
    max_nodes: u32,
    max_edges: usize,
) -> impl Strategy<Value = MemGraph> {
    (min_nodes..max_nodes, 0usize..max_edges).prop_flat_map(|(n, m)| {
        proptest::collection::vec((0..n, 0..n), m)
            .prop_map(move |edges| MemGraph::from_edges(edges, n))
    })
}

/// Strategy: a starting multigraph plus a stream of node-pair *toggles*
/// (insert the edge when absent, delete it when present) — the input shape
/// of the maintenance property suites.
pub fn arb_toggle_stream() -> impl Strategy<Value = (MemGraph, Vec<(u32, u32)>)> {
    (3u32..60, 0usize..150).prop_flat_map(|(n, m)| {
        let edges = proptest::collection::vec((0..n, 0..n), m);
        let ops = proptest::collection::vec((0..n, 0..n), 0usize..40);
        (edges, ops).prop_map(move |(e, o)| (MemGraph::from_edges(e, n), o))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg_matches_the_inline_closures_it_replaced() {
        // The exact constants and shift the suite's tests used inline.
        let mut seed = 13u64;
        let mut inline = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as u32
        };
        let mut lcg = Lcg::new(13);
        for _ in 0..100 {
            assert_eq!(lcg.next_u32(), inline());
        }
    }

    #[test]
    fn random_graph_is_deterministic_per_seed() {
        let a = random_mem_graph(&mut Lcg::new(42), 3, 50, 3);
        let b = random_mem_graph(&mut Lcg::new(42), 3, 50, 3);
        assert_eq!(a, b);
        let c = random_mem_graph(&mut Lcg::new(43), 3, 50, 3);
        assert!(a != c || a.num_edges() == 0);
    }

    #[test]
    fn oracle_matches_known_structure() {
        let clique4: Vec<(u32, u32)> = (0..4u32)
            .flat_map(|u| ((u + 1)..4).map(move |v| (u, v)))
            .collect();
        let g = MemGraph::from_edges(clique4, 5);
        assert_eq!(oracle_cores(&g), vec![3, 3, 3, 3, 0]);
    }

    #[test]
    fn fixtures_are_nonempty_and_distinct() {
        let fx = fixtures();
        assert_eq!(fx.len(), 3);
        for (name, g) in &fx {
            assert!(g.num_edges() > 0, "{name} must have edges");
        }
    }

    #[test]
    fn disk_full_budget_round_trips() {
        let g = MemGraph::from_edges([(0, 1), (1, 2), (0, 2)], 3);
        let dir = TempDir::new("testutil").unwrap();
        let mut disk = disk_full_budget(&g, &dir, "g");
        let mut buf = Vec::new();
        disk.adjacency(1, &mut buf).unwrap();
        assert_eq!(buf, vec![0, 2]);
        assert!(disk.cache_budget_bytes() > 0);
    }
}
