//! R-MAT recursive-matrix graph generation (Chakrabarti, Zhan, Faloutsos).
//!
//! Each edge picks its endpoints by descending a 2×2 probability matrix
//! `[[a, b], [c, d]]` over the adjacency matrix, producing the skewed,
//! community-ish degree distributions typical of web crawls. The suite uses
//! it as the stand-in for the paper's web-graph datasets (Webbase, IT, SK,
//! UK, Clueweb, WIKI).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// R-MAT parameter set. Probabilities must be non-negative and sum to ~1.
#[derive(Debug, Clone, Copy)]
pub struct Rmat {
    /// Top-left quadrant probability (self-community mass).
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
    /// log2 of the node-id space.
    pub scale: u32,
}

impl Rmat {
    /// The classic web-graph parameterisation (a=0.57, b=c=0.19).
    pub fn web(scale: u32) -> Rmat {
        Rmat {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            scale,
        }
    }

    /// Number of node ids (`2^scale`).
    pub fn num_nodes(&self) -> u32 {
        1u32 << self.scale
    }

    /// Sample one directed edge.
    fn edge(&self, rng: &mut SmallRng) -> (u32, u32) {
        let mut u = 0u32;
        let mut v = 0u32;
        for _ in 0..self.scale {
            u <<= 1;
            v <<= 1;
            let r: f64 = rng.gen();
            if r < self.a {
                // top-left: (0, 0)
            } else if r < self.a + self.b {
                v |= 1;
            } else if r < self.a + self.b + self.c {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        (u, v)
    }
}

/// Generate `m` R-MAT edge samples (with possible duplicates / self-loops —
/// callers normalise through the graph builders), calling `emit` per edge.
pub fn rmat_stream(params: Rmat, m: u64, seed: u64, mut emit: impl FnMut(u32, u32)) {
    assert!(
        params.scale >= 1 && params.scale < 32,
        "scale must be in 1..32"
    );
    assert!(
        params.a >= 0.0
            && params.b >= 0.0
            && params.c >= 0.0
            && params.a + params.b + params.c <= 1.0 + 1e-9,
        "probabilities must be a valid distribution"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    for _ in 0..m {
        let (u, v) = params.edge(&mut rng);
        emit(u, v);
    }
}

/// Collect `m` R-MAT edge samples into a vector.
pub fn rmat_edges(params: Rmat, m: u64, seed: u64) -> Vec<(u32, u32)> {
    let mut out = Vec::with_capacity(m as usize);
    rmat_stream(params, m, seed, |u, v| out.push((u, v)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphstore::MemGraph;

    #[test]
    fn deterministic_for_a_seed() {
        let p = Rmat::web(10);
        assert_eq!(rmat_edges(p, 500, 42), rmat_edges(p, 500, 42));
        assert_ne!(rmat_edges(p, 500, 42), rmat_edges(p, 500, 43));
    }

    #[test]
    fn ids_stay_in_range() {
        let p = Rmat::web(8);
        for (u, v) in rmat_edges(p, 2000, 7) {
            assert!(u < 256 && v < 256);
        }
    }

    #[test]
    fn degree_distribution_is_skewed() {
        // The hallmark of R-MAT: a heavy-tailed degree distribution. The max
        // degree should far exceed the mean.
        let p = Rmat::web(12);
        let g = MemGraph::from_edges(rmat_edges(p, 40_000, 1), p.num_nodes());
        let degrees = g.degrees();
        let max = *degrees.iter().max().unwrap() as f64;
        let mean = g.degree_sum() as f64 / g.num_nodes() as f64;
        assert!(
            max > 8.0 * mean,
            "max degree {max} should dwarf mean {mean}"
        );
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn rejects_scale_32() {
        rmat_edges(
            Rmat {
                a: 0.25,
                b: 0.25,
                c: 0.25,
                scale: 32,
            },
            1,
            0,
        );
    }
}
