//! The scalability samplers of §VI-C.
//!
//! *"We vary the number of nodes |V| and number of edges |E| … by randomly
//! sampling nodes and edges respectively from 20% to 100%. When sampling
//! nodes, we keep the induced subgraph of the nodes, and when sampling
//! edges, we keep the incident nodes of the edges."*

use graphstore::MemGraph;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Sample `fraction` of the nodes uniformly and return their induced
/// subgraph. Node ids are compacted to `0..n'` (ascending original order),
/// since the semi-external node state is dimensioned by the node-id space.
pub fn sample_nodes(g: &MemGraph, fraction: f64, seed: u64) -> MemGraph {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "fraction must lie in [0, 1]"
    );
    let n = g.num_nodes();
    let mut rng = SmallRng::seed_from_u64(seed);
    // Dense relabelling: kept[v] = new id + 1, 0 = dropped.
    let mut newid = vec![0u32; n as usize];
    let mut kept = 0u32;
    for v in 0..n {
        if rng.gen::<f64>() < fraction {
            kept += 1;
            newid[v as usize] = kept;
        }
    }
    let mut edges = Vec::new();
    for v in 0..n {
        let nv = newid[v as usize];
        if nv == 0 {
            continue;
        }
        for &u in g.neighbors(v) {
            if u > v {
                let nu = newid[u as usize];
                if nu != 0 {
                    edges.push((nv - 1, nu - 1));
                }
            }
        }
    }
    MemGraph::from_edges(edges, kept)
}

/// Sample `fraction` of the edges uniformly, keeping the incident nodes
/// (and therefore the original id space).
pub fn sample_edges(g: &MemGraph, fraction: f64, seed: u64) -> MemGraph {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "fraction must lie in [0, 1]"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let edges: Vec<(u32, u32)> = g.edges().filter(|_| rng.gen::<f64>() < fraction).collect();
    MemGraph::from_edges(edges, g.num_nodes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::er::gnm;

    fn base() -> MemGraph {
        MemGraph::from_edges(gnm(500, 3000, 11), 500)
    }

    #[test]
    fn full_fraction_is_identity_shaped() {
        let g = base();
        let s = sample_nodes(&g, 1.0, 1);
        assert_eq!(s.num_nodes(), g.num_nodes());
        assert_eq!(s.num_edges(), g.num_edges());
        let s = sample_edges(&g, 1.0, 1);
        assert_eq!(s.num_edges(), g.num_edges());
    }

    #[test]
    fn zero_fraction_is_empty() {
        let g = base();
        assert_eq!(sample_nodes(&g, 0.0, 1).num_nodes(), 0);
        assert_eq!(sample_edges(&g, 0.0, 1).num_edges(), 0);
    }

    #[test]
    fn node_sampling_scales_edges_quadratically() {
        let g = base();
        let s = sample_nodes(&g, 0.5, 7);
        let ratio_n = s.num_nodes() as f64 / g.num_nodes() as f64;
        let ratio_m = s.num_edges() as f64 / g.num_edges() as f64;
        assert!((0.4..0.6).contains(&ratio_n), "node ratio {ratio_n}");
        // Induced subgraph keeps an edge iff both endpoints survive: ~f².
        assert!((0.15..0.4).contains(&ratio_m), "edge ratio {ratio_m}");
    }

    #[test]
    fn edge_sampling_keeps_id_space() {
        let g = base();
        let s = sample_edges(&g, 0.4, 3);
        assert_eq!(s.num_nodes(), g.num_nodes());
        let ratio = s.num_edges() as f64 / g.num_edges() as f64;
        assert!((0.3..0.5).contains(&ratio), "edge ratio {ratio}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let g = base();
        assert_eq!(sample_nodes(&g, 0.5, 9), sample_nodes(&g, 0.5, 9));
        assert_eq!(sample_edges(&g, 0.5, 9), sample_edges(&g, 0.5, 9));
    }

    #[test]
    fn induced_subgraph_edges_exist_in_parent() {
        // Sampled (relabelled) edges must map back to parent edges: check
        // via degree-sum conservation against a manual reconstruction.
        let g = base();
        let mut rng_check = sample_nodes(&g, 0.3, 5);
        rng_check.validate().unwrap();
        let s = sample_edges(&g, 0.3, 5);
        s.validate().unwrap();
        for (u, v) in s.edges() {
            assert!(g.has_edge(u, v));
        }
        let _ = &mut rng_check;
    }
}
