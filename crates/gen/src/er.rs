//! Erdős–Rényi `G(n, m)` uniform random graphs — the no-skew control
//! workload used by ablation benches.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Sample `m` uniform edge slots over `n` nodes (duplicates and self-loops
/// possible; builders normalise).
pub fn gnm(n: u32, m: u64, seed: u64) -> Vec<(u32, u32)> {
    assert!(n >= 2, "need at least two nodes");
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..m)
        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphstore::MemGraph;

    #[test]
    fn deterministic() {
        assert_eq!(gnm(100, 300, 1), gnm(100, 300, 1));
        assert_ne!(gnm(100, 300, 1), gnm(100, 300, 2));
    }

    #[test]
    fn degrees_are_roughly_uniform() {
        let n = 2000u32;
        let g = MemGraph::from_edges(gnm(n, 20_000, 3), n);
        let max = (0..n).map(|v| g.degree(v)).max().unwrap() as f64;
        let mean = g.degree_sum() as f64 / n as f64;
        // Poisson-ish: the max should stay within a small factor of the mean
        // (contrast with the R-MAT / BA skew tests).
        assert!(max < 4.0 * mean, "max {max} vs mean {mean}");
    }

    #[test]
    fn ids_in_range() {
        for (u, v) in gnm(50, 500, 9) {
            assert!(u < 50 && v < 50);
        }
    }
}
