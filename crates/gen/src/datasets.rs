//! Scaled stand-ins for the paper's 12 evaluation datasets (Table I).
//!
//! Each spec records the real graph's published statistics (for the
//! paper-vs-measured tables in EXPERIMENTS.md) and a generator recipe that
//! reproduces its shape class at a size this machine chews through in
//! seconds: preferential attachment for the social/citation networks, R-MAT
//! for the web crawls, with the average density `m/n` matched to Table I.
//!
//! `scale = 1.0` targets the default stand-in sizes (small group ≈ n/50,
//! big group ≈ n/500 of the real graphs, capped to keep Clueweb tractable);
//! the bench harness exposes `--scale` to grow or shrink everything
//! proportionally.

use graphstore::{DiskGraph, ExternalGraphBuilder, IoCounter, MemGraph, Result};
use std::path::Path;
use std::sync::Arc;

use crate::ba::preferential_attachment;
use crate::rmat::{rmat_stream, Rmat};

/// Which evaluation group a dataset belongs to (Fig. 9/10 split them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetGroup {
    /// Group one: the six memory-resident graphs.
    Small,
    /// Group two: the six big graphs.
    Big,
}

/// Published statistics of the real dataset (Table I).
#[derive(Debug, Clone, Copy)]
pub struct PaperStats {
    /// |V| of the real graph.
    pub nodes: u64,
    /// |E| of the real graph.
    pub edges: u64,
    /// Density m/n reported in Table I.
    pub density: f64,
    /// kmax reported in Table I.
    pub kmax: u32,
}

/// Generator family used for the stand-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Preferential attachment (social / citation shape).
    Social,
    /// R-MAT (web crawl shape).
    Web,
}

/// One Table I row: the real statistics plus the scaled stand-in recipe.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Dataset name as used in the paper.
    pub name: &'static str,
    /// Small or big group.
    pub group: DatasetGroup,
    /// Real-graph statistics from Table I.
    pub paper: PaperStats,
    /// Generator family.
    pub family: Family,
    /// Stand-in node count at `scale = 1.0`.
    pub base_nodes: u32,
    /// Deterministic seed.
    pub seed: u64,
}

impl DatasetSpec {
    /// Stand-in node count at the given scale.
    pub fn nodes(&self, scale: f64) -> u32 {
        ((self.base_nodes as f64 * scale) as u32).max(64)
    }

    /// Stand-in edge target at the given scale (density matched to Table I).
    pub fn edge_target(&self, scale: f64) -> u64 {
        (self.nodes(scale) as f64 * self.paper.density) as u64
    }

    /// Generate the stand-in in memory (fine for the small group and for
    /// tests; the big group at large scales should go straight to disk).
    pub fn generate_mem(&self, scale: f64) -> MemGraph {
        let n = self.nodes(scale);
        match self.family {
            Family::Social => {
                let k = (self.paper.density.round() as u32).max(1);
                MemGraph::from_edges(preferential_attachment(n, k, self.seed), n)
            }
            Family::Web => {
                let p = Rmat::web(log2_ceil(n));
                // Oversample: R-MAT repeats edges, normalisation dedups.
                let m = (self.edge_target(scale) as f64 * 1.15) as u64;
                let mut edges = Vec::with_capacity(m as usize);
                rmat_stream(p, m, self.seed, |u, v| {
                    if u < n && v < n {
                        edges.push((u, v));
                    }
                });
                MemGraph::from_edges(edges, n)
            }
        }
    }

    /// Generate the stand-in directly on disk with bounded memory, returning
    /// the opened graph. Used for the big group.
    pub fn build_disk(
        &self,
        base: &Path,
        scale: f64,
        counter: Arc<IoCounter>,
    ) -> Result<DiskGraph> {
        let n = self.nodes(scale);
        let mut builder = ExternalGraphBuilder::new(4 << 20)?;
        match self.family {
            Family::Social => {
                let k = (self.paper.density.round() as u32).max(1);
                for (u, v) in preferential_attachment(n, k, self.seed) {
                    builder.add_edge(u, v)?;
                }
            }
            Family::Web => {
                let p = Rmat::web(log2_ceil(n));
                let m = (self.edge_target(scale) as f64 * 1.15) as u64;
                let mut err = None;
                rmat_stream(p, m, self.seed, |u, v| {
                    if err.is_none() && u < n && v < n {
                        if let Err(e) = builder.add_edge(u, v) {
                            err = Some(e);
                        }
                    }
                });
                if let Some(e) = err {
                    return Err(e);
                }
            }
        }
        builder.finish(base, n, counter)
    }
}

fn log2_ceil(n: u32) -> u32 {
    32 - n.next_power_of_two().leading_zeros() - 1
}

/// The 12 Table I rows with their stand-in recipes.
pub fn paper_datasets() -> Vec<DatasetSpec> {
    use DatasetGroup::*;
    use Family::*;
    let row = |name, group, nodes, edges, density, kmax, family, base_nodes, seed| DatasetSpec {
        name,
        group,
        paper: PaperStats {
            nodes,
            edges,
            density,
            kmax,
        },
        family,
        base_nodes,
        seed,
    };
    vec![
        // Small group: real n / 50.
        row(
            "DBLP", Small, 317_080, 1_049_866, 3.31, 113, Social, 6_342, 101,
        ),
        row(
            "Youtube", Small, 1_134_890, 2_987_624, 2.63, 51, Social, 22_698, 102,
        ),
        row(
            "WIKI", Small, 2_394_385, 5_021_410, 2.10, 131, Web, 47_888, 103,
        ),
        row(
            "CPT", Small, 3_774_768, 16_518_948, 4.38, 64, Social, 75_495, 104,
        ),
        row(
            "LJ", Small, 3_997_962, 34_681_189, 8.67, 360, Social, 79_959, 105,
        ),
        row(
            "Orkut",
            Small,
            3_072_441,
            117_185_083,
            38.14,
            253,
            Social,
            61_449,
            106,
        ),
        // Big group: real n / 500, Clueweb capped for tractability.
        row(
            "Webbase",
            Big,
            118_142_155,
            1_019_903_190,
            8.63,
            1506,
            Web,
            236_284,
            107,
        ),
        row(
            "IT",
            Big,
            41_291_594,
            1_150_725_436,
            27.86,
            3224,
            Web,
            82_583,
            108,
        ),
        row(
            "Twitter",
            Big,
            41_652_230,
            1_468_365_182,
            35.25,
            2488,
            Social,
            83_304,
            109,
        ),
        row(
            "SK",
            Big,
            50_636_154,
            1_949_412_601,
            38.49,
            4510,
            Web,
            101_272,
            110,
        ),
        row(
            "UK",
            Big,
            105_896_555,
            3_738_733_648,
            35.30,
            5704,
            Web,
            211_793,
            111,
        ),
        row(
            "Clueweb",
            Big,
            978_408_098,
            42_574_107_469,
            43.51,
            4244,
            Web,
            489_204,
            112,
        ),
    ]
}

/// Look up a dataset spec by (case-insensitive) name.
pub fn dataset_by_name(name: &str) -> Option<DatasetSpec> {
    paper_datasets()
        .into_iter()
        .find(|d| d.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphstore::TempDir;

    #[test]
    fn twelve_rows_matching_table_one() {
        let ds = paper_datasets();
        assert_eq!(ds.len(), 12);
        assert_eq!(
            ds.iter().filter(|d| d.group == DatasetGroup::Small).count(),
            6
        );
        let clueweb = ds.last().unwrap();
        assert_eq!(clueweb.name, "Clueweb");
        assert_eq!(clueweb.paper.nodes, 978_408_098);
        assert_eq!(clueweb.paper.kmax, 4244);
    }

    #[test]
    fn density_of_standins_tracks_table_one() {
        for d in paper_datasets()
            .iter()
            .filter(|d| d.group == DatasetGroup::Small)
        {
            let g = d.generate_mem(0.1);
            let density = g.num_edges() as f64 / g.num_nodes() as f64;
            let target = d.paper.density;
            assert!(
                density > 0.4 * target && density < 2.0 * target,
                "{}: density {density:.2} vs target {target:.2}",
                d.name
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let d = dataset_by_name("dblp").unwrap();
        assert_eq!(d.generate_mem(0.05), d.generate_mem(0.05));
    }

    #[test]
    fn disk_build_matches_mem_build() {
        let d = dataset_by_name("WIKI").unwrap();
        let mem = d.generate_mem(0.02);
        let dir = TempDir::new("dataset").unwrap();
        let mut disk = d
            .build_disk(
                &dir.path().join("g"),
                0.02,
                IoCounter::new(graphstore::DEFAULT_BLOCK_SIZE),
            )
            .unwrap();
        assert_eq!(disk.num_nodes(), mem.num_nodes());
        assert_eq!(disk.num_edges(), mem.num_edges());
        let back = graphstore::disk_to_mem(&mut disk).unwrap();
        assert_eq!(back, mem);
    }

    #[test]
    fn unknown_dataset_is_none() {
        assert!(dataset_by_name("nope").is_none());
    }

    #[test]
    fn log2_ceil_values() {
        assert_eq!(log2_ceil(64), 6);
        assert_eq!(log2_ceil(65), 7);
        assert_eq!(log2_ceil(1), 0);
    }
}
