//! Barabási–Albert preferential attachment.
//!
//! New nodes attach to `k` existing nodes with probability proportional to
//! degree, yielding the power-law tails and dense nuclei of social networks
//! — the stand-in shape for DBLP, Youtube, CPT, LJ, Orkut and Twitter.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generate a preferential-attachment edge list over `n` nodes with a mean
/// of `k` attachments per new node (so roughly `k·n` edges).
///
/// Each arriving node draws its attachment count uniformly from `1..=2k-1`
/// (mean `k`): constant-`k` BA graphs have a *uniform* core number — every
/// node lands in exactly the k-core — whereas real social networks show a
/// layered onion. Varying the attachment count restores that layering while
/// keeping the heavy-tailed hubs.
///
/// Implementation: the repeated-endpoints trick — every edge endpoint is
/// appended to a pool, and sampling uniformly from the pool is sampling
/// proportional to degree. Duplicate attachments within one node are
/// re-drawn a bounded number of times, then allowed through (the builders
/// dedup).
pub fn preferential_attachment(n: u32, k: u32, seed: u64) -> Vec<(u32, u32)> {
    assert!(k >= 1, "attachment count must be at least 1");
    assert!(n > k, "need more nodes than attachments");
    let mut rng = SmallRng::seed_from_u64(seed);
    let seed_nodes = k + 1;
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity((n as usize) * (k as usize));
    // Endpoint pool for degree-proportional sampling.
    let mut pool: Vec<u32> = Vec::with_capacity(2 * (n as usize) * (k as usize));

    // Seed clique on nodes 0..k+1 so every early node has degree >= k.
    for u in 0..seed_nodes {
        for v in (u + 1)..seed_nodes {
            edges.push((u, v));
            pool.push(u);
            pool.push(v);
        }
    }

    for v in seed_nodes..n {
        let kv = if k == 1 { 1 } else { rng.gen_range(1..2 * k) };
        let mut chosen: Vec<u32> = Vec::with_capacity(kv as usize);
        for _ in 0..kv {
            let mut pick = pool[rng.gen_range(0..pool.len())];
            // Bounded retry against duplicates / self.
            for _ in 0..8 {
                if pick != v && !chosen.contains(&pick) {
                    break;
                }
                pick = pool[rng.gen_range(0..pool.len())];
            }
            if pick == v {
                continue;
            }
            chosen.push(pick);
        }
        for &u in &chosen {
            edges.push((u, v));
            pool.push(u);
            pool.push(v);
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphstore::MemGraph;

    #[test]
    fn deterministic_for_a_seed() {
        assert_eq!(
            preferential_attachment(200, 3, 9),
            preferential_attachment(200, 3, 9)
        );
        assert_ne!(
            preferential_attachment(200, 3, 9),
            preferential_attachment(200, 3, 10)
        );
    }

    #[test]
    fn edge_count_close_to_kn() {
        let n = 1000u32;
        let k = 4u32;
        let g = MemGraph::from_edges(preferential_attachment(n, k, 5), n);
        let m = g.num_edges();
        assert!(
            m as f64 > 0.9 * (k as f64) * (n as f64),
            "m = {m}, expected near {}",
            k * n
        );
    }

    #[test]
    fn graph_is_connected_enough_for_kcore() {
        // Every node attaches to k nodes, so the k-core is (nearly) the
        // whole graph and kmax >= k.
        let n = 500u32;
        let k = 3u32;
        let g = MemGraph::from_edges(preferential_attachment(n, k, 77), n);
        let d = semicore_oracle(&g);
        let kmax = d.iter().copied().max().unwrap();
        assert!(kmax >= k, "kmax {kmax} < k {k}");
        let in_kcore = d.iter().filter(|&&c| c >= k).count();
        assert!(in_kcore as f64 > 0.2 * n as f64);
    }

    #[test]
    fn core_structure_is_layered() {
        // Real social networks have an onion of distinct core levels; the
        // varied attachment count must reproduce that (a constant-k BA
        // graph collapses to a single level).
        let n = 2000u32;
        let g = MemGraph::from_edges(preferential_attachment(n, 6, 123), n);
        let d = semicore_oracle(&g);
        let distinct: std::collections::HashSet<u32> = d.iter().copied().collect();
        assert!(distinct.len() >= 4, "only {} core levels", distinct.len());
    }

    #[test]
    fn hubs_emerge() {
        let n = 2000u32;
        let g = MemGraph::from_edges(preferential_attachment(n, 2, 3), n);
        let max = (0..n).map(|v| g.degree(v)).max().unwrap() as f64;
        let mean = g.degree_sum() as f64 / n as f64;
        assert!(max > 6.0 * mean, "max {max} vs mean {mean}");
    }

    /// Tiny local peeling oracle to avoid a dev-dependency cycle on the
    /// semicore crate.
    fn semicore_oracle(g: &MemGraph) -> Vec<u32> {
        let n = g.num_nodes() as usize;
        let mut alive = vec![true; n];
        let mut deg: Vec<i64> = (0..n as u32).map(|v| g.degree(v) as i64).collect();
        let mut core = vec![0u32; n];
        let mut k = 0i64;
        for _ in 0..n {
            let v = (0..n)
                .filter(|&v| alive[v])
                .min_by_key(|&v| deg[v])
                .unwrap();
            k = k.max(deg[v]);
            core[v] = k as u32;
            alive[v] = false;
            for &u in g.neighbors(v as u32) {
                if alive[u as usize] {
                    deg[u as usize] -= 1;
                }
            }
        }
        core
    }
}
