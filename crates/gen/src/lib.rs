//! # graphgen — synthetic workloads for the k-core suite
//!
//! The paper evaluates on 12 real graphs (Table I), up to Clueweb's 42.6
//! billion edges. Those datasets are not redistributable here, so this crate
//! generates deterministic, seeded stand-ins whose *shape* matches each real
//! graph — relative size, average density `m/n`, and degree-distribution
//! skew — scaled down so the full evaluation runs locally in minutes:
//!
//! * [`ba`] — preferential attachment (heavy-tailed social networks);
//! * [`rmat`] — recursive-matrix generation (web-crawl-like graphs);
//! * [`er`] — Erdős–Rényi uniform graphs (control workloads);
//! * [`sample`] — the node / edge samplers of §VI-C (scalability sweeps);
//! * [`datasets`] — one preset per Table I row, plus the paper's reference
//!   statistics for side-by-side reporting.

#![warn(missing_docs)]

pub mod ba;
pub mod datasets;
pub mod er;
pub mod rmat;
pub mod sample;

pub use ba::preferential_attachment;
pub use datasets::{
    dataset_by_name, paper_datasets, DatasetGroup, DatasetSpec, Family, PaperStats,
};
pub use er::gnm;
pub use rmat::{rmat_edges, Rmat};
pub use sample::{sample_edges, sample_nodes};
