//! IMCore — the in-memory core decomposition baseline (Algorithm 1).
//!
//! Batagelj & Zaversnik's `O(n + m)` bin-sort peeling: repeatedly remove a
//! node of minimum remaining degree; the level at which a node is removed is
//! its core number. This is the paper's in-memory comparison point and also
//! serves as the test oracle for every other algorithm in this crate.

use std::time::Instant;

use graphstore::MemGraph;

use crate::stats::{Decomposition, RunStats};

/// Run IMCore on an in-memory graph.
///
/// Implementation: the classic three-array bin sort (`bin`, `pos`, `vert`)
/// over degrees, giving linear total time. Memory cost is the CSR itself
/// plus four `O(n)` arrays — the paper's Fig. 9(c) point for IMCore.
pub fn imcore(g: &MemGraph) -> Decomposition {
    let start = Instant::now();
    let n = g.num_nodes() as usize;
    let mut stats = RunStats::new("IMCore");

    let mut degree: Vec<u32> = (0..n as u32).map(|v| g.degree(v)).collect();
    let max_degree = degree.iter().copied().max().unwrap_or(0) as usize;

    // bin[d] = index in `vert` of the first node with current degree d.
    let mut bin = vec![0u32; max_degree + 2];
    for &d in &degree {
        bin[d as usize] += 1;
    }
    let mut startpos = 0u32;
    for b in bin.iter_mut() {
        let count = *b;
        *b = startpos;
        startpos += count;
    }
    // vert: nodes sorted by degree; pos[v]: index of v in vert.
    let mut vert = vec![0u32; n];
    let mut pos = vec![0u32; n];
    {
        let mut next = bin.clone();
        for v in 0..n as u32 {
            let d = degree[v as usize] as usize;
            pos[v as usize] = next[d];
            vert[next[d] as usize] = v;
            next[d] += 1;
        }
    }

    let mut core = vec![0u32; n];
    for i in 0..n {
        let v = vert[i];
        core[v as usize] = degree[v as usize];
        stats.node_computations += 1;
        for &u in g.neighbors(v) {
            if degree[u as usize] > degree[v as usize] {
                // Move u one bin down: swap it with the first node of its
                // current bin, then advance that bin's start.
                let du = degree[u as usize] as usize;
                let pu = pos[u as usize];
                let pw = bin[du];
                let w = vert[pw as usize];
                if u != w {
                    vert[pu as usize] = w;
                    vert[pw as usize] = u;
                    pos[u as usize] = pw;
                    pos[w as usize] = pu;
                }
                bin[du] += 1;
                degree[u as usize] -= 1;
            }
        }
    }

    stats.iterations = 1;
    stats.peak_memory_bytes = g.resident_bytes()
        + (core.len() * 4 + degree.len() * 4 + vert.len() * 4 + pos.len() * 4 + bin.len() * 4)
            as u64;
    stats.wall_time = start.elapsed();
    Decomposition { core, stats }
}

/// Quadratic reference peeling (tests only): repeatedly delete any node of
/// minimum degree. Deliberately naive and independent of the bin-sort code.
#[cfg(any(test, feature = "testing"))]
pub fn peel_naive(g: &MemGraph) -> Vec<u32> {
    let n = g.num_nodes() as usize;
    let mut alive = vec![true; n];
    let mut deg: Vec<i64> = (0..n as u32).map(|v| g.degree(v) as i64).collect();
    let mut core = vec![0u32; n];
    let mut k: i64 = 0;
    for _ in 0..n {
        // Minimum-degree alive node.
        let v = (0..n)
            .filter(|&v| alive[v])
            .min_by_key(|&v| deg[v])
            .expect("some node alive");
        k = k.max(deg[v]);
        core[v] = k as u32;
        alive[v] = false;
        for &u in g.neighbors(v as u32) {
            if alive[u as usize] {
                deg[u as usize] -= 1;
            }
        }
    }
    core
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::paper_example_graph;

    #[test]
    fn paper_example_cores() {
        let g = paper_example_graph();
        let d = imcore(&g);
        assert_eq!(d.core, vec![3, 3, 3, 3, 2, 2, 2, 2, 1]);
        assert_eq!(d.kmax(), 3);
    }

    #[test]
    fn empty_graph() {
        let g = MemGraph::from_edges(Vec::<(u32, u32)>::new(), 0);
        let d = imcore(&g);
        assert!(d.core.is_empty());
    }

    #[test]
    fn isolated_nodes_have_core_zero() {
        let g = MemGraph::from_edges([(0, 1)], 4);
        let d = imcore(&g);
        assert_eq!(d.core, vec![1, 1, 0, 0]);
    }

    #[test]
    fn clique_has_core_n_minus_1() {
        let mut edges = Vec::new();
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                edges.push((u, v));
            }
        }
        let g = MemGraph::from_edges(edges, 6);
        let d = imcore(&g);
        assert!(d.core.iter().all(|&c| c == 5));
    }

    #[test]
    fn path_graph_has_core_one() {
        let g = MemGraph::from_edges((0..9u32).map(|i| (i, i + 1)), 10);
        let d = imcore(&g);
        assert!(d.core.iter().all(|&c| c == 1));
    }

    #[test]
    fn cycle_graph_has_core_two() {
        let n = 12u32;
        let g = MemGraph::from_edges((0..n).map(|i| (i, (i + 1) % n)), n);
        let d = imcore(&g);
        assert!(d.core.iter().all(|&c| c == 2));
    }

    #[test]
    fn matches_naive_peeling_on_pseudorandom_graphs() {
        let mut state = 7u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for trial in 0..30 {
            let n = 2 + next() % 60;
            let m = next() % (3 * n);
            let edges: Vec<(u32, u32)> = (0..m).map(|_| (next() % n, next() % n)).collect();
            let g = MemGraph::from_edges(edges, n);
            let fast = imcore(&g).core;
            let slow = peel_naive(&g);
            assert_eq!(fast, slow, "trial {trial}");
        }
    }
}
