//! Analysis utilities on top of a core decomposition — the application layer
//! the paper motivates in §I (community detection, dense-subgraph discovery,
//! network topology analysis).

use std::collections::HashMap;

use graphstore::{AdjacencyRead, Result};

/// Size of every k-core, for `k = 0..=kmax` (the "onion" profile).
///
/// `sizes[k] = |{v : core(v) ≥ k}|`; by Property 2.1 the sequence is
/// non-increasing.
pub fn kcore_sizes(core: &[u32]) -> Vec<u64> {
    let kmax = core.iter().copied().max().unwrap_or(0) as usize;
    let mut hist = vec![0u64; kmax + 1];
    for &c in core {
        hist[c as usize] += 1;
    }
    // Suffix-sum the exact-level histogram into cumulative core sizes.
    let mut sizes = hist;
    for k in (0..kmax).rev() {
        sizes[k] += sizes[k + 1];
    }
    sizes
}

/// A degeneracy ordering: nodes sorted by non-decreasing core number, with
/// the guarantee that every node has at most `kmax` neighbours *after* it in
/// the order. The classic preprocessing step for clique finding \[8\].
pub fn degeneracy_order(core: &[u32]) -> Vec<u32> {
    let mut order: Vec<u32> = (0..core.len() as u32).collect();
    order.sort_by_key(|&v| core[v as usize]);
    order
}

/// Connected components of the k-core (`G(V_k)` per Lemma 2.1), returned as
/// sorted node lists, largest first. These are the "communities" of
/// core-based community detection \[12, 15\].
pub fn kcore_components(g: &mut impl AdjacencyRead, core: &[u32], k: u32) -> Result<Vec<Vec<u32>>> {
    let n = g.num_nodes();
    assert_eq!(core.len(), n as usize);
    let mut seen = vec![false; n as usize];
    let mut components = Vec::new();
    let mut stack = Vec::new();
    for s in 0..n {
        if core[s as usize] < k || seen[s as usize] {
            continue;
        }
        let mut comp = Vec::new();
        seen[s as usize] = true;
        stack.push(s);
        while let Some(v) = stack.pop() {
            comp.push(v);
            g.with_adjacency(v, |nbrs| {
                for &u in nbrs {
                    if core[u as usize] >= k && !seen[u as usize] {
                        seen[u as usize] = true;
                        stack.push(u);
                    }
                }
            })?;
        }
        comp.sort_unstable();
        components.push(comp);
    }
    components.sort_by_key(|c| std::cmp::Reverse(c.len()));
    Ok(components)
}

/// Summary statistics of a decomposition, as a printable report.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreProfile {
    /// Number of nodes.
    pub num_nodes: u64,
    /// The degeneracy `kmax`.
    pub kmax: u32,
    /// Mean core number.
    pub mean_core: f64,
    /// Number of nodes at each exact core level `0..=kmax`.
    pub level_sizes: Vec<u64>,
    /// Size of the innermost (`kmax`) core.
    pub nucleus_size: u64,
}

impl CoreProfile {
    /// Compute the profile of a core assignment.
    pub fn new(core: &[u32]) -> CoreProfile {
        let kmax = core.iter().copied().max().unwrap_or(0);
        let mut level_sizes = vec![0u64; kmax as usize + 1];
        let mut total = 0u64;
        for &c in core {
            level_sizes[c as usize] += 1;
            total += c as u64;
        }
        CoreProfile {
            num_nodes: core.len() as u64,
            kmax,
            mean_core: if core.is_empty() {
                0.0
            } else {
                total as f64 / core.len() as f64
            },
            nucleus_size: *level_sizes.last().unwrap_or(&0),
            level_sizes,
        }
    }
}

impl std::fmt::Display for CoreProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} nodes, kmax = {}, mean core = {:.2}, nucleus = {} nodes",
            self.num_nodes, self.kmax, self.mean_core, self.nucleus_size
        )?;
        for (k, &s) in self.level_sizes.iter().enumerate() {
            if s > 0 {
                writeln!(f, "  core {k:>5}: {s} nodes")?;
            }
        }
        Ok(())
    }
}

/// An approximation of the densest subgraph via the max-core (the classic
/// 2-approximation used by dense-subgraph discovery \[6, 26\]): returns the
/// nodes of the kmax-core and its edge density `|E'| / |V'|`.
pub fn densest_core(g: &mut impl AdjacencyRead, core: &[u32]) -> Result<(Vec<u32>, f64)> {
    let kmax = core.iter().copied().max().unwrap_or(0);
    let nodes: Vec<u32> = (0..core.len() as u32)
        .filter(|&v| core[v as usize] >= kmax)
        .collect();
    let inside: HashMap<u32, ()> = nodes.iter().map(|&v| (v, ())).collect();
    let mut internal = 0u64;
    for &v in &nodes {
        internal += g.with_adjacency(v, |nbrs| {
            nbrs.iter().filter(|u| inside.contains_key(u)).count() as u64
        })?;
    }
    let density = if nodes.is_empty() {
        0.0
    } else {
        (internal / 2) as f64 / nodes.len() as f64
    };
    Ok((nodes, density))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{paper_example_graph, PAPER_EXAMPLE_CORES};

    #[test]
    fn kcore_sizes_of_example() {
        let sizes = kcore_sizes(&PAPER_EXAMPLE_CORES);
        assert_eq!(sizes, vec![9, 9, 8, 4]);
    }

    #[test]
    fn kcore_sizes_empty_and_isolated() {
        assert_eq!(kcore_sizes(&[]), vec![0]);
        assert_eq!(kcore_sizes(&[0, 0]), vec![2]);
    }

    #[test]
    fn degeneracy_order_is_sorted_by_core() {
        let order = degeneracy_order(&PAPER_EXAMPLE_CORES);
        let cores: Vec<u32> = order
            .iter()
            .map(|&v| PAPER_EXAMPLE_CORES[v as usize])
            .collect();
        let mut sorted = cores.clone();
        sorted.sort_unstable();
        assert_eq!(cores, sorted);
        assert_eq!(order[0], 8, "v8 (core 1) first");
    }

    #[test]
    fn degeneracy_order_bounds_forward_degree() {
        // The defining property: each node has <= kmax neighbours later in
        // the order.
        let mut g = paper_example_graph();
        let order = degeneracy_order(&PAPER_EXAMPLE_CORES);
        let pos: Vec<usize> = {
            let mut p = vec![0; 9];
            for (i, &v) in order.iter().enumerate() {
                p[v as usize] = i;
            }
            p
        };
        let kmax = 3;
        let mut nbrs = Vec::new();
        for v in 0..9u32 {
            g.adjacency(v, &mut nbrs).unwrap();
            let forward = nbrs
                .iter()
                .filter(|&&u| pos[u as usize] > pos[v as usize])
                .count();
            assert!(forward <= kmax, "node {v} has {forward} forward neighbours");
        }
    }

    #[test]
    fn components_of_the_3core() {
        let mut g = paper_example_graph();
        let comps = kcore_components(&mut g, &PAPER_EXAMPLE_CORES, 3).unwrap();
        assert_eq!(comps, vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn components_of_the_1core_is_whole_connected_graph() {
        let mut g = paper_example_graph();
        let comps = kcore_components(&mut g, &PAPER_EXAMPLE_CORES, 1).unwrap();
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 9);
    }

    #[test]
    fn components_split_across_disconnected_cores() {
        // Two triangles, disconnected.
        let mut g =
            graphstore::MemGraph::from_edges([(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)], 6);
        let core = vec![2u32; 6];
        let comps = kcore_components(&mut g, &core, 2).unwrap();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].len(), 3);
    }

    #[test]
    fn profile_of_example() {
        let p = CoreProfile::new(&PAPER_EXAMPLE_CORES);
        assert_eq!(p.kmax, 3);
        assert_eq!(p.nucleus_size, 4);
        assert_eq!(p.level_sizes, vec![0, 1, 4, 4]);
        let text = p.to_string();
        assert!(text.contains("kmax = 3"), "{text}");
    }

    #[test]
    fn densest_core_of_example_is_the_k4() {
        let mut g = paper_example_graph();
        let (nodes, density) = densest_core(&mut g, &PAPER_EXAMPLE_CORES).unwrap();
        assert_eq!(nodes, vec![0, 1, 2, 3]);
        // K4: 6 edges / 4 nodes.
        assert!((density - 1.5).abs() < 1e-9);
    }
}
