//! Shared fixtures: the paper's running example graph.

use graphstore::MemGraph;

/// Edge list of the sample graph `G` of Fig. 1.
///
/// The figure itself is not machine-readable; this adjacency was
/// reconstructed from the worked examples and verified against every trace
/// the paper gives:
///
/// * degrees (Fig. 2 "Init" row): 3, 3, 4, 6, 3, 5, 3, 2, 1;
/// * `{v0, v1, v2, v3}` induce a 3-core (K4) and the final core numbers are
///   3, 3, 3, 3, 2, 2, 2, 2, 1 (Example 2.1);
/// * processing `v3` in iteration 1 sees neighbour estimates
///   `{3, 3, 3, 3, 5, 3}` (Example 4.1);
/// * after iteration 1 of SemiCore*, `cnt(v5) = 2` via neighbours `v3`, `v4`
///   (Example 4.3), and `v5`'s recomputation drops `cnt(v4)` from 3 to 2;
/// * deleting `(v0, v1)` then inserting `(v4, v6)` reproduces the traces of
///   Examples 5.1–5.3.
pub const PAPER_EXAMPLE_EDGES: [(u32, u32); 15] = [
    (0, 1),
    (0, 2),
    (0, 3),
    (1, 2),
    (1, 3),
    (2, 3),
    (2, 4),
    (3, 4),
    (3, 5),
    (3, 6),
    (4, 5),
    (5, 6),
    (5, 7),
    (5, 8),
    (6, 7),
];

/// Core numbers of the sample graph (Example 2.1).
pub const PAPER_EXAMPLE_CORES: [u32; 9] = [3, 3, 3, 3, 2, 2, 2, 2, 1];

/// The sample graph `G` of Fig. 1 as an in-memory graph.
pub fn paper_example_graph() -> MemGraph {
    MemGraph::from_edges(PAPER_EXAMPLE_EDGES, 9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrees_match_fig2_init_row() {
        let g = paper_example_graph();
        assert_eq!(g.degrees(), vec![3, 3, 4, 6, 3, 5, 3, 2, 1]);
    }

    #[test]
    fn first_four_nodes_form_a_k4() {
        let g = paper_example_graph();
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                assert!(g.has_edge(u, v), "({u},{v}) missing from the 3-core");
            }
        }
    }

    #[test]
    fn v8_hangs_off_v5() {
        let g = paper_example_graph();
        assert_eq!(g.neighbors(8), &[5]);
    }
}
