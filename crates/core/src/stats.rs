//! Run statistics: the measurements the paper reports for every algorithm.

use std::time::Duration;

use graphstore::IoSnapshot;

/// Instrumentation captured by one algorithm execution.
///
/// These are exactly the quantities plotted in the paper's evaluation:
/// wall-clock time (Fig. 9a/b, 10a/b), I/Os (Fig. 9e/f, 10c/d), memory
/// (Fig. 9c/d), plus the internal counters used in its analysis sections
/// (iterations — §IV-A Discussion; node computations — Examples 4.1–4.3).
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Algorithm name as used in the paper ("SemiCore*", "EMCore", …).
    pub algorithm: &'static str,
    /// Number of convergence iterations (rounds for EMCore).
    pub iterations: u64,
    /// Number of `LocalCore`-style node computations performed.
    pub node_computations: u64,
    /// I/O performed during the run (block reads/writes).
    pub io: IoSnapshot,
    /// Peak bytes of in-memory state held by the algorithm (excluding the
    /// O(1) scan buffers). For the semi-external algorithms this is the
    /// `O(n)` node-state footprint; for EMCore/IMCore it includes loaded
    /// edges.
    pub peak_memory_bytes: u64,
    /// Wall-clock duration of the run.
    pub wall_time: Duration,
    /// Per-iteration count of nodes whose core estimate changed
    /// (populated when requested; the series behind Fig. 3).
    pub changed_per_iteration: Option<Vec<u64>>,
}

impl RunStats {
    /// New stats block for `algorithm`.
    pub fn new(algorithm: &'static str) -> Self {
        RunStats {
            algorithm,
            ..Default::default()
        }
    }

    /// Total I/Os (read + write).
    pub fn total_ios(&self) -> u64 {
        self.io.total_ios()
    }
}

/// Result of a full core decomposition.
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// `core[v]` is the core number of node `v`.
    pub core: Vec<u32>,
    /// Execution measurements.
    pub stats: RunStats,
}

impl Decomposition {
    /// The degeneracy `kmax = max_v core(v)` (0 for the empty graph).
    pub fn kmax(&self) -> u32 {
        self.core.iter().copied().max().unwrap_or(0)
    }

    /// Number of nodes contained in the k-core (`core(v) ≥ k`).
    pub fn kcore_size(&self, k: u32) -> usize {
        self.core.iter().filter(|&&c| c >= k).count()
    }

    /// The node set of the k-core, per Lemma 2.1 (`G_k = G(V_k)` with
    /// `V_k = {v | core(v) ≥ k}`).
    pub fn kcore_nodes(&self, k: u32) -> Vec<u32> {
        (0..self.core.len() as u32)
            .filter(|&v| self.core[v as usize] >= k)
            .collect()
    }
}

/// Options shared by the decomposition algorithms.
#[derive(Debug, Clone, Default)]
pub struct DecomposeOptions {
    /// Record the number of changed nodes per iteration (Fig. 3).
    pub track_changed_per_iteration: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kmax_and_kcore_queries() {
        let d = Decomposition {
            core: vec![3, 3, 3, 3, 2, 2, 2, 2, 1],
            stats: RunStats::new("test"),
        };
        assert_eq!(d.kmax(), 3);
        assert_eq!(d.kcore_size(3), 4);
        assert_eq!(d.kcore_size(2), 8);
        assert_eq!(d.kcore_size(1), 9);
        assert_eq!(d.kcore_nodes(3), vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_decomposition() {
        let d = Decomposition {
            core: vec![],
            stats: RunStats::new("test"),
        };
        assert_eq!(d.kmax(), 0);
        assert_eq!(d.kcore_size(1), 0);
    }
}
