//! Shared computation kernels of Algorithms 3–8.
//!
//! * [`local_core`] — the `LocalCore` procedure (Alg. 3 lines 11–20):
//!   evaluate Eq. 1, `core(v) = max k s.t. |{u ∈ nbr(v) | core(u) ≥ k}| ≥ k`,
//!   given the current estimate upper bound `cold`.
//! * [`compute_cnt`] — the `ComputeCnt` procedure (Alg. 5 lines 16–20):
//!   evaluate Eq. 2, `cnt(v) = |{u ∈ nbr(v) | core(u) ≥ core(v)}|`.
//!
//! Both are `O(deg(v))` and allocation-free thanks to a reusable
//! [`Scratch`] histogram.

/// Reusable histogram buffer for [`local_core`].
///
/// Holds `num(i)` counters indexed by core value. Reused across calls so the
/// inner loop of every semi-external algorithm allocates nothing.
#[derive(Debug, Default)]
pub struct Scratch {
    num: Vec<u32>,
}

impl Scratch {
    /// Fresh scratch space.
    pub fn new() -> Self {
        Scratch::default()
    }

    /// Bytes currently held (for memory accounting).
    pub fn resident_bytes(&self) -> u64 {
        (self.num.capacity() * std::mem::size_of::<u32>()) as u64
    }
}

/// The `LocalCore` procedure: recompute `v`'s core estimate from the
/// estimates of its neighbours, given its current estimate `cold`.
///
/// Returns the largest `k ≤ cold` with at least `k` neighbours whose
/// estimate is `≥ k` (0 when no such `k` exists). Estimates never increase,
/// matching Theorem 4.1's fixpoint iteration started from an upper bound.
///
/// Note: the paper's line 19 reads `if s ≥ i then break`, a typo for
/// `s ≥ k`; we implement the intended comparison.
pub fn local_core(cold: u32, core: &[u32], nbrs: &[u32], scratch: &mut Scratch) -> u32 {
    local_core_by(cold, nbrs, scratch, |u| core[u as usize])
}

/// [`local_core`] with the estimates behind an accessor instead of a slice.
///
/// The parallel scan executor reads a node's neighbours through a shard
/// view (own shard: freshest in-pass values; other shards: the pass-start
/// snapshot), which has no contiguous slice to hand out. Monomorphises to
/// the same code as [`local_core`] for the slice case.
pub fn local_core_by(
    cold: u32,
    nbrs: &[u32],
    scratch: &mut Scratch,
    core_of: impl Fn(u32) -> u32,
) -> u32 {
    if cold == 0 || nbrs.is_empty() {
        return 0;
    }
    let cold_us = cold as usize;
    if scratch.num.len() < cold_us + 1 {
        scratch.num.resize(cold_us + 1, 0);
    }
    // num(i) = #neighbours with min(cold, core(u)) == i.
    let num = &mut scratch.num[..cold_us + 1];
    for x in num.iter_mut() {
        *x = 0;
    }
    for &u in nbrs {
        let i = cold.min(core_of(u)) as usize;
        num[i] += 1;
    }
    // Walk k downward accumulating s = #neighbours with core >= k.
    let mut s = 0u64;
    let mut k = cold_us;
    while k >= 1 {
        s += num[k] as u64;
        if s >= k as u64 {
            return k as u32;
        }
        k -= 1;
    }
    0
}

/// The `ComputeCnt` procedure: `|{u ∈ nbr(v) | core(u) ≥ threshold}|` (Eq. 2
/// with `threshold = core(v)`).
#[inline]
pub fn compute_cnt(threshold: u32, core: &[u32], nbrs: &[u32]) -> u32 {
    let mut s = 0u32;
    for &u in nbrs {
        if core[u as usize] >= threshold {
            s += 1;
        }
    }
    s
}

/// Reference implementation of Eq. 1 by direct search (used in tests to
/// cross-check [`local_core`], deliberately written differently).
#[cfg(any(test, feature = "testing"))]
pub fn local_core_naive(cold: u32, core: &[u32], nbrs: &[u32]) -> u32 {
    let mut best = 0;
    for k in 1..=cold {
        let support = nbrs.iter().filter(|&&u| core[u as usize] >= k).count() as u32;
        if support >= k {
            best = k;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_v3_iteration1() {
        // Fig. 2: processing v3 in iteration 1, neighbour cores
        // {3, 3, 3, 3, 5, 3}, cold = 6 -> new core 3.
        let core = vec![3, 3, 3, 6, 3, 5, 3];
        let nbrs = vec![0, 1, 2, 4, 5, 6];
        let mut s = Scratch::new();
        assert_eq!(local_core(6, &core, &nbrs, &mut s), 3);
    }

    #[test]
    fn zero_cases() {
        let mut s = Scratch::new();
        assert_eq!(local_core(0, &[], &[], &mut s), 0);
        let core = vec![5u32, 5];
        assert_eq!(local_core(3, &core, &[], &mut s), 0);
    }

    #[test]
    fn all_neighbours_at_zero_gives_zero() {
        let core = vec![0, 0, 4];
        let nbrs = vec![0, 1];
        let mut s = Scratch::new();
        assert_eq!(local_core(4, &core, &nbrs, &mut s), 0);
    }

    #[test]
    fn result_capped_by_cold() {
        // 5 neighbours all with huge cores, but cold = 2.
        let core = vec![9, 9, 9, 9, 9, 2];
        let nbrs = vec![0, 1, 2, 3, 4];
        let mut s = Scratch::new();
        assert_eq!(local_core(2, &core, &nbrs, &mut s), 2);
    }

    #[test]
    fn compute_cnt_counts_threshold() {
        let core = vec![1, 2, 3, 4, 5];
        let nbrs = vec![0, 1, 2, 3, 4];
        assert_eq!(compute_cnt(3, &core, &nbrs), 3);
        assert_eq!(compute_cnt(1, &core, &nbrs), 5);
        assert_eq!(compute_cnt(6, &core, &nbrs), 0);
    }

    #[test]
    fn matches_naive_on_pseudorandom_inputs() {
        let mut s = Scratch::new();
        let mut state = 12345u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for trial in 0..500 {
            let n = 1 + (next() % 40) as usize;
            let core: Vec<u32> = (0..n).map(|_| next() % 12).collect();
            let deg = (next() % n as u32) as usize;
            let nbrs: Vec<u32> = (0..deg).map(|_| next() % n as u32).collect();
            let cold = 1 + next() % 12;
            assert_eq!(
                local_core(cold, &core, &nbrs, &mut s),
                local_core_naive(cold, &core, &nbrs),
                "trial {trial}: cold={cold} core={core:?} nbrs={nbrs:?}"
            );
        }
    }

    #[test]
    fn scratch_is_reusable_across_growing_colds() {
        let mut s = Scratch::new();
        let core = vec![2, 2, 2];
        let nbrs = vec![0, 1, 2];
        assert_eq!(local_core(2, &core, &nbrs, &mut s), 2);
        let core = vec![9; 10];
        let nbrs: Vec<u32> = (0..10).collect();
        assert_eq!(local_core(9, &core, &nbrs, &mut s), 9);
        // Shrink back down: stale histogram entries must not leak.
        let core = vec![1, 1];
        let nbrs = vec![0, 1];
        assert_eq!(local_core(1, &core, &nbrs, &mut s), 1);
    }
}
