//! EMCore — the partition-based external-memory baseline (Algorithm 2,
//! Cheng et al., ICDE 2011).
//!
//! EMCore computes core numbers top-down over ranges `[kl, ku]`: each round
//! it loads every partition containing a node whose core-number upper bound
//! `ub(v)` falls in the range, peels the loaded subgraph in memory
//! (crediting *deposits* from already-finalised neighbours), finalises the
//! nodes whose core lands in range, and writes the shrunken partitions back
//! to disk.
//!
//! The reproduction keeps the two properties the paper criticises:
//!
//! * **Unbounded memory** — `kl` is chosen so the loaded partitions fit the
//!   memory budget *if possible*; when even the top range overflows, the
//!   partitions are loaded regardless (Fig. 9(c): EMCore's footprint
//!   approaches the in-memory algorithm's on dense graphs).
//! * **Read + write I/O** — every loaded partition is rewritten each round.
//!
//! Policy choices the original leaves open (partitioning, `kl` estimation)
//! are documented in DESIGN.md.

use std::collections::HashMap;
use std::time::Instant;

use graphstore::{AdjacencyRead, PartitionStore, Result};

use crate::stats::{Decomposition, RunStats};

/// Tuning knobs for [`emcore`].
#[derive(Debug, Clone)]
pub struct EmCoreOptions {
    /// Target bytes per partition on disk.
    pub partition_bytes: u64,
    /// Memory budget for loaded partitions per round, in bytes.
    pub memory_budget: u64,
    /// Record encoding of the partition files.
    /// [`graphstore::FormatVersion::V2`] stores neighbour runs as delta-gap
    /// varints and [`graphstore::FormatVersion::V3`] as stream-vbyte groups
    /// (vectorized decode), shrinking every charged partition load and
    /// rewrite of the round loop; v1 (the default) keeps the raw `u32`
    /// layout the original measurements used.
    pub partition_format: graphstore::FormatVersion,
}

impl Default for EmCoreOptions {
    fn default() -> Self {
        EmCoreOptions {
            partition_bytes: 1 << 20,
            memory_budget: 16 << 20,
            partition_format: graphstore::FormatVersion::V1,
        }
    }
}

/// Run EMCore (Algorithm 2) over any graph access.
///
/// The source graph is first divided into partitions on disk (line 1);
/// all subsequent I/O happens against the partition store.
pub fn emcore(g: &mut impl AdjacencyRead, opts: &EmCoreOptions) -> Result<Decomposition> {
    let start = Instant::now();
    let mut stats = RunStats::new("EMCore");
    let n = g.num_nodes();

    // Line 1: partition the graph on disk. Partition I/O (including this
    // initial write) is charged to the store's own counter.
    let counter = graphstore::IoCounter::new(graphstore::DEFAULT_BLOCK_SIZE);
    let mut store = PartitionStore::build_with_format(
        g,
        opts.partition_bytes.max(4096),
        counter.clone(),
        opts.partition_format,
    )?;
    let parts = store.len();

    // Lines 2-3: ub(v) <- deg(v).
    let mut ub = g.read_degrees()?;
    let mut core = vec![0u32; n as usize];
    let mut finalized = crate::bits::BitSet::new(n);
    let mut remaining: u64 = u64::from(n);

    // Isolated nodes are core 0 and never enter any [kl, ku] round.
    for v in 0..n {
        if ub[v as usize] == 0 {
            finalized.set(v);
            remaining -= 1;
        }
    }

    // Per-partition max ub, maintained across rounds.
    let mut part_max_ub: Vec<u32> = (0..parts)
        .map(|i| {
            let m = store.meta(i);
            (m.start..m.end).map(|v| ub[v as usize]).max().unwrap_or(0)
        })
        .collect();

    let mut peak_mem =
        (n as u64) * 4 /* ub */ + (n as u64) * 4 /* core */ + finalized.resident_bytes();

    let mut ku = u32::MAX;
    while remaining > 0 && ku >= 1 {
        // Line 6: estimate kl — smallest value such that all partitions with
        // a candidate node fit the budget; the partitions needed for a given
        // kl are exactly those with max_ub >= kl.
        let mut order: Vec<usize> = (0..parts)
            .filter(|&i| part_max_ub[i] >= 1 && store.meta(i).alive_nodes > 0)
            .collect();
        if order.is_empty() {
            break;
        }
        order.sort_by(|&a, &b| part_max_ub[b].cmp(&part_max_ub[a]));

        let mut bytes = 0u64;
        let mut kl = 1u32;
        for (idx, &p) in order.iter().enumerate() {
            let pb = store.meta(p).bytes;
            if idx > 0 && bytes + pb > opts.memory_budget {
                // Can't afford this partition: cut the range just above it.
                kl = part_max_ub[p] + 1;
                break;
            }
            bytes += pb;
            if idx + 1 == order.len() {
                kl = 1; // everything fits: final round
            }
        }
        // Correctness requires loading *every* partition holding a node with
        // ub in [kl, ku]. When even the top level needs more partitions than
        // the budget affords, EMCore loads them anyway — the unbounded
        // memory behaviour the paper criticises. `top <= ku` is invariant
        // (ub is capped to kl-1 whenever a partition is loaded).
        let top = part_max_ub[order[0]];
        kl = kl.min(top).min(ku).max(1);
        let chosen: Vec<usize> = order
            .iter()
            .copied()
            .filter(|&p| part_max_ub[p] >= kl)
            .collect();

        // Lines 7-8: load the chosen partitions into memory.
        let mut loaded = Vec::with_capacity(chosen.len());
        let mut loaded_bytes = 0u64;
        for &p in &chosen {
            let lp = store.load(p)?;
            loaded_bytes += lp.resident_bytes();
            loaded.push(lp);
        }

        // Build the in-memory subgraph over loaded, unfinalised nodes.
        let mut local_id: HashMap<u32, u32> = HashMap::new();
        let mut nodes: Vec<u32> = Vec::new();
        for lp in &loaded {
            for &(v, _) in &lp.entries {
                if !finalized.get(v) {
                    local_id.insert(v, nodes.len() as u32);
                    nodes.push(v);
                }
            }
        }
        let ln = nodes.len();
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); ln];
        let mut deposit: Vec<u32> = vec![0; ln];
        for lp in &loaded {
            for (v, nbrs) in &lp.entries {
                let Some(&lv) = local_id.get(v) else { continue };
                for &u in nbrs {
                    if finalized.get(u) {
                        // Finalised neighbours persist at every level <= ku.
                        deposit[lv as usize] += 1;
                    } else if let Some(&lu) = local_id.get(&u) {
                        adj[lv as usize].push(lu);
                    }
                    // Neighbours in unloaded partitions have ub < kl and
                    // cannot appear in any k-core with k >= kl: dropped.
                }
            }
        }
        let gmem_bytes: u64 =
            adj.iter().map(|a| a.len() as u64 * 4).sum::<u64>() + (ln as u64) * 32;
        peak_mem =
            peak_mem.max((n as u64) * 8 + finalized.resident_bytes() + loaded_bytes + gmem_bytes);

        // Line 9: peel Gmem with deposits; cores >= kl are exact.
        let core_mem = peel_with_deposits(&adj, &deposit);
        stats.node_computations += ln as u64;

        // Lines 10-13: finalise, update ub, rewrite partitions.
        for (lv, &v) in nodes.iter().enumerate() {
            let c = core_mem[lv].min(ku);
            if c >= kl || kl == 1 {
                core[v as usize] = c;
                finalized.set(v);
                remaining -= 1;
            } else {
                ub[v as usize] = ub[v as usize].min(kl - 1);
            }
        }
        for lp in loaded {
            let keep: Vec<(u32, Vec<u32>)> = lp
                .entries
                .into_iter()
                .filter(|(v, _)| !finalized.get(*v))
                .collect();
            let idx = lp.index;
            part_max_ub[idx] = keep.iter().map(|(v, _)| ub[*v as usize]).max().unwrap_or(0);
            store.rewrite(idx, &keep)?;
        }

        stats.iterations += 1;
        // Line 14: next range.
        if kl == 1 {
            break;
        }
        ku = kl - 1;
    }

    stats.io = store.io();
    stats.peak_memory_bytes = peak_mem;
    stats.wall_time = start.elapsed();
    Ok(Decomposition { core, stats })
}

/// Bin-sort peeling where each node carries a `deposit` of permanently
/// present (finalised) neighbours: initial degree = local degree + deposit,
/// and removals only ever decrement the local part.
fn peel_with_deposits(adj: &[Vec<u32>], deposit: &[u32]) -> Vec<u32> {
    let n = adj.len();
    let mut degree: Vec<u32> = (0..n).map(|v| adj[v].len() as u32 + deposit[v]).collect();
    let maxd = degree.iter().copied().max().unwrap_or(0) as usize;
    let mut bin = vec![0u32; maxd + 2];
    for &d in &degree {
        bin[d as usize] += 1;
    }
    let mut s = 0u32;
    for b in bin.iter_mut() {
        let c = *b;
        *b = s;
        s += c;
    }
    let mut vert = vec![0u32; n];
    let mut pos = vec![0u32; n];
    {
        let mut next = bin.clone();
        for v in 0..n {
            let d = degree[v] as usize;
            pos[v] = next[d];
            vert[next[d] as usize] = v as u32;
            next[d] += 1;
        }
    }
    let mut core = vec![0u32; n];
    for i in 0..n {
        let v = vert[i] as usize;
        core[v] = degree[v];
        for &u in &adj[v] {
            let u = u as usize;
            if degree[u] > degree[v] {
                let du = degree[u] as usize;
                let pu = pos[u];
                let pw = bin[du];
                let w = vert[pw as usize];
                if u as u32 != w {
                    vert[pu as usize] = w;
                    vert[pw as usize] = u as u32;
                    pos[u] = pw;
                    pos[w as usize] = pu;
                }
                bin[du] += 1;
                degree[u] -= 1;
            }
        }
    }
    core
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{paper_example_graph, PAPER_EXAMPLE_CORES};
    use crate::imcore::imcore;
    use graphstore::MemGraph;

    fn tiny_opts() -> EmCoreOptions {
        EmCoreOptions {
            partition_bytes: 4096,
            memory_budget: 1 << 20,
            ..Default::default()
        }
    }

    #[test]
    fn paper_example() {
        let mut g = paper_example_graph();
        let d = emcore(&mut g, &tiny_opts()).unwrap();
        assert_eq!(d.core, PAPER_EXAMPLE_CORES);
    }

    #[test]
    fn matches_imcore_on_random_graphs() {
        let mut seed = 12u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as u32
        };
        for trial in 0..15 {
            let n = 10 + next() % 120;
            let m = next() % (4 * n);
            let edges: Vec<(u32, u32)> = (0..m).map(|_| (next() % n, next() % n)).collect();
            let mut g = MemGraph::from_edges(edges, n);
            let d = emcore(&mut g, &tiny_opts()).unwrap();
            assert_eq!(d.core, imcore(&g).core, "trial {trial}");
        }
    }

    #[test]
    fn tight_budget_forces_multiple_rounds() {
        // Dense-ish graph partitioned small with a tiny budget: several
        // top-down rounds, still correct.
        let mut seed = 77u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as u32
        };
        let n = 400u32;
        let edges: Vec<(u32, u32)> = (0..2500).map(|_| (next() % n, next() % n)).collect();
        let mut g = MemGraph::from_edges(edges, n);
        let opts = EmCoreOptions {
            partition_bytes: 4096,
            memory_budget: 10_000,
            ..Default::default()
        };
        let d = emcore(&mut g, &opts).unwrap();
        assert_eq!(d.core, imcore(&g).core);
        assert!(d.stats.iterations > 1, "budget must force several rounds");
        assert!(d.stats.io.write_ios > 0, "EMCore writes partitions back");
    }

    #[test]
    fn isolated_nodes_finalise_to_zero() {
        let mut g = MemGraph::from_edges([(0, 1), (0, 2), (1, 2)], 6);
        let d = emcore(&mut g, &tiny_opts()).unwrap();
        assert_eq!(d.core, vec![2, 2, 2, 0, 0, 0]);
    }

    #[test]
    fn uses_both_read_and_write_ios() {
        let mut g = paper_example_graph();
        let d = emcore(&mut g, &tiny_opts()).unwrap();
        assert!(d.stats.io.read_ios > 0);
        assert!(d.stats.io.write_ios > 0);
    }

    #[test]
    fn v2_partitions_match_cores_and_cut_charged_io() {
        let mut seed = 5u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as u32
        };
        let n = 600u32;
        let edges: Vec<(u32, u32)> = (0..4000).map(|_| (next() % n, next() % n)).collect();
        let mut g = MemGraph::from_edges(edges, n);
        // Tiny block size via a small partition target keeps several rounds
        // of load + rewrite in play so compression has traffic to shrink.
        let v1 = emcore(&mut g, &tiny_opts()).unwrap();
        let v2 = emcore(
            &mut g,
            &EmCoreOptions {
                partition_format: graphstore::FormatVersion::V2,
                ..tiny_opts()
            },
        )
        .unwrap();
        assert_eq!(v2.core, v1.core, "encoding must not change the answer");
        let io1 = v1.stats.io.read_ios + v1.stats.io.write_ios;
        let io2 = v2.stats.io.read_ios + v2.stats.io.write_ios;
        assert!(
            io2 <= io1,
            "gap-varint partitions must not cost more charged I/O ({io2} vs {io1})"
        );
    }
}
