//! Compact bit set for per-node flags (`active(v)` in SemiCore+).

/// Fixed-capacity bit set over node ids.
#[derive(Debug, Clone)]
pub struct BitSet {
    words: Vec<u64>,
    len: u32,
}

impl BitSet {
    /// All-false set over `len` ids.
    pub fn new(len: u32) -> Self {
        BitSet {
            words: vec![0; (len as usize).div_ceil(64)],
            len,
        }
    }

    /// All-true set over `len` ids.
    pub fn all_set(len: u32) -> Self {
        let mut s = BitSet {
            words: vec![u64::MAX; (len as usize).div_ceil(64)],
            len,
        };
        // Clear the padding bits of the last word.
        let tail = len % 64;
        if tail != 0 {
            if let Some(last) = s.words.last_mut() {
                *last = (1u64 << tail) - 1;
            }
        }
        s
    }

    /// Number of ids.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// True when the set covers no ids.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read bit `i`.
    #[inline]
    pub fn get(&self, i: u32) -> bool {
        debug_assert!(i < self.len);
        (self.words[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    /// Set bit `i`.
    #[inline]
    pub fn set(&mut self, i: u32) {
        debug_assert!(i < self.len);
        self.words[(i / 64) as usize] |= 1 << (i % 64);
    }

    /// Clear bit `i`.
    #[inline]
    pub fn clear(&mut self, i: u32) {
        debug_assert!(i < self.len);
        self.words[(i / 64) as usize] &= !(1 << (i % 64));
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Bytes resident in memory.
    pub fn resident_bytes(&self) -> u64 {
        (self.words.len() * 8) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut b = BitSet::new(130);
        assert!(!b.get(129));
        b.set(129);
        b.set(0);
        b.set(64);
        assert!(b.get(129) && b.get(0) && b.get(64));
        assert_eq!(b.count_ones(), 3);
        b.clear(64);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    fn all_set_has_exact_population() {
        for len in [0u32, 1, 63, 64, 65, 200] {
            let b = BitSet::all_set(len);
            assert_eq!(b.count_ones(), len as u64, "len {len}");
        }
    }

    #[test]
    fn resident_bytes_scales() {
        assert_eq!(BitSet::new(0).resident_bytes(), 0);
        assert_eq!(BitSet::new(64).resident_bytes(), 8);
        assert_eq!(BitSet::new(65).resident_bytes(), 16);
    }
}
