//! Maintained per-node state: core numbers plus the `cnt` counters.

use graphstore::{AdjacencyRead, Result};

use crate::localcore::compute_cnt;

/// The semi-external node state maintained by SemiCore* and consumed /
/// updated in place by the maintenance algorithms (§V).
///
/// Invariant between operations (Eq. 2):
/// `cnt[v] == |{u ∈ nbr(v) | core[u] ≥ core[v]}|` and `core` is the exact
/// core decomposition of the current graph. `cnt` is stored signed because
/// the algorithms decrement neighbours' counters before those neighbours are
/// first recomputed (transiently negative during iteration 1 of Algorithm 5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreState {
    /// Core number (or in-flight estimate) per node.
    pub core: Vec<u32>,
    /// Eq. 2 counter per node.
    pub cnt: Vec<i32>,
}

impl CoreState {
    /// State with `core = deg` and `cnt = 0` — the starting point of
    /// Algorithm 5.
    pub fn initial(degrees: Vec<u32>) -> CoreState {
        let n = degrees.len();
        CoreState {
            core: degrees,
            cnt: vec![0; n],
        }
    }

    /// Number of nodes covered.
    pub fn num_nodes(&self) -> u32 {
        self.core.len() as u32
    }

    /// The degeneracy `kmax`.
    pub fn kmax(&self) -> u32 {
        self.core.iter().copied().max().unwrap_or(0)
    }

    /// Bytes of memory this state occupies — the semi-external footprint
    /// reported for SemiCore* in Fig. 9(c)/(d).
    pub fn resident_bytes(&self) -> u64 {
        (self.core.len() * 4 + self.cnt.len() * 4) as u64
    }

    /// Recompute every `cnt` from scratch (one full scan). Used by tests to
    /// check the Eq. 2 invariant and by callers who externally rebuilt
    /// `core`.
    pub fn recompute_cnt(&mut self, g: &mut impl AdjacencyRead) -> Result<()> {
        let mut nbrs = Vec::new();
        for v in 0..self.num_nodes() {
            g.adjacency(v, &mut nbrs)?;
            self.cnt[v as usize] = compute_cnt(self.core[v as usize], &self.core, &nbrs) as i32;
        }
        Ok(())
    }

    /// Check the Eq. 2 invariant, returning the first violating node.
    pub fn check_cnt_invariant(&self, g: &mut impl AdjacencyRead) -> Result<Option<u32>> {
        let mut nbrs = Vec::new();
        for v in 0..self.num_nodes() {
            g.adjacency(v, &mut nbrs)?;
            let want = compute_cnt(self.core[v as usize], &self.core, &nbrs) as i32;
            if self.cnt[v as usize] != want {
                return Ok(Some(v));
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{paper_example_graph, PAPER_EXAMPLE_CORES};

    #[test]
    fn initial_state_shape() {
        let s = CoreState::initial(vec![3, 1, 0]);
        assert_eq!(s.num_nodes(), 3);
        assert_eq!(s.kmax(), 3);
        assert_eq!(s.cnt, vec![0, 0, 0]);
        assert_eq!(s.resident_bytes(), 24);
    }

    #[test]
    fn recompute_cnt_establishes_invariant() {
        let mut g = paper_example_graph();
        let mut s = CoreState {
            core: PAPER_EXAMPLE_CORES.to_vec(),
            cnt: vec![0; 9],
        };
        assert!(s.check_cnt_invariant(&mut g).unwrap().is_some());
        s.recompute_cnt(&mut g).unwrap();
        assert_eq!(s.check_cnt_invariant(&mut g).unwrap(), None);
        // Spot values: v5 (core 2) has neighbours v3(3), v4(2), v6(2),
        // v7(2), v8(1) -> cnt 4.
        assert_eq!(s.cnt[5], 4);
        // v8 (core 1) has one neighbour v5(2) -> cnt 1.
        assert_eq!(s.cnt[8], 1);
    }
}
