//! The scan executor: how a convergence loop schedules its passes.
//!
//! Every semi-external algorithm in this crate is a fixpoint iteration of
//! repeated scans over a `[vmin, vmax]` vertex window (see [`crate::window`]).
//! [`ScanExecutor`] abstracts *how* one such pass is driven:
//!
//! * [`ScanExecutor::Sequential`] — the paper's exact schedule: one thread
//!   walks the window in ascending node order and updates state **in
//!   place**, so a node recomputed late in a pass already sees the pass's
//!   earlier updates (Gauss–Seidel propagation). This is the schedule whose
//!   iteration and node-computation counts match Examples 4.1–4.3, and it is
//!   what the plain entry points ([`crate::semicore()`], …) always run.
//! * [`ScanExecutor::Parallel`] — deterministic sharded passes: the pass's
//!   victim set is fixed up front from the state at pass start, split into
//!   contiguous shards, and scanned by a pool of worker threads that each
//!   read the graph through their own shard handle
//!   ([`graphstore::ShardableRead`]). A worker evaluates estimates through
//!   a *shard view*: nodes of its own shard reflect the updates it has
//!   already applied this pass (Gauss–Seidel **within** the shard — the
//!   worker only ever observes its own writes), every other node reads
//!   from a **frozen snapshot** of the pass start (Jacobi **across**
//!   shards). Workers produce per-shard update and message lists that are
//!   merged in shard order after the pass, so the evolution of the state
//!   is a pure function of the input and the worker count — independent of
//!   thread interleaving, reproducible run over run.
//!
//! ## What the two schedules share, and what they don't
//!
//! Both schedules drive the estimates down the same monotone lattice from
//! the same upper bound (`core(v) ≤ deg(v)`), so both converge to the unique
//! core decomposition: **final core numbers are bit-identical** — for any
//! worker count. The paths there differ: cross-shard propagation happens
//! one "hop" per pass where the sequential schedule propagates along the
//! whole scan direction, so the parallel executor typically runs more
//! (cheaper, concurrent) passes and its `iterations` /
//! `node_computations` stats are not comparable with the sequential ones
//! (nor across worker counts — more shards mean more cross-shard edges on
//! the slow path).
//!
//! ## Charged I/O
//!
//! All shard handles of a disk graph charge one shared `Arc`-atomic
//! [`graphstore::IoCounter`] and fetch through one shared block-cache pool,
//! where a miss is charged exactly once per block residency no matter how
//! many workers race for the block. When the cache budget absorbs the
//! algorithm's re-read working set (in the limit, a whole-graph budget),
//! charged `read_ios` collapses to *distinct blocks touched* — a schedule-
//! independent quantity, so the parallel run charges **exactly** the same
//! `read_ios` as the sequential one. Under tighter budgets the two
//! schedules touch blocks in different orders and evict differently, and
//! the counts (both still honest miss counts) drift apart.
//!
//! ## Memory
//!
//! The parallel executor trades memory for concurrency: each pass holds a
//! snapshot of the estimates (`O(n)`) plus the per-shard update/message
//! buffers (`O(Σ deg(changed))` in the worst first pass). The sequential
//! schedule remains the memory-frugal choice the paper analyses.

use std::thread;

use graphstore::{AdjacencyRead, Result, ShardableRead};

use crate::localcore::{compute_cnt, local_core_by, Scratch};

/// Strategy for driving convergence passes — see the [module docs](self)
/// for the semantics and guarantees of each variant.
///
/// ```
/// use semicore::{semicore_star_with, DecomposeOptions, ScanExecutor};
/// use graphstore::MemGraph;
///
/// let mut g = MemGraph::from_edges([(0, 1), (1, 2), (0, 2), (2, 3)], 4);
/// let opts = DecomposeOptions::default();
/// let seq = semicore_star_with(&mut g, &opts, ScanExecutor::Sequential).unwrap();
/// let par = semicore_star_with(&mut g, &opts, ScanExecutor::parallel(4)).unwrap();
/// assert_eq!(seq.core, par.core); // always bit-identical
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanExecutor {
    /// The paper's exact single-threaded schedule (in-place propagation).
    Sequential,
    /// Deterministic sharded passes over a pool of worker threads
    /// (Gauss–Seidel within each shard, Jacobi across shards).
    Parallel {
        /// Number of worker threads (values below 1 are treated as 1; one
        /// worker runs the snapshot/merge schedule over a single shard —
        /// useful for testing the parallel machinery without concurrency).
        workers: usize,
    },
}

impl ScanExecutor {
    /// A parallel executor with `workers` threads (min 1).
    pub fn parallel(workers: usize) -> ScanExecutor {
        ScanExecutor::Parallel {
            workers: workers.max(1),
        }
    }

    /// Read the executor from the `SEMICORE_WORKERS` environment variable:
    /// unset, empty, `0` or `1`* — sequential; `N ≥ 2` — parallel with `N`
    /// workers. (*`1` maps to sequential here because a CLI user asking for
    /// one thread wants the paper's schedule, not a one-worker Jacobi run.)
    pub fn from_env() -> ScanExecutor {
        Self::from_worker_setting(std::env::var("SEMICORE_WORKERS").ok().as_deref())
    }

    /// [`ScanExecutor::from_env`]'s parsing, separated so it can be tested
    /// without mutating the process environment.
    pub fn from_worker_setting(setting: Option<&str>) -> ScanExecutor {
        match setting.and_then(|v| v.trim().parse::<usize>().ok()) {
            Some(w) if w >= 2 => ScanExecutor::Parallel { workers: w },
            _ => ScanExecutor::Sequential,
        }
    }

    /// Worker count when parallel, `None` when sequential.
    pub(crate) fn worker_count(self) -> Option<usize> {
        match self {
            ScanExecutor::Sequential => None,
            ScanExecutor::Parallel { workers } => Some(workers.max(1)),
        }
    }
}

/// Open `workers` shard handles over `g`, or `None` when the backend opts
/// out of sharding (the executor then falls back to the sequential
/// schedule).
pub(crate) fn shard_handles<G: ShardableRead>(
    g: &G,
    workers: usize,
) -> Result<Option<Vec<G::Shard>>> {
    let mut shards = Vec::with_capacity(workers);
    for _ in 0..workers.max(1) {
        match g.shard_handle()? {
            Some(h) => shards.push(h),
            None => return Ok(None),
        }
    }
    Ok(Some(shards))
}

/// What a pass records per recomputed node, and which side effects it emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PassKind {
    /// SemiCore (Alg. 3): record changes only; no neighbour traffic.
    Full,
    /// SemiCore+ (Alg. 4): record changes; emit neighbour activations.
    Active,
    /// SemiCore* (Alg. 5): record every victim with its Eq. 2 support
    /// (relative to the snapshot); emit neighbour messages on change.
    Counted,
}

/// One recomputation result produced by a worker.
#[derive(Debug, Clone, Copy)]
pub(crate) struct NodeUpdate {
    /// The recomputed node.
    pub v: u32,
    /// Estimate before the pass (snapshot value).
    pub cold: u32,
    /// Estimate after recomputation (`≤ cold`).
    pub cnew: u32,
    /// `|{u ∈ nbr(v) | snapshot(u) ≥ cnew}|` — [`PassKind::Counted`] only.
    pub support: u32,
}

/// A neighbour implicated by a changed node: "my estimate dropped from
/// `wold` to `wnew`". The merge turns these into activations (SemiCore+) or
/// `cnt` corrections (SemiCore*).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Touch {
    /// The implicated neighbour.
    pub u: u32,
    /// The changed node's snapshot estimate.
    pub wold: u32,
    /// The changed node's new estimate.
    pub wnew: u32,
}

/// Everything one shard produced in one pass.
#[derive(Debug, Default)]
pub(crate) struct ShardOutput {
    pub updates: Vec<NodeUpdate>,
    pub touched: Vec<Touch>,
    /// Bytes the worker's shard view held (peak-memory accounting).
    pub overlay_bytes: u64,
}

impl ShardOutput {
    /// Bytes held by this output's buffers plus the worker's shard view
    /// (for peak-memory accounting).
    pub fn resident_bytes(&self) -> u64 {
        (self.updates.capacity() * std::mem::size_of::<NodeUpdate>()
            + self.touched.capacity() * std::mem::size_of::<Touch>()) as u64
            + self.overlay_bytes
    }
}

/// A worker's view of the core estimates during one pass: nodes inside its
/// own shard's span read the values the worker has already written this
/// pass, everything else reads the frozen pass-start snapshot. A worker
/// only ever observes its own writes, which is what keeps the pass
/// deterministic under any thread interleaving.
///
/// Using fresher (lower) in-shard values is safe everywhere an upper bound
/// is required: estimates decrease monotonically, so every view value is
/// itself a valid upper bound of the true core.
struct ShardView<'a> {
    snapshot: &'a [u32],
    lo: usize,
    local: Vec<u32>,
}

impl ShardView<'_> {
    fn new<'a>(snapshot: &'a [u32], victims: &[u32]) -> ShardView<'a> {
        let (lo, local) = match (victims.first(), victims.last()) {
            (Some(&a), Some(&b)) => (a as usize, snapshot[a as usize..=b as usize].to_vec()),
            _ => (0, Vec::new()),
        };
        ShardView {
            snapshot,
            lo,
            local,
        }
    }

    #[inline]
    fn get(&self, u: u32) -> u32 {
        match (u as usize).checked_sub(self.lo) {
            Some(off) if off < self.local.len() => self.local[off],
            _ => self.snapshot[u as usize],
        }
    }

    #[inline]
    fn set(&mut self, v: u32, c: u32) {
        self.local[v as usize - self.lo] = c;
    }

    fn resident_bytes(&self) -> u64 {
        (self.local.capacity() * std::mem::size_of::<u32>()) as u64
    }
}

/// Scan one shard's victim list, producing updates and neighbour traffic
/// per `kind`. Runs on a worker thread with the shard's private graph
/// handle.
///
/// `cold` and the Eq. 2 support are always taken against the **snapshot**
/// (each victim is recomputed at most once per pass, and the merge's
/// message corrections assume snapshot-relative supports); only the
/// `LocalCore` evaluation reads through the shard view.
fn scan_shard<G: AdjacencyRead>(
    g: &mut G,
    snapshot: &[u32],
    victims: &[u32],
    kind: PassKind,
) -> Result<ShardOutput> {
    let mut scratch = Scratch::new();
    let mut out = ShardOutput::default();
    let mut view = ShardView::new(snapshot, victims);
    for &v in victims {
        let cold = snapshot[v as usize];
        g.with_adjacency(v, |nbrs| {
            let cnew = local_core_by(cold, nbrs, &mut scratch, |u| view.get(u));
            let changed = cnew != cold;
            if changed {
                view.set(v, cnew);
            }
            match kind {
                PassKind::Full => {
                    if changed {
                        out.updates.push(NodeUpdate {
                            v,
                            cold,
                            cnew,
                            support: 0,
                        });
                    }
                }
                PassKind::Active => {
                    if changed {
                        out.updates.push(NodeUpdate {
                            v,
                            cold,
                            cnew,
                            support: 0,
                        });
                        out.touched.extend(nbrs.iter().map(|&u| Touch {
                            u,
                            wold: cold,
                            wnew: cnew,
                        }));
                    }
                }
                PassKind::Counted => {
                    // Every victim re-establishes its Eq. 2 support, changed
                    // or not — mirroring Alg. 5 line 10.
                    let support = compute_cnt(cnew, snapshot, nbrs);
                    out.updates.push(NodeUpdate {
                        v,
                        cold,
                        cnew,
                        support,
                    });
                    if changed {
                        out.touched.extend(nbrs.iter().map(|&u| Touch {
                            u,
                            wold: cold,
                            wnew: cnew,
                        }));
                    }
                }
            }
        })?;
    }
    out.overlay_bytes = view.resident_bytes();
    Ok(out)
}

/// Split `victims` into at most `shards` contiguous chunks of roughly equal
/// total degree (each victim's cost is `O(deg(v))` — LocalCore plus the
/// adjacency read — so degree, not node count, is the balance unit).
/// Deterministic: a pure greedy walk over the ascending victim list.
fn balanced_chunks<'a>(victims: &'a [u32], degrees: &[u32], shards: usize) -> Vec<&'a [u32]> {
    if victims.is_empty() {
        return vec![victims];
    }
    // +1 per node keeps zero-degree stretches from collapsing into one
    // giant chunk.
    let total: u64 = victims
        .iter()
        .map(|&v| degrees[v as usize] as u64 + 1)
        .sum();
    let target = total.div_ceil(shards as u64);
    let mut chunks = Vec::with_capacity(shards);
    let mut start = 0usize;
    let mut acc = 0u64;
    for (i, &v) in victims.iter().enumerate() {
        acc += degrees[v as usize] as u64 + 1;
        if acc >= target && chunks.len() + 1 < shards {
            chunks.push(&victims[start..=i]);
            start = i + 1;
            acc = 0;
        }
    }
    if start < victims.len() {
        chunks.push(&victims[start..]);
    }
    chunks
}

/// Run one sharded pass: split `victims` into contiguous degree-balanced
/// chunks, scan each on its own worker thread, and return the per-shard
/// outputs **in shard order** (the order the merge consumes them in —
/// this, plus workers observing only their own writes, is what makes the
/// pass deterministic).
///
/// Threads are scoped per pass rather than pooled for the run: spawn/join
/// costs tens of microseconds per worker against millisecond-scale passes,
/// and scoped borrows of the snapshot/victims keep the code free of
/// channel plumbing. A persistent pool is the upgrade path if profiles
/// ever show pass counts dominated by spawn overhead.
pub(crate) fn run_pass<S: AdjacencyRead + Send>(
    shards: &mut [S],
    snapshot: &[u32],
    degrees: &[u32],
    victims: &[u32],
    kind: PassKind,
) -> Result<Vec<ShardOutput>> {
    debug_assert!(!shards.is_empty());
    // Late-stage convergence passes shrink to a handful of victims; below
    // this size thread spawn/join costs more than the pass itself, so run
    // single-sharded. Deterministic: the cutoff is a function of the
    // victim count only.
    const MIN_VICTIMS_TO_FAN_OUT: usize = 64;
    if shards.len() == 1 || victims.len() < MIN_VICTIMS_TO_FAN_OUT {
        return Ok(vec![scan_shard(&mut shards[0], snapshot, victims, kind)?]);
    }
    let chunks = balanced_chunks(victims, degrees, shards.len());
    thread::scope(|scope| {
        let mut handles = Vec::with_capacity(chunks.len());
        for (shard, vs) in shards.iter_mut().zip(chunks) {
            handles.push(scope.spawn(move || scan_shard(shard, snapshot, vs, kind)));
        }
        let mut outs = Vec::with_capacity(handles.len());
        for h in handles {
            outs.push(h.join().expect("scan worker panicked")?);
        }
        Ok(outs)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphstore::MemGraph;

    #[test]
    fn worker_setting_parses_counts() {
        // Tested through the pure parser: mutating the real environment
        // races with concurrent tests reading it (getenv/setenv UB).
        let parse = ScanExecutor::from_worker_setting;
        assert_eq!(parse(None), ScanExecutor::Sequential);
        assert_eq!(parse(Some("")), ScanExecutor::Sequential);
        assert_eq!(parse(Some("0")), ScanExecutor::Sequential);
        assert_eq!(parse(Some("1")), ScanExecutor::Sequential);
        assert_eq!(parse(Some("4")), ScanExecutor::parallel(4));
        assert_eq!(parse(Some(" 8 ")), ScanExecutor::parallel(8));
        assert_eq!(parse(Some("nope")), ScanExecutor::Sequential);
    }

    #[test]
    fn balanced_chunks_covers_all_victims_in_order() {
        let victims: Vec<u32> = (0..100).collect();
        // A skewed degree profile: hubs at the front.
        let degrees: Vec<u32> = (0..100).map(|v| if v < 10 { 90 } else { 1 }).collect();
        for shards in [1usize, 2, 3, 4, 7] {
            let chunks = balanced_chunks(&victims, &degrees, shards);
            assert!(chunks.len() <= shards);
            let flat: Vec<u32> = chunks.iter().flat_map(|c| c.iter().copied()).collect();
            assert_eq!(flat, victims, "{shards} shards: cover exactly, in order");
        }
        // With the hubs up front, 2-way splitting must not put half the
        // *nodes* in each shard — the hub shard is much shorter.
        let chunks = balanced_chunks(&victims, &degrees, 2);
        assert!(chunks[0].len() < 20, "hub shard is cut early");
    }

    #[test]
    fn parallel_clamps_to_one() {
        assert_eq!(
            ScanExecutor::parallel(0),
            ScanExecutor::Parallel { workers: 1 }
        );
    }

    #[test]
    fn run_pass_is_shard_ordered_and_repeatable() {
        // A path of 200 nodes (above the fan-out cutoff): every interior
        // estimate starts at 2, the true core everywhere is 1.
        let n = 200u32;
        let g = MemGraph::from_edges((0..n - 1).map(|v| (v, v + 1)), n);
        let snapshot: Vec<u32> = (0..n).map(|v| g.degree(v)).collect();
        let degrees = snapshot.clone();
        let victims: Vec<u32> = (0..n).collect();
        let collect = |workers: usize| -> Vec<(u32, u32)> {
            let mut shards: Vec<MemGraph> = (0..workers).map(|_| g.clone()).collect();
            run_pass(&mut shards, &snapshot, &degrees, &victims, PassKind::Full)
                .unwrap()
                .iter()
                .flat_map(|o| o.updates.iter().map(|u| (u.v, u.cnew)))
                .collect()
        };
        for workers in [1usize, 2, 4] {
            let first = collect(workers);
            // Deterministic at a fixed worker count: repeats are identical.
            assert_eq!(first, collect(workers), "workers {workers}");
            // Updates arrive in ascending node order (contiguous shards,
            // merged in shard order).
            assert!(first.windows(2).all(|w| w[0].0 < w[1].0));
        }
        // One worker = one shard = a full Gauss–Seidel pass: the collapse
        // cascades from the path's end through every interior node.
        let full: Vec<(u32, u32)> = (1..n - 1).map(|v| (v, 1)).collect();
        assert_eq!(collect(1), full);
        // More shards propagate less per pass: collapse still cascades
        // within each shard, but stops at cross-shard boundaries.
        assert!(collect(2).len() < collect(1).len());
        assert!(collect(4).len() < collect(2).len());
    }
}
