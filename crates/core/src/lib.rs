//! # semicore — I/O-efficient core graph decomposition
//!
//! A from-scratch reproduction of *"I/O Efficient Core Graph Decomposition
//! at Web Scale"* (Wen, Qin, Zhang, Lin, Yu — ICDE 2016): semi-external
//! k-core decomposition and maintenance over disk-resident graphs, with the
//! baselines the paper evaluates against.
//!
//! ## Decomposition (§IV)
//!
//! | Algorithm | Paper | Entry point | Trigger for recomputation |
//! |---|---|---|---|
//! | SemiCore   | Alg. 3 | [`semicore`](fn@semicore)        | every node, every iteration |
//! | SemiCore+  | Alg. 4 | [`semicore_plus`](fn@semicore_plus)   | `active(v)` flags (Lemma 4.1) |
//! | SemiCore\* | Alg. 5 | [`semicore_star`](fn@semicore_star)   | `cnt(v) < core(v)` (Lemma 4.2 — optimal) |
//! | IMCore     | Alg. 1 | [`imcore`](fn@imcore)          | in-memory bin-sort peeling baseline |
//! | EMCore     | Alg. 2 | [`emcore`](fn@emcore)          | partition-based external baseline |
//!
//! All semi-external algorithms are generic over
//! [`graphstore::AdjacencyRead`], so the same code runs against disk graphs
//! (with block-accurate I/O accounting), buffered dynamic graphs, or pure
//! in-memory graphs.
//!
//! ## Scan execution (sequential or parallel)
//!
//! Each decomposition algorithm also comes in a `_with` form
//! ([`semicore_with`], [`semicore_plus_with`], [`semicore_star_with`],
//! [`semicore_star_state_with`]) taking a [`ScanExecutor`]: the sequential
//! executor reproduces the paper's exact schedule, while
//! [`ScanExecutor::Parallel`] shards every convergence pass across a worker
//! pool reading through [`graphstore::ShardableRead`] handles — final core
//! numbers are bit-identical, wall-clock drops with cores. See
//! [`executor`] for the determinism and charged-I/O guarantees.
//!
//! ## Maintenance (§V)
//!
//! [`semi_delete_star`] (Alg. 6), [`semi_insert`] (Alg. 7) and
//! [`semi_insert_star`] (Alg. 8) update a maintained [`CoreState`]
//! incrementally; [`InMemoryCores`] packages the in-memory baseline
//! (IMInsert / IMDelete). Serving layers speak in the typed
//! [`MaintainOp`] value instead of picking a function per call:
//! [`MaintenanceEngine`] owns algorithm selection and dispatch, and the
//! op's stable wire encoding is what maintenance journals persist and
//! replay.
//!
//! ## Example
//!
//! ```
//! use graphstore::{IoCounter, MemGraph, mem_to_disk, TempDir};
//! use semicore::{semicore_star, DecomposeOptions};
//!
//! let dir = TempDir::new("doc").unwrap();
//! let g = MemGraph::from_edges([(0, 1), (1, 2), (0, 2), (2, 3)], 4);
//! let mut disk = mem_to_disk(&dir.path().join("g"), &g, IoCounter::new(4096)).unwrap();
//! let d = semicore_star(&mut disk, &DecomposeOptions::default()).unwrap();
//! assert_eq!(d.core, vec![2, 2, 2, 1]);
//! assert_eq!(d.stats.io.write_ios, 0); // read-only, unlike EMCore
//! ```

#![deny(missing_docs)]

pub mod analysis;
pub mod bits;
pub mod emcore;
pub mod executor;
pub mod fixtures;
pub mod imcore;
pub mod localcore;
pub mod maintain;
pub mod semicore;
pub mod semicore_plus;
pub mod semicore_star;
pub mod state;
pub mod stats;
pub mod verify;
pub mod window;

pub use emcore::{emcore, EmCoreOptions};
pub use executor::ScanExecutor;
pub use imcore::imcore;
pub use maintain::delete::semi_delete_star;
pub use maintain::engine::{InsertAlgorithm, MaintainOp, MaintenanceEngine, MAINTAIN_OP_LEN};
pub use maintain::inmem::InMemoryCores;
pub use maintain::insert::semi_insert;
pub use maintain::insert_star::semi_insert_star;
pub use maintain::{MaintainStats, SparseMarks};
pub use semicore::{semicore, semicore_with};
pub use semicore_plus::{semicore_plus, semicore_plus_with};
pub use semicore_star::{
    semicore_star, semicore_star_state, semicore_star_state_with, semicore_star_with,
};
pub use state::CoreState;
pub use stats::{DecomposeOptions, Decomposition, RunStats};
pub use verify::{find_violations, verify_cores, verify_exact, Violation};
