//! SemiCore* — optimal node computation (Algorithm 5).
//!
//! SemiCore+ still recomputes nodes whose estimate turns out unchanged. With
//! `cnt(v) = |{u ∈ nbr(v) | core(u) ≥ core(v)}|` (Eq. 2) maintained
//! incrementally, Lemma 4.2 gives an exact trigger: `core(v)` must change
//! **iff** `cnt(v) < core(v)`. After the first pass, every adjacency load is
//! therefore guaranteed to decrease a core estimate — no wasted I/O and no
//! wasted `LocalCore` call.
//!
//! The convergence loop (`star_converge`) is shared verbatim with edge
//! deletion (Algorithm 6 line 11) and the second phase of two-phase
//! insertion (Algorithm 7 line 25).

use std::time::Instant;

use graphstore::{AdjacencyRead, Result, ShardableRead};

use crate::executor::{self, PassKind, ScanExecutor};
use crate::localcore::{compute_cnt, local_core, Scratch};
use crate::state::CoreState;
use crate::stats::{DecomposeOptions, Decomposition, RunStats};
use crate::window::ScanWindow;

/// Lines 4–14 of Algorithm 5: drive `(core, cnt)` to the fixpoint, visiting
/// only nodes with `cnt < core` inside the shrinking `[vmin, vmax]` window.
///
/// On entry `core[v]` must be an upper bound of the true core of every node
/// and `cnt` must satisfy Eq. 2 — except that nodes whose `cnt` is *lower*
/// than Eq. 2's value (e.g. the all-zero initial state) are simply
/// recomputed, which Algorithm 5 relies on for its first iteration.
pub(crate) fn star_converge(
    g: &mut impl AdjacencyRead,
    state: &mut CoreState,
    window: &mut ScanWindow,
    stats: &mut RunStats,
    mut per_iter: Option<&mut Vec<u64>>,
) -> Result<()> {
    let mut scratch = Scratch::new();
    let core = &mut state.core;
    let cnt = &mut state.cnt;
    if core.is_empty() {
        window.update = false;
    }
    while window.update {
        window.begin_iteration();
        let mut changed = 0u64;
        let mut v = window.vmin as u64;
        // `window.vmax` may grow while scanning.
        while v <= window.vmax as u64 {
            let vu = v as u32;
            // Line 7: the Lemma 4.2 trigger.
            if (cnt[vu as usize] as i64) < core[vu as usize] as i64 {
                stats.node_computations += 1;
                g.with_adjacency(vu, |nbrs| {
                    let cold = core[vu as usize];
                    let cnew = local_core(cold, core, nbrs, &mut scratch);
                    if cnew != cold {
                        changed += 1;
                    }
                    core[vu as usize] = cnew;
                    // Line 10: re-establish Eq. 2 for v itself.
                    cnt[vu as usize] = compute_cnt(cnew, core, nbrs) as i32;
                    // Line 11 (UpdateNbrCnt): v stopped supporting neighbours
                    // whose core lies in (cnew, cold].
                    for &u in nbrs {
                        let cu = core[u as usize];
                        if cu > cnew && cu <= cold {
                            cnt[u as usize] -= 1;
                        }
                    }
                    // Lines 12-13: schedule neighbours violating Lemma 4.2.
                    for &u in nbrs {
                        if (cnt[u as usize] as i64) < core[u as usize] as i64 {
                            window.schedule(u, vu);
                        }
                    }
                })?;
            }
            v += 1;
        }
        stats.iterations += 1;
        if let Some(p) = per_iter.as_deref_mut() {
            p.push(changed);
        }
        window.end_iteration();
    }
    Ok(())
}

/// Run SemiCore* with an explicit [`ScanExecutor`], returning the full
/// `(core, cnt)` state.
///
/// [`ScanExecutor::Sequential`] is exactly [`semicore_star_state`]. The
/// parallel executor fixes each pass's victim set (`cnt < core` inside the
/// window) up front, shards it across workers computing against a frozen
/// snapshot, and merges core updates, Eq. 2 supports and neighbour `cnt`
/// corrections in shard order (see [`crate::executor`]). Final `(core,
/// cnt)` state is bit-identical to the sequential run's — both satisfy the
/// Eq. 2 invariant over the unique decomposition. Falls back to the
/// sequential schedule when the backend cannot shard.
pub fn semicore_star_state_with<G: ShardableRead>(
    g: &mut G,
    opts: &DecomposeOptions,
    exec: ScanExecutor,
) -> Result<(CoreState, RunStats)> {
    if let Some(workers) = exec.worker_count() {
        if let Some(mut shards) = executor::shard_handles(g, workers)? {
            return star_state_parallel(g, &mut shards, opts);
        }
    }
    semicore_star_state(g, opts)
}

/// Run SemiCore* with an explicit [`ScanExecutor`].
pub fn semicore_star_with<G: ShardableRead>(
    g: &mut G,
    opts: &DecomposeOptions,
    exec: ScanExecutor,
) -> Result<Decomposition> {
    let (state, stats) = semicore_star_state_with(g, opts, exec)?;
    Ok(Decomposition {
        core: state.core,
        stats,
    })
}

/// The parallel schedule for Algorithm 5's convergence loop.
fn star_state_parallel<G: ShardableRead>(
    g: &mut G,
    shards: &mut [G::Shard],
    opts: &DecomposeOptions,
) -> Result<(CoreState, RunStats)> {
    let start = Instant::now();
    let io_before = g.io();
    let mut stats = RunStats::new("SemiCore*");

    let degrees = g.read_degrees()?;
    let mut state = CoreState::initial(degrees.clone());
    let mut window = ScanWindow::full(g.num_nodes());
    let mut per_iter = opts.track_changed_per_iteration.then(Vec::new);
    let mut victims: Vec<u32> = Vec::new();
    let mut peak_pass_bytes = 0u64;

    if state.core.is_empty() {
        window.update = false;
    }
    while window.update {
        window.begin_iteration();
        let (lo, hi) = window.current_range();
        victims.clear();
        for v in lo..=hi {
            // The Lemma 4.2 trigger, evaluated once at pass start.
            if (state.cnt[v as usize] as i64) < state.core[v as usize] as i64 {
                victims.push(v);
            }
        }
        // `state.core` is frozen for the duration of the pass (all three
        // merge phases run strictly after), so the borrow is the snapshot.
        let outs = executor::run_pass(shards, &state.core, &degrees, &victims, PassKind::Counted)?;
        stats.node_computations += victims.len() as u64;
        let mut changed = 0u64;
        // Phase 1: new estimates, and each victim's Eq. 2 support relative
        // to the snapshot (Alg. 5 line 10 against the pass-start state).
        for out in &outs {
            for u in &out.updates {
                if u.cnew != u.cold {
                    changed += 1;
                }
                state.core[u.v as usize] = u.cnew;
                state.cnt[u.v as usize] = u.support as i32;
            }
        }
        // Phase 2: cnt corrections (Alg. 5 line 11 in message form). A
        // neighbour w of u dropped from `wold` to `wnew` this pass; u loses
        // one supporter exactly when the drop crossed u's final estimate.
        // Estimates only decrease, so the `(wnew, wold]` intervals of one
        // node across passes are disjoint — no drop is counted twice.
        for out in &outs {
            for t in &out.touched {
                let cu = state.core[t.u as usize];
                if t.wold >= cu && t.wnew < cu {
                    state.cnt[t.u as usize] -= 1;
                }
            }
        }
        // Phase 3: reschedule Lemma 4.2 violations among this pass's
        // candidates. Nodes untouched by the pass cannot have started
        // violating (their cnt and core are unchanged).
        for out in &outs {
            for u in &out.updates {
                if (state.cnt[u.v as usize] as i64) < state.core[u.v as usize] as i64 {
                    window.schedule_next(u.v);
                }
            }
            for t in &out.touched {
                if (state.cnt[t.u as usize] as i64) < state.core[t.u as usize] as i64 {
                    window.schedule_next(t.u);
                }
            }
        }
        peak_pass_bytes = peak_pass_bytes.max(outs.iter().map(|o| o.resident_bytes()).sum());
        stats.iterations += 1;
        if let Some(p) = per_iter.as_mut() {
            p.push(changed);
        }
        window.end_iteration();
    }
    if let Some(p) = per_iter.as_mut() {
        while p.last() == Some(&0) {
            p.pop();
        }
    }

    // (core, cnt) + degrees + victim list, plus the merge buffers' peak
    // (the workers' snapshot is a borrow of `core`; shard views are
    // counted in the pass bytes).
    stats.peak_memory_bytes = state.resident_bytes()
        + ((degrees.len() + victims.capacity()) * 4) as u64
        + peak_pass_bytes;
    stats.io = g.io().since(&io_before);
    stats.wall_time = start.elapsed();
    stats.changed_per_iteration = per_iter;
    Ok((state, stats))
}

/// Run SemiCore* (Algorithm 5) and return the full `(core, cnt)` state —
/// the form consumed by the maintenance algorithms.
pub fn semicore_star_state(
    g: &mut impl AdjacencyRead,
    opts: &DecomposeOptions,
) -> Result<(CoreState, RunStats)> {
    let start = Instant::now();
    let io_before = g.io();
    let mut stats = RunStats::new("SemiCore*");

    // Lines 1-4: core <- deg, cnt <- 0, full window.
    let mut state = CoreState::initial(g.read_degrees()?);
    let mut window = ScanWindow::full(g.num_nodes());
    let mut per_iter = opts.track_changed_per_iteration.then(Vec::new);

    star_converge(g, &mut state, &mut window, &mut stats, per_iter.as_mut())?;

    if let Some(p) = per_iter.as_mut() {
        while p.last() == Some(&0) {
            p.pop();
        }
    }
    stats.peak_memory_bytes = state.resident_bytes();
    stats.io = g.io().since(&io_before);
    stats.wall_time = start.elapsed();
    stats.changed_per_iteration = per_iter;
    Ok((state, stats))
}

/// Run SemiCore* (Algorithm 5) over any graph access.
pub fn semicore_star(g: &mut impl AdjacencyRead, opts: &DecomposeOptions) -> Result<Decomposition> {
    let (state, stats) = semicore_star_state(g, opts)?;
    Ok(Decomposition {
        core: state.core,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{paper_example_graph, PAPER_EXAMPLE_CORES};
    use crate::imcore::imcore;
    use crate::semicore::semicore;
    use crate::semicore_plus::semicore_plus;
    use graphstore::{mem_to_disk, IoCounter, MemGraph, TempDir, DEFAULT_BLOCK_SIZE};

    #[test]
    fn paper_example_converges_to_exact_cores() {
        let mut g = paper_example_graph();
        let d = semicore_star(&mut g, &DecomposeOptions::default()).unwrap();
        assert_eq!(d.core, PAPER_EXAMPLE_CORES);
    }

    #[test]
    fn paper_example_matches_example_4_3_counters() {
        // Example 4.3: 3 iterations, 11 node computations.
        let mut g = paper_example_graph();
        let d = semicore_star(&mut g, &DecomposeOptions::default()).unwrap();
        assert_eq!(d.stats.iterations, 3);
        assert_eq!(d.stats.node_computations, 11);
    }

    #[test]
    fn final_state_satisfies_cnt_invariant() {
        let mut g = paper_example_graph();
        let (state, _) = semicore_star_state(&mut g, &DecomposeOptions::default()).unwrap();
        assert_eq!(state.check_cnt_invariant(&mut g).unwrap(), None);
        // Example 4.3: after convergence cnt(v5) reflects Eq. 2.
        assert_eq!(state.cnt[5], 4);
    }

    #[test]
    fn matches_imcore_on_random_graphs() {
        let mut state = 555u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for _ in 0..30 {
            let n = 2 + next() % 90;
            let m = next() % (4 * n);
            let edges: Vec<(u32, u32)> = (0..m).map(|_| (next() % n, next() % n)).collect();
            let mut g = MemGraph::from_edges(edges, n);
            let d = semicore_star(&mut g, &DecomposeOptions::default()).unwrap();
            assert_eq!(d.core, imcore(&g).core);
        }
    }

    #[test]
    fn computes_no_more_than_semicore_plus() {
        let mut state = 2024u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let n = 400u32;
        let edges: Vec<(u32, u32)> = (0..1600).map(|_| (next() % n, next() % n)).collect();
        let mut g = MemGraph::from_edges(edges, n);
        let plus = semicore_plus(&mut g, &DecomposeOptions::default()).unwrap();
        let star = semicore_star(&mut g, &DecomposeOptions::default()).unwrap();
        assert_eq!(plus.core, star.core);
        assert!(star.stats.node_computations <= plus.stats.node_computations);
    }

    #[test]
    fn after_first_pass_every_computation_changes_a_core() {
        // The "optimal node computation" claim: node computations beyond the
        // first full pass must each decrease a core estimate.
        let mut state = 808u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let n = 300u32;
        let edges: Vec<(u32, u32)> = (0..1200).map(|_| (next() % n, next() % n)).collect();
        let mut g = MemGraph::from_edges(edges, n);
        let opts = DecomposeOptions {
            track_changed_per_iteration: true,
        };
        let base = semicore(&mut g, &opts).unwrap();
        let star = semicore_star(&mut g, &opts).unwrap();
        assert_eq!(base.core, star.core);
        let changed: u64 = star
            .stats
            .changed_per_iteration
            .as_ref()
            .unwrap()
            .iter()
            .sum();
        // First pass computes every non-isolated node; afterwards
        // computations == changes.
        let first_pass = star.stats.changed_per_iteration.as_ref().unwrap()[0];
        let nonisolated = (0..n).filter(|&v| g.degree(v) > 0).count() as u64;
        assert_eq!(
            star.stats.node_computations,
            nonisolated + (changed - first_pass),
            "every post-first-pass computation must update a core"
        );
    }

    #[test]
    fn disk_run_reads_less_than_semicore() {
        let mut state = 99999u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let n = 3000u32;
        let edges: Vec<(u32, u32)> = (0..9000).map(|_| (next() % n, next() % n)).collect();
        let g = MemGraph::from_edges(edges, n);
        let dir = TempDir::new("semistar").unwrap();
        let mut d1 = mem_to_disk(
            &dir.path().join("a"),
            &g,
            IoCounter::new(DEFAULT_BLOCK_SIZE),
        )
        .unwrap();
        let base = semicore(&mut d1, &DecomposeOptions::default()).unwrap();
        let mut d2 = mem_to_disk(
            &dir.path().join("b"),
            &g,
            IoCounter::new(DEFAULT_BLOCK_SIZE),
        )
        .unwrap();
        let star = semicore_star(&mut d2, &DecomposeOptions::default()).unwrap();
        assert_eq!(base.core, star.core);
        assert_eq!(star.stats.io.write_ios, 0);
        assert!(star.stats.io.read_ios <= base.stats.io.read_ios);
    }

    #[test]
    fn empty_graph() {
        let mut g = MemGraph::from_edges(Vec::<(u32, u32)>::new(), 0);
        let d = semicore_star(&mut g, &DecomposeOptions::default()).unwrap();
        assert!(d.core.is_empty());
    }

    #[test]
    fn parallel_executor_matches_sequential_state() {
        let mut state = 909090u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for _ in 0..15 {
            let n = 2 + next() % 120;
            let m = next() % (4 * n);
            let edges: Vec<(u32, u32)> = (0..m).map(|_| (next() % n, next() % n)).collect();
            let mut g = MemGraph::from_edges(edges, n);
            let (seq, _) = semicore_star_state(&mut g, &DecomposeOptions::default()).unwrap();
            for workers in [1, 2, 4] {
                let (par, _) = semicore_star_state_with(
                    &mut g,
                    &DecomposeOptions::default(),
                    ScanExecutor::parallel(workers),
                )
                .unwrap();
                // Bit-identical state: same cores AND same cnt (both exact
                // Eq. 2 at convergence).
                assert_eq!(seq, par, "workers {workers}");
                assert_eq!(par.check_cnt_invariant(&mut g).unwrap(), None);
            }
        }
    }

    #[test]
    fn parallel_pass_structure_is_deterministic_per_worker_count() {
        // The deterministic-merge guarantee: for a fixed worker count the
        // whole run — cores, pass count, per-pass change series — is a pure
        // function of the input, reproducible across repeats. (Different
        // worker counts legitimately differ in pass structure: cross-shard
        // edges propagate one pass later; cores still match everywhere.)
        // The graph is large enough (thousands of victims per early pass)
        // that the multi-shard fan-out path genuinely runs — the paper's
        // 9-node example would fall under the executor's small-pass cutoff.
        let mut state = 424242u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let n = 2000u32;
        let edges: Vec<(u32, u32)> = (0..8000).map(|_| (next() % n, next() % n)).collect();
        let mut g = MemGraph::from_edges(edges, n);
        let opts = DecomposeOptions {
            track_changed_per_iteration: true,
        };
        let seq = semicore_star(&mut g, &opts).unwrap();
        for workers in [1usize, 2, 3, 4, 8] {
            let a = semicore_star_with(&mut g, &opts, ScanExecutor::parallel(workers)).unwrap();
            let b = semicore_star_with(&mut g, &opts, ScanExecutor::parallel(workers)).unwrap();
            assert_eq!(a.core, seq.core, "workers {workers}");
            assert_eq!(a.core, b.core);
            assert_eq!(a.stats.iterations, b.stats.iterations);
            assert_eq!(a.stats.node_computations, b.stats.node_computations);
            assert_eq!(a.stats.changed_per_iteration, b.stats.changed_per_iteration);
        }
    }
}
