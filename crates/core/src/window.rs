//! The `[vmin, vmax]` scan window and `UpdateRange` procedure shared by
//! Algorithms 4–8.
//!
//! All optimized semi-external algorithms avoid touching every node each
//! iteration by tracking the smallest and largest node that may still need
//! work. During an iteration the scan runs from `vmin` to `vmax`; when the
//! recomputation of `v` implicates a neighbour `u`, `UpdateRange` either
//! extends the *current* window (`u > v`: `u` can still be handled this
//! iteration) or the *next* window (`u < v`: the scan has already passed it).

/// Scan window state for one convergence loop.
#[derive(Debug, Clone)]
pub struct ScanWindow {
    /// First node of the current iteration's range.
    pub vmin: u32,
    /// Last node of the current iteration's range (inclusive; may grow while
    /// the iteration runs).
    pub vmax: u32,
    /// Whether another iteration is required.
    pub update: bool,
    next_min: u32,
    next_max: u32,
    num_nodes: u32,
}

impl ScanWindow {
    /// A window covering all nodes (used by the first iteration of the
    /// decomposition algorithms).
    pub fn full(num_nodes: u32) -> Self {
        ScanWindow {
            vmin: 0,
            vmax: num_nodes.saturating_sub(1),
            update: true,
            next_min: num_nodes,
            next_max: 0,
            num_nodes,
        }
    }

    /// A window initially covering `[lo, hi]` (used by the maintenance
    /// algorithms, which start from the updated edge's endpoints).
    pub fn span(lo: u32, hi: u32, num_nodes: u32) -> Self {
        debug_assert!(lo <= hi && hi < num_nodes);
        ScanWindow {
            vmin: lo,
            vmax: hi,
            update: true,
            next_min: num_nodes,
            next_max: 0,
            num_nodes,
        }
    }

    /// Begin an iteration: reset the next-window accumulator and the update
    /// flag (Alg. 4 line 6: `update ← false; v'min ← vn; v'max ← v1`).
    pub fn begin_iteration(&mut self) {
        self.update = false;
        self.next_min = self.num_nodes;
        self.next_max = 0;
    }

    /// The `UpdateRange` procedure (Alg. 4 lines 17–21): node `u` became
    /// relevant while processing node `v`.
    #[inline]
    pub fn schedule(&mut self, u: u32, v: u32) {
        // u > v: extend the current scan so u is computed this iteration
        // rather than delayed to the next.
        if u > self.vmax {
            self.vmax = u;
        }
        if u < v {
            self.schedule_next(u);
        }
    }

    /// Schedule `u` for the *next* iteration unconditionally.
    ///
    /// The parallel scan executor's merge path: sharded passes have no
    /// in-pass propagation (a pass computes from a frozen snapshot), so
    /// every implicated node — forward or backward of the node that
    /// implicated it — waits for the next pass.
    #[inline]
    pub fn schedule_next(&mut self, u: u32) {
        self.update = true;
        if u < self.next_min {
            self.next_min = u;
        }
        if u > self.next_max {
            self.next_max = u;
        }
    }

    /// End an iteration: adopt the accumulated next window
    /// (Alg. 4 line 15).
    pub fn end_iteration(&mut self) {
        self.vmin = self.next_min;
        self.vmax = self.next_max;
    }

    /// Iterate the current window, tolerating in-flight `vmax` growth.
    ///
    /// Returns an iterator-like closure driver: calls `f(v)` for each `v`
    /// from `vmin` while `v <= self.vmax` *at the time `v` is reached*.
    pub fn current_range(&self) -> (u32, u32) {
        (self.vmin, self.vmax)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_window_covers_everything() {
        let w = ScanWindow::full(10);
        assert_eq!(w.current_range(), (0, 9));
        assert!(w.update);
    }

    #[test]
    fn schedule_forward_extends_current_window_only() {
        let mut w = ScanWindow::span(2, 4, 20);
        w.begin_iteration();
        w.schedule(9, 3);
        assert_eq!(w.vmax, 9);
        assert!(!w.update, "forward work needs no extra iteration");
        w.end_iteration();
        // Nothing scheduled backward: next window is the empty sentinel.
        assert!(w.vmin > w.vmax);
    }

    #[test]
    fn schedule_backward_populates_next_window() {
        let mut w = ScanWindow::span(5, 8, 20);
        w.begin_iteration();
        w.schedule(3, 6);
        w.schedule(1, 7);
        w.schedule(4, 7);
        assert!(w.update);
        w.end_iteration();
        assert_eq!(w.current_range(), (1, 4));
    }

    #[test]
    fn mixed_schedules() {
        let mut w = ScanWindow::span(5, 5, 100);
        w.begin_iteration();
        w.schedule(50, 5); // forward
        w.schedule(2, 10); // backward
        assert_eq!(w.vmax, 50);
        w.end_iteration();
        assert_eq!(w.current_range(), (2, 2));
        assert!(w.update);
    }

    #[test]
    fn empty_graph_window_is_degenerate() {
        let w = ScanWindow::full(0);
        // vmin (0) > vmax is impossible for u32 here: both are 0; callers
        // guard on num_nodes == 0 before scanning.
        assert_eq!(w.current_range(), (0, 0));
    }
}
