//! SemiDelete* — edge deletion (Algorithm 6).
//!
//! Theorem 3.1: a deletion decreases core numbers by at most one, so the old
//! core numbers remain valid upper bounds. SemiDelete* removes the edge,
//! patches the two endpoints' `cnt` counters (the only counters the deleted
//! edge contributed to) and re-runs the SemiCore* convergence loop from the
//! window spanning the endpoints — which then visits *only* nodes whose core
//! actually changes.

use std::time::Instant;

use graphstore::{DynamicGraph, Result};

use crate::semicore_star::star_converge;
use crate::state::CoreState;
use crate::stats::RunStats;
use crate::window::ScanWindow;

use super::MaintainStats;

/// Delete edge `(u, v)` and maintain `state`.
///
/// `state` must hold the exact decomposition (with the Eq. 2 invariant) of
/// the graph *before* the deletion; the edge must exist.
pub fn semi_delete_star(
    g: &mut impl DynamicGraph,
    state: &mut CoreState,
    u: u32,
    v: u32,
) -> Result<MaintainStats> {
    let start = Instant::now();
    let io_before = g.io();
    let mut stats = MaintainStats::new("SemiDelete*");

    // Line 1: remove the edge (via the update buffer on disk graphs).
    g.delete_edge(u, v)?;

    // Lines 2-10: the deleted neighbour only supported cnt on the endpoint
    // whose core was <= the other's.
    let (cu, cv) = (state.core[u as usize], state.core[v as usize]);
    let (lo, hi) = if u <= v { (u, v) } else { (v, u) };
    let (wmin, wmax) = if cu < cv {
        state.cnt[u as usize] -= 1;
        (u, u)
    } else if cv < cu {
        state.cnt[v as usize] -= 1;
        (v, v)
    } else {
        state.cnt[u as usize] -= 1;
        state.cnt[v as usize] -= 1;
        (lo, hi)
    };

    // Line 11: lines 4-14 of Algorithm 5.
    let mut window = ScanWindow::span(wmin, wmax, state.num_nodes());
    let mut run = RunStats::new("SemiDelete*");
    star_converge(g, state, &mut window, &mut run, None)?;

    stats.iterations = run.iterations;
    stats.node_computations = run.node_computations;
    stats.io = g.io().since(&io_before);
    stats.wall_time = start.elapsed();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::paper_example_graph;
    use crate::imcore::imcore;
    use crate::semicore_star::semicore_star_state;
    use crate::stats::DecomposeOptions;
    use graphstore::{DynGraph, MemGraph};

    fn decomposed(g: &MemGraph) -> (DynGraph, CoreState) {
        let mut dynamic = DynGraph::from_mem(g);
        let (state, _) = semicore_star_state(&mut dynamic, &DecomposeOptions::default()).unwrap();
        (dynamic, state)
    }

    #[test]
    fn example_5_1_delete_v0_v1() {
        // Example 5.1: deleting (v0, v1) drops the K4 to core 2 in one
        // iteration with 4 node computations.
        let g = paper_example_graph();
        let (mut dynamic, mut state) = decomposed(&g);
        let stats = semi_delete_star(&mut dynamic, &mut state, 0, 1).unwrap();
        assert_eq!(state.core, vec![2, 2, 2, 2, 2, 2, 2, 2, 1]);
        assert_eq!(stats.iterations, 1);
        assert_eq!(stats.node_computations, 4);
        // Maintained state equals a fresh decomposition.
        assert_eq!(state.check_cnt_invariant(&mut dynamic).unwrap(), None);
    }

    #[test]
    fn deleting_a_leaf_edge_touches_only_the_leaf() {
        let g = paper_example_graph();
        let (mut dynamic, mut state) = decomposed(&g);
        let stats = semi_delete_star(&mut dynamic, &mut state, 5, 8).unwrap();
        assert_eq!(state.core[8], 0);
        assert_eq!(state.core[5], 2, "v5 keeps its core");
        assert_eq!(stats.node_computations, 1);
        assert_eq!(state.check_cnt_invariant(&mut dynamic).unwrap(), None);
    }

    #[test]
    fn deletion_matches_scratch_recomputation_on_random_graphs() {
        let mut rng = testutil::Lcg::new(13);
        for _ in 0..20 {
            let g = testutil::random_mem_graph(&mut rng, 3, 50, 3);
            if g.num_edges() == 0 {
                continue;
            }
            let (mut dynamic, mut state) = decomposed(&g);
            // Delete up to 5 random existing edges one at a time.
            for _ in 0..5 {
                let all: Vec<(u32, u32)> = dynamic.to_mem().edges().collect();
                if all.is_empty() {
                    break;
                }
                let (a, b) = all[rng.next_u32() as usize % all.len()];
                semi_delete_star(&mut dynamic, &mut state, a, b).unwrap();
                let oracle = imcore(&dynamic.to_mem());
                assert_eq!(state.core, oracle.core);
                assert_eq!(state.check_cnt_invariant(&mut dynamic).unwrap(), None);
            }
        }
    }

    #[test]
    fn cascade_spans_a_long_chain() {
        // A cycle plus chord: deleting the chord keeps core 2; deleting a
        // cycle edge collapses the whole cycle from 2 to 1 (full cascade).
        let n = 40u32;
        let mut edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        edges.push((0, 20));
        let g = MemGraph::from_edges(edges, n);
        let (mut dynamic, mut state) = decomposed(&g);
        semi_delete_star(&mut dynamic, &mut state, 5, 6).unwrap();
        let oracle = imcore(&dynamic.to_mem());
        assert_eq!(state.core, oracle.core);
        // The cycle nodes (except the chord triangle path) drop to 1.
        assert!(state.core.iter().filter(|&&c| c == 1).count() > 10);
    }
}
