//! The typed maintenance operation and its dispatch engine.
//!
//! §V gives three maintenance entry points (SemiInsert, SemiInsert\*,
//! SemiDelete\*) as free functions. A serving system needs one more level
//! of structure above them: a *value* representing "what happened to the
//! graph" that can be validated once, appended to a write-ahead journal,
//! sent over a wire, replayed after a crash, and batched — and one place
//! that owns which algorithm implements it. [`MaintainOp`] is that value
//! and [`MaintenanceEngine`] that place; the §V functions are its workers.
//!
//! The engine also owns the reusable [`SparseMarks`] flag storage the
//! insertion algorithms need, so callers no longer thread it through every
//! call site.

use graphstore::{DynamicGraph, Error, Result};

use crate::state::CoreState;

use super::delete::semi_delete_star;
use super::insert::semi_insert;
use super::insert_star::semi_insert_star;
use super::{MaintainStats, SparseMarks};

/// One graph maintenance operation, as journaled and replayed.
///
/// The wire encoding ([`MaintainOp::encode`] / [`MaintainOp::decode`]) is
/// a stable 9-byte record: a tag byte (1 = insert, 2 = delete) followed by
/// the two endpoints as little-endian `u32` — the payload format of the
/// maintenance WAL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintainOp {
    /// Insert the (absent) undirected edge `(u, v)`.
    Insert(u32, u32),
    /// Delete the (present) undirected edge `(u, v)`.
    Delete(u32, u32),
}

/// Byte length of an encoded [`MaintainOp`].
pub const MAINTAIN_OP_LEN: usize = 9;

const TAG_INSERT: u8 = 1;
const TAG_DELETE: u8 = 2;

impl MaintainOp {
    /// The operation's endpoints, in the order given.
    pub fn endpoints(&self) -> (u32, u32) {
        match *self {
            MaintainOp::Insert(u, v) | MaintainOp::Delete(u, v) => (u, v),
        }
    }

    /// True for insertions.
    pub fn is_insert(&self) -> bool {
        matches!(self, MaintainOp::Insert(_, _))
    }

    /// Encode into the stable 9-byte wire format.
    pub fn encode(&self) -> [u8; MAINTAIN_OP_LEN] {
        let (tag, (u, v)) = match *self {
            MaintainOp::Insert(u, v) => (TAG_INSERT, (u, v)),
            MaintainOp::Delete(u, v) => (TAG_DELETE, (u, v)),
        };
        let mut out = [0u8; MAINTAIN_OP_LEN];
        out[0] = tag;
        out[1..5].copy_from_slice(&u.to_le_bytes());
        out[5..9].copy_from_slice(&v.to_le_bytes());
        out
    }

    /// Decode the 9-byte wire format; anything else is a corruption error
    /// (journal records are checksummed, so a mismatch here means the
    /// writer and reader disagree, not bitrot).
    pub fn decode(bytes: &[u8]) -> Result<MaintainOp> {
        if bytes.len() != MAINTAIN_OP_LEN {
            return Err(Error::corrupt(format!(
                "maintenance op record of {} bytes (expected {MAINTAIN_OP_LEN})",
                bytes.len()
            )));
        }
        let u = u32::from_le_bytes(bytes[1..5].try_into().expect("length checked"));
        let v = u32::from_le_bytes(bytes[5..9].try_into().expect("length checked"));
        match bytes[0] {
            TAG_INSERT => Ok(MaintainOp::Insert(u, v)),
            TAG_DELETE => Ok(MaintainOp::Delete(u, v)),
            other => Err(Error::corrupt(format!(
                "unknown maintenance op tag {other}"
            ))),
        }
    }
}

/// Which insertion algorithm the engine dispatches
/// [`MaintainOp::Insert`] to. Deletions always run SemiDelete\* — the paper
/// gives no alternative worth selecting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InsertAlgorithm {
    /// SemiInsert\* (Algorithm 8): one phase, `cnt*`-pruned expansion —
    /// the paper's recommended configuration.
    #[default]
    OnePhase,
    /// SemiInsert (Algorithm 7): two phases, unpruned candidate set. Kept
    /// selectable for head-to-head evaluation (Fig. 10).
    TwoPhase,
}

/// Owns maintenance dispatch for one graph: algorithm selection plus the
/// reusable scratch state the workers need.
///
/// ```
/// use graphstore::{DynGraph, MemGraph};
/// use semicore::{semicore_star_state, DecomposeOptions, MaintainOp, MaintenanceEngine};
///
/// let g = MemGraph::from_edges([(0, 1), (1, 2), (0, 2)], 4);
/// let mut dynamic = DynGraph::from_mem(&g);
/// let (mut state, _) = semicore_star_state(&mut dynamic, &DecomposeOptions::default()).unwrap();
/// let mut engine = MaintenanceEngine::new(4);
/// engine.apply(&mut dynamic, &mut state, MaintainOp::Insert(2, 3)).unwrap();
/// engine.apply(&mut dynamic, &mut state, MaintainOp::Delete(0, 1)).unwrap();
/// assert_eq!(state.core, vec![1, 1, 1, 1]); // the triangle is broken
/// ```
#[derive(Debug)]
pub struct MaintenanceEngine {
    insert_algorithm: InsertAlgorithm,
    marks: SparseMarks,
}

impl MaintenanceEngine {
    /// An engine for a graph of `n` nodes with the default (one-phase)
    /// insertion algorithm.
    pub fn new(n: u32) -> MaintenanceEngine {
        Self::with_algorithm(n, InsertAlgorithm::default())
    }

    /// [`MaintenanceEngine::new`] with an explicit insertion algorithm.
    pub fn with_algorithm(n: u32, insert_algorithm: InsertAlgorithm) -> MaintenanceEngine {
        MaintenanceEngine {
            insert_algorithm,
            marks: SparseMarks::new(n),
        }
    }

    /// The insertion algorithm this engine dispatches to.
    pub fn insert_algorithm(&self) -> InsertAlgorithm {
        self.insert_algorithm
    }

    /// Bytes of reusable scratch state held (the [`SparseMarks`] flags) —
    /// part of the semi-external memory footprint.
    pub fn resident_bytes(&self) -> u64 {
        self.marks.resident_bytes()
    }

    /// Apply one operation to `g`, maintaining `state` incrementally.
    ///
    /// Preconditions are those of the underlying §V algorithms: `state`
    /// must hold the exact decomposition (with the Eq. 2 invariant) of the
    /// graph before the op, the inserted edge must be absent and the
    /// deleted edge present. Callers feeding raw input validate first (as
    /// `CoreService` does); the journal replay path is exempt because it
    /// re-applies ops that were validated when first journaled.
    pub fn apply(
        &mut self,
        g: &mut impl DynamicGraph,
        state: &mut CoreState,
        op: MaintainOp,
    ) -> Result<MaintainStats> {
        match op {
            MaintainOp::Insert(u, v) => match self.insert_algorithm {
                InsertAlgorithm::OnePhase => semi_insert_star(g, state, &mut self.marks, u, v),
                InsertAlgorithm::TwoPhase => semi_insert(g, state, &mut self.marks, u, v),
            },
            MaintainOp::Delete(u, v) => semi_delete_star(g, state, u, v),
        }
    }

    /// Apply a batch of operations in order, returning one aggregated
    /// stats block (counters summed, I/O measured across the whole batch,
    /// algorithm name `"Batch"`).
    pub fn apply_all(
        &mut self,
        g: &mut impl DynamicGraph,
        state: &mut CoreState,
        ops: impl IntoIterator<Item = MaintainOp>,
    ) -> Result<MaintainStats> {
        let start = std::time::Instant::now();
        let io_before = g.io();
        let mut total = MaintainStats::new("Batch");
        for op in ops {
            let s = self.apply(g, state, op)?;
            total.iterations += s.iterations;
            total.node_computations += s.node_computations;
            total.candidates += s.candidates;
        }
        total.io = g.io().since(&io_before);
        total.wall_time = start.elapsed();
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imcore::imcore;
    use crate::semicore_star::semicore_star_state;
    use crate::stats::DecomposeOptions;
    use graphstore::{DynGraph, MemGraph};

    #[test]
    fn op_encoding_round_trips() {
        for op in [
            MaintainOp::Insert(0, 1),
            MaintainOp::Delete(7, 3),
            MaintainOp::Insert(u32::MAX, 0),
        ] {
            let bytes = op.encode();
            assert_eq!(MaintainOp::decode(&bytes).unwrap(), op);
        }
    }

    #[test]
    fn op_decode_rejects_garbage() {
        assert!(MaintainOp::decode(&[]).unwrap_err().is_corrupt());
        assert!(MaintainOp::decode(&[1u8; 8]).unwrap_err().is_corrupt());
        assert!(MaintainOp::decode(&[9u8; 9]).unwrap_err().is_corrupt());
        let mut ok = MaintainOp::Insert(1, 2).encode();
        ok[0] = 0;
        assert!(MaintainOp::decode(&ok).unwrap_err().is_corrupt());
    }

    #[test]
    fn op_accessors() {
        let i = MaintainOp::Insert(3, 5);
        let d = MaintainOp::Delete(5, 3);
        assert!(i.is_insert() && !d.is_insert());
        assert_eq!(i.endpoints(), (3, 5));
        assert_eq!(d.endpoints(), (5, 3));
    }

    fn decomposed(g: &MemGraph) -> (DynGraph, CoreState) {
        let mut dynamic = DynGraph::from_mem(g);
        let (state, _) = semicore_star_state(&mut dynamic, &DecomposeOptions::default()).unwrap();
        (dynamic, state)
    }

    #[test]
    fn engine_dispatch_matches_direct_worker_calls() {
        let mut rng = testutil::Lcg::new(99);
        for algo in [InsertAlgorithm::OnePhase, InsertAlgorithm::TwoPhase] {
            let g = testutil::random_mem_graph(&mut rng, 4, 50, 3);
            let n = g.num_nodes();
            let (mut dynamic, mut state) = decomposed(&g);
            let mut engine = MaintenanceEngine::with_algorithm(n, algo);
            assert_eq!(engine.insert_algorithm(), algo);
            for _ in 0..25 {
                let (a, b) = (rng.below(n), rng.below(n));
                if a == b {
                    continue;
                }
                let op = if dynamic.has_edge(a, b) {
                    MaintainOp::Delete(a, b)
                } else {
                    MaintainOp::Insert(a, b)
                };
                engine.apply(&mut dynamic, &mut state, op).unwrap();
                let oracle = imcore(&dynamic.to_mem());
                assert_eq!(state.core, oracle.core, "{algo:?} diverged");
            }
            assert_eq!(state.check_cnt_invariant(&mut dynamic).unwrap(), None);
        }
    }

    #[test]
    fn batched_apply_aggregates_and_matches_oracle() {
        let g = MemGraph::from_edges([(0, 1), (1, 2)], 5);
        let (mut dynamic, mut state) = decomposed(&g);
        let mut engine = MaintenanceEngine::new(5);
        let stats = engine
            .apply_all(
                &mut dynamic,
                &mut state,
                [
                    MaintainOp::Insert(0, 2),
                    MaintainOp::Insert(3, 4),
                    MaintainOp::Delete(0, 1),
                ],
            )
            .unwrap();
        assert_eq!(stats.algorithm, "Batch");
        assert!(stats.node_computations > 0);
        let oracle = imcore(&dynamic.to_mem());
        assert_eq!(state.core, oracle.core);
    }
}
