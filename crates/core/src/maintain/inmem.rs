//! IMInsert / IMDelete — the in-memory core maintenance baseline.
//!
//! The paper compares against the streaming in-memory algorithms of
//! Sarıyüce et al. \[27\] and Li et al. \[19\]. Both rest on the same two
//! ingredients: (1) Theorems 3.1/3.2 localise the affected nodes to the
//! `core = core(root)` component, and (2) a per-node support counter (their
//! "max-core degree" is exactly this paper's `cnt`) prunes and cascades the
//! update. We therefore run the identical maintenance logic over a fully
//! in-memory dynamic adjacency structure — zero I/O, with the whole graph
//! resident — which is precisely what the paper's Fig. 10 comparison
//! measures against the semi-external variants.

use graphstore::{DynGraph, MemGraph, Result};

use crate::maintain::delete::semi_delete_star;
use crate::maintain::insert_star::semi_insert_star;
use crate::maintain::{MaintainStats, SparseMarks};
use crate::semicore_star::semicore_star_state;
use crate::state::CoreState;
use crate::stats::DecomposeOptions;

/// An in-memory dynamic graph with maintained core numbers.
#[derive(Debug)]
pub struct InMemoryCores {
    graph: DynGraph,
    state: CoreState,
    marks: SparseMarks,
}

impl InMemoryCores {
    /// Build from a static graph, computing the initial decomposition.
    pub fn new(g: &MemGraph) -> Result<InMemoryCores> {
        let mut graph = DynGraph::from_mem(g);
        let (state, _) = semicore_star_state(&mut graph, &DecomposeOptions::default())?;
        let n = graph.num_nodes();
        Ok(InMemoryCores {
            graph,
            state,
            marks: SparseMarks::new(n),
        })
    }

    /// Current core numbers.
    pub fn cores(&self) -> &[u32] {
        &self.state.core
    }

    /// Core number of one node.
    pub fn core(&self, v: u32) -> u32 {
        self.state.core[v as usize]
    }

    /// The underlying graph.
    pub fn graph(&self) -> &DynGraph {
        &self.graph
    }

    /// IMInsert: insert `(u, v)` (must be absent) and maintain core numbers.
    pub fn insert_edge(&mut self, u: u32, v: u32) -> Result<MaintainStats> {
        let mut s = semi_insert_star(&mut self.graph, &mut self.state, &mut self.marks, u, v)?;
        s.algorithm = "IMInsert";
        Ok(s)
    }

    /// IMDelete: delete `(u, v)` (must be present) and maintain core numbers.
    pub fn delete_edge(&mut self, u: u32, v: u32) -> Result<MaintainStats> {
        let mut s = semi_delete_star(&mut self.graph, &mut self.state, u, v)?;
        s.algorithm = "IMDelete";
        Ok(s)
    }

    /// Resident memory: the full adjacency structure plus the node state —
    /// the in-memory baseline's footprint in Fig. 10's setting.
    pub fn resident_bytes(&self) -> u64 {
        self.graph.resident_bytes() + self.state.resident_bytes() + self.marks.resident_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::paper_example_graph;
    use crate::imcore::imcore;

    #[test]
    fn tracks_cores_through_updates() {
        let g = paper_example_graph();
        let mut im = InMemoryCores::new(&g).unwrap();
        assert_eq!(im.cores(), &[3, 3, 3, 3, 2, 2, 2, 2, 1]);

        let s = im.insert_edge(7, 8).unwrap();
        assert_eq!(s.algorithm, "IMInsert");
        assert_eq!(s.io.read_ios, 0, "in-memory baseline does no I/O");
        assert_eq!(im.core(8), 2);

        let s = im.delete_edge(0, 1).unwrap();
        assert_eq!(s.algorithm, "IMDelete");
        assert_eq!(im.cores(), &[2, 2, 2, 2, 2, 2, 2, 2, 2]);
    }

    #[test]
    fn random_stream_matches_oracle() {
        let mut rng = testutil::Lcg::new(5);
        let n = 30u32;
        let g = MemGraph::from_edges(testutil::random_edges(&mut rng, n, 60), n);
        let mut im = InMemoryCores::new(&g).unwrap();
        for _ in 0..60 {
            let a = rng.below(n);
            let b = rng.below(n);
            if a == b {
                continue;
            }
            if im.graph().has_edge(a, b) {
                im.delete_edge(a, b).unwrap();
            } else {
                im.insert_edge(a, b).unwrap();
            }
        }
        let oracle = imcore(&im.graph().to_mem());
        assert_eq!(im.cores(), oracle.core.as_slice());
    }

    #[test]
    fn memory_footprint_includes_graph() {
        let g = paper_example_graph();
        let im = InMemoryCores::new(&g).unwrap();
        assert!(im.resident_bytes() > DynGraph::from_mem(&g).resident_bytes());
    }
}
