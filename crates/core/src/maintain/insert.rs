//! SemiInsert — two-phase edge insertion (Algorithm 7).
//!
//! After inserting `(u, v)` with `core(u) ≤ core(v)`, only nodes reachable
//! from `u` through `core = core(u)` paths can gain a core level
//! (Theorem 3.2). Phase 1 expands that candidate set `Vc`, optimistically
//! lifting every member to `cold + 1` while repairing `cnt`. Phase 2 runs
//! the SemiCore* convergence loop over the affected window to pull back the
//! members that cannot actually sustain the higher core.

use std::time::Instant;

use graphstore::{DynamicGraph, Result};

use crate::localcore::compute_cnt;
use crate::semicore_star::star_converge;
use crate::state::CoreState;
use crate::stats::RunStats;
use crate::window::ScanWindow;

use super::{MaintainStats, SparseMarks};

const INACTIVE: u8 = 0;
const ACTIVE: u8 = 1;

/// Insert edge `(u, v)` and maintain `state` (two-phase Algorithm 7).
///
/// `state` must hold the exact decomposition (with the Eq. 2 invariant) of
/// the graph *before* the insertion; the edge must be absent. `marks` is the
/// reusable `active(·)` flag storage.
pub fn semi_insert(
    g: &mut impl DynamicGraph,
    state: &mut CoreState,
    marks: &mut SparseMarks,
    u: u32,
    v: u32,
) -> Result<MaintainStats> {
    let start = Instant::now();
    let io_before = g.io();
    let mut stats = MaintainStats::new("SemiInsert");
    let n = state.num_nodes();

    // Line 1: physically insert the edge.
    g.insert_edge(u, v)?;

    // Lines 2-5: orient so core(u) <= core(v); patch cnt for the new edge.
    let (u, v) = if state.core[u as usize] > state.core[v as usize] {
        (v, u)
    } else {
        (u, v)
    };
    state.cnt[u as usize] += 1;
    if state.core[u as usize] == state.core[v as usize] {
        state.cnt[v as usize] += 1;
    }
    let cold = state.core[u as usize];

    // Line 6: active(w) <- false except the root.
    marks.clear_all();
    marks.set(u, ACTIVE);
    // Track the extent of the candidate set for phase 2's window.
    let mut cand_min = u;
    let mut cand_max = u;

    // Lines 7-21: expand the candidate set, lifting each member by one.
    let mut window = ScanWindow::span(u, u, n);
    while window.update {
        window.begin_iteration();
        let mut w = window.vmin as u64;
        while w <= window.vmax as u64 {
            let wu = w as u32;
            // Line 11: expand active nodes still at the old level.
            if marks.get(wu) == ACTIVE && state.core[wu as usize] == cold {
                // Line 12: optimistic lift.
                state.core[wu as usize] = cold + 1;
                stats.candidates += 1;
                stats.node_computations += 1;
                g.with_adjacency(wu, |nbrs| {
                    // Line 14: recompute cnt at the lifted level.
                    state.cnt[wu as usize] = compute_cnt(cold + 1, &state.core, nbrs) as i32;
                    // Lines 15-16: w now supports neighbours at cold + 1.
                    for &x in nbrs {
                        if state.core[x as usize] == cold + 1 && x != wu {
                            state.cnt[x as usize] += 1;
                        }
                    }
                    // Lines 17-20: activate same-level neighbours.
                    for &x in nbrs {
                        if state.core[x as usize] == cold && marks.get(x) == INACTIVE {
                            marks.set(x, ACTIVE);
                            cand_min = cand_min.min(x);
                            cand_max = cand_max.max(x);
                            window.schedule(x, wu);
                        }
                    }
                })?;
            }
            w += 1;
        }
        stats.iterations += 1;
        window.end_iteration();
    }

    // Lines 22-25: phase 2 — converge downward over the candidate span.
    let mut phase2 = ScanWindow::span(cand_min, cand_max, n);
    let mut run = RunStats::new("SemiInsert/phase2");
    star_converge(g, state, &mut phase2, &mut run, None)?;

    stats.iterations += run.iterations;
    stats.node_computations += run.node_computations;
    stats.io = g.io().since(&io_before);
    stats.wall_time = start.elapsed();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::paper_example_graph;
    use crate::imcore::imcore;
    use crate::maintain::delete::semi_delete_star;
    use crate::semicore_star::semicore_star_state;
    use crate::stats::DecomposeOptions;
    use graphstore::{DynGraph, MemGraph};

    fn decomposed(g: &MemGraph) -> (DynGraph, CoreState) {
        let mut dynamic = DynGraph::from_mem(g);
        let (state, _) = semicore_star_state(&mut dynamic, &DecomposeOptions::default()).unwrap();
        (dynamic, state)
    }

    #[test]
    fn example_2_1_insert_v7_v8() {
        // Example 2.1: inserting (v7, v8) lifts core(v8) from 1 to 2 and
        // changes nothing else.
        let g = paper_example_graph();
        let (mut dynamic, mut state) = decomposed(&g);
        let mut marks = SparseMarks::new(9);
        semi_insert(&mut dynamic, &mut state, &mut marks, 7, 8).unwrap();
        assert_eq!(state.core, vec![3, 3, 3, 3, 2, 2, 2, 2, 2]);
        assert_eq!(state.check_cnt_invariant(&mut dynamic).unwrap(), None);
    }

    #[test]
    fn example_5_2_insert_v4_v6_after_delete() {
        // Example 5.2: after deleting (v0, v1), insert (v4, v6); candidate
        // expansion needs 12 node computations in total in the paper's
        // trace. Final cores: v3..v6 rise to 3.
        let g = paper_example_graph();
        let (mut dynamic, mut state) = decomposed(&g);
        semi_delete_star(&mut dynamic, &mut state, 0, 1).unwrap();
        let mut marks = SparseMarks::new(9);
        let stats = semi_insert(&mut dynamic, &mut state, &mut marks, 4, 6).unwrap();
        assert_eq!(state.core, vec![2, 2, 2, 3, 3, 3, 3, 2, 1]);
        assert_eq!(state.check_cnt_invariant(&mut dynamic).unwrap(), None);
        assert_eq!(
            stats.node_computations, 12,
            "paper's trace performs 12 node computations"
        );
        // Theorem 3.2: the candidate set is the reachable core-2 component.
        assert_eq!(stats.candidates, 8);
    }

    #[test]
    fn insertion_matches_scratch_recomputation_on_random_graphs() {
        let mut rng = testutil::Lcg::new(71);
        for _ in 0..20 {
            let g = testutil::random_mem_graph(&mut rng, 4, 50, 2);
            let n = g.num_nodes();
            let (mut dynamic, mut state) = decomposed(&g);
            let mut marks = SparseMarks::new(n);
            for _ in 0..6 {
                let a = rng.below(n);
                let b = rng.below(n);
                if a == b || dynamic.has_edge(a, b) {
                    continue;
                }
                semi_insert(&mut dynamic, &mut state, &mut marks, a, b).unwrap();
                let oracle = imcore(&dynamic.to_mem());
                assert_eq!(state.core, oracle.core, "after inserting ({a},{b})");
                assert_eq!(state.check_cnt_invariant(&mut dynamic).unwrap(), None);
            }
        }
    }

    #[test]
    fn insert_completing_a_cycle_raises_whole_chain() {
        // Path 0-1-...-19: all core 1. Closing the cycle raises all to 2.
        let n = 20u32;
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = MemGraph::from_edges(edges, n);
        let (mut dynamic, mut state) = decomposed(&g);
        let mut marks = SparseMarks::new(n);
        semi_insert(&mut dynamic, &mut state, &mut marks, 0, n - 1).unwrap();
        assert!(state.core.iter().all(|&c| c == 2));
        assert_eq!(state.check_cnt_invariant(&mut dynamic).unwrap(), None);
    }

    #[test]
    fn insert_between_different_core_levels_touches_low_side_only() {
        let g = paper_example_graph();
        let (mut dynamic, mut state) = decomposed(&g);
        let mut marks = SparseMarks::new(9);
        // v8 (core 1) -> v0 (core 3): v8's level-1 component is just v8.
        let stats = semi_insert(&mut dynamic, &mut state, &mut marks, 8, 0).unwrap();
        assert_eq!(state.core, vec![3, 3, 3, 3, 2, 2, 2, 2, 2]);
        assert!(stats.candidates <= 2);
        assert_eq!(state.check_cnt_invariant(&mut dynamic).unwrap(), None);
    }
}
