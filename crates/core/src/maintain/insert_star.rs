//! SemiInsert* — one-phase edge insertion (Algorithm 8).
//!
//! Instead of optimistically lifting the whole reachable `core = cold`
//! component (Algorithm 7), SemiInsert* prunes the expansion with the `cnt*`
//! recurrence (Eq. 4 / Theorem 5.1): a candidate can only end up promoted if
//! at least `cold + 1` of its neighbours either sit above `cold` or are
//! themselves viable candidates. Each node walks the status lattice
//! `φ → ? → √ → ×` at most once, so the candidate set — and with it the I/O
//! — shrinks dramatically (Example 5.3: 5 node computations vs 12).
//!
//! ## Pseudocode ambiguity resolved (see DESIGN.md)
//!
//! A neighbour `u'` with `status = √` also has `core = cold + 1`, so a
//! literal reading of lines 11–12 / 22–25 would adjust its counter twice.
//! We apply exactly one adjustment per neighbour and per event:
//!
//! * **promotion** (`? → √`) of `v'`: `√` neighbours already counted `v'`
//!   optimistically inside their `ComputeCnt*` **iff** `v'`'s (stable,
//!   pre-promotion) `cnt` was `≥ cold + 1`; only neighbours that did *not*
//!   count it are incremented. Non-`√` neighbours at `core = cold + 1`
//!   (i.e. untouched nodes genuinely at that level) follow Eq. 2 and are
//!   incremented.
//! * **demotion** (`√ → ×`) of `v'`: every `√` neighbour counted `v'`
//!   exactly once (optimistically or via the promotion increment), so it is
//!   decremented once — possibly scheduling its own demotion; untouched
//!   `core = cold + 1` neighbours are decremented per Eq. 2.

use std::time::Instant;

use graphstore::{DynamicGraph, Result};

use crate::localcore::compute_cnt;
use crate::state::CoreState;
use crate::window::ScanWindow;

use super::{MaintainStats, SparseMarks};

/// `status(w) = φ`: not yet expanded.
const PHI: u8 = 0;
/// `status(w) = ?`: expanded, `cnt*` not yet calculated.
const Q: u8 = 1;
/// `status(w) = √`: `cnt*` calculated, currently viable.
const YES: u8 = 2;
/// `status(w) = ×`: ruled out (terminal).
const NO: u8 = 3;

/// Insert edge `(u, v)` and maintain `state` (one-phase Algorithm 8).
///
/// Preconditions as for [`semi_insert`](super::insert::semi_insert).
pub fn semi_insert_star(
    g: &mut impl DynamicGraph,
    state: &mut CoreState,
    marks: &mut SparseMarks,
    u: u32,
    v: u32,
) -> Result<MaintainStats> {
    let start = Instant::now();
    let io_before = g.io();
    let mut stats = MaintainStats::new("SemiInsert*");
    let n = state.num_nodes();

    // Line 1 (= lines 1-5 of Algorithm 7): insert, orient, patch cnt.
    g.insert_edge(u, v)?;
    let (u, v) = if state.core[u as usize] > state.core[v as usize] {
        (v, u)
    } else {
        (u, v)
    };
    state.cnt[u as usize] += 1;
    if state.core[u as usize] == state.core[v as usize] {
        state.cnt[v as usize] += 1;
    }
    let cold = state.core[u as usize];
    let viable = (cold + 1) as i32;

    // Lines 2-3: all φ except the root.
    marks.clear_all();
    marks.set(u, Q);
    let mut window = ScanWindow::span(u, u, n);

    // Lines 4-28.
    while window.update {
        window.begin_iteration();
        let mut w = window.vmin as u64;
        while w <= window.vmax as u64 {
            let vp = w as u32;
            let status = marks.get(vp);

            // Lines 7-17: transition ? -> sqrt.
            if status == Q {
                stats.node_computations += 1;
                stats.candidates += 1;
                g.with_adjacency(vp, |nbrs| {
                    // Whether sqrt-neighbours counted vp optimistically in
                    // their ComputeCnt*: vp's Eq. 2 cnt is stable from
                    // initialisation until this moment, so testing it now is
                    // equivalent to testing it at their computation time.
                    // Only the root can fail this (expansion gates on it,
                    // line 15).
                    let counted_by_yes_nbrs = state.cnt[vp as usize] >= viable;
                    // Line 9: ComputeCnt* (Eq. 4 with Eq. 2 counters as the
                    // optimistic proxy for unresolved neighbours).
                    let mut s = 0i32;
                    for &x in nbrs {
                        let cx = state.core[x as usize];
                        if cx > cold
                            || (cx == cold && state.cnt[x as usize] >= viable && marks.get(x) != NO)
                        {
                            s += 1;
                        }
                    }
                    state.cnt[vp as usize] = s;
                    // Line 10.
                    marks.set(vp, YES);
                    state.core[vp as usize] = cold + 1;
                    // Lines 11-12 (disambiguated, see module docs).
                    for &x in nbrs {
                        if state.core[x as usize] == cold + 1 && x != vp {
                            if marks.get(x) == YES {
                                if !counted_by_yes_nbrs {
                                    state.cnt[x as usize] += 1;
                                }
                            } else {
                                state.cnt[x as usize] += 1;
                            }
                        }
                    }
                    // Lines 13-17: expand viable φ nbrs (Lemma 5.3 prune).
                    if state.cnt[vp as usize] >= viable {
                        for &x in nbrs {
                            if state.core[x as usize] == cold
                                && state.cnt[x as usize] >= viable
                                && marks.get(x) == PHI
                            {
                                marks.set(x, Q);
                                window.schedule(x, vp);
                            }
                        }
                    }
                    // Lines 18-27 on the just-promoted node: reuse the loaded
                    // adjacency (no extra node computation charged).
                    if state.cnt[vp as usize] < viable {
                        demote(vp, nbrs, state, marks, &mut window, cold, viable);
                    }
                })?;
            } else if status == YES && state.cnt[vp as usize] < viable {
                // Lines 18-27: transition sqrt -> x on a revisited node.
                stats.node_computations += 1;
                g.with_adjacency(vp, |nbrs| {
                    demote(vp, nbrs, state, marks, &mut window, cold, viable);
                })?;
            }
            w += 1;
        }
        stats.iterations += 1;
        window.end_iteration();
    }

    stats.io = g.io().since(&io_before);
    stats.wall_time = start.elapsed();
    Ok(stats)
}

/// Lines 20–27: demote `vp` from √ to × — back to Eq. 2 at the old level,
/// decrementing the neighbours that counted it (see module docs for the
/// one-adjustment-per-event disambiguation).
fn demote(
    vp: u32,
    nbrs: &[u32],
    state: &mut CoreState,
    marks: &mut SparseMarks,
    window: &mut ScanWindow,
    cold: u32,
    viable: i32,
) {
    marks.set(vp, NO);
    state.core[vp as usize] = cold;
    state.cnt[vp as usize] = compute_cnt(cold, &state.core, nbrs) as i32;
    for &x in nbrs {
        if marks.get(x) == YES {
            state.cnt[x as usize] -= 1;
            if state.cnt[x as usize] < viable {
                window.schedule(x, vp);
            }
        } else if state.core[x as usize] == cold + 1 {
            state.cnt[x as usize] -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::paper_example_graph;
    use crate::imcore::imcore;
    use crate::maintain::delete::semi_delete_star;
    use crate::maintain::insert::semi_insert;
    use crate::semicore_star::semicore_star_state;
    use crate::stats::DecomposeOptions;
    use graphstore::{DynGraph, MemGraph};

    fn decomposed(g: &MemGraph) -> (DynGraph, CoreState) {
        let mut dynamic = DynGraph::from_mem(g);
        let (state, _) = semicore_star_state(&mut dynamic, &DecomposeOptions::default()).unwrap();
        (dynamic, state)
    }

    #[test]
    fn example_5_3_insert_v4_v6_after_delete() {
        // Example 5.3: 2 iterations, 5 node computations; v3..v6 promoted,
        // v2 expanded then ruled out.
        let g = paper_example_graph();
        let (mut dynamic, mut state) = decomposed(&g);
        semi_delete_star(&mut dynamic, &mut state, 0, 1).unwrap();
        let mut marks = SparseMarks::new(9);
        let stats = semi_insert_star(&mut dynamic, &mut state, &mut marks, 4, 6).unwrap();
        assert_eq!(state.core, vec![2, 2, 2, 3, 3, 3, 3, 2, 1]);
        assert_eq!(stats.node_computations, 5, "paper's trace: 5 computations");
        assert_eq!(stats.iterations, 2);
        assert_eq!(state.check_cnt_invariant(&mut dynamic).unwrap(), None);
    }

    #[test]
    fn example_2_1_insert_v7_v8() {
        let g = paper_example_graph();
        let (mut dynamic, mut state) = decomposed(&g);
        let mut marks = SparseMarks::new(9);
        semi_insert_star(&mut dynamic, &mut state, &mut marks, 7, 8).unwrap();
        assert_eq!(state.core, vec![3, 3, 3, 3, 2, 2, 2, 2, 2]);
        assert_eq!(state.check_cnt_invariant(&mut dynamic).unwrap(), None);
    }

    #[test]
    fn nonviable_root_is_demoted_cleanly() {
        // v8-v5 exists; insert (v8, v7): v8 has cnt 2 = cold+1... choose a
        // case where the root cannot be promoted: a pendant node attached
        // to one more neighbour of higher core still reaches core 2, so
        // instead attach two pendants and link them.
        let g = MemGraph::from_edges([(0, 1), (0, 2), (1, 2), (2, 3), (2, 4)], 5);
        let (mut dynamic, mut state) = decomposed(&g);
        assert_eq!(state.core, vec![2, 2, 2, 1, 1]);
        let mut marks = SparseMarks::new(5);
        // Insert (3, 4): both pendants (core 1). Each then has 2 neighbours
        // but they form a triangle with v2 -> core 2.
        semi_insert_star(&mut dynamic, &mut state, &mut marks, 3, 4).unwrap();
        let oracle = imcore(&dynamic.to_mem());
        assert_eq!(state.core, oracle.core);
        assert_eq!(state.check_cnt_invariant(&mut dynamic).unwrap(), None);
    }

    #[test]
    fn matches_two_phase_insert_and_oracle_on_random_streams() {
        let mut rng = testutil::Lcg::new(2718);
        for _ in 0..20 {
            let g = testutil::random_mem_graph(&mut rng, 4, 60, 3);
            let n = g.num_nodes();
            let (mut dyn_a, mut state_a) = decomposed(&g);
            let (mut dyn_b, mut state_b) = decomposed(&g);
            let mut marks_a = SparseMarks::new(n);
            let mut marks_b = SparseMarks::new(n);
            for _ in 0..8 {
                let a = rng.below(n);
                let b = rng.below(n);
                if a == b || dyn_a.has_edge(a, b) {
                    continue;
                }
                let s1 = semi_insert_star(&mut dyn_a, &mut state_a, &mut marks_a, a, b).unwrap();
                let s2 = semi_insert(&mut dyn_b, &mut state_b, &mut marks_b, a, b).unwrap();
                let oracle = imcore(&dyn_a.to_mem());
                assert_eq!(state_a.core, oracle.core, "insert ({a},{b})");
                assert_eq!(state_b.core, oracle.core);
                assert_eq!(state_a.check_cnt_invariant(&mut dyn_a).unwrap(), None);
                assert!(
                    s1.candidates <= s2.candidates,
                    "SemiInsert* candidate set ({}) must not exceed SemiInsert's ({})",
                    s1.candidates,
                    s2.candidates
                );
            }
        }
    }

    #[test]
    fn mixed_insert_delete_stream_stays_consistent() {
        let mut rng = testutil::Lcg::new(31);
        let n = 40u32;
        let g = MemGraph::from_edges(testutil::random_edges(&mut rng, n, 80), n);
        let (mut dynamic, mut state) = decomposed(&g);
        let mut marks = SparseMarks::new(n);
        for step in 0..120 {
            let a = rng.below(n);
            let b = rng.below(n);
            if a == b {
                continue;
            }
            if dynamic.has_edge(a, b) {
                semi_delete_star(&mut dynamic, &mut state, a, b).unwrap();
            } else {
                semi_insert_star(&mut dynamic, &mut state, &mut marks, a, b).unwrap();
            }
            if step % 10 == 0 {
                let oracle = imcore(&dynamic.to_mem());
                assert_eq!(state.core, oracle.core, "step {step}");
                assert_eq!(state.check_cnt_invariant(&mut dynamic).unwrap(), None);
            }
        }
        let oracle = imcore(&dynamic.to_mem());
        assert_eq!(state.core, oracle.core);
    }
}

#[cfg(test)]
mod edge_case_tests {
    use super::*;
    use crate::semicore_star::semicore_star_state;
    use crate::stats::DecomposeOptions;
    use graphstore::{DynGraph, MemGraph};

    #[test]
    fn insert_between_isolated_nodes() {
        // Both endpoints at core 0: the new edge lifts both to core 1.
        let g = MemGraph::from_edges(Vec::<(u32, u32)>::new(), 4);
        let mut dynamic = DynGraph::from_mem(&g);
        let (mut state, _) =
            semicore_star_state(&mut dynamic, &DecomposeOptions::default()).unwrap();
        assert_eq!(state.core, vec![0, 0, 0, 0]);
        let mut marks = SparseMarks::new(4);
        semi_insert_star(&mut dynamic, &mut state, &mut marks, 1, 3).unwrap();
        assert_eq!(state.core, vec![0, 1, 0, 1]);
        assert_eq!(state.check_cnt_invariant(&mut dynamic).unwrap(), None);
    }

    #[test]
    fn build_a_clique_edge_by_edge() {
        // Growing K5 one edge at a time exercises repeated promotions at
        // increasing levels.
        let n = 5u32;
        let g = MemGraph::from_edges(Vec::<(u32, u32)>::new(), n);
        let mut dynamic = DynGraph::from_mem(&g);
        let (mut state, _) =
            semicore_star_state(&mut dynamic, &DecomposeOptions::default()).unwrap();
        let mut marks = SparseMarks::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                semi_insert_star(&mut dynamic, &mut state, &mut marks, u, v).unwrap();
                let oracle = crate::imcore::imcore(&dynamic.to_mem());
                assert_eq!(state.core, oracle.core, "after ({u},{v})");
            }
        }
        assert!(state.core.iter().all(|&c| c == 4));
    }

    #[test]
    fn dismantle_a_clique_edge_by_edge() {
        let n = 5u32;
        let edges: Vec<(u32, u32)> = (0..n)
            .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
            .collect();
        let g = MemGraph::from_edges(edges.clone(), n);
        let mut dynamic = DynGraph::from_mem(&g);
        let (mut state, _) =
            semicore_star_state(&mut dynamic, &DecomposeOptions::default()).unwrap();
        for (u, v) in edges {
            crate::maintain::delete::semi_delete_star(&mut dynamic, &mut state, u, v).unwrap();
            let oracle = crate::imcore::imcore(&dynamic.to_mem());
            assert_eq!(state.core, oracle.core, "after deleting ({u},{v})");
        }
        assert!(state.core.iter().all(|&c| c == 0));
    }

    #[test]
    fn insertion_at_the_top_core_level() {
        // Insert inside the kmax core where promotion requires the densest
        // support: K4 plus one satellite connected to all four -> K5.
        let edges = vec![
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3),
            (4, 0),
            (4, 1),
            (4, 2),
        ];
        let g = MemGraph::from_edges(edges, 5);
        let mut dynamic = DynGraph::from_mem(&g);
        let (mut state, _) =
            semicore_star_state(&mut dynamic, &DecomposeOptions::default()).unwrap();
        assert_eq!(state.core, vec![3, 3, 3, 3, 3]);
        let mut marks = SparseMarks::new(5);
        semi_insert_star(&mut dynamic, &mut state, &mut marks, 4, 3).unwrap();
        assert_eq!(state.core, vec![4, 4, 4, 4, 4]);
        assert_eq!(state.check_cnt_invariant(&mut dynamic).unwrap(), None);
    }
}
