//! Core maintenance under the semi-external model (§V).
//!
//! Edge deletions and insertions update the maintained
//! [`CoreState`](crate::state::CoreState) incrementally instead of
//! recomputing the decomposition from scratch:
//!
//! * [`delete::semi_delete_star`] — Algorithm 6 (SemiDelete*): after a
//!   deletion every old core number is still an upper bound (Theorem 3.1),
//!   so the SemiCore* convergence loop finishes the job.
//! * [`insert::semi_insert`] — Algorithm 7 (SemiInsert): two phases — lift
//!   the reachable `core = cold` candidate set by one (Theorem 3.2), then
//!   converge downward with Algorithm 5.
//! * [`insert_star::semi_insert_star`] — Algorithm 8 (SemiInsert*): one
//!   phase driven by the `cnt*` recurrence (Eq. 4) and the
//!   φ / ? / √ / × status machine, touching far fewer nodes.
//! * [`inmem`] — the in-memory maintenance baseline (IMInsert / IMDelete).
//! * [`engine`] — the typed [`MaintainOp`](engine::MaintainOp) value and
//!   the [`MaintenanceEngine`](engine::MaintenanceEngine) that owns
//!   algorithm selection and dispatch; the functions above are its
//!   workers, and the journaling/replay/batching layers speak only in ops.

pub mod delete;
pub mod engine;
pub mod inmem;
pub mod insert;
pub mod insert_star;

use std::time::Duration;

use graphstore::IoSnapshot;

/// Measurements from one maintenance operation.
#[derive(Debug, Clone, Default)]
pub struct MaintainStats {
    /// Algorithm name ("SemiDelete*", "SemiInsert", "SemiInsert*", …).
    pub algorithm: &'static str,
    /// Convergence iterations executed.
    pub iterations: u64,
    /// Adjacency-list computations performed.
    pub node_computations: u64,
    /// Candidate nodes visited by the insertion expansion (|Vc| for
    /// SemiInsert, promoted-set size for SemiInsert*); 0 for deletions.
    pub candidates: u64,
    /// I/O performed by the operation.
    pub io: IoSnapshot,
    /// Wall-clock duration.
    pub wall_time: Duration,
}

impl MaintainStats {
    pub(crate) fn new(algorithm: &'static str) -> Self {
        MaintainStats {
            algorithm,
            ..Default::default()
        }
    }

    /// Total I/Os (read + write).
    pub fn total_ios(&self) -> u64 {
        self.io.total_ios()
    }
}

/// Epoch-stamped sparse node flags: O(1) set/test/clear-all without paying
/// an O(n) reset per maintenance operation.
///
/// Algorithms 7 and 8 pseudocode initialise `active(w)` / `status(w)` for
/// *all* nodes per update; doing that literally would make every single-edge
/// update Ω(n). The stamp trick preserves the semantics at O(1) per touched
/// node, which is what makes sub-millisecond updates possible.
#[derive(Debug)]
pub struct SparseMarks {
    stamp: Vec<u32>,
    value: Vec<u8>,
    epoch: u32,
}

impl SparseMarks {
    /// Fresh flag storage for a graph of `n` nodes.
    pub fn new(n: u32) -> Self {
        SparseMarks {
            stamp: vec![0; n as usize],
            value: vec![0; n as usize],
            epoch: 1,
        }
    }

    /// Reset all marks to the default value (O(1)).
    pub fn clear_all(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Wrapped: physically reset the stamps once every 2^32 clears.
            self.stamp.fill(0);
            self.epoch = 1;
        }
    }

    /// Current mark of `v` (0 when untouched this epoch).
    #[inline]
    pub fn get(&self, v: u32) -> u8 {
        if self.stamp[v as usize] == self.epoch {
            self.value[v as usize]
        } else {
            0
        }
    }

    /// Set the mark of `v`.
    #[inline]
    pub fn set(&mut self, v: u32, mark: u8) {
        self.stamp[v as usize] = self.epoch;
        self.value[v as usize] = mark;
    }

    /// Bytes resident (5 bytes per node).
    pub fn resident_bytes(&self) -> u64 {
        (self.stamp.len() * 4 + self.value.len()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_marks_default_to_zero() {
        let m = SparseMarks::new(4);
        assert_eq!(m.get(0), 0);
        assert_eq!(m.get(3), 0);
    }

    #[test]
    fn sparse_marks_set_get_and_clear() {
        let mut m = SparseMarks::new(4);
        m.set(1, 3);
        m.set(2, 1);
        assert_eq!(m.get(1), 3);
        assert_eq!(m.get(2), 1);
        m.clear_all();
        assert_eq!(m.get(1), 0);
        assert_eq!(m.get(2), 0);
        m.set(1, 2);
        assert_eq!(m.get(1), 2);
    }

    #[test]
    fn sparse_marks_survive_many_epochs() {
        let mut m = SparseMarks::new(2);
        for i in 0..1000u32 {
            m.clear_all();
            assert_eq!(m.get(0), 0);
            m.set(0, (i % 3) as u8 + 1);
            assert_eq!(m.get(0), (i % 3) as u8 + 1);
        }
        assert_eq!(m.resident_bytes(), 10);
    }
}
