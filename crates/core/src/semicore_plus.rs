//! SemiCore+ — partial node computation (Algorithm 4).
//!
//! Lemma 4.1: a node's estimate can only change in iteration `i > 1` if a
//! neighbour's estimate changed in iteration `i − 1`. SemiCore+ therefore
//! keeps an `active(v)` flag and a `[vmin, vmax]` window: only active nodes
//! within the window are re-read from disk and recomputed, and an estimate
//! change re-activates the node's neighbours (forward neighbours in the same
//! iteration, backward neighbours in the next).

use std::time::Instant;

use graphstore::{AdjacencyRead, Result, ShardableRead};

use crate::bits::BitSet;
use crate::executor::{self, PassKind, ScanExecutor};
use crate::localcore::{local_core, Scratch};
use crate::stats::{DecomposeOptions, Decomposition, RunStats};
use crate::window::ScanWindow;

/// Run SemiCore+ with an explicit [`ScanExecutor`].
///
/// [`ScanExecutor::Sequential`] is exactly [`semicore_plus`]. The parallel
/// executor shards each pass's active window across workers computing from
/// a frozen snapshot, with all re-activations deferred to the next pass
/// (see [`crate::executor`]); final core numbers are bit-identical. Falls
/// back to the sequential schedule when the backend cannot shard.
pub fn semicore_plus_with<G: ShardableRead>(
    g: &mut G,
    opts: &DecomposeOptions,
    exec: ScanExecutor,
) -> Result<Decomposition> {
    if let Some(workers) = exec.worker_count() {
        if let Some(mut shards) = executor::shard_handles(g, workers)? {
            return semicore_plus_parallel(g, &mut shards, opts);
        }
    }
    semicore_plus(g, opts)
}

/// The parallel schedule: victims are the active nodes of the current
/// window, fixed at pass start; a change re-activates its neighbours for
/// the *next* pass.
fn semicore_plus_parallel<G: ShardableRead>(
    g: &mut G,
    shards: &mut [G::Shard],
    opts: &DecomposeOptions,
) -> Result<Decomposition> {
    let start = Instant::now();
    let io_before = g.io();
    let mut stats = RunStats::new("SemiCore+");
    let n = g.num_nodes();

    let mut core = g.read_degrees()?;
    let degrees = core.clone();
    let mut active = BitSet::all_set(n);
    let mut window = ScanWindow::full(n);
    let mut per_iter = opts.track_changed_per_iteration.then(Vec::new);
    let mut victims: Vec<u32> = Vec::new();
    let mut peak_pass_bytes = 0u64;

    if n == 0 {
        window.update = false;
    }
    while window.update {
        window.begin_iteration();
        let (lo, hi) = window.current_range();
        victims.clear();
        for v in lo..=hi {
            if active.get(v) {
                active.clear(v);
                victims.push(v);
            }
        }
        // `core` is frozen for the duration of the pass: the borrow is the
        // snapshot.
        let outs = executor::run_pass(shards, &core, &degrees, &victims, PassKind::Active)?;
        stats.node_computations += victims.len() as u64;
        let mut changed = 0u64;
        for out in &outs {
            for u in &out.updates {
                core[u.v as usize] = u.cnew;
                changed += 1;
            }
        }
        for out in &outs {
            for t in &out.touched {
                // Alg. 4's activation filter: a neighbour at or below the
                // dropped node's *new* estimate keeps its full support and
                // provably cannot change — don't wake it.
                if core[t.u as usize] > t.wnew {
                    active.set(t.u);
                    window.schedule_next(t.u);
                }
            }
        }
        peak_pass_bytes = peak_pass_bytes.max(outs.iter().map(|o| o.resident_bytes()).sum());
        stats.iterations += 1;
        if let Some(p) = per_iter.as_mut() {
            p.push(changed);
        }
        window.end_iteration();
    }
    if let Some(p) = per_iter.as_mut() {
        while p.last() == Some(&0) {
            p.pop();
        }
    }

    stats.peak_memory_bytes = ((core.len() + degrees.len() + victims.capacity()) * 4) as u64
        + active.resident_bytes()
        + peak_pass_bytes;
    stats.io = g.io().since(&io_before);
    stats.wall_time = start.elapsed();
    stats.changed_per_iteration = per_iter;
    Ok(Decomposition { core, stats })
}

/// Run SemiCore+ (Algorithm 4) over any graph access.
pub fn semicore_plus(g: &mut impl AdjacencyRead, opts: &DecomposeOptions) -> Result<Decomposition> {
    let start = Instant::now();
    let io_before = g.io();
    let mut stats = RunStats::new("SemiCore+");
    let n = g.num_nodes();

    // Lines 1-4: core <- deg, everything active, full window.
    let mut core = g.read_degrees()?;
    let mut active = BitSet::all_set(n);
    let mut window = ScanWindow::full(n);
    let mut per_iter = opts.track_changed_per_iteration.then(Vec::new);

    let mut scratch = Scratch::new();
    if n == 0 {
        window.update = false;
    }
    while window.update {
        window.begin_iteration();
        let mut changed = 0u64;
        let mut v = window.vmin as u64;
        // `window.vmax` may grow while scanning (forward activations).
        while v <= window.vmax as u64 {
            let vu = v as u32;
            if active.get(vu) {
                // Line 8: consume the activation.
                active.clear(vu);
                stats.node_computations += 1;
                g.with_adjacency(vu, |nbrs| {
                    let cold = core[vu as usize];
                    let cnew = local_core(cold, &core, nbrs, &mut scratch);
                    if cnew != cold {
                        core[vu as usize] = cnew;
                        changed += 1;
                        // Lines 11-14: re-activate neighbours, widen windows.
                        for &u in nbrs {
                            active.set(u);
                            window.schedule(u, vu);
                        }
                    }
                })?;
            }
            v += 1;
        }
        stats.iterations += 1;
        if let Some(p) = per_iter.as_mut() {
            p.push(changed);
        }
        window.end_iteration();
    }
    if let Some(p) = per_iter.as_mut() {
        while p.last() == Some(&0) {
            p.pop();
        }
    }

    stats.peak_memory_bytes =
        (core.len() * 4) as u64 + active.resident_bytes() + scratch.resident_bytes();
    stats.io = g.io().since(&io_before);
    stats.wall_time = start.elapsed();
    stats.changed_per_iteration = per_iter;
    Ok(Decomposition { core, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{paper_example_graph, PAPER_EXAMPLE_CORES};
    use crate::imcore::imcore;
    use crate::semicore::semicore;
    use graphstore::{mem_to_disk, IoCounter, MemGraph, TempDir, DEFAULT_BLOCK_SIZE};

    #[test]
    fn paper_example_converges_to_exact_cores() {
        let mut g = paper_example_graph();
        let d = semicore_plus(&mut g, &DecomposeOptions::default()).unwrap();
        assert_eq!(d.core, PAPER_EXAMPLE_CORES);
    }

    #[test]
    fn paper_example_node_computations_match_example_4_2() {
        // Example 4.2: SemiCore+ reduces node computations from 36 to 23.
        let mut g = paper_example_graph();
        let d = semicore_plus(&mut g, &DecomposeOptions::default()).unwrap();
        assert_eq!(d.stats.node_computations, 23);
    }

    #[test]
    fn computes_fewer_nodes_than_semicore() {
        let mut state = 4242u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let n = 300u32;
        let edges: Vec<(u32, u32)> = (0..900).map(|_| (next() % n, next() % n)).collect();
        let mut g = MemGraph::from_edges(edges, n);
        let base = semicore(&mut g, &DecomposeOptions::default()).unwrap();
        let plus = semicore_plus(&mut g, &DecomposeOptions::default()).unwrap();
        assert_eq!(base.core, plus.core);
        assert!(
            plus.stats.node_computations <= base.stats.node_computations,
            "partial computation must not do more work"
        );
    }

    #[test]
    fn matches_imcore_on_random_graphs() {
        let mut state = 31337u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for _ in 0..25 {
            let n = 2 + next() % 80;
            let m = next() % (4 * n);
            let edges: Vec<(u32, u32)> = (0..m).map(|_| (next() % n, next() % n)).collect();
            let mut g = MemGraph::from_edges(edges, n);
            let d = semicore_plus(&mut g, &DecomposeOptions::default()).unwrap();
            assert_eq!(d.core, imcore(&g).core);
        }
    }

    #[test]
    fn disk_run_is_read_only_and_cheaper_than_semicore() {
        let mut state = 777u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let n = 2000u32;
        let edges: Vec<(u32, u32)> = (0..6000).map(|_| (next() % n, next() % n)).collect();
        let g = MemGraph::from_edges(edges, n);
        let dir = TempDir::new("semiplus").unwrap();

        let mut d1 = mem_to_disk(
            &dir.path().join("a"),
            &g,
            IoCounter::new(DEFAULT_BLOCK_SIZE),
        )
        .unwrap();
        let base = semicore(&mut d1, &DecomposeOptions::default()).unwrap();
        let mut d2 = mem_to_disk(
            &dir.path().join("b"),
            &g,
            IoCounter::new(DEFAULT_BLOCK_SIZE),
        )
        .unwrap();
        let plus = semicore_plus(&mut d2, &DecomposeOptions::default()).unwrap();

        assert_eq!(base.core, plus.core);
        assert_eq!(plus.stats.io.write_ios, 0);
        assert!(
            plus.stats.io.read_ios <= base.stats.io.read_ios,
            "SemiCore+ reads {} blocks vs SemiCore {}",
            plus.stats.io.read_ios,
            base.stats.io.read_ios
        );
    }

    #[test]
    fn empty_graph() {
        let mut g = MemGraph::from_edges(Vec::<(u32, u32)>::new(), 0);
        let d = semicore_plus(&mut g, &DecomposeOptions::default()).unwrap();
        assert!(d.core.is_empty());
    }

    #[test]
    fn parallel_executor_matches_sequential_cores() {
        let mut state = 616u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for _ in 0..15 {
            let n = 2 + next() % 120;
            let m = next() % (4 * n);
            let edges: Vec<(u32, u32)> = (0..m).map(|_| (next() % n, next() % n)).collect();
            let mut g = MemGraph::from_edges(edges, n);
            let seq = semicore_plus(&mut g, &DecomposeOptions::default()).unwrap();
            for workers in [1, 2, 4] {
                let par = semicore_plus_with(
                    &mut g,
                    &DecomposeOptions::default(),
                    ScanExecutor::parallel(workers),
                )
                .unwrap();
                assert_eq!(seq.core, par.core, "workers {workers}");
            }
        }
    }
}
