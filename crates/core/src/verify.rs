//! Independent certificate check for core-number assignments.
//!
//! Theorem 4.1 (locality) characterises core numbers through two per-node
//! conditions; an assignment satisfying them at every node is a **fixpoint**
//! of Eq. 1. The core decomposition is the *greatest* such fixpoint — there
//! are smaller ones (the all-zero assignment satisfies Eq. 1 on any graph!),
//! which is exactly why Algorithms 3–5 must start from an upper bound
//! (`core(v) = deg(v)`) and only ever decrease estimates: monotone descent
//! from above converges to the greatest fixpoint.
//!
//! [`find_violations`] checks the fixpoint conditions directly from any
//! graph access, sharing no code with the algorithms it validates (it never
//! calls `LocalCore`). For an algorithm whose estimates provably start at an
//! upper bound of the true cores and never increase — every algorithm in
//! this crate — a clean fixpoint certificate implies exactness.
//! [`verify_exact`] additionally compares against an independent peeling
//! oracle for callers that want an unconditional answer.

use graphstore::{AdjacencyRead, Result};

/// A violation of the Eq. 1 fixpoint conditions at one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The offending node.
    pub node: u32,
    /// Its claimed core number.
    pub claimed: u32,
    /// Number of neighbours with `core ≥ claimed`.
    pub support: u32,
    /// Number of neighbours with `core ≥ claimed + 1`.
    pub higher_support: u32,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "node {} claims core {} but has {} neighbours at ≥{} and {} at ≥{}",
            self.node,
            self.claimed,
            self.support,
            self.claimed,
            self.higher_support,
            self.claimed + 1
        )
    }
}

/// Check the Theorem 4.1 conditions for a claimed assignment; returns all
/// violations (empty means `core` is a fixpoint of Eq. 1).
///
/// Condition 1: at least `core(v)` neighbours with `core ≥ core(v)`.
/// Condition 2: fewer than `core(v) + 1` neighbours with `core ≥ core(v)+1`.
pub fn find_violations(g: &mut impl AdjacencyRead, core: &[u32]) -> Result<Vec<Violation>> {
    let n = g.num_nodes();
    assert_eq!(core.len(), n as usize, "core array length must equal n");
    let mut violations = Vec::new();
    for v in 0..n {
        let c = core[v as usize];
        let (support, higher) = g.with_adjacency(v, |nbrs| {
            let mut support = 0u32;
            let mut higher = 0u32;
            for &u in nbrs {
                let cu = core[u as usize];
                if cu >= c {
                    support += 1;
                }
                if cu > c {
                    higher += 1;
                }
            }
            (support, higher)
        })?;
        let cond1 = c == 0 || support >= c;
        let cond2 = higher < c + 1;
        if !(cond1 && cond2) {
            violations.push(Violation {
                node: v,
                claimed: c,
                support,
                higher_support: higher,
            });
        }
    }
    Ok(violations)
}

/// Convenience: true when the assignment is an Eq. 1 fixpoint.
pub fn verify_cores(g: &mut impl AdjacencyRead, core: &[u32]) -> Result<bool> {
    Ok(find_violations(g, core)?.is_empty())
}

/// Unconditional exactness check: fixpoint certificate **plus** comparison
/// against an independent min-degree peeling computed from the same graph
/// access. Costs one extra full read of the graph.
pub fn verify_exact(g: &mut impl AdjacencyRead, core: &[u32]) -> Result<bool> {
    if !verify_cores(g, core)? {
        return Ok(false);
    }
    // Materialise and peel independently (naive bucket peeling, written
    // without reference to the imcore module's bin-sort).
    let n = g.num_nodes() as usize;
    let mut adj: Vec<Vec<u32>> = Vec::with_capacity(n);
    let mut buf = Vec::new();
    for v in 0..n as u32 {
        g.adjacency(v, &mut buf)?;
        adj.push(buf.clone());
    }
    let mut deg: Vec<u32> = adj.iter().map(|a| a.len() as u32).collect();
    let maxd = deg.iter().copied().max().unwrap_or(0);
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); maxd as usize + 1];
    for (v, &d) in deg.iter().enumerate() {
        buckets[d as usize].push(v as u32);
    }
    let mut removed = vec![false; n];
    let mut level = 0u32;
    let mut truth = vec![0u32; n];
    let mut processed = 0usize;
    let mut d = 0usize;
    while processed < n {
        // Find the next non-empty bucket at or below the current frontier.
        while d <= maxd as usize && buckets[d].is_empty() {
            d += 1;
        }
        if d > maxd as usize {
            break;
        }
        let v = buckets[d].pop().expect("bucket non-empty");
        if removed[v as usize] || deg[v as usize] as usize != d {
            // Stale entry: the node moved to a lower bucket.
            continue;
        }
        removed[v as usize] = true;
        processed += 1;
        level = level.max(deg[v as usize]);
        truth[v as usize] = level;
        for &u in &adj[v as usize] {
            if !removed[u as usize] && deg[u as usize] > deg[v as usize] {
                deg[u as usize] -= 1;
                buckets[deg[u as usize] as usize].push(u);
                if (deg[u as usize] as usize) < d {
                    d = deg[u as usize] as usize;
                }
            }
        }
    }
    Ok(truth == core)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{paper_example_graph, PAPER_EXAMPLE_CORES};

    #[test]
    fn accepts_the_true_decomposition() {
        let mut g = paper_example_graph();
        assert!(verify_cores(&mut g, &PAPER_EXAMPLE_CORES).unwrap());
        assert!(verify_exact(&mut g, &PAPER_EXAMPLE_CORES).unwrap());
    }

    #[test]
    fn rejects_an_overestimate() {
        let mut g = paper_example_graph();
        let mut core = PAPER_EXAMPLE_CORES.to_vec();
        core[8] = 2; // v8 has a single neighbour; claiming core 2 violates (1).
        let v = find_violations(&mut g, &core).unwrap();
        assert!(v.iter().any(|x| x.node == 8));
    }

    #[test]
    fn rejects_a_non_fixpoint_underestimate() {
        let mut g = paper_example_graph();
        let mut core = PAPER_EXAMPLE_CORES.to_vec();
        core[0] = 2; // v0 alone demoted: v1..v3 lose condition 2? No —
                     // v0 itself now violates condition 2 (3 nbrs at >= 3).
        let v = find_violations(&mut g, &core).unwrap();
        assert!(v.iter().any(|x| x.node == 0), "{v:?}");
        let msg = v[0].to_string();
        assert!(msg.contains("claims core 2"), "{msg}");
    }

    #[test]
    fn uniform_underestimates_are_fixpoints_but_not_exact() {
        // The greatest-fixpoint subtlety: all-zero satisfies Eq. 1 on any
        // graph, which is precisely why the algorithms must start from an
        // upper bound. verify_exact still rejects it.
        let mut g = paper_example_graph();
        let zero = vec![0u32; 9];
        assert!(verify_cores(&mut g, &zero).unwrap());
        assert!(!verify_exact(&mut g, &zero).unwrap());

        // Demoting the whole K4 to 2 uniformly is also a fixpoint…
        let mut two = PAPER_EXAMPLE_CORES.to_vec();
        two[0..4].fill(2);
        assert!(verify_cores(&mut g, &two).unwrap());
        // …but not the decomposition.
        assert!(!verify_exact(&mut g, &two).unwrap());
    }

    #[test]
    fn accepts_zero_on_edgeless_graph() {
        let mut g = graphstore::MemGraph::from_edges(Vec::<(u32, u32)>::new(), 5);
        assert!(verify_cores(&mut g, &[0; 5]).unwrap());
        assert!(verify_exact(&mut g, &[0; 5]).unwrap());
    }

    #[test]
    fn verify_exact_agrees_with_imcore_on_random_graphs() {
        let mut seed = 909u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as u32
        };
        for _ in 0..15 {
            let n = 2 + next() % 50;
            let m = next() % (3 * n);
            let edges: Vec<(u32, u32)> = (0..m).map(|_| (next() % n, next() % n)).collect();
            let mut g = graphstore::MemGraph::from_edges(edges, n);
            let oracle = crate::imcore::imcore(&g).core;
            assert!(verify_exact(&mut g, &oracle).unwrap());
            if let Some(first) = oracle.iter().position(|&c| c > 0) {
                let mut wrong = oracle.clone();
                wrong[first] += 1;
                assert!(!verify_exact(&mut g, &wrong).unwrap());
            }
        }
    }
}
