//! SemiCore — the basic semi-external algorithm (Algorithm 3).
//!
//! Keep one `core` array (`O(n)` memory) initialised to `deg(v)` and, until
//! convergence, sequentially scan the node and edge tables recomputing every
//! node's estimate with `LocalCore`. Each iteration costs one full scan:
//! `O(l · (m + n) / B)` I/Os and `O(l · (m + n))` CPU (Theorem 4.2).

use std::time::Instant;

use graphstore::{AdjacencyRead, Result, ShardableRead};

use crate::executor::{self, PassKind, ScanExecutor};
use crate::localcore::{local_core, Scratch};
use crate::stats::{DecomposeOptions, Decomposition, RunStats};

/// Run SemiCore with an explicit [`ScanExecutor`].
///
/// [`ScanExecutor::Sequential`] is exactly [`semicore`]. The parallel
/// executor runs deterministic sharded Jacobi passes (see
/// [`crate::executor`]): final core numbers are bit-identical, while
/// iteration/computation counts follow the Jacobi schedule. Falls back to
/// the sequential schedule when the backend cannot shard
/// ([`ShardableRead::shard_handle`] returns `None`).
pub fn semicore_with<G: ShardableRead>(
    g: &mut G,
    opts: &DecomposeOptions,
    exec: ScanExecutor,
) -> Result<Decomposition> {
    if let Some(workers) = exec.worker_count() {
        if let Some(mut shards) = executor::shard_handles(g, workers)? {
            return semicore_parallel(g, &mut shards, opts);
        }
    }
    semicore(g, opts)
}

/// The parallel schedule: every pass recomputes all nodes from a frozen
/// snapshot, sharded across `shards`.
fn semicore_parallel<G: ShardableRead>(
    g: &mut G,
    shards: &mut [G::Shard],
    opts: &DecomposeOptions,
) -> Result<Decomposition> {
    let start = Instant::now();
    let io_before = g.io();
    let mut stats = RunStats::new("SemiCore");
    let n = g.num_nodes();

    let mut core = g.read_degrees()?;
    let degrees = core.clone();
    let mut per_iter = opts.track_changed_per_iteration.then(Vec::new);
    let victims: Vec<u32> = (0..n).collect();
    let mut peak_pass_bytes = 0u64;

    let mut update = n > 0;
    while update {
        // `core` is frozen for the duration of the pass (the merge below
        // runs strictly after), so the borrow IS the snapshot — no copy.
        let outs = executor::run_pass(shards, &core, &degrees, &victims, PassKind::Full)?;
        stats.node_computations += victims.len() as u64;
        let mut changed = 0u64;
        for out in &outs {
            for u in &out.updates {
                core[u.v as usize] = u.cnew;
                changed += 1;
            }
        }
        peak_pass_bytes = peak_pass_bytes.max(outs.iter().map(|o| o.resident_bytes()).sum());
        stats.iterations += 1;
        if let Some(p) = per_iter.as_mut() {
            p.push(changed);
        }
        update = changed > 0;
    }
    if let Some(p) = per_iter.as_mut() {
        while p.last() == Some(&0) {
            p.pop();
        }
    }

    // core + degrees + victim list (the workers' frozen snapshot is a
    // borrow of core, shard views are counted in the pass bytes) plus the
    // merge buffers' peak.
    stats.peak_memory_bytes =
        ((core.len() + degrees.len() + victims.capacity()) * 4) as u64 + peak_pass_bytes;
    stats.io = g.io().since(&io_before);
    stats.wall_time = start.elapsed();
    stats.changed_per_iteration = per_iter;
    Ok(Decomposition { core, stats })
}

/// Run SemiCore (Algorithm 3) over any graph access.
pub fn semicore(g: &mut impl AdjacencyRead, opts: &DecomposeOptions) -> Result<Decomposition> {
    let start = Instant::now();
    let io_before = g.io();
    let mut stats = RunStats::new("SemiCore");
    let n = g.num_nodes();

    // Line 1: core(v) <- deg(v), an upper bound of core(v).
    let mut core = g.read_degrees()?;
    let mut per_iter = opts.track_changed_per_iteration.then(Vec::new);

    let mut scratch = Scratch::new();
    let mut update = n > 0;
    while update {
        update = false;
        let mut changed = 0u64;
        // Lines 5-9: one sequential pass over all nodes, visiting each
        // adjacency list in place (copy-free on in-memory backends).
        for v in 0..n {
            stats.node_computations += 1;
            g.with_adjacency(v, |nbrs| {
                let cold = core[v as usize];
                let cnew = local_core(cold, &core, nbrs, &mut scratch);
                if cnew != cold {
                    core[v as usize] = cnew;
                    update = true;
                    changed += 1;
                }
            })?;
        }
        stats.iterations += 1;
        if let Some(p) = per_iter.as_mut() {
            p.push(changed);
        }
        // A converged pass records zero changes; drop it from the series so
        // the plot matches Fig. 3 (which counts passes that changed nodes).
        if !update {
            if let Some(p) = per_iter.as_mut() {
                p.pop();
            }
        }
    }

    stats.peak_memory_bytes = (core.len() * 4) as u64 + scratch.resident_bytes();
    stats.io = g.io().since(&io_before);
    stats.wall_time = start.elapsed();
    stats.changed_per_iteration = per_iter;
    Ok(Decomposition { core, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{paper_example_graph, PAPER_EXAMPLE_CORES};
    use crate::imcore::imcore;
    use graphstore::{mem_to_disk, IoCounter, MemGraph, TempDir, DEFAULT_BLOCK_SIZE};

    #[test]
    fn paper_example_converges_to_exact_cores() {
        let mut g = paper_example_graph();
        let d = semicore(&mut g, &DecomposeOptions::default()).unwrap();
        assert_eq!(d.core, PAPER_EXAMPLE_CORES);
    }

    #[test]
    fn paper_example_takes_four_iterations() {
        // Fig. 2: SemiCore needs 4 iterations (the 4th detects convergence
        // in the paper's counting: values stop changing after iteration 3,
        // and one more pass observes no change).
        let mut g = paper_example_graph();
        let d = semicore(&mut g, &DecomposeOptions::default()).unwrap();
        assert_eq!(d.stats.iterations, 4);
        assert_eq!(d.stats.node_computations, 36);
    }

    #[test]
    fn changed_per_iteration_series() {
        let mut g = paper_example_graph();
        let opts = DecomposeOptions {
            track_changed_per_iteration: true,
        };
        let d = semicore(&mut g, &opts).unwrap();
        // Fig. 2: iteration 1 changes v2, v3, v5, v6; iteration 2 changes
        // v5; iteration 3 changes v4; iteration 4 observes convergence.
        let series = d.stats.changed_per_iteration.unwrap();
        assert_eq!(series, vec![4, 1, 1]);
    }

    #[test]
    fn matches_imcore_on_random_graphs() {
        let mut state = 99u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for _ in 0..25 {
            let n = 2 + next() % 80;
            let m = next() % (4 * n);
            let edges: Vec<(u32, u32)> = (0..m).map(|_| (next() % n, next() % n)).collect();
            let mut g = MemGraph::from_edges(edges, n);
            let semi = semicore(&mut g, &DecomposeOptions::default()).unwrap();
            let oracle = imcore(&g);
            assert_eq!(semi.core, oracle.core);
        }
    }

    #[test]
    fn runs_on_disk_with_linear_io_per_iteration() {
        let g = paper_example_graph();
        let dir = TempDir::new("semicore").unwrap();
        let counter = IoCounter::new(DEFAULT_BLOCK_SIZE);
        let mut disk = mem_to_disk(&dir.path().join("g"), &g, counter).unwrap();
        let d = semicore(&mut disk, &DecomposeOptions::default()).unwrap();
        assert_eq!(d.core, PAPER_EXAMPLE_CORES);
        assert!(d.stats.io.read_ios > 0);
        assert_eq!(d.stats.io.write_ios, 0, "SemiCore is read-only (A2)");
    }

    #[test]
    fn parallel_executor_matches_sequential_cores() {
        let mut state = 7171u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for _ in 0..15 {
            let n = 2 + next() % 120;
            let m = next() % (4 * n);
            let edges: Vec<(u32, u32)> = (0..m).map(|_| (next() % n, next() % n)).collect();
            let mut g = MemGraph::from_edges(edges, n);
            let seq = semicore(&mut g, &DecomposeOptions::default()).unwrap();
            for workers in [1, 2, 4] {
                let par = semicore_with(
                    &mut g,
                    &DecomposeOptions::default(),
                    ScanExecutor::parallel(workers),
                )
                .unwrap();
                assert_eq!(seq.core, par.core, "workers {workers}");
            }
        }
    }

    #[test]
    fn parallel_executor_on_empty_graph() {
        let mut g = MemGraph::from_edges(Vec::<(u32, u32)>::new(), 0);
        let d = semicore_with(
            &mut g,
            &DecomposeOptions::default(),
            ScanExecutor::parallel(4),
        )
        .unwrap();
        assert!(d.core.is_empty());
        assert_eq!(d.stats.iterations, 0);
    }

    #[test]
    fn empty_and_single_node_graphs() {
        let mut g = MemGraph::from_edges(Vec::<(u32, u32)>::new(), 0);
        let d = semicore(&mut g, &DecomposeOptions::default()).unwrap();
        assert!(d.core.is_empty());
        assert_eq!(d.stats.iterations, 0);

        let mut g = MemGraph::from_edges(Vec::<(u32, u32)>::new(), 1);
        let d = semicore(&mut g, &DecomposeOptions::default()).unwrap();
        assert_eq!(d.core, vec![0]);
    }
}
