//! Shared plumbing for the figure/table harness binaries: a tiny argument
//! parser, aligned table printing, and dataset preparation.

use std::collections::HashMap;

use graphgen::DatasetSpec;
use graphstore::{DiskGraph, IoCounter, MemGraph, Result, TempDir};

/// Deterministic ablation workload shared by the `ablation_*` sweeps:
/// a `family` ("ba" or "rmat") graph targeting `edges` edges at average
/// density `m/n ≈ density`.
pub fn graph_standin(family: &str, edges: u64, density: u64) -> MemGraph {
    let density = density.max(2);
    match family {
        "ba" => {
            let n = (edges / density).max(64) as u32;
            MemGraph::from_edges(graphgen::preferential_attachment(n, density as u32, 42), n)
        }
        _ => {
            let n_target = (edges / density).max(64);
            let scale = (64 - n_target.leading_zeros() as u64).clamp(8, 30) as u32;
            let p = graphgen::Rmat::web(scale);
            // Oversample: R-MAT repeats edges, normalisation dedups (heavily
            // at high density).
            MemGraph::from_edges(graphgen::rmat_edges(p, edges * 3, 42), p.num_nodes())
        }
    }
}

/// Minimal `--key value` / `--flag` argument parser (no external crates).
#[derive(Debug)]
pub struct Args {
    map: HashMap<String, String>,
}

impl Args {
    /// Parse the process arguments.
    pub fn parse() -> Args {
        let mut map = HashMap::new();
        let mut iter = std::env::args().skip(1).peekable();
        while let Some(a) = iter.next() {
            if let Some(key) = a.strip_prefix("--") {
                let value = match iter.peek() {
                    Some(v) if !v.starts_with("--") => iter.next().unwrap(),
                    _ => String::from("true"),
                };
                map.insert(key.to_string(), value);
            }
        }
        Args { map }
    }

    /// String option with default.
    pub fn get(&self, key: &str, default: &str) -> String {
        self.map
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Parsed numeric option with default.
    pub fn get_num<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.map
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Boolean flag.
    pub fn flag(&self, key: &str) -> bool {
        self.map.contains_key(key)
    }
}

/// Aligned plain-text table writer (the harness output format).
#[derive(Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Print with per-column alignment.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    s.push_str(&format!("{:<w$}", c, w = widths[i]));
                } else {
                    s.push_str(&format!("  {:>w$}", c, w = widths[i]));
                }
            }
            println!("{s}");
        };
        line(&self.headers);
        let total = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        println!("{}", "-".repeat(total));
        for row in &self.rows {
            line(row);
        }
    }
}

/// Human format: durations.
pub fn fmt_secs(d: std::time::Duration) -> String {
    let s = d.as_secs_f64();
    if s < 0.001 {
        format!("{:.0} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.1} ms", s * 1e3)
    } else {
        format!("{s:.2} s")
    }
}

/// Human format: byte counts.
pub fn fmt_bytes(b: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut x = b as f64;
    let mut u = 0;
    while x >= 1024.0 && u + 1 < UNITS.len() {
        x /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{b} B")
    } else {
        format!("{x:.1} {}", UNITS[u])
    }
}

/// Human format: large counts (1.2K / 3.4M / 5.6G).
pub fn fmt_count(c: u64) -> String {
    const UNITS: [&str; 4] = ["", "K", "M", "G"];
    let mut x = c as f64;
    let mut u = 0;
    while x >= 1000.0 && u + 1 < UNITS.len() {
        x /= 1000.0;
        u += 1;
    }
    if u == 0 {
        format!("{c}")
    } else {
        format!("{x:.1}{}", UNITS[u])
    }
}

/// Build a dataset stand-in on disk inside `dir` (cached per scale) and
/// return a freshly counted handle (block size `block`).
pub fn build_dataset(
    spec: &DatasetSpec,
    scale: f64,
    dir: &TempDir,
    block: usize,
) -> Result<DiskGraph> {
    let base = dir
        .path()
        .join(format!("{}-{scale}", spec.name.to_lowercase()));
    let paths = graphstore::GraphPaths::from_base(&base);
    if !paths.nodes.exists() {
        spec.build_disk(&base, scale, IoCounter::new(block))?;
    }
    DiskGraph::open(&base, IoCounter::new(block))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.0 KiB");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(1_500_000), "1.5M");
        assert_eq!(fmt_secs(std::time::Duration::from_millis(250)), "250.0 ms");
    }

    #[test]
    fn table_prints_without_panic() {
        let mut t = Table::new(&["a", "bbb"]);
        t.row(vec!["x".into(), "123456".into()]);
        t.print();
    }

    #[test]
    fn dataset_build_is_cached() {
        let spec = graphgen::dataset_by_name("DBLP").unwrap();
        let dir = TempDir::new("harness").unwrap();
        let a = build_dataset(&spec, 0.02, &dir, 4096).unwrap();
        let b = build_dataset(&spec, 0.02, &dir, 4096).unwrap();
        assert_eq!(a.num_edges(), b.num_edges());
    }
}
