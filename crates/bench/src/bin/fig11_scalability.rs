//! Figure 11 — scalability of core decomposition on the Twitter and UK
//! stand-ins, varying |V| (induced node sampling) and |E| (edge sampling)
//! from 20% to 100%.
//!
//! ```sh
//! cargo run --release -p kcore-bench --bin fig11_scalability [-- --scale 1.0]
//! ```

use graphstore::{mem_to_disk, snapshot_mem, IoCounter, MemGraph, DEFAULT_BLOCK_SIZE};
use kcore_bench::harness::{build_dataset, fmt_count, fmt_secs, Args, Table};
use semicore::DecomposeOptions;

fn run_all(
    g: &MemGraph,
    dir: &graphstore::TempDir,
    tag: &str,
) -> graphstore::Result<[(String, std::time::Duration, u64); 3]> {
    let base = dir.path().join(tag);
    mem_to_disk(&base, g, IoCounter::new(DEFAULT_BLOCK_SIZE))?;
    let opts = DecomposeOptions::default();
    let mut out = Vec::new();
    for algo in ["SemiCore*", "SemiCore+", "SemiCore"] {
        let mut disk = graphstore::DiskGraph::open(&base, IoCounter::new(DEFAULT_BLOCK_SIZE))?;
        let d = match algo {
            "SemiCore*" => semicore::semicore_star(&mut disk, &opts)?,
            "SemiCore+" => semicore::semicore_plus(&mut disk, &opts)?,
            _ => semicore::semicore(&mut disk, &opts)?,
        };
        out.push((algo.to_string(), d.stats.wall_time, d.stats.io.total_ios()));
    }
    Ok([out[0].clone(), out[1].clone(), out[2].clone()])
}

fn main() -> graphstore::Result<()> {
    let args = Args::parse();
    let scale: f64 = args.get_num("scale", 1.0);
    let dir = graphstore::TempDir::new("fig11")?;

    for name in ["Twitter", "UK"] {
        let spec = graphgen::dataset_by_name(name).unwrap();
        let mut disk = build_dataset(&spec, scale, &dir, DEFAULT_BLOCK_SIZE)?;
        let full = snapshot_mem(&mut disk)?;
        drop(disk);

        for (dim, sampler) in [("|V|", true), ("|E|", false)] {
            println!("\nFig. 11 — {name} stand-in, varying {dim} (time and total I/Os)");
            let mut t = Table::new(&[
                "fraction",
                "nodes",
                "edges",
                "SemiCore* t",
                "SemiCore+ t",
                "SemiCore t",
                "SemiCore* I/O",
                "SemiCore+ I/O",
                "SemiCore I/O",
            ]);
            for pct in [20u32, 40, 60, 80, 100] {
                let f = pct as f64 / 100.0;
                let g = if sampler {
                    graphgen::sample_nodes(&full, f, 1000 + pct as u64)
                } else {
                    graphgen::sample_edges(&full, f, 2000 + pct as u64)
                };
                let tag = format!("{name}-{dim}-{pct}").replace('|', "");
                let r = run_all(&g, &dir, &tag)?;
                t.row(vec![
                    format!("{pct}%"),
                    fmt_count(g.num_nodes() as u64),
                    fmt_count(g.num_edges()),
                    fmt_secs(r[0].1),
                    fmt_secs(r[1].1),
                    fmt_secs(r[2].1),
                    fmt_count(r[0].2),
                    fmt_count(r[1].2),
                    fmt_count(r[2].2),
                ]);
            }
            t.print();
        }
    }
    println!("\npaper shape to check: time grows with the sample; SemiCore* best everywhere,");
    println!("with the SemiCore-vs-SemiCore* gap widening as |E| grows.");
    Ok(())
}
