//! Table I — dataset statistics.
//!
//! Prints, for each of the 12 stand-ins, the paper's published statistics
//! next to the generated stand-in's measured |V|, |E|, density and kmax.
//!
//! ```sh
//! cargo run --release -p kcore-bench --bin table1_datasets [-- --scale 1.0]
//! ```

use graphgen::paper_datasets;
use graphstore::snapshot_mem;
use kcore_bench::harness::{build_dataset, fmt_count, Args, Table};
use semicore::imcore;

fn main() -> graphstore::Result<()> {
    let args = Args::parse();
    let scale: f64 = args.get_num("scale", 1.0);
    let dir = graphstore::TempDir::new("table1")?;

    println!("Table I — datasets (paper vs generated stand-ins, scale {scale})\n");
    let mut t = Table::new(&[
        "dataset",
        "|V| paper",
        "|E| paper",
        "dens",
        "kmax",
        "|V| ours",
        "|E| ours",
        "dens",
        "kmax",
    ]);
    for spec in paper_datasets() {
        // Small graphs at full scale, big ones at a quarter to keep Table I
        // generation quick; fig9 uses the full sizes.
        let s = match spec.group {
            graphgen::DatasetGroup::Small => scale,
            graphgen::DatasetGroup::Big => scale * 0.25,
        };
        let mut disk = build_dataset(&spec, s, &dir, graphstore::DEFAULT_BLOCK_SIZE)?;
        let mem = snapshot_mem(&mut disk)?;
        let d = imcore(&mem);
        t.row(vec![
            spec.name.to_string(),
            fmt_count(spec.paper.nodes),
            fmt_count(spec.paper.edges),
            format!("{:.2}", spec.paper.density),
            spec.paper.kmax.to_string(),
            fmt_count(mem.num_nodes() as u64),
            fmt_count(mem.num_edges()),
            format!("{:.2}", mem.num_edges() as f64 / mem.num_nodes() as f64),
            d.kmax().to_string(),
        ]);
    }
    t.print();
    println!("\nnote: kmax does not scale linearly with |V|; the stand-ins match density and skew, not absolute kmax.");
    Ok(())
}
