//! Figure 9 — core decomposition on the 12 datasets: wall-clock time
//! (9a/9b), memory usage (9c/9d) and I/Os (9e/9f).
//!
//! Small group compares SemiCore*, SemiCore+, SemiCore, EMCore and IMCore;
//! big group runs the three semi-external algorithms, as in the paper.
//!
//! ```sh
//! cargo run --release -p kcore-bench --bin fig9_decomposition -- --group small
//! cargo run --release -p kcore-bench --bin fig9_decomposition -- --group big [--scale 0.5]
//! ```

use graphstore::{snapshot_mem, DiskGraph};
use kcore_bench::harness::{build_dataset, fmt_bytes, fmt_count, fmt_secs, Args, Table};
use semicore::{DecomposeOptions, Decomposition, EmCoreOptions};

fn run_disk(
    spec: &graphgen::DatasetSpec,
    scale: f64,
    dir: &graphstore::TempDir,
    algo: &str,
) -> graphstore::Result<Decomposition> {
    let mut disk: DiskGraph = build_dataset(spec, scale, dir, graphstore::DEFAULT_BLOCK_SIZE)?;
    let opts = DecomposeOptions::default();
    match algo {
        "SemiCore*" => semicore::semicore_star(&mut disk, &opts),
        "SemiCore+" => semicore::semicore_plus(&mut disk, &opts),
        "SemiCore" => semicore::semicore(&mut disk, &opts),
        "EMCore" => semicore::emcore(
            &mut disk,
            &EmCoreOptions {
                partition_bytes: 256 << 10,
                // EMCore's budget: enough for a few partitions, far below
                // the whole graph — the regime the paper evaluates.
                memory_budget: 2 << 20,
                ..Default::default()
            },
        ),
        "IMCore" => {
            // The in-memory baseline loads the whole graph first (charged),
            // then decomposes in memory.
            let t0 = std::time::Instant::now();
            let io0 = graphstore::AdjacencyRead::io(&disk);
            let mem = snapshot_mem(&mut disk)?;
            let mut d = semicore::imcore(&mem);
            d.stats.wall_time = t0.elapsed();
            d.stats.io = graphstore::AdjacencyRead::io(&disk).since(&io0);
            Ok(d)
        }
        _ => unreachable!("unknown algorithm {algo}"),
    }
}

fn main() -> graphstore::Result<()> {
    let args = Args::parse();
    let group = args.get("group", "small");
    let scale: f64 = args.get_num("scale", 1.0);
    let dir = graphstore::TempDir::new("fig9")?;

    let (want, algos): (graphgen::DatasetGroup, Vec<&str>) = match group.as_str() {
        "big" => (
            graphgen::DatasetGroup::Big,
            vec!["SemiCore*", "SemiCore+", "SemiCore"],
        ),
        _ => (
            graphgen::DatasetGroup::Small,
            vec!["SemiCore*", "SemiCore+", "SemiCore", "EMCore", "IMCore"],
        ),
    };

    println!(
        "Fig. 9 — core decomposition, {group} graphs (scale {scale}): time (a/b), memory (c/d), I/Os (e/f)\n"
    );
    let mut t = Table::new(&[
        "dataset",
        "algorithm",
        "time",
        "memory",
        "read I/O",
        "write I/O",
        "iters",
        "node comps",
        "kmax",
    ]);
    for spec in graphgen::paper_datasets() {
        if spec.group != want {
            continue;
        }
        for algo in &algos {
            let d = run_disk(&spec, scale, &dir, algo)?;
            t.row(vec![
                spec.name.to_string(),
                algo.to_string(),
                fmt_secs(d.stats.wall_time),
                fmt_bytes(d.stats.peak_memory_bytes),
                fmt_count(d.stats.io.read_ios),
                fmt_count(d.stats.io.write_ios),
                d.stats.iterations.to_string(),
                fmt_count(d.stats.node_computations),
                d.kmax().to_string(),
            ]);
        }
    }
    t.print();
    println!("\npaper shape to check: SemiCore* fastest and lowest-I/O of the semi-external trio;");
    println!(
        "SemiCore lowest memory; EMCore pays write I/Os and holds orders of magnitude more memory;"
    );
    println!("IMCore memory ≈ whole graph.");
    Ok(())
}
