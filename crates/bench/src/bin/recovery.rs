//! Recovery cost — reopening a maintained catalog vs re-decomposing.
//!
//! The durable serving layer's promise: after a restart (clean or
//! `SIGKILL`), `CoreService::open_catalog` restores a graph's maintained
//! core numbers from its checkpoint plus a journal-tail replay, instead of
//! re-running the multi-pass decomposition. This bench prices the promise
//! in the paper's currency — charged read I/Os — across three restart
//! scenarios on a web-like R-MAT graph:
//!
//! * **decompose** — the baseline: opening the graph fresh (what a
//!   non-durable restart must pay);
//! * **reopen (clean)** — restart after a checkpoint: one sequential
//!   checkpoint scan, empty journal;
//! * **reopen (tail)** — restart after a kill mid-stream: checkpoint scan
//!   plus replay of the journal tail (bounded by `checkpoint_every`).
//!
//! Run with `--json BENCH_recovery.json` to append machine-readable lines.
//!
//! ```sh
//! cargo run --release -p kcore-bench --bin recovery \
//!     [-- --edges 60000 --ops 40 --json BENCH_recovery.json]
//! ```

use std::io::Write as _;
use std::time::Instant;

use graphstore::{EvictionPolicy, TempDir, DEFAULT_BLOCK_SIZE};
use kcore_bench::harness::{fmt_count, graph_standin, Args, Table};
use kcore_suite::{CoreService, DurableOptions};
use rand::rngs::SmallRng;
use rand::{Rng as _, SeedableRng};
use semicore::ScanExecutor;

fn main() -> graphstore::Result<()> {
    let args = Args::parse();
    let edges: u64 = args.get_num("edges", 60_000);
    let ops: u64 = args.get_num("ops", 40);
    let checkpoint_every: u64 = args.get_num("checkpoint-every", 16);
    let json_path = args.get("json", "");
    let dir = TempDir::new("recovery-bench")?;

    let g = graph_standin("rmat", edges, 16);
    let base = dir.path().join("g");
    let data = dir.path().join("data");
    let n = g.num_nodes();

    // Build + decompose once through the durable service; its decompose
    // stats are the baseline a restart would otherwise re-pay.
    let svc = CoreService::create_durable_with(
        &data,
        DEFAULT_BLOCK_SIZE,
        64 << 20,
        EvictionPolicy::ScanLifo,
        ScanExecutor::Sequential,
        DurableOptions {
            checkpoint_every,
            group_commit: None,
            ..Default::default()
        },
    )?;
    let t0 = Instant::now();
    svc.create("g", &base, g.edges(), n)?;
    let decompose_wall_ns = t0.elapsed().as_nanos();
    let decompose_ios = svc.with_graph("g", |idx| Ok(idx.decompose_stats().io.read_ios))?;

    // A seeded maintenance stream; threshold checkpoints fire along the way.
    let mut rng = SmallRng::seed_from_u64(0x5EC0);
    let mut mirror = graphstore::DynGraph::from_mem(&g);
    let mut applied = 0u64;
    while applied < ops {
        let (a, b) = (rng.gen_range(0..n), rng.gen_range(0..n));
        if a == b {
            continue;
        }
        if mirror.has_edge(a, b) {
            svc.delete_edge("g", a, b)?;
            mirror.delete_edge(a, b)?;
        } else {
            svc.insert_edge("g", a, b)?;
            mirror.insert_edge(a, b)?;
        }
        applied += 1;
    }
    let kmax = svc.kmax("g")?;

    // Scenario: kill mid-stream (no save) — journal tail replayed.
    drop(svc);
    let t0 = Instant::now();
    let svc = CoreService::open_catalog(&data)?;
    let tail_wall_ns = t0.elapsed().as_nanos();
    let tail_ios = svc.io("g")?.read_ios;
    assert_eq!(svc.kmax("g")?, kmax, "tail reopen must restore exact state");

    // Scenario: clean shutdown — checkpoint scan only.
    svc.save_all()?;
    drop(svc);
    let t0 = Instant::now();
    let svc = CoreService::open_catalog(&data)?;
    let clean_wall_ns = t0.elapsed().as_nanos();
    let clean_ios = svc.io("g")?.read_ios;
    assert_eq!(
        svc.kmax("g")?,
        kmax,
        "clean reopen must restore exact state"
    );
    assert!(
        clean_ios < decompose_ios && tail_ios < decompose_ios,
        "reopen ({clean_ios} clean / {tail_ios} tail read I/Os) must charge \
         strictly below re-decomposition ({decompose_ios})"
    );

    println!(
        "Recovery cost — {} nodes, {} edges, {} maintenance ops, checkpoint every {}\n",
        fmt_count(n as u64),
        fmt_count(mirror.num_edges()),
        fmt_count(ops),
        checkpoint_every,
    );
    let mut t = Table::new(&["scenario", "charged read I/Os", "vs decompose", "wall (ms)"]);
    let mut json = String::new();
    for (scenario, ios, wall_ns) in [
        ("decompose (fresh open)", decompose_ios, decompose_wall_ns),
        ("reopen (journal tail)", tail_ios, tail_wall_ns),
        ("reopen (clean save)", clean_ios, clean_wall_ns),
    ] {
        t.row(vec![
            scenario.to_string(),
            fmt_count(ios),
            format!("{:.1}%", 100.0 * ios as f64 / decompose_ios.max(1) as f64),
            format!("{:.2}", wall_ns as f64 / 1e6),
        ]);
        json.push_str(&format!(
            "{{\"bench\":\"recovery\",\"scenario\":\"{scenario}\",\"edges\":{edges},\"ops\":{ops},\"read_ios\":{ios},\"decompose_read_ios\":{decompose_ios},\"wall_ns\":{wall_ns}}}\n",
        ));
    }
    t.print();
    println!(
        "\nExpected shape: both reopen rows strictly below the decompose row\n\
         (asserted). The clean reopen is the steady-state restart — one\n\
         checkpoint scan; the tail reopen adds the replay of at most\n\
         checkpoint_every journaled ops."
    );

    if !json_path.is_empty() {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&json_path)?;
        f.write_all(json.as_bytes())?;
        println!("\nresults appended to {json_path}");
    }
    Ok(())
}
