//! Scrub overhead: what the background integrity scrubber costs the
//! tenants it is protecting. The same single-tenant update/query workload
//! runs twice on a durable graph — once with the self-heal supervisor's
//! scrubber off, once with it scrubbing in a tight loop — and the binary
//! **fails loudly** (non-zero exit) unless both hold:
//!
//! * **latency**: scrub-on p99 op latency ≤ 1.10× the scrub-off p99 (the
//!   scrubber is token-bucket rate-limited and only takes the graph lock
//!   for its short journal phase, so it must stay out of the way);
//! * **charging**: the tenant's charged `read_ios` are **bit-identical**
//!   with and without scrubbing — the scrubber reads through a scratch
//!   counter and must be invisible to the external-memory cost model.
//!
//! ```sh
//! cargo run --release -p kcore-bench --bin scrub_overhead \
//!     [-- --ops 400 --smoke --json BENCH_scrub.json]
//! ```

use std::io::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use graphstore::{EvictionPolicy, TempDir, DEFAULT_BLOCK_SIZE};
use kcore_bench::harness::{fmt_count, Args, Table};
use kcore_suite::{start_self_heal, CoreService, DurableOptions, SelfHealOptions};
use semicore::ScanExecutor;

const GRAPH: &str = "tenant";
const NODES: u32 = 64;

struct ModeResult {
    p99_us: u64,
    charged_reads: u64,
    ops_per_sec: f64,
}

/// The deterministic toggle schedule: walk the pair space with a stride
/// so consecutive ops touch different adjacency regions.
fn toggles(ops: usize) -> Vec<(u32, u32)> {
    let mut pairs = Vec::new();
    for u in 0..NODES {
        for v in (u + 1)..NODES {
            pairs.push((u, v));
        }
    }
    (0..ops).map(|i| pairs[(i * 13) % pairs.len()]).collect()
}

fn run_mode(scrub: bool, ops: usize) -> graphstore::Result<ModeResult> {
    let dir = TempDir::new("scrub-overhead")?;
    let svc = Arc::new(CoreService::create_durable_with(
        &dir.path().join("data"),
        DEFAULT_BLOCK_SIZE,
        16 << 20,
        EvictionPolicy::ScanLifo,
        ScanExecutor::Sequential,
        DurableOptions {
            checkpoint_every: u64::MAX, // isolate the scrubber from checkpoints
            group_commit: None,
            ..Default::default()
        },
    )?);
    let base: Vec<(u32, u32)> = (0..NODES).map(|u| (u, (u + 1) % NODES)).collect();
    svc.create(GRAPH, &dir.path().join("base"), base.iter().copied(), NODES)?;

    // Scrub-on mode: the supervisor re-walks the tenant's durable
    // artefacts essentially continuously — far harsher than any
    // production interval, so the measured overhead is an upper bound.
    let heal = scrub.then(|| {
        start_self_heal(
            &svc,
            SelfHealOptions {
                scrub_interval: Some(Duration::from_millis(2)),
                poll_interval: Duration::from_millis(1),
                ..SelfHealOptions::default()
            },
        )
    });

    let mut present: std::collections::BTreeSet<(u32, u32)> =
        base.iter().map(|&(u, v)| (u.min(v), u.max(v))).collect();
    let schedule = toggles(ops);
    let mut lat = Vec::with_capacity(schedule.len());
    let t0 = Instant::now();
    for (i, &e) in schedule.iter().enumerate() {
        let t = Instant::now();
        if present.remove(&e) {
            svc.delete_edge(GRAPH, e.0, e.1)?;
        } else {
            present.insert(e);
            svc.insert_edge(GRAPH, e.0, e.1)?;
        }
        lat.push(t.elapsed().as_micros() as u64);
        if i % 4 == 0 {
            let _ = svc.kmax(GRAPH)?;
        }
    }
    let elapsed = t0.elapsed();
    let charged_reads = svc.with_graph(GRAPH, |idx| Ok(idx.io().read_ios))?;
    drop(heal);

    lat.sort_unstable();
    let p99 = lat[(lat.len() * 99) / 100 - 1];
    Ok(ModeResult {
        p99_us: p99,
        charged_reads,
        ops_per_sec: ops as f64 / elapsed.as_secs_f64(),
    })
}

fn main() -> graphstore::Result<()> {
    let args = Args::parse();
    let smoke = args.flag("smoke");
    let ops: usize = args.get_num("ops", if smoke { 120 } else { 400 });
    let json_path = args.get("json", "");

    println!(
        "Scrub overhead — {ops} updates (queries riding 1:4) on one durable graph,\n\
         scrubber off vs scrubbing every 2 ms at the default throttled rate\n"
    );

    // Wall-clock on a loaded box is noisy; the latency verdict gets up to
    // three attempts. The charge comparison is deterministic and must
    // hold on every attempt.
    let mut off = run_mode(false, ops)?;
    let mut on = run_mode(true, ops)?;
    for _ in 0..2 {
        if on.charged_reads != off.charged_reads {
            break; // deterministic failure: re-measuring cannot fix it
        }
        if (on.p99_us as f64) <= off.p99_us as f64 * 1.10 {
            break;
        }
        off = run_mode(false, ops)?;
        on = run_mode(true, ops)?;
    }

    let mut t = Table::new(&["mode", "ops/sec", "p99 latency", "charged reads"]);
    for (mode, r) in [("scrub-off", &off), ("scrub-on", &on)] {
        t.row(vec![
            mode.to_string(),
            format!("{:.0}", r.ops_per_sec),
            format!("{} µs", fmt_count(r.p99_us)),
            fmt_count(r.charged_reads),
        ]);
    }
    t.print();

    if !json_path.is_empty() {
        let mut json = String::new();
        for (mode, r) in [("scrub-off", &off), ("scrub-on", &on)] {
            json.push_str(&format!(
                "{{\"bench\":\"scrub_overhead\",\"ops\":{ops},\"mode\":\"{mode}\",\"ops_per_sec\":{:.1},\"p99_us\":{},\"charged_reads\":{}}}\n",
                r.ops_per_sec, r.p99_us, r.charged_reads
            ));
        }
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&json_path)?;
        f.write_all(json.as_bytes())?;
        println!("results appended to {json_path}");
    }

    println!(
        "\np99 {} -> {} µs ({:+.1}%), charged reads {} -> {}",
        off.p99_us,
        on.p99_us,
        100.0 * (on.p99_us as f64 - off.p99_us as f64) / off.p99_us.max(1) as f64,
        off.charged_reads,
        on.charged_reads
    );
    if on.charged_reads != off.charged_reads {
        eprintln!(
            "SCRUB CHARGING REGRESSION: scrubbing changed the tenant's charged reads \
             ({} -> {}); the scrubber must be invisible to the cost model",
            off.charged_reads, on.charged_reads
        );
        std::process::exit(1);
    }
    if (on.p99_us as f64) > off.p99_us as f64 * 1.10 {
        eprintln!(
            "SCRUB LATENCY REGRESSION: scrub-on p99 {} µs > 1.10x scrub-off p99 {} µs",
            on.p99_us, off.p99_us
        );
        std::process::exit(1);
    }
    Ok(())
}
