//! Multi-graph serving — one shared pool vs a statically split budget.
//!
//! The question this bench answers: given a total memory budget `M` and
//! `K` graphs of *unequal* size and heat, is it better to give each graph
//! a private cache of `M / K`, or to pool the whole `M` and let demand
//! decide? The [`graphstore::SharedPool`] bets on the latter: a busy large
//! graph claims frames an idle small one is not using.
//!
//! Workload: a skewed trio (small/medium/large R-MAT-style stand-ins),
//! each decomposed with SemiCore\* and then hammered with an interleaved
//! random adjacency-probe phase. Both configurations run at the **same
//! total budget**, swept from a sliver of the combined working set up to
//! all of it. Reported per sweep point:
//!
//! * aggregate **physical reads** (blocks actually fetched) — the number
//!   that should fall under pooling;
//! * aggregate **charged reads** — priced against each graph's private
//!   charge cache, so the column must be *identical* across the two
//!   configurations (the bench asserts it): the model charge never
//!   depends on how the physical budget is carved up.
//!
//! ```sh
//! cargo run --release -p kcore-bench --bin multi_graph \
//!     [-- --probes 4000 --json BENCH_multigraph.json]
//! ```

use std::io::Write as _;
use std::path::PathBuf;

use graphstore::{
    mem_to_disk, working_set_charge_budget, DiskGraph, IoCounter, SharedPool, TempDir,
    DEFAULT_BLOCK_SIZE,
};
use kcore_bench::harness::{fmt_bytes, fmt_count, graph_standin, Args, Table};
use rand::rngs::SmallRng;
use rand::{Rng as _, SeedableRng};
use semicore::DecomposeOptions;

/// One graph of the serving mix: name, on-disk base, node count, working
/// set in bytes.
struct Tenant {
    name: &'static str,
    base: PathBuf,
    nodes: u32,
    working_set: u64,
}

fn main() -> graphstore::Result<()> {
    let args = Args::parse();
    let probes: u64 = args.get_num("probes", 4000);
    let json_path = args.get("json", "");
    let dir = TempDir::new("multi-graph")?;

    // A skewed mix: the large graph is ~10x the small one, so an M/K split
    // starves it while the small graphs' slices sit idle.
    let sizes: [(&'static str, u64); 3] = [("small", 6_000), ("medium", 18_000), ("large", 60_000)];
    let mut tenants = Vec::new();
    for (name, edges) in sizes {
        let g = graph_standin("rmat", edges, 16);
        let base = dir.path().join(name);
        mem_to_disk(&base, &g, IoCounter::new(DEFAULT_BLOCK_SIZE))?;
        let working_set = working_set_charge_budget(&base, DEFAULT_BLOCK_SIZE)?;
        tenants.push(Tenant {
            name,
            base,
            nodes: g.num_nodes(),
            working_set,
        });
    }
    let total_ws: u64 = tenants.iter().map(|t| t.working_set).sum();

    println!(
        "Multi-graph serving — shared pool vs per-graph split at the same total M\n\
         (combined working set {}, {} interleaved probes per graph)",
        fmt_bytes(total_ws),
        fmt_count(probes),
    );
    for t in &tenants {
        println!(
            "  {:<7} {} nodes, working set {}",
            t.name,
            fmt_count(t.nodes as u64),
            fmt_bytes(t.working_set)
        );
    }
    println!();

    let budgets: Vec<(String, u64)> = vec![
        ("5% of WS".into(), total_ws / 20),
        ("10% of WS".into(), total_ws / 10),
        ("25% of WS".into(), total_ws / 4),
        ("50% of WS".into(), total_ws / 2),
        ("whole WS".into(), total_ws),
    ];

    let mut json = String::new();
    let mut t = Table::new(&[
        "total budget M",
        "physical (shared)",
        "physical (split)",
        "shared saves",
        "charged (both)",
    ]);
    for (label, budget) in &budgets {
        let shared = run_config(&tenants, *budget, true, probes)?;
        let split = run_config(&tenants, *budget, false, probes)?;
        assert_eq!(
            shared.charged, split.charged,
            "charged reads are priced per graph and must not see the split"
        );
        let saved = 100.0 * (1.0 - shared.physical as f64 / split.physical.max(1) as f64);
        t.row(vec![
            format!("{label} ({})", fmt_bytes(*budget)),
            fmt_count(shared.physical),
            fmt_count(split.physical),
            format!("{saved:+.1}%"),
            fmt_count(shared.charged),
        ]);
        for (mode, run) in [("shared", &shared), ("split", &split)] {
            json.push_str(&format!(
                "{{\"bench\":\"multi_graph\",\"mode\":\"{mode}\",\"budget_bytes\":{budget},\"physical_reads\":{},\"charged_reads\":{},\"wall_ns\":{}}}\n",
                run.physical, run.charged, run.wall_ns,
            ));
        }
    }
    t.print();

    println!(
        "\nExpected shape: identical charged columns (the model's per-graph price);\n\
         the shared pool's physical reads generally at or below the split's\n\
         (scan-resistant eviction can wobble a mid-budget point either way). The\n\
         gap is widest at the whole-working-set budget, where the pool holds\n\
         every tenant while a static M/K slice still cannot hold the largest one."
    );

    if !json_path.is_empty() {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&json_path)?;
        f.write_all(json.as_bytes())?;
        println!("\nresults appended to {json_path}");
    }
    Ok(())
}

/// Aggregate counters of one configuration run.
struct RunTotals {
    charged: u64,
    physical: u64,
    wall_ns: u128,
}

/// Serve every tenant — decomposition plus the interleaved probe phase —
/// with the total budget either pooled (`shared`) or split evenly.
fn run_config(
    tenants: &[Tenant],
    budget: u64,
    shared: bool,
    probes: u64,
) -> graphstore::Result<RunTotals> {
    let min_pool = 2 * DEFAULT_BLOCK_SIZE as u64;
    let pools: Vec<SharedPool> = if shared {
        vec![SharedPool::new(DEFAULT_BLOCK_SIZE, budget.max(min_pool))?]
    } else {
        let slice = (budget / tenants.len() as u64).max(min_pool);
        (0..tenants.len())
            .map(|_| SharedPool::new(DEFAULT_BLOCK_SIZE, slice))
            .collect::<graphstore::Result<_>>()?
    };
    let pool_for = |i: usize| if shared { &pools[0] } else { &pools[i] };

    let start = std::time::Instant::now();
    let mut graphs = Vec::new();
    for (i, tenant) in tenants.iter().enumerate() {
        let counter = IoCounter::new(DEFAULT_BLOCK_SIZE);
        // The charge budget is the tenant's own working set in BOTH
        // configurations: identical model price, only physical serving
        // differs.
        let mut disk =
            DiskGraph::open_pooled(&tenant.base, counter, pool_for(i), tenant.working_set)?;
        semicore::semicore_star(&mut disk, &DecomposeOptions::default())?;
        graphs.push(disk);
    }

    // Interleaved probe phase: round-robin random adjacency reads, seeded
    // identically in both configurations.
    let mut rngs: Vec<SmallRng> = (0..tenants.len())
        .map(|i| SmallRng::seed_from_u64(0x9E37 + i as u64))
        .collect();
    for _ in 0..probes {
        for (i, disk) in graphs.iter_mut().enumerate() {
            let v = rngs[i].gen_range(0..tenants[i].nodes);
            disk.with_adjacency(v, |_| ())?;
        }
    }

    let mut totals = RunTotals {
        charged: 0,
        physical: 0,
        wall_ns: start.elapsed().as_nanos(),
    };
    for disk in &graphs {
        let io = disk.io();
        totals.charged += io.read_ios;
        totals.physical += io.physical_reads;
    }
    Ok(totals)
}
