//! Ablation — edge-table format v1 (raw `u32`) vs v2 (delta-gap varints).
//!
//! The paper charges every algorithm per edge-table block read; compressing
//! the sorted adjacency lists 2–3× therefore cuts charged `read_ios`
//! roughly proportionally on every hot path. This sweep builds the *same*
//! graph in both formats and runs SemiCore\* at a range of cache budgets
//! (priced against the **v1** edge table, so both formats get equal `M`),
//! reporting edge-table bytes, charged reads and wall time per point.
//!
//! The binary is also the format's regression gate: it **fails loudly**
//! (non-zero exit) if v2 ever charges more blocks than v1 at equal budget,
//! or if the default R-MAT workload's 10%-budget point shows less than the
//! 25% reduction the format exists to deliver.
//!
//! ```sh
//! cargo run --release -p kcore-bench --bin ablation_compress \
//!     [-- --family rmat|ba|er --edges 150000 --json BENCH_compress.json]
//! ```

use std::io::Write as _;

use graphstore::{
    write_mem_graph_with, DiskGraph, FormatVersion, GraphPaths, IoCounter, DEFAULT_BLOCK_SIZE,
};
use kcore_bench::harness::{fmt_bytes, fmt_count, fmt_secs, graph_standin, Args, Table};
use semicore::DecomposeOptions;

fn main() -> graphstore::Result<()> {
    let args = Args::parse();
    let family = args.get("family", "rmat");
    let target_edges: u64 = args.get_num("edges", 150_000);
    let density: u64 = args.get_num("density", 24);
    let json_path = args.get("json", "");
    let dir = graphstore::TempDir::new("abl-compress")?;

    // The same graph, laid out in both encodings.
    let g = graph_standin(&family, target_edges, density);
    let bases = [
        (FormatVersion::V1, dir.path().join("v1")),
        (FormatVersion::V2, dir.path().join("v2")),
    ];
    for (version, base) in &bases {
        write_mem_graph_with(base, &g, IoCounter::new(DEFAULT_BLOCK_SIZE), *version)?;
    }
    let edge_len = |base: &std::path::Path| {
        std::fs::metadata(GraphPaths::from_base(base).edges)
            .unwrap()
            .len()
    };
    let (e1, e2) = (edge_len(&bases[0].1), edge_len(&bases[1].1));

    println!(
        "Ablation — compressed adjacency blocks ({family}, {} nodes, {} edges)\n\
         edge table: v1 {} -> v2 {} ({:.2}x, {:.2} B/neighbour)\n",
        g.num_nodes(),
        g.num_edges(),
        fmt_bytes(e1),
        fmt_bytes(e2),
        e1 as f64 / e2 as f64,
        (e2 - graphstore::format::EDGE_HEADER_LEN) as f64 / (2 * g.num_edges()).max(1) as f64,
    );

    // Budgets priced against the v1 edge table so both formats run at the
    // same `M` — the acceptance comparison the differential suite mirrors.
    let budgets: Vec<(String, u64)> = vec![
        ("0 (uncached)".into(), 0),
        ("10% of v1 edges".into(), e1 / 10),
        ("25% of v1 edges".into(), e1 / 4),
        (
            "whole graph".into(),
            graphstore::working_set_charge_budget(&bases[0].1, DEFAULT_BLOCK_SIZE)?,
        ),
    ];

    let mut json = String::new();
    let mut t = Table::new(&["budget M", "format", "read I/Os", "hit rate", "time"]);
    let mut violations = Vec::new();
    let mut ten_pct: Option<(u64, u64)> = None;
    for (label, budget) in &budgets {
        let mut reads = [0u64; 2];
        for (i, (version, base)) in bases.iter().enumerate() {
            let mut disk =
                DiskGraph::open_with_cache(base, IoCounter::new(DEFAULT_BLOCK_SIZE), *budget)?;
            let d = semicore::semicore_star(&mut disk, &DecomposeOptions::default())?;
            reads[i] = d.stats.io.read_ios;
            let hit_rate = disk
                .cache_stats()
                .map_or("-".to_string(), |s| format!("{:.1}%", 100.0 * s.hit_rate()));
            t.row(vec![
                label.clone(),
                version.tag().to_string(),
                fmt_count(reads[i]),
                hit_rate,
                fmt_secs(d.stats.wall_time),
            ]);
            json.push_str(&format!(
                "{{\"bench\":\"ablation_compress\",\"family\":\"{family}\",\"format\":\"{}\",\"budget_bytes\":{budget},\"read_ios\":{},\"edge_bytes\":{},\"wall_ns\":{}}}\n",
                version.tag(),
                reads[i],
                if i == 0 { e1 } else { e2 },
                d.stats.wall_time.as_nanos(),
            ));
        }
        if reads[1] > reads[0] {
            violations.push(format!(
                "at M = {label}: v2 charged {} > v1 {}",
                reads[1], reads[0]
            ));
        }
        if label.starts_with("10%") {
            ten_pct = Some((reads[0], reads[1]));
        }
    }
    t.print();

    let (r1, r2) = ten_pct.expect("the sweep always contains the 10% point");
    let reduction = 100.0 * (r1.saturating_sub(r2)) as f64 / r1.max(1) as f64;
    println!(
        "\nat the 10% edge-table budget: v1 {} -> v2 {} charged reads ({reduction:.1}% fewer)",
        fmt_count(r1),
        fmt_count(r2),
    );

    if !json_path.is_empty() {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&json_path)?;
        f.write_all(json.as_bytes())?;
        println!("results appended to {json_path}");
    }

    // Regression gates: compression must never *cost* charged blocks, and
    // the default R-MAT workload must clear the 25% acceptance bar.
    if !violations.is_empty() {
        eprintln!("FORMAT V2 REGRESSION: {}", violations.join("; "));
        std::process::exit(1);
    }
    if family == "rmat" && reduction < 25.0 {
        eprintln!(
            "FORMAT V2 REGRESSION: 10%-budget reduction {reduction:.1}% is below the 25% bar"
        );
        std::process::exit(1);
    }
    Ok(())
}
