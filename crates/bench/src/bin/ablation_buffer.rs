//! Ablation — update-buffer capacity sweep (§V "Graph Maintenance").
//!
//! The edge update buffer trades memory for write deferral: a larger buffer
//! absorbs more updates before the on-disk graph must be rewritten. This
//! sweep replays the same mixed update stream at several capacities and
//! reports flushes and write I/Os.
//!
//! ```sh
//! cargo run --release -p kcore-bench --bin ablation_buffer [-- --scale 0.3]
//! ```

use graphstore::{mem_to_disk, snapshot_mem, BufferedGraph, IoCounter, DEFAULT_BLOCK_SIZE};
use kcore_bench::harness::{fmt_count, fmt_secs, Args, Table};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use semicore::{
    semi_delete_star, semi_insert_star, semicore_star_state, DecomposeOptions, SparseMarks,
};

fn main() -> graphstore::Result<()> {
    let args = Args::parse();
    let scale: f64 = args.get_num("scale", 0.3);
    let ops: usize = args.get_num("ops", 3000);
    let dir = graphstore::TempDir::new("abl-buffer")?;
    let spec = graphgen::dataset_by_name("Youtube").unwrap();
    let full = spec.generate_mem(scale);

    println!(
        "Ablation — update-buffer capacity on the Youtube stand-in ({} nodes, {} edges, {ops} updates)\n",
        full.num_nodes(),
        full.num_edges()
    );
    let mut t = Table::new(&[
        "capacity",
        "flushes",
        "write I/Os",
        "read I/Os",
        "total time",
    ]);
    for cap in [64usize, 512, 4096, 32768, 1 << 20] {
        let base = dir.path().join(format!("g{cap}"));
        let disk = mem_to_disk(&base, &full, IoCounter::new(DEFAULT_BLOCK_SIZE))?;
        let mut bg = BufferedGraph::new(disk, cap);
        let (mut state, _) = semicore_star_state(&mut bg, &DecomposeOptions::default())?;
        let n = graphstore::AdjacencyRead::num_nodes(&bg);
        let mut marks = SparseMarks::new(n);
        let io0 = graphstore::AdjacencyRead::io(&bg);

        let mut rng = SmallRng::seed_from_u64(99);
        let mut live: Vec<(u32, u32)> = full.edges().collect();
        let t0 = std::time::Instant::now();
        for _ in 0..ops {
            if rng.gen_bool(0.5) && !live.is_empty() {
                let i = rng.gen_range(0..live.len());
                let (u, v) = live.swap_remove(i);
                semi_delete_star(&mut bg, &mut state, u, v)?;
            } else {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u == v {
                    continue;
                }
                // Cheap membership check against the mirror list.
                if live.contains(&(u.min(v), u.max(v))) {
                    continue;
                }
                semi_insert_star(&mut bg, &mut state, &mut marks, u, v)?;
                live.push((u.min(v), u.max(v)));
            }
        }
        let elapsed = t0.elapsed();
        let io = graphstore::AdjacencyRead::io(&bg).since(&io0);

        // Sanity: maintained state must match scratch recomputation.
        let snap = snapshot_mem(&mut bg)?;
        assert_eq!(state.core, semicore::imcore(&snap).core);

        t.row(vec![
            fmt_count(cap as u64),
            bg.flushes().to_string(),
            fmt_count(io.write_ios),
            fmt_count(io.read_ios),
            fmt_secs(elapsed),
        ]);
    }
    t.print();
    println!("\nexpected: flushes and write I/Os fall as capacity grows; beyond the stream");
    println!("size the buffer never flushes and updates are read-only.");
    Ok(())
}
