//! Multi-client serving load: sustained throughput and tail latency for
//! `N` concurrent clients mixing maintenance and queries on **one shared
//! durable graph**, fsync-per-op vs group commit.
//!
//! Per-op durability pays one fsync per acknowledged update; group commit
//! coalesces every update in a small gather window behind one barrier
//! fsync, with the identical acknowledgement contract (an `Ok` is only
//! returned once the op's journal record is on disk). The shared graph is
//! the hard case on purpose: every update serializes on the same graph
//! lock, so batching is the *only* available win.
//!
//! Each client owns a disjoint slice of the node-pair space (pair `(u,v)`
//! belongs to client `(u + v) mod N`), so its toggles stay valid under
//! any interleaving and the final state is schedule-independent.
//!
//! The binary is also the group-commit regression gate: it **fails
//! loudly** (non-zero exit) if, at the multi-client point, group commit
//! does not both (a) sustain more ops/sec than fsync-per-op and (b) issue
//! fewer fsyncs.
//!
//! ```sh
//! cargo run --release -p kcore-bench --bin serve_load \
//!     [-- --clients 4 --ops 200 --gather-us 150 --smoke --json BENCH_serve.json]
//! ```

use std::io::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use graphstore::{
    EvictionPolicy, FaultPlan, FaultVfs, GroupCommitOptions, TempDir, Vfs, DEFAULT_BLOCK_SIZE,
};
use kcore_bench::harness::{fmt_count, Args, Table};
use kcore_suite::{CoreService, DurableOptions};
use semicore::ScanExecutor;

const GRAPH: &str = "shared";
const NODES: u32 = 48;

/// The client's toggle schedule over its own pair slice, valid by
/// construction: pair `(u,v)` starts in `base` or not, and alternates.
fn client_toggles(c: usize, clients: usize, ops: usize) -> Vec<(u32, u32)> {
    let mut mine = Vec::new();
    for u in 0..NODES {
        for v in (u + 1)..NODES {
            if (u + v) as usize % clients == c {
                mine.push((u, v));
            }
        }
    }
    // Walk the slice round-robin with a stride so consecutive ops touch
    // different regions of the adjacency table.
    (0..ops).map(|i| mine[(i * 7 + c) % mine.len()]).collect()
}

struct ModeResult {
    ops_per_sec: f64,
    p99_us: u64,
    fsyncs: u64,
}

/// Run the full fleet once in the given durability mode.
fn run_mode(
    clients: usize,
    ops: usize,
    group: Option<GroupCommitOptions>,
) -> graphstore::Result<ModeResult> {
    let dir = TempDir::new("serve-load")?;
    let fault = FaultVfs::new(FaultPlan::default());
    let svc = Arc::new(CoreService::create_durable_with_vfs(
        &dir.path().join("data"),
        DEFAULT_BLOCK_SIZE,
        16 << 20,
        EvictionPolicy::ScanLifo,
        ScanExecutor::Sequential,
        DurableOptions {
            checkpoint_every: u64::MAX, // isolate journal batching from checkpoints
            group_commit: group,
            ..Default::default()
        },
        Arc::clone(&fault) as Arc<dyn Vfs>,
    )?);
    // Base graph: a ring, so no client pair collides with a base edge
    // except its own (0 strides handle presence via the local set anyway).
    let base: Vec<(u32, u32)> = (0..NODES).map(|u| (u, (u + 1) % NODES)).collect();
    svc.create(GRAPH, &dir.path().join("base"), base.iter().copied(), NODES)?;
    let base_set: std::collections::BTreeSet<(u32, u32)> =
        base.iter().map(|&(u, v)| (u.min(v), u.max(v))).collect();

    let before = fault.sync_events();
    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let svc = Arc::clone(&svc);
            let toggles = client_toggles(c, clients, ops);
            let mut present: std::collections::BTreeSet<(u32, u32)> = base_set
                .iter()
                .copied()
                .filter(|&(u, v)| (u + v) as usize % clients == c)
                .collect();
            std::thread::spawn(move || -> graphstore::Result<Vec<u64>> {
                let mut lat = Vec::with_capacity(toggles.len());
                for (i, &e) in toggles.iter().enumerate() {
                    let t = Instant::now();
                    if present.remove(&e) {
                        svc.delete_edge(GRAPH, e.0, e.1)?;
                    } else {
                        present.insert(e);
                        svc.insert_edge(GRAPH, e.0, e.1)?;
                    }
                    lat.push(t.elapsed().as_micros() as u64);
                    // Mixed load: every few updates, a query rides along
                    // (answered from memory, no fsync).
                    if i % 4 == 0 {
                        let _ = svc.kmax(GRAPH)?;
                    }
                }
                Ok(lat)
            })
        })
        .collect();
    let mut latencies = Vec::with_capacity(clients * ops);
    for h in handles {
        latencies.extend(h.join().expect("client thread")?);
    }
    let elapsed = t0.elapsed();
    let fsyncs = fault.sync_events() - before;

    latencies.sort_unstable();
    let p99 = latencies[(latencies.len() * 99) / 100 - 1];
    Ok(ModeResult {
        ops_per_sec: (clients * ops) as f64 / elapsed.as_secs_f64(),
        p99_us: p99,
        fsyncs,
    })
}

fn main() -> graphstore::Result<()> {
    let args = Args::parse();
    let smoke = args.flag("smoke");
    let clients: usize = args.get_num("clients", 4);
    let ops: usize = args.get_num("ops", if smoke { 60 } else { 200 });
    let gather_us: u64 = args.get_num("gather-us", 150);
    let json_path = args.get("json", "");

    println!(
        "Serving load — {clients} clients × {ops} updates on one shared graph\n\
         (queries ride along 1:4; gather window {gather_us} µs)\n"
    );

    let mut t = Table::new(&["clients", "mode", "ops/sec", "p99 latency", "fsyncs"]);
    let mut json = String::new();
    let mut gate: Option<(ModeResult, ModeResult)> = None;
    let counts: Vec<usize> = if smoke {
        vec![clients]
    } else {
        [1, 2, clients].iter().copied().filter(|&n| n > 0).collect()
    };
    for &n in &counts {
        let gate_count = n == *counts.last().unwrap() && n >= 2;
        let mut per_op = run_mode(n, ops, None)?;
        let mut grouped = run_mode(
            n,
            ops,
            Some(GroupCommitOptions {
                max_delay: Duration::from_micros(gather_us),
            }),
        )?;
        // Wall-clock on a loaded single-core box is noisy; the gate point
        // gets up to three attempts before the verdict counts. The fsync
        // counts are deterministic and never re-measured away.
        for _ in 0..2 {
            if !gate_count || grouped.ops_per_sec > per_op.ops_per_sec {
                break;
            }
            per_op = run_mode(n, ops, None)?;
            grouped = run_mode(
                n,
                ops,
                Some(GroupCommitOptions {
                    max_delay: Duration::from_micros(gather_us),
                }),
            )?;
        }
        for (mode, r) in [("fsync-per-op", &per_op), ("group-commit", &grouped)] {
            t.row(vec![
                n.to_string(),
                mode.to_string(),
                format!("{:.0}", r.ops_per_sec),
                format!("{} µs", fmt_count(r.p99_us)),
                fmt_count(r.fsyncs),
            ]);
            json.push_str(&format!(
                "{{\"bench\":\"serve_load\",\"clients\":{n},\"ops\":{ops},\"mode\":\"{mode}\",\"ops_per_sec\":{:.1},\"p99_us\":{},\"fsyncs\":{}}}\n",
                r.ops_per_sec, r.p99_us, r.fsyncs
            ));
        }
        if n == *counts.last().unwrap() {
            gate = Some((per_op, grouped));
        }
    }
    t.print();

    if !json_path.is_empty() {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&json_path)?;
        f.write_all(json.as_bytes())?;
        println!("results appended to {json_path}");
    }

    // Regression gate at the multi-client point: group commit must beat
    // fsync-per-op on throughput AND issue fewer fsyncs — otherwise the
    // whole mechanism is dead weight.
    let (per_op, grouped) = gate.expect("at least one client count ran");
    println!(
        "\nat {} clients: {:.0} -> {:.0} ops/sec ({:+.1}%), {} -> {} fsyncs",
        counts.last().unwrap(),
        per_op.ops_per_sec,
        grouped.ops_per_sec,
        100.0 * (grouped.ops_per_sec - per_op.ops_per_sec) / per_op.ops_per_sec,
        per_op.fsyncs,
        grouped.fsyncs
    );
    if *counts.last().unwrap() >= 2 {
        if grouped.fsyncs >= per_op.fsyncs {
            eprintln!(
                "GROUP COMMIT REGRESSION: {} batched fsyncs >= {} per-op fsyncs",
                grouped.fsyncs, per_op.fsyncs
            );
            std::process::exit(1);
        }
        if grouped.ops_per_sec <= per_op.ops_per_sec {
            eprintln!(
                "GROUP COMMIT REGRESSION: {:.0} ops/sec <= {:.0} per-op baseline",
                grouped.ops_per_sec, per_op.ops_per_sec
            );
            std::process::exit(1);
        }
    }
    Ok(())
}
