//! Ablation — block size `B` sweep.
//!
//! The external-memory model charges per block of `B` bytes. This ablation
//! sweeps `B` to show (a) SemiCore*'s I/O count scales as ~1/B on its
//! sequential portions and (b) the algorithm ranking is robust to `B`.
//!
//! ```sh
//! cargo run --release -p kcore-bench --bin ablation_blocksize [-- --scale 0.5]
//! ```

use graphstore::{DiskGraph, IoCounter};
use kcore_bench::harness::{fmt_count, fmt_secs, Args, Table};
use semicore::DecomposeOptions;

fn main() -> graphstore::Result<()> {
    let args = Args::parse();
    let scale: f64 = args.get_num("scale", 0.5);
    let dir = graphstore::TempDir::new("abl-block")?;
    let spec = graphgen::dataset_by_name("Twitter").unwrap();
    let base = dir.path().join("twitter");
    spec.build_disk(&base, scale, IoCounter::new(4096))?;

    println!("Ablation — block size sweep on the Twitter stand-in (scale {scale})\n");
    let mut t = Table::new(&[
        "B",
        "SemiCore* I/O",
        "SemiCore I/O",
        "ratio",
        "SemiCore* time",
    ]);
    for block in [1 << 10, 4 << 10, 16 << 10, 64 << 10] {
        let opts = DecomposeOptions::default();
        let mut d1 = DiskGraph::open(&base, IoCounter::new(block))?;
        let star = semicore::semicore_star(&mut d1, &opts)?;
        let mut d2 = DiskGraph::open(&base, IoCounter::new(block))?;
        let plain = semicore::semicore(&mut d2, &opts)?;
        assert_eq!(star.core, plain.core);
        t.row(vec![
            format!("{} KiB", block >> 10),
            fmt_count(star.stats.io.read_ios),
            fmt_count(plain.stats.io.read_ios),
            format!(
                "{:.1}x",
                plain.stats.io.read_ios as f64 / star.stats.io.read_ios.max(1) as f64
            ),
            fmt_secs(star.stats.wall_time),
        ]);
    }
    t.print();
    println!("\nexpected: both I/O counts fall ~linearly in B; SemiCore* stays ahead at every B.");
    Ok(())
}
