//! Figures 2/4/5 (and 6/7/8 with `--maintenance`) — per-iteration traces of
//! all algorithms on the paper's running example graph, printed in the same
//! row format the paper uses.
//!
//! ```sh
//! cargo run --release -p kcore-bench --bin fig2_trace
//! cargo run --release -p kcore-bench --bin fig2_trace -- --maintenance
//! ```

use graphstore::{AdjacencyRead, DynGraph, MemGraph, Result};
use kcore_bench::harness::Args;
use semicore::fixtures::paper_example_graph;
use semicore::localcore::{compute_cnt, local_core, Scratch};
use semicore::{
    semi_delete_star, semi_insert_star, semicore_star_state, DecomposeOptions, SparseMarks,
};

fn print_row(label: &str, core: &[u32]) {
    print!("{label:<12}");
    for c in core {
        print!(" {c:>2}");
    }
    println!();
}

/// Re-run SemiCore step by step, printing the estimate table per iteration
/// (Fig. 2).
fn trace_semicore(g: &mut MemGraph) -> Result<()> {
    println!("Fig. 2 — SemiCore trace");
    let n = g.num_nodes();
    let mut core = g.read_degrees()?;
    print_row("Init", &core);
    let mut nbrs = Vec::new();
    let mut scratch = Scratch::new();
    let mut iter = 0;
    loop {
        iter += 1;
        let mut update = false;
        for v in 0..n {
            g.adjacency(v, &mut nbrs)?;
            let cold = core[v as usize];
            let cnew = local_core(cold, &core, &nbrs, &mut scratch);
            if cnew != cold {
                core[v as usize] = cnew;
                update = true;
            }
        }
        print_row(&format!("Iteration {iter}"), &core);
        if !update {
            break;
        }
    }
    Ok(())
}

/// SemiCore* trace with cnt values (Fig. 5).
fn trace_star(g: &mut MemGraph) -> Result<()> {
    println!("\nFig. 5 — SemiCore* trace (computations per iteration in brackets)");
    let n = g.num_nodes();
    let mut core = g.read_degrees()?;
    let mut cnt = vec![0i32; n as usize];
    print_row("Init", &core);
    let mut nbrs = Vec::new();
    let mut scratch = Scratch::new();
    loop {
        let mut computed = 0;
        for v in 0..n {
            if (cnt[v as usize] as i64) < core[v as usize] as i64 {
                g.adjacency(v, &mut nbrs)?;
                let cold = core[v as usize];
                let cnew = local_core(cold, &core, &nbrs, &mut scratch);
                core[v as usize] = cnew;
                cnt[v as usize] = compute_cnt(cnew, &core, &nbrs) as i32;
                for &u in &nbrs {
                    let cu = core[u as usize];
                    if cu > cnew && cu <= cold {
                        cnt[u as usize] -= 1;
                    }
                }
                computed += 1;
            }
        }
        if computed == 0 {
            break;
        }
        print_row(&format!("[{computed} comp]"), &core);
    }
    Ok(())
}

fn trace_maintenance() -> Result<()> {
    let g = paper_example_graph();
    let mut dynamic = DynGraph::from_mem(&g);
    let (mut state, _) = semicore_star_state(&mut dynamic, &DecomposeOptions::default())?;
    println!("Fig. 6 — SemiDelete* (delete (v0, v1))");
    print_row("Old Value", &state.core);
    let st = semi_delete_star(&mut dynamic, &mut state, 0, 1)?;
    print_row("New Value", &state.core);
    println!(
        "  {} iterations, {} node computations\n",
        st.iterations, st.node_computations
    );

    println!("Fig. 8 — SemiInsert* (insert (v4, v6))");
    print_row("Old Value", &state.core);
    let mut marks = SparseMarks::new(9);
    let st = semi_insert_star(&mut dynamic, &mut state, &mut marks, 4, 6)?;
    print_row("New Value", &state.core);
    println!(
        "  {} iterations, {} node computations (paper: 2 iterations, 5 computations)",
        st.iterations, st.node_computations
    );
    Ok(())
}

fn main() -> Result<()> {
    let args = Args::parse();
    println!("Running example graph (Fig. 1): v0..v8\n");
    if args.flag("maintenance") {
        return trace_maintenance();
    }
    let mut g = paper_example_graph();
    trace_semicore(&mut g)?;

    let d = semicore::semicore_plus(&mut g, &DecomposeOptions::default())?;
    println!(
        "\nFig. 4 — SemiCore+: {} iterations, {} node computations (paper: 23)",
        d.stats.iterations, d.stats.node_computations
    );

    trace_star(&mut g)?;
    let d = semicore::semicore_star(&mut g, &DecomposeOptions::default())?;
    println!(
        "SemiCore*: {} iterations, {} node computations (paper: 3 iterations, 11 computations)",
        d.stats.iterations, d.stats.node_computations
    );
    Ok(())
}
