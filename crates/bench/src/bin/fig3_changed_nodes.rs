//! Figure 3 — number of nodes whose core estimate changes per SemiCore
//! iteration, on the Twitter and UK stand-ins.
//!
//! The paper's observation driving both optimisations: after the first few
//! iterations only a vanishing fraction of nodes still change, so full
//! re-scans are mostly wasted.
//!
//! ```sh
//! cargo run --release -p kcore-bench --bin fig3_changed_nodes [-- --scale 1.0]
//! ```

use kcore_bench::harness::{build_dataset, Args};
use semicore::DecomposeOptions;

fn main() -> graphstore::Result<()> {
    let args = Args::parse();
    let scale: f64 = args.get_num("scale", 1.0);
    let dir = graphstore::TempDir::new("fig3")?;

    for name in ["Twitter", "UK"] {
        let spec = graphgen::dataset_by_name(name).unwrap();
        let mut disk = build_dataset(&spec, scale, &dir, graphstore::DEFAULT_BLOCK_SIZE)?;
        let opts = DecomposeOptions {
            track_changed_per_iteration: true,
        };
        let d = semicore::semicore(&mut disk, &opts)?;
        let series = d.stats.changed_per_iteration.as_ref().unwrap();
        println!(
            "\nFig. 3 ({name} stand-in): {} nodes, {} edges, {} iterations",
            disk.num_nodes(),
            disk.num_edges(),
            series.len()
        );
        println!(
            "{:>10} {:>14} {:>9}",
            "iteration", "changed nodes", "% of n"
        );
        let n = disk.num_nodes() as f64;
        for (i, &c) in series.iter().enumerate() {
            // Log-style sampling of the series, as the figure's log axis does.
            let it = i + 1;
            let is_pow2 = it & (it - 1) == 0;
            if is_pow2 || it == series.len() {
                println!("{it:>10} {c:>14} {:>8.3}%", 100.0 * c as f64 / n);
            }
        }
        let first = series[0] as f64;
        let tail: u64 = series.iter().skip(series.len() / 2).sum();
        println!(
            "first iteration changed {first:.0} nodes; entire second half of the run changed {tail} — {:.2}% of the first",
            100.0 * tail as f64 / first
        );
    }
    Ok(())
}
