//! Figure 10 — core maintenance: average time (10a/10b) and average I/Os
//! (10c/10d) per update, following the paper's protocol:
//!
//! *"We randomly select 100 distinct existing edges … remove the 100 edges
//! one by one and take the average … after the 100 edges are removed, we
//! insert them into the graph one by one and take the average."*
//!
//! Small group also runs the in-memory baseline (IMInsert / IMDelete).
//!
//! ```sh
//! cargo run --release -p kcore-bench --bin fig10_maintenance -- --group small
//! cargo run --release -p kcore-bench --bin fig10_maintenance -- --group big [--scale 0.5]
//! ```

use graphstore::{snapshot_mem, BufferedGraph, MemGraph};
use kcore_bench::harness::{build_dataset, fmt_count, fmt_secs, Args, Table};
use rand::rngs::SmallRng;
use rand::{seq::SliceRandom, SeedableRng};
use semicore::{
    semi_delete_star, semi_insert, semi_insert_star, semicore_star_state, DecomposeOptions,
    InMemoryCores, SparseMarks,
};
use std::time::Duration;

const EDGES_PER_TEST: usize = 100;

struct Avg {
    time: Duration,
    ios: u64,
    computations: u64,
}

fn avg(times: &[(Duration, u64, u64)]) -> Avg {
    let n = times.len().max(1) as u32;
    Avg {
        time: times.iter().map(|x| x.0).sum::<Duration>() / n,
        ios: times.iter().map(|x| x.1).sum::<u64>() / n as u64,
        computations: times.iter().map(|x| x.2).sum::<u64>() / n as u64,
    }
}

fn pick_edges(mem: &MemGraph, seed: u64) -> Vec<(u32, u32)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges: Vec<(u32, u32)> = mem.edges().collect();
    edges.shuffle(&mut rng);
    edges.truncate(EDGES_PER_TEST);
    edges
}

/// Run the delete-then-reinsert protocol on a disk graph with the given
/// insertion algorithm; returns (delete avg, insert avg).
fn run_semi(
    spec: &graphgen::DatasetSpec,
    scale: f64,
    dir: &graphstore::TempDir,
    use_star_insert: bool,
) -> graphstore::Result<(Avg, Avg)> {
    let disk = build_dataset(spec, scale, dir, graphstore::DEFAULT_BLOCK_SIZE)?;
    let mut g = BufferedGraph::with_default_capacity(disk);
    let victims = {
        let snap = snapshot_mem(&mut g)?;
        pick_edges(&snap, 0xF1610 + spec.seed)
    };
    let (mut state, _) = semicore_star_state(&mut g, &DecomposeOptions::default())?;
    let n = graphstore::AdjacencyRead::num_nodes(&g);
    let mut marks = SparseMarks::new(n);

    let mut deletes = Vec::new();
    for &(u, v) in &victims {
        let st = semi_delete_star(&mut g, &mut state, u, v)?;
        deletes.push((st.wall_time, st.total_ios(), st.node_computations));
    }
    let mut inserts = Vec::new();
    for &(u, v) in &victims {
        let st = if use_star_insert {
            semi_insert_star(&mut g, &mut state, &mut marks, u, v)?
        } else {
            semi_insert(&mut g, &mut state, &mut marks, u, v)?
        };
        inserts.push((st.wall_time, st.total_ios(), st.node_computations));
    }
    Ok((avg(&deletes), avg(&inserts)))
}

/// The in-memory baseline on the same protocol.
fn run_inmem(
    spec: &graphgen::DatasetSpec,
    scale: f64,
    dir: &graphstore::TempDir,
) -> graphstore::Result<(Avg, Avg)> {
    let mut disk = build_dataset(spec, scale, dir, graphstore::DEFAULT_BLOCK_SIZE)?;
    let mem = snapshot_mem(&mut disk)?;
    let victims = pick_edges(&mem, 0xF1610 + spec.seed);
    let mut im = InMemoryCores::new(&mem)?;
    let mut deletes = Vec::new();
    for &(u, v) in &victims {
        let st = im.delete_edge(u, v)?;
        deletes.push((st.wall_time, st.total_ios(), st.node_computations));
    }
    let mut inserts = Vec::new();
    for &(u, v) in &victims {
        let st = im.insert_edge(u, v)?;
        inserts.push((st.wall_time, st.total_ios(), st.node_computations));
    }
    Ok((avg(&deletes), avg(&inserts)))
}

fn main() -> graphstore::Result<()> {
    let args = Args::parse();
    let group = args.get("group", "small");
    let scale: f64 = args.get_num("scale", 1.0);
    let dir = graphstore::TempDir::new("fig10")?;
    let want = match group.as_str() {
        "big" => graphgen::DatasetGroup::Big,
        _ => graphgen::DatasetGroup::Small,
    };

    println!(
        "Fig. 10 — core maintenance, {group} graphs (scale {scale}): avg over {EDGES_PER_TEST} deletes then {EDGES_PER_TEST} inserts\n"
    );
    let mut t = Table::new(&[
        "dataset",
        "algorithm",
        "avg time",
        "avg I/Os",
        "avg node comps",
    ]);
    for spec in graphgen::paper_datasets() {
        if spec.group != want {
            continue;
        }
        // Two-phase insertion run (also yields the SemiDelete* numbers).
        let (del, ins_plain) = run_semi(&spec, scale, &dir, false)?;
        // One-phase insertion run on a fresh graph/state.
        let (_, ins_star) = run_semi(&spec, scale, &dir, true)?;
        let mut push = |algo: &str, a: &Avg| {
            t.row(vec![
                spec.name.to_string(),
                algo.to_string(),
                fmt_secs(a.time),
                fmt_count(a.ios),
                fmt_count(a.computations),
            ]);
        };
        push("SemiInsert", &ins_plain);
        push("SemiInsert*", &ins_star);
        push("SemiDelete*", &del);
        if want == graphgen::DatasetGroup::Small {
            let (im_del, im_ins) = run_inmem(&spec, scale, &dir)?;
            push("IMInsert", &im_ins);
            push("IMDelete", &im_del);
        }
    }
    t.print();
    println!("\npaper shape to check: SemiDelete* cheapest; SemiInsert* well below SemiInsert;");
    println!("semi-external maintenance competitive with the in-memory baseline.");
    Ok(())
}
