//! Decode bandwidth — format v2 (delta-gap varints) vs v3 (stream-vbyte
//! groups), plus the readahead-pipelined full scan.
//!
//! Varint decode is branchy: every byte carries a continuation bit, so the
//! decoder cannot know where value `i + 1` starts before finishing value
//! `i`. Format v3 moves the length information into a separate control
//! stream (one 2-bit code per gap, four to a control byte), which turns
//! the data stream into straight-line loads — and on SSE-class hardware
//! into one `pshufb` per four gaps. This harness measures the in-memory
//! decode rate of both codecs over the same R-MAT adjacency lists and the
//! end-to-end full-scan wall time with block readahead on and off.
//!
//! The binary is also the format's regression gate: it **fails loudly**
//! (non-zero exit) if the v3 decoder (runtime-dispatched) delivers less
//! than 2x the v2 scalar decode bandwidth, or if readahead changes any
//! charged counter. The full (non-`--smoke`) run on a machine with at
//! least two cores additionally requires the readahead scan's
//! best-of-trials wall time to be no slower than 1.05x the synchronous
//! scan (with one core the worker has nothing to overlap with and the
//! comparison only measures scheduling overhead).
//!
//! ```sh
//! cargo run --release -p kcore-bench --bin decode_bw \
//!     [-- --family rmat --edges 400000 --smoke --json BENCH_decode.json]
//! ```

use std::hint::black_box;
use std::io::Write as _;
use std::time::{Duration, Instant};

use graphstore::codec::{
    decode_gap_run, decode_group_run, decode_group_run_scalar, encode_gap_run, encode_group_run,
};
use graphstore::{
    write_mem_graph_with, DiskGraph, FormatVersion, GraphPaths, IoCounter, MemGraph,
    DEFAULT_BLOCK_SIZE,
};
use kcore_bench::harness::{fmt_bytes, fmt_count, Args, Table};

/// One encoded corpus: every adjacency list of `g` as a separate run,
/// matching the on-disk per-node layout.
struct Corpus {
    /// `(byte_range, count)` per node into `bytes`.
    runs: Vec<(std::ops::Range<usize>, usize)>,
    bytes: Vec<u8>,
    total_ids: u64,
}

fn encode_corpus(g: &MemGraph, mut enc: impl FnMut(&[u32], &mut Vec<u8>)) -> Corpus {
    let mut bytes = Vec::new();
    let mut runs = Vec::with_capacity(g.num_nodes() as usize);
    let mut total_ids = 0u64;
    for v in 0..g.num_nodes() {
        let nbrs = g.neighbors(v);
        let at = bytes.len();
        enc(nbrs, &mut bytes);
        runs.push((at..bytes.len(), nbrs.len()));
        total_ids += nbrs.len() as u64;
    }
    Corpus {
        runs,
        bytes,
        total_ids,
    }
}

/// One full-corpus decode pass; returns its wall time.
fn decode_pass(c: &Corpus, mut decode: impl FnMut(&[u8], usize, &mut Vec<u32>)) -> Duration {
    let mut out = Vec::new();
    let t0 = Instant::now();
    for (range, count) in &c.runs {
        out.clear();
        decode(&c.bytes[range.clone()], *count, &mut out);
        black_box(out.last());
    }
    t0.elapsed()
}

/// Full-graph `with_adjacency` sweep; returns (wall, charged snapshot).
fn sweep(
    base: &std::path::Path,
    readahead: bool,
) -> graphstore::Result<(Duration, graphstore::IoSnapshot)> {
    let counter = IoCounter::new(DEFAULT_BLOCK_SIZE);
    let mut dg = DiskGraph::open(base, counter.clone())?;
    dg.set_readahead(readahead)?;
    let t0 = Instant::now();
    let mut checksum = 0u64;
    for v in 0..dg.num_nodes() {
        checksum ^= dg.with_adjacency(v, |nbrs| nbrs.last().copied().unwrap_or(0) as u64)?;
    }
    black_box(checksum);
    Ok((t0.elapsed(), counter.snapshot()))
}

fn main() -> graphstore::Result<()> {
    let args = Args::parse();
    let family = args.get("family", "rmat");
    let smoke = args.flag("smoke");
    let target_edges: u64 = args.get_num("edges", if smoke { 120_000 } else { 400_000 });
    let density: u64 = args.get_num("density", 24);
    let trials: usize = args.get_num("trials", if smoke { 5 } else { 7 });
    let json_path = args.get("json", "");

    let g = kcore_bench::harness::graph_standin(&family, target_edges, density);
    let v2 = encode_corpus(&g, encode_gap_run);
    let v3 = encode_corpus(&g, encode_group_run);
    let ids = v2.total_ids;
    println!(
        "Decode bandwidth — {family}, {} nodes, {} directed neighbour ids\n\
         encoded adjacency: v2 {} vs v3 {} ({:.2}x v2 size)\n",
        g.num_nodes(),
        fmt_count(ids),
        fmt_bytes(v2.bytes.len() as u64),
        fmt_bytes(v3.bytes.len() as u64),
        v3.bytes.len() as f64 / v2.bytes.len().max(1) as f64,
    );

    // In-memory decode rates, measured in interleaved rounds (one pass per
    // decoder per round, best round kept) so a load burst from elsewhere on
    // the machine skews every decoder alike instead of poisoning the
    // ratios. The memcpy row is the ceiling: v1's raw little-endian u32
    // payload copied straight into the output vec.
    let raw: Vec<u8> = (0..g.num_nodes())
        .flat_map(|v| g.neighbors(v).iter().flat_map(|n| n.to_le_bytes()))
        .collect();
    let mut best = [Duration::MAX; 4];
    let mut memcpy_out: Vec<u8> = Vec::new();
    for _ in 0..trials {
        best[0] = best[0].min(decode_pass(&v2, |b, n, out| {
            decode_gap_run(b, n, out).unwrap();
        }));
        best[1] = best[1].min(decode_pass(&v3, |b, n, out| {
            decode_group_run_scalar(b, n, out).unwrap();
        }));
        best[2] = best[2].min(decode_pass(&v3, |b, n, out| {
            decode_group_run(b, n, out).unwrap();
        }));
        let t0 = Instant::now();
        memcpy_out.clear();
        memcpy_out.extend_from_slice(&raw);
        black_box(memcpy_out.last());
        best[3] = best[3].min(t0.elapsed());
    }
    let rate = |d: Duration| ids as f64 / d.as_secs_f64().max(1e-12);
    let (v2_rate, v3_scalar_rate, v3_rate, memcpy_rate) =
        (rate(best[0]), rate(best[1]), rate(best[2]), rate(best[3]));

    let mibs = |rate: f64| format!("{:.0} MiB/s", rate * 4.0 / (1024.0 * 1024.0));
    let mut t = Table::new(&["decoder", "ids/s", "output", "vs v2 scalar"]);
    for (label, rate) in [
        ("v2 scalar (varint)", v2_rate),
        ("v3 scalar (group)", v3_scalar_rate),
        ("v3 auto (group, simd)", v3_rate),
        ("memcpy (v1 raw)", memcpy_rate),
    ] {
        t.row(vec![
            label.to_string(),
            fmt_count(rate as u64),
            mibs(rate),
            format!("{:.2}x", rate / v2_rate),
        ]);
    }
    t.print();

    // End-to-end: the same graph on disk in v3, full scan with the block
    // readahead pipeline on vs off. Charged counters must be bit-identical
    // — readahead only moves *physical* fetches off the critical path.
    let dir = graphstore::TempDir::new("decode-bw")?;
    let base = dir.path().join("g3");
    write_mem_graph_with(
        &base,
        &g,
        IoCounter::new(DEFAULT_BLOCK_SIZE),
        FormatVersion::V3,
    )?;
    let edge_bytes = std::fs::metadata(GraphPaths::from_base(&base).edges)?.len();
    let mut wall = [Duration::MAX; 2]; // [off, on]
    let mut snaps = [None, None];
    for _ in 0..trials {
        for (i, ra) in [(0usize, false), (1usize, true)] {
            let (w, s) = sweep(&base, ra)?;
            wall[i] = wall[i].min(w);
            if let Some(prev) = &snaps[i] {
                assert_eq!(prev, &s, "scan charging must be deterministic");
            }
            snaps[i] = Some(s);
        }
    }
    let (s_off, s_on) = (snaps[0].unwrap(), snaps[1].unwrap());
    println!(
        "\nfull v3 scan ({} on disk): sync {:.1} ms vs readahead {:.1} ms; charged reads {} both",
        fmt_bytes(edge_bytes),
        wall[0].as_secs_f64() * 1e3,
        wall[1].as_secs_f64() * 1e3,
        fmt_count(s_off.read_ios),
    );

    if !json_path.is_empty() {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&json_path)?;
        writeln!(
            f,
            "{{\"bench\":\"decode_bw\",\"family\":\"{family}\",\"ids\":{ids},\"v2_bytes\":{},\"v3_bytes\":{},\"v2_scalar_ids_per_s\":{:.0},\"v3_scalar_ids_per_s\":{:.0},\"v3_auto_ids_per_s\":{:.0},\"memcpy_ids_per_s\":{:.0},\"scan_read_ios\":{},\"scan_sync_ns\":{},\"scan_readahead_ns\":{}}}",
            v2.bytes.len(),
            v3.bytes.len(),
            v2_rate,
            v3_scalar_rate,
            v3_rate,
            memcpy_rate,
            s_off.read_ios,
            wall[0].as_nanos(),
            wall[1].as_nanos(),
        )?;
        println!("results appended to {json_path}");
    }

    // Regression gates.
    let mut violations = Vec::new();
    if v3_rate < 2.0 * v2_rate {
        violations.push(format!(
            "v3 decode bandwidth {:.0} ids/s is below 2x the v2 scalar {:.0} ids/s",
            v3_rate, v2_rate
        ));
    }
    if s_on != s_off {
        violations.push(format!(
            "readahead changed charged counters: {s_on:?} vs {s_off:?}"
        ));
    }
    // The wall gate needs real work per scan to rise above scheduler noise
    // (the smoke corpus finishes in microseconds) and a second core for the
    // prefetch worker to run on — on one CPU the pipeline cannot overlap
    // anything and the comparison measures pure scheduling overhead, so it
    // is reported above but only enforced with ≥ 2 cores (best-of-trials,
    // 5% tolerance).
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if !smoke && cores >= 2 && wall[1] > wall[0].mul_f64(1.05) {
        violations.push(format!(
            "readahead scan {:.1} ms is slower than sync {:.1} ms (>5%)",
            wall[1].as_secs_f64() * 1e3,
            wall[0].as_secs_f64() * 1e3,
        ));
    }
    if !violations.is_empty() {
        eprintln!("DECODE BANDWIDTH REGRESSION: {}", violations.join("; "));
        std::process::exit(1);
    }
    Ok(())
}
