//! Compaction dividend — durable footprint and recovery cost, before vs
//! after folding buffered edits into a fresh table generation.
//!
//! A durable graph that only journals and checkpoints carries its whole
//! maintenance history forever: the checkpoint's buffered-edit list and
//! the journal tail both grow with the stream, and every restart re-pays
//! their replay in charged read I/Os. `CoreService::compact` bakes the
//! edits into a new generation of table files and truncates both. This
//! bench prices that on the paper's charged-block model:
//!
//! * **before** — kill mid-stream, reopen: checkpoint scan (edit list
//!   included) plus journal-tail replay;
//! * **after** — compact, kill, reopen: fresh tables, empty edit list,
//!   empty journal — nothing to replay.
//!
//! The binary is the compaction regression gate: it exits non-zero if the
//! compacted reopen does not charge strictly fewer read I/Os, or if the
//! data directory (checkpoint + journal) does not shrink strictly.
//!
//! Run with `--json BENCH_compact.json` to append machine-readable lines.
//!
//! ```sh
//! cargo run --release -p kcore-bench --bin compaction \
//!     [-- --edges 60000 --ops 200 --json BENCH_compact.json]
//! ```

use std::io::Write as _;
use std::time::Instant;

use graphstore::{EvictionPolicy, TempDir, DEFAULT_BLOCK_SIZE};
use kcore_bench::harness::{fmt_count, graph_standin, Args, Table};
use kcore_suite::{CoreService, DurableOptions};
use rand::rngs::SmallRng;
use rand::{Rng as _, SeedableRng};
use semicore::ScanExecutor;

/// Bytes currently held by the durable data directory — catalog,
/// checkpoints and journals; the bound compaction is supposed to enforce.
fn dir_bytes(dir: &std::path::Path) -> graphstore::Result<u64> {
    let mut total = 0;
    for entry in std::fs::read_dir(dir)? {
        total += entry?.metadata()?.len();
    }
    Ok(total)
}

fn main() -> graphstore::Result<()> {
    let args = Args::parse();
    let edges: u64 = args.get_num("edges", 60_000);
    let ops: u64 = args.get_num("ops", 200);
    let checkpoint_every: u64 = args.get_num("checkpoint-every", 16);
    let json_path = args.get("json", "");
    let dir = TempDir::new("compaction-bench")?;

    let g = graph_standin("rmat", edges, 16);
    let base = dir.path().join("g");
    let data = dir.path().join("data");
    let n = g.num_nodes();

    let svc = CoreService::create_durable_with(
        &data,
        DEFAULT_BLOCK_SIZE,
        64 << 20,
        EvictionPolicy::ScanLifo,
        ScanExecutor::Sequential,
        DurableOptions {
            checkpoint_every,
            group_commit: None,
            // The bench forces its one compaction explicitly; the
            // threshold must not fire on its own mid-stream.
            ..Default::default()
        },
    )?;
    svc.create("g", &base, g.edges(), n)?;

    // A seeded maintenance stream; threshold checkpoints fire along the
    // way, so the pre-compaction checkpoint carries a real edit list.
    let mut rng = SmallRng::seed_from_u64(0xC0DE);
    let mut mirror = graphstore::DynGraph::from_mem(&g);
    let mut applied = 0u64;
    while applied < ops {
        let (a, b) = (rng.gen_range(0..n), rng.gen_range(0..n));
        if a == b {
            continue;
        }
        if mirror.has_edge(a, b) {
            svc.delete_edge("g", a, b)?;
            mirror.delete_edge(a, b)?;
        } else {
            svc.insert_edge("g", a, b)?;
            mirror.insert_edge(a, b)?;
        }
        applied += 1;
    }
    let kmax = svc.kmax("g")?;

    // Before: kill mid-stream, reopen — checkpoint edit list plus journal
    // tail, all replayed.
    drop(svc);
    let before_bytes = dir_bytes(&data)?;
    let t0 = Instant::now();
    let svc = CoreService::open_catalog(&data)?;
    let before_wall_ns = t0.elapsed().as_nanos();
    let before_ios = svc.io("g")?.read_ios;
    assert_eq!(svc.kmax("g")?, kmax, "pre-compaction reopen must be exact");

    // Compact, kill again, reopen — nothing left to replay.
    let generation = svc.compact("g")?;
    drop(svc);
    let after_bytes = dir_bytes(&data)?;
    let t0 = Instant::now();
    let svc = CoreService::open_catalog(&data)?;
    let after_wall_ns = t0.elapsed().as_nanos();
    let after_ios = svc.io("g")?.read_ios;
    assert_eq!(svc.kmax("g")?, kmax, "post-compaction reopen must be exact");
    let pending = svc.with_graph("g", |idx| Ok(idx.graph_mut().pending_edits()))?;
    assert_eq!(pending, 0, "compacted graph must reopen with no edits");

    // The regression gate: compaction must strictly shrink both the
    // durable footprint and the recovery charge.
    assert!(
        after_ios < before_ios,
        "compacted reopen charged {after_ios} read I/Os, replay charged \
         {before_ios}: compaction must make recovery strictly cheaper"
    );
    assert!(
        after_bytes < before_bytes,
        "data dir grew across compaction ({before_bytes} -> {after_bytes} B): \
         checkpoint + journal must shrink"
    );

    println!(
        "Compaction dividend — {} nodes, {} edges, {} maintenance ops, \
         checkpoint every {}, now generation {}\n",
        fmt_count(n as u64),
        fmt_count(mirror.num_edges()),
        fmt_count(ops),
        checkpoint_every,
        generation,
    );
    let mut t = Table::new(&[
        "scenario",
        "data dir (B)",
        "reopen charged read I/Os",
        "reopen wall (ms)",
    ]);
    let mut json = String::new();
    for (scenario, bytes, ios, wall_ns) in [
        (
            "before (ckpt + journal replay)",
            before_bytes,
            before_ios,
            before_wall_ns,
        ),
        (
            "after (compacted, gen tables)",
            after_bytes,
            after_ios,
            after_wall_ns,
        ),
    ] {
        t.row(vec![
            scenario.to_string(),
            fmt_count(bytes),
            fmt_count(ios),
            format!("{:.2}", wall_ns as f64 / 1e6),
        ]);
        json.push_str(&format!(
            "{{\"bench\":\"compaction\",\"scenario\":\"{scenario}\",\"edges\":{edges},\"ops\":{ops},\"durable_bytes\":{bytes},\"read_ios\":{ios},\"wall_ns\":{wall_ns},\"generation\":{generation}}}\n",
        ));
    }
    t.print();
    println!(
        "\nExpected shape: the after row strictly below the before row in\n\
         both bytes and charged reads (asserted) — the edit list and the\n\
         journal are gone, baked into the generation-{generation} tables."
    );

    if !json_path.is_empty() {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&json_path)?;
        f.write_all(json.as_bytes())?;
        println!("\nresults appended to {json_path}");
    }
    Ok(())
}
