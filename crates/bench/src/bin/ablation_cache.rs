//! Ablation — block-cache budget sweep (the external-memory model's `M`).
//!
//! The paper's memory-scalability experiments (Fig. 11) vary how much of the
//! graph the algorithm may hold; this sweep does the same for the storage
//! layer's buffer pool. SemiCore\* runs over the same on-disk R-MAT or BA
//! graph with the cache budget swept from 0 (the O(1)-buffer baseline) up to
//! the full graph size, reporting physical block reads, hit rate and wall
//! time. Expected shape: read I/Os fall monotonically with `M`; once the
//! budget covers the whole graph, every pass after the first is free and the
//! total approaches one sequential scan.
//!
//! ```sh
//! cargo run --release -p kcore-bench --bin ablation_cache \
//!     [-- --family rmat|ba --edges 150000 --json BENCH_cache.json]
//! ```

use std::io::Write as _;

use graphstore::{mem_to_disk, DiskGraph, IoCounter, DEFAULT_BLOCK_SIZE};
use kcore_bench::harness::{fmt_bytes, fmt_count, fmt_secs, graph_standin, Args, Table};
use semicore::DecomposeOptions;

fn main() -> graphstore::Result<()> {
    let args = Args::parse();
    let family = args.get("family", "rmat");
    let target_edges: u64 = args.get_num("edges", 150_000);
    // Density m/n of the stand-in. The paper's web crawls sit at 27–43
    // (Table I); at such densities the node table fits in a small fraction
    // of the edge table, which is where partial budgets start to pay.
    let density: u64 = args.get_num("density", 24);
    let json_path = args.get("json", "");
    let dir = graphstore::TempDir::new("abl-cache")?;

    // Build one fixed graph on disk; every sweep point re-opens it cold.
    let g = graph_standin(&family, target_edges, density);
    let base = dir.path().join("g");
    let disk = mem_to_disk(&base, &g, IoCounter::new(DEFAULT_BLOCK_SIZE))?;
    let node_bytes = disk.meta().node_file_len();
    let edge_bytes = disk.meta().edge_file_len();
    drop(disk);

    println!(
        "Ablation — cache budget sweep ({family}, {} nodes, {} edges; node table {}, edge table {})\n",
        g.num_nodes(),
        g.num_edges(),
        fmt_bytes(node_bytes),
        fmt_bytes(edge_bytes),
    );

    let total = node_bytes + edge_bytes;
    let budgets: Vec<(String, u64)> = vec![
        ("0 (uncached)".into(), 0),
        ("1% of edges".into(), edge_bytes / 100),
        ("5% of edges".into(), edge_bytes / 20),
        ("10% of edges".into(), edge_bytes / 10),
        ("25% of edges".into(), edge_bytes / 4),
        ("50% of edges".into(), edge_bytes / 2),
        ("whole graph".into(), total + DEFAULT_BLOCK_SIZE as u64),
    ];

    let mut json = String::new();
    let mut t = Table::new(&["budget M", "bytes", "read I/Os", "hit rate", "time"]);
    let mut uncached_reads = 0u64;
    for (label, budget) in &budgets {
        let mut disk =
            DiskGraph::open_with_cache(&base, IoCounter::new(DEFAULT_BLOCK_SIZE), *budget)?;
        let d = semicore::semicore_star(&mut disk, &DecomposeOptions::default())?;
        let reads = d.stats.io.read_ios;
        if *budget == 0 {
            uncached_reads = reads;
        }
        let hit_rate = disk
            .cache_stats()
            .map_or("-".to_string(), |s| format!("{:.1}%", 100.0 * s.hit_rate()));
        t.row(vec![
            label.clone(),
            fmt_bytes(disk.cache_budget_bytes()),
            fmt_count(reads),
            hit_rate,
            fmt_secs(d.stats.wall_time),
        ]);
        json.push_str(&format!(
            "{{\"bench\":\"ablation_cache\",\"family\":\"{family}\",\"budget_bytes\":{},\"read_ios\":{reads},\"wall_ns\":{}}}\n",
            disk.cache_budget_bytes(),
            d.stats.wall_time.as_nanos(),
        ));
    }
    t.print();

    let scan = (node_bytes + edge_bytes) / DEFAULT_BLOCK_SIZE as u64;
    println!(
        "\none sequential scan = ~{} I/Os; uncached SemiCore* paid {} — the gap is the\n\
         re-read traffic a real M budget recovers. Expected: monotone fall, whole-graph\n\
         budget within a few blocks of the single-scan floor.",
        fmt_count(scan),
        fmt_count(uncached_reads),
    );

    if !json_path.is_empty() {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&json_path)?;
        f.write_all(json.as_bytes())?;
        println!("\nresults appended to {json_path}");
    }
    Ok(())
}
