//! Figure 12 — scalability of core maintenance on the Twitter and UK
//! stand-ins: average update time while varying |V| and |E| from 20% to
//! 100% (50 deletes + 50 reinserts per point).
//!
//! ```sh
//! cargo run --release -p kcore-bench --bin fig12_maint_scalability [-- --scale 1.0]
//! ```

use graphstore::{
    mem_to_disk, snapshot_mem, BufferedGraph, IoCounter, MemGraph, DEFAULT_BLOCK_SIZE,
};
use kcore_bench::harness::{build_dataset, fmt_secs, Args, Table};
use rand::rngs::SmallRng;
use rand::{seq::SliceRandom, SeedableRng};
use semicore::{
    semi_delete_star, semi_insert, semi_insert_star, semicore_star_state, DecomposeOptions,
    SparseMarks,
};
use std::time::Duration;

const EDGES_PER_TEST: usize = 50;

/// Returns (SemiInsert avg, SemiInsert* avg, SemiDelete* avg).
fn run_point(
    g: &MemGraph,
    dir: &graphstore::TempDir,
    tag: &str,
) -> graphstore::Result<(Duration, Duration, Duration)> {
    let mut victims: Vec<(u32, u32)> = g.edges().collect();
    let mut rng = SmallRng::seed_from_u64(0xF1612);
    victims.shuffle(&mut rng);
    victims.truncate(EDGES_PER_TEST);
    if victims.is_empty() {
        return Ok(Default::default());
    }

    let run = |use_star: bool, tag: &str| -> graphstore::Result<(Duration, Duration)> {
        let base = dir.path().join(tag);
        let disk = mem_to_disk(&base, g, IoCounter::new(DEFAULT_BLOCK_SIZE))?;
        let mut bg = BufferedGraph::with_default_capacity(disk);
        let (mut state, _) = semicore_star_state(&mut bg, &DecomposeOptions::default())?;
        let n = graphstore::AdjacencyRead::num_nodes(&bg);
        let mut marks = SparseMarks::new(n);
        let mut del = Duration::ZERO;
        for &(u, v) in &victims {
            del += semi_delete_star(&mut bg, &mut state, u, v)?.wall_time;
        }
        let mut ins = Duration::ZERO;
        for &(u, v) in &victims {
            ins += if use_star {
                semi_insert_star(&mut bg, &mut state, &mut marks, u, v)?.wall_time
            } else {
                semi_insert(&mut bg, &mut state, &mut marks, u, v)?.wall_time
            };
        }
        let k = victims.len() as u32;
        Ok((del / k, ins / k))
    };

    let (del_avg, ins_plain) = run(false, &format!("{tag}-p"))?;
    let (_, ins_star) = run(true, &format!("{tag}-s"))?;
    Ok((ins_plain, ins_star, del_avg))
}

fn main() -> graphstore::Result<()> {
    let args = Args::parse();
    let scale: f64 = args.get_num("scale", 1.0);
    let dir = graphstore::TempDir::new("fig12")?;

    for name in ["Twitter", "UK"] {
        let spec = graphgen::dataset_by_name(name).unwrap();
        let mut disk = build_dataset(&spec, scale, &dir, DEFAULT_BLOCK_SIZE)?;
        let full = snapshot_mem(&mut disk)?;
        drop(disk);

        for (dim, by_nodes) in [("|V|", true), ("|E|", false)] {
            println!("\nFig. 12 — {name} stand-in, varying {dim}: avg update time");
            let mut t = Table::new(&["fraction", "SemiInsert", "SemiInsert*", "SemiDelete*"]);
            for pct in [20u32, 40, 60, 80, 100] {
                let f = pct as f64 / 100.0;
                let g = if by_nodes {
                    graphgen::sample_nodes(&full, f, 3000 + pct as u64)
                } else {
                    graphgen::sample_edges(&full, f, 4000 + pct as u64)
                };
                let tag = format!("{name}-{dim}-{pct}").replace('|', "");
                let (ins, ins_star, del) = run_point(&g, &dir, &tag)?;
                t.row(vec![
                    format!("{pct}%"),
                    fmt_secs(ins),
                    fmt_secs(ins_star),
                    fmt_secs(del),
                ]);
            }
            t.print();
        }
    }
    println!("\npaper shape to check: SemiDelete* best and stable; SemiInsert* faster than");
    println!("SemiInsert, whose cost is unstable because its candidate component can be large.");
    Ok(())
}
