//! Ablation — thread-count scalability sweep of the parallel scan executor
//! (the Fig. 11 axis the paper could not plot: its algorithms were
//! single-threaded by construction).
//!
//! One fixed on-disk graph, served through a shared whole-graph block cache
//! (the regime where charged I/O is schedule-independent — see
//! `semicore::executor`), decomposed by SemiCore and SemiCore\* with the
//! sequential schedule and then with 1/2/4/8 workers. Expected shape:
//! wall-clock falls from ≥ 2 workers on; `read I/Os` identical in every
//! row of one algorithm; core numbers verified identical to sequential.
//!
//! ```sh
//! cargo run --release -p kcore-bench --bin ablation_threads \
//!     [-- --family rmat|ba --edges 400000 --json BENCH_threads.json]
//! ```

use std::io::Write as _;

use graphstore::{mem_to_disk, DiskGraph, IoCounter, DEFAULT_BLOCK_SIZE};
use kcore_bench::harness::{fmt_count, fmt_secs, graph_standin, Args, Table};
use semicore::{DecomposeOptions, ScanExecutor};

fn main() -> graphstore::Result<()> {
    let args = Args::parse();
    let family = args.get("family", "rmat");
    let target_edges: u64 = args.get_num("edges", 400_000);
    let density: u64 = args.get_num("density", 24);
    let json_path = args.get("json", "");
    let dir = graphstore::TempDir::new("abl-threads")?;

    let g = graph_standin(&family, target_edges, density);
    let base = dir.path().join("g");
    let disk = mem_to_disk(&base, &g, IoCounter::new(DEFAULT_BLOCK_SIZE))?;
    let budget =
        disk.meta().node_file_len() + disk.meta().edge_file_len() + 4 * DEFAULT_BLOCK_SIZE as u64;
    drop(disk);

    let cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!(
        "Ablation — thread sweep ({family}, {} nodes, {} edges, whole-graph cache, {cpus} CPU(s))\n",
        g.num_nodes(),
        g.num_edges(),
    );

    let mut json = String::new();
    let mut t = Table::new(&[
        "algorithm",
        "schedule",
        "time",
        "vs seq",
        "read I/Os",
        "passes",
    ]);
    for algo in ["SemiCore*", "SemiCore"] {
        let mut reference: Option<(Vec<u32>, std::time::Duration)> = None;
        for workers in [0usize, 1, 2, 4, 8] {
            let exec = if workers == 0 {
                ScanExecutor::Sequential
            } else {
                ScanExecutor::parallel(workers)
            };
            let mut disk =
                DiskGraph::open_with_cache(&base, IoCounter::new(DEFAULT_BLOCK_SIZE), budget)?;
            let opts = DecomposeOptions::default();
            let d = match algo {
                "SemiCore*" => semicore::semicore_star_with(&mut disk, &opts, exec)?,
                _ => semicore::semicore_with(&mut disk, &opts, exec)?,
            };
            let schedule = if workers == 0 {
                "sequential".to_string()
            } else {
                format!("{workers} worker(s)")
            };
            let speedup = match &reference {
                None => {
                    reference = Some((d.core.clone(), d.stats.wall_time));
                    "1.00x".to_string()
                }
                Some((seq_core, seq_time)) => {
                    assert_eq!(seq_core, &d.core, "{algo}/{schedule}: cores diverged");
                    format!(
                        "{:.2}x",
                        seq_time.as_secs_f64() / d.stats.wall_time.as_secs_f64()
                    )
                }
            };
            t.row(vec![
                algo.to_string(),
                schedule,
                fmt_secs(d.stats.wall_time),
                speedup,
                fmt_count(d.stats.io.read_ios),
                d.stats.iterations.to_string(),
            ]);
            json.push_str(&format!(
                "{{\"bench\":\"ablation_threads\",\"family\":\"{family}\",\"algo\":\"{algo}\",\"workers\":{workers},\"cpus\":{cpus},\"wall_ns\":{},\"read_ios\":{},\"iterations\":{}}}\n",
                d.stats.wall_time.as_nanos(),
                d.stats.io.read_ios,
                d.stats.iterations,
            ));
        }
    }
    t.print();

    println!(
        "\nexpected: identical read I/Os down each algorithm's column (the shared cache\n\
         absorbs the re-read working set, so charged I/O is schedule-independent) and,\n\
         on a multi-core host, wall-clock improving from 2 workers. Cross-shard edges\n\
         propagate one pass later, so more workers need somewhat more passes."
    );
    if cpus < 2 {
        println!(
            "\nNOTE: this host exposes {cpus} CPU; the sweep can only measure scheduling\n\
             overhead here, not parallel speedup."
        );
    }

    if !json_path.is_empty() {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&json_path)?;
        f.write_all(json.as_bytes())?;
        println!("\nresults appended to {json_path}");
    }
    Ok(())
}
