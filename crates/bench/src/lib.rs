//! # kcore-bench — the paper's evaluation, regenerated
//!
//! One binary per table/figure of §VI (see `src/bin/`), plus Criterion
//! micro-benchmarks (see `benches/`). All binaries accept `--scale` to grow
//! or shrink the dataset stand-ins; defaults finish in minutes.

#![warn(missing_docs)]

pub mod harness;
