//! Single-update maintenance benchmarks (delete + reinsert of a random
//! existing edge) over the in-memory backend.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use graphgen::preferential_attachment;
use graphstore::{DynGraph, MemGraph};
use rand::rngs::SmallRng;
use rand::{seq::SliceRandom, SeedableRng};
use semicore::{
    semi_delete_star, semi_insert, semi_insert_star, semicore_star_state, DecomposeOptions,
    SparseMarks,
};

struct Setup {
    graph: DynGraph,
    state: semicore::CoreState,
    marks: SparseMarks,
    victims: Vec<(u32, u32)>,
}

fn setup() -> Setup {
    let n = 20_000u32;
    let g = MemGraph::from_edges(preferential_attachment(n, 5, 7), n);
    let mut graph = DynGraph::from_mem(&g);
    let (state, _) = semicore_star_state(&mut graph, &DecomposeOptions::default()).unwrap();
    let mut victims: Vec<(u32, u32)> = g.edges().collect();
    victims.shuffle(&mut SmallRng::seed_from_u64(5));
    victims.truncate(64);
    Setup {
        graph,
        state,
        marks: SparseMarks::new(n),
        victims,
    }
}

fn bench_maintenance(c: &mut Criterion) {
    let mut group = c.benchmark_group("maintenance_20k");

    group.bench_function("delete_then_insert_star", |b| {
        let mut s = setup();
        let mut i = 0usize;
        b.iter(|| {
            let (u, v) = s.victims[i % s.victims.len()];
            i += 1;
            semi_delete_star(&mut s.graph, &mut s.state, u, v).unwrap();
            black_box(semi_insert_star(&mut s.graph, &mut s.state, &mut s.marks, u, v).unwrap());
        })
    });

    group.bench_function("delete_then_insert_two_phase", |b| {
        let mut s = setup();
        let mut i = 0usize;
        b.iter(|| {
            let (u, v) = s.victims[i % s.victims.len()];
            i += 1;
            semi_delete_star(&mut s.graph, &mut s.state, u, v).unwrap();
            black_box(semi_insert(&mut s.graph, &mut s.state, &mut s.marks, u, v).unwrap());
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_maintenance
}
criterion_main!(benches);
