//! End-to-end decomposition benchmarks on a fixed social-network stand-in
//! (in-memory backend, isolating algorithmic cost from disk latency).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use graphgen::preferential_attachment;
use graphstore::MemGraph;
use semicore::DecomposeOptions;

fn graph() -> MemGraph {
    let n = 30_000u32;
    MemGraph::from_edges(preferential_attachment(n, 6, 2024), n)
}

fn bench_decomposition(c: &mut Criterion) {
    let g = graph();
    let opts = DecomposeOptions::default();
    let mut group = c.benchmark_group("decomposition_30k");
    group.bench_function("imcore", |b| b.iter(|| black_box(semicore::imcore(&g))));
    group.bench_function("semicore_star", |b| {
        b.iter_batched(
            || g.clone(),
            |mut g| black_box(semicore::semicore_star(&mut g, &opts).unwrap()),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("semicore_plus", |b| {
        b.iter_batched(
            || g.clone(),
            |mut g| black_box(semicore::semicore_plus(&mut g, &opts).unwrap()),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("semicore", |b| {
        b.iter_batched(
            || g.clone(),
            |mut g| black_box(semicore::semicore(&mut g, &opts).unwrap()),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_decomposition
}
criterion_main!(benches);
