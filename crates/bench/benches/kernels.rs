//! Micro-benchmarks for the per-node kernels (`LocalCore`, `ComputeCnt`) —
//! the inner loop of every semi-external algorithm.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use semicore::localcore::{compute_cnt, local_core, Scratch};

fn setup(deg: usize) -> (Vec<u32>, Vec<u32>) {
    let n = deg * 4;
    let core: Vec<u32> = (0..n as u32).map(|i| (i * 7 + 3) % 64).collect();
    let nbrs: Vec<u32> = (0..deg as u32).map(|i| (i * 13) % n as u32).collect();
    (core, nbrs)
}

fn bench_local_core(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_core");
    for deg in [8usize, 64, 512, 4096] {
        let (core, nbrs) = setup(deg);
        let mut scratch = Scratch::new();
        group.bench_with_input(BenchmarkId::from_parameter(deg), &deg, |b, _| {
            b.iter(|| {
                black_box(local_core(
                    black_box(48),
                    black_box(&core),
                    black_box(&nbrs),
                    &mut scratch,
                ))
            })
        });
    }
    group.finish();
}

fn bench_compute_cnt(c: &mut Criterion) {
    let mut group = c.benchmark_group("compute_cnt");
    for deg in [64usize, 4096] {
        let (core, nbrs) = setup(deg);
        group.bench_with_input(BenchmarkId::from_parameter(deg), &deg, |b, _| {
            b.iter(|| {
                black_box(compute_cnt(
                    black_box(32),
                    black_box(&core),
                    black_box(&nbrs),
                ))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_local_core, bench_compute_cnt
}
criterion_main!(benches);
