//! Storage-layer benchmarks: sequential scan and random adjacency access
//! throughput of the block-counted disk graph.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use graphgen::{rmat_edges, Rmat};
use graphstore::{mem_to_disk, DiskGraph, IoCounter, MemGraph, TempDir, DEFAULT_BLOCK_SIZE};

fn prepare(dir: &TempDir) -> (std::path::PathBuf, u64) {
    let p = Rmat::web(15);
    let g = MemGraph::from_edges(rmat_edges(p, 500_000, 3), p.num_nodes());
    let base = dir.path().join("g");
    let disk = mem_to_disk(&base, &g, IoCounter::new(DEFAULT_BLOCK_SIZE)).unwrap();
    let bytes = disk.meta().edge_file_len() + disk.meta().node_file_len();
    (base, bytes)
}

fn bench_scan(c: &mut Criterion) {
    let dir = TempDir::new("bench-scan").unwrap();
    let (base, bytes) = prepare(&dir);

    let mut group = c.benchmark_group("disk_graph");
    group.throughput(Throughput::Bytes(bytes));
    group.bench_function("sequential_full_scan", |b| {
        let mut disk = DiskGraph::open(&base, IoCounter::new(DEFAULT_BLOCK_SIZE)).unwrap();
        let n = disk.num_nodes();
        let mut buf = Vec::new();
        b.iter(|| {
            for v in 0..n {
                disk.adjacency(v, &mut buf).unwrap();
                black_box(buf.len());
            }
        })
    });
    group.bench_function("sequential_full_scan_borrowed", |b| {
        let mut disk = DiskGraph::open(&base, IoCounter::new(DEFAULT_BLOCK_SIZE)).unwrap();
        let n = disk.num_nodes();
        b.iter(|| {
            for v in 0..n {
                disk.with_adjacency(v, |nbrs| black_box(nbrs.len()))
                    .unwrap();
            }
        })
    });
    group.bench_function("sequential_full_scan_cached_borrowed", |b| {
        let mut disk =
            DiskGraph::open_with_cache(&base, IoCounter::new(DEFAULT_BLOCK_SIZE), bytes + 4096)
                .unwrap();
        let n = disk.num_nodes();
        b.iter(|| {
            for v in 0..n {
                disk.with_adjacency(v, |nbrs| black_box(nbrs.len()))
                    .unwrap();
            }
        })
    });
    group.finish();

    let mut group = c.benchmark_group("disk_graph_random");
    group.bench_function("random_adjacency_1k", |b| {
        let mut disk = DiskGraph::open(&base, IoCounter::new(DEFAULT_BLOCK_SIZE)).unwrap();
        let n = disk.num_nodes() as u64;
        let mut buf = Vec::new();
        let mut x = 88172645463325252u64;
        b.iter(|| {
            for _ in 0..1000 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                disk.adjacency((x % n) as u32, &mut buf).unwrap();
                black_box(buf.len());
            }
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_scan
}
criterion_main!(benches);
