//! Virtual filesystem seam: every byte this crate persists or reads back
//! flows through a [`Vfs`], so tests can inject disk misbehaviour —
//! failed fsyncs, short writes, a full disk, bit rot, crash-stop — at the
//! exact syscall where a real deployment would meet it.
//!
//! Production code uses [`StdVfs`], a zero-cost passthrough to `std::fs`.
//! Tests build a [`FaultVfs`] around it with a [`FaultPlan`] describing
//! *which* operation misbehaves, deterministically: "fail the 3rd fsync",
//! "persist only 7 bytes of the 5th write", "report `ENOSPC` after 4096
//! bytes", "flip one bit in the 2nd read", "crash-stop before the 6th
//! sync point". Determinism is what turns the crash-recovery argument in
//! ARCHITECTURE.md ("Failure model") from prose into a matrix the test
//! suite enumerates.
//!
//! ## The crash model
//!
//! [`FaultVfs`] models *crash-stop with completed syscalls persisted*:
//! every operation that returned `Ok` before the crash point is on disk,
//! nothing after it happens, and every subsequent operation fails with a
//! distinctive "simulated crash" error. *Sync events* — file `sync_all`,
//! `rename`, `sync_parent_dir` — are the crash schedule's clock, because
//! those are the only points at which this crate's durability protocol
//! claims anything; `crash_before_sync: Some(k)` stops the world just
//! before the `k`-th such event fires. A counting pass with a fault-free
//! plan ([`FaultVfs::sync_events`]) tells the harness how many crash
//! points a workload has.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// An open file handle behind the [`Vfs`] seam.
///
/// Methods take `&mut self` (handles are owned by single readers/writers
/// throughout this crate), and positional reads never disturb the write
/// cursor used by [`VfsFile::write_all`] / [`VfsFile::seek_to`].
// `len` is fallible and takes `&mut self`; an `is_empty` counterpart would
// be dead API weight for a seam nothing iterates over.
#[allow(clippy::len_without_is_empty)]
pub trait VfsFile: Send + fmt::Debug {
    /// Read exactly `out.len()` bytes starting at absolute `offset`.
    fn read_exact_at(&mut self, offset: u64, out: &mut [u8]) -> io::Result<()>;
    /// Append/overwrite `data` at the current write cursor.
    fn write_all(&mut self, data: &[u8]) -> io::Result<()>;
    /// Move the write cursor to absolute `offset`.
    fn seek_to(&mut self, offset: u64) -> io::Result<()>;
    /// Truncate (or extend) the file to `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;
    /// Flush file contents and metadata to stable storage.
    fn sync_all(&mut self) -> io::Result<()>;
    /// Current length of the file in bytes.
    fn len(&mut self) -> io::Result<u64>;
}

/// The filesystem operations this crate's storage layer performs, as a
/// seam. All durability-relevant syscalls are here; see the module docs.
pub trait Vfs: Send + Sync + fmt::Debug {
    /// Open an existing file read-only.
    fn open_read(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Open an existing file read+write (no truncation).
    fn open_read_write(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Create (truncating if present) a file read+write.
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Atomically rename `from` over `to`. A sync event.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Remove a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Fsync the directory containing `path`, making a just-created or
    /// just-renamed entry durable. A sync event.
    fn sync_parent_dir(&self, path: &Path) -> io::Result<()>;
    /// Read a whole file into memory.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
}

/// The production [`Vfs`]: a passthrough to `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdVfs;

impl StdVfs {
    /// A shared handle to the passthrough vfs.
    pub fn arc() -> Arc<dyn Vfs> {
        Arc::new(StdVfs)
    }
}

/// [`VfsFile`] over a real [`File`].
#[derive(Debug)]
pub struct StdFile {
    file: File,
}

impl StdFile {
    /// Wrap an already-open [`File`] (write cursor wherever it is).
    pub fn new(file: File) -> Self {
        StdFile { file }
    }
}

impl VfsFile for StdFile {
    fn read_exact_at(&mut self, offset: u64, out: &mut [u8]) -> io::Result<()> {
        // A positional read must not move the write cursor: remember and
        // restore it around the seek+read pair.
        let cur = self.file.stream_position()?;
        self.file.seek(SeekFrom::Start(offset))?;
        let res = self.file.read_exact(out);
        self.file.seek(SeekFrom::Start(cur))?;
        res
    }
    fn write_all(&mut self, data: &[u8]) -> io::Result<()> {
        self.file.write_all(data)
    }
    fn seek_to(&mut self, offset: u64) -> io::Result<()> {
        self.file.seek(SeekFrom::Start(offset)).map(|_| ())
    }
    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.file.set_len(len)
    }
    fn sync_all(&mut self) -> io::Result<()> {
        self.file.sync_all()
    }
    fn len(&mut self) -> io::Result<u64> {
        self.file.metadata().map(|m| m.len())
    }
}

impl Vfs for StdVfs {
    fn open_read(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(StdFile::new(File::open(path)?)))
    }
    fn open_read_write(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(StdFile::new(
            OpenOptions::new().read(true).write(true).open(path)?,
        )))
    }
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(StdFile::new(
            OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(path)?,
        )))
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
    fn sync_parent_dir(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            File::open(parent)?.sync_all()?;
        }
        Ok(())
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }
}

/// A deterministic fault schedule for [`FaultVfs`]. All counters are
/// 1-based and count operations *after the plan was armed*
/// ([`FaultVfs::set_plan`] resets them). The default plan injects nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultPlan {
    /// Fail the Nth `sync_all` with `EIO` (once; later syncs succeed).
    pub fail_fsync: Option<u64>,
    /// On the Nth file write, persist only the first `K` bytes, then fail.
    pub short_write: Option<(u64, usize)>,
    /// Report `ENOSPC` once the cumulative written bytes would exceed this
    /// budget; the write persists up to the budget, the rest is lost.
    pub enospc_after: Option<u64>,
    /// Flip one bit (selected by the second field) in the Nth read.
    pub bit_flip_read: Option<(u64, u64)>,
    /// Crash-stop immediately *before* the Nth sync event (file sync,
    /// rename, or parent-dir sync). Every operation after the crash fails.
    pub crash_before_sync: Option<u64>,
}

impl FaultPlan {
    /// A pseudorandom single-fault plan derived from `seed` — the
    /// property-test entry point. The fault kind and its trigger ordinal
    /// are both seed-determined, so a failing case replays exactly.
    pub fn from_seed(seed: u64) -> FaultPlan {
        // SplitMix64: cheap, well-mixed, and dependency-free.
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut plan = FaultPlan::default();
        match next() % 4 {
            0 => plan.fail_fsync = Some(1 + next() % 4),
            1 => plan.short_write = Some((1 + next() % 4, (next() % 16) as usize)),
            2 => plan.enospc_after = Some(next() % 256),
            _ => plan.crash_before_sync = Some(1 + next() % 6),
        }
        plan
    }
}

/// Mutable fault-injection state shared by a [`FaultVfs`] and every file
/// handle it has opened.
#[derive(Debug, Default)]
struct FaultState {
    plan: FaultPlan,
    fsyncs: u64,
    writes: u64,
    reads: u64,
    written_bytes: u64,
    sync_events: u64,
    crashed: bool,
}

/// The distinctive error every operation returns once the simulated
/// machine has crash-stopped.
pub const CRASH_MSG: &str = "simulated crash (crash-stop)";

fn crash_err() -> io::Error {
    io::Error::other(CRASH_MSG)
}

impl FaultState {
    /// Fail if the machine has already crash-stopped.
    fn check_alive(&self) -> io::Result<()> {
        if self.crashed {
            Err(crash_err())
        } else {
            Ok(())
        }
    }

    /// Record a sync event (file sync / rename / dir sync), crashing
    /// first when the plan schedules it at this ordinal.
    fn sync_event(&mut self) -> io::Result<()> {
        self.check_alive()?;
        if self.plan.crash_before_sync == Some(self.sync_events + 1) {
            self.crashed = true;
            return Err(crash_err());
        }
        self.sync_events += 1;
        Ok(())
    }
}

/// A fault-injecting [`Vfs`] wrapping [`StdVfs`], driven by a
/// [`FaultPlan`]. See the module docs for the crash model.
#[derive(Debug)]
pub struct FaultVfs {
    inner: StdVfs,
    state: Arc<Mutex<FaultState>>,
}

impl FaultVfs {
    /// A fault vfs armed with `plan`.
    pub fn new(plan: FaultPlan) -> Arc<FaultVfs> {
        Arc::new(FaultVfs {
            inner: StdVfs,
            state: Arc::new(Mutex::new(FaultState {
                plan,
                ..FaultState::default()
            })),
        })
    }

    fn state(&self) -> std::sync::MutexGuard<'_, FaultState> {
        // A panic while holding this lock can only come from the harness
        // itself; recovering the guard keeps the injector usable.
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Re-arm with a new plan, resetting all ordinals and the crash flag.
    /// This lets one test set a scenario up fault-free, then schedule a
    /// fault relative to *now* ("fail the next read").
    pub fn set_plan(&self, plan: FaultPlan) {
        let mut st = self.state();
        *st = FaultState {
            plan,
            ..FaultState::default()
        };
    }

    /// Sync events (file syncs + renames + parent-dir syncs) observed
    /// since the plan was armed — the crash schedule's clock.
    pub fn sync_events(&self) -> u64 {
        self.state().sync_events
    }

    /// True once a scheduled crash-stop has fired.
    pub fn crashed(&self) -> bool {
        self.state().crashed
    }

    fn wrap(&self, file: Box<dyn VfsFile>) -> Box<dyn VfsFile> {
        Box::new(FaultFile {
            inner: file,
            state: Arc::clone(&self.state),
        })
    }
}

/// Run a plain (non-sync) vfs operation: crash check only.
fn plain_op<T>(state: &Arc<Mutex<FaultState>>, f: impl FnOnce() -> io::Result<T>) -> io::Result<T> {
    state
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .check_alive()?;
    f()
}

impl Vfs for FaultVfs {
    fn open_read(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        plain_op(&self.state, || self.inner.open_read(path)).map(|f| self.wrap(f))
    }
    fn open_read_write(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        plain_op(&self.state, || self.inner.open_read_write(path)).map(|f| self.wrap(f))
    }
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        plain_op(&self.state, || self.inner.create(path)).map(|f| self.wrap(f))
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.state().sync_event()?;
        self.inner.rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        plain_op(&self.state, || self.inner.remove_file(path))
    }
    fn sync_parent_dir(&self, path: &Path) -> io::Result<()> {
        self.state().sync_event()?;
        self.inner.sync_parent_dir(path)
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut bytes = plain_op(&self.state, || self.inner.read(path))?;
        self.state().maybe_flip(&mut bytes);
        Ok(bytes)
    }
}

impl FaultState {
    /// Apply the bit-flip fault to a completed read's bytes, if this read
    /// is the scheduled one.
    fn maybe_flip(&mut self, bytes: &mut [u8]) {
        self.reads += 1;
        if let Some((nth, pick)) = self.plan.bit_flip_read {
            if self.reads == nth && !bytes.is_empty() {
                let i = (pick % bytes.len() as u64) as usize;
                bytes[i] ^= 1 << (pick % 8);
            }
        }
    }

    /// Gate one write of `len` bytes: returns how many bytes to persist,
    /// and the error to report afterwards (if any).
    fn gate_write(&mut self, len: usize) -> io::Result<(usize, Option<io::Error>)> {
        self.check_alive()?;
        self.writes += 1;
        let mut persist = len;
        let mut err = None;
        if let Some((nth, k)) = self.plan.short_write {
            if self.writes == nth {
                persist = persist.min(k);
                err = Some(io::Error::other(format!(
                    "injected short write ({persist} of {len} bytes persisted)"
                )));
            }
        }
        if let Some(budget) = self.plan.enospc_after {
            let room = budget.saturating_sub(self.written_bytes) as usize;
            if room < persist {
                persist = room;
                err = Some(io::Error::new(
                    io::ErrorKind::StorageFull,
                    "injected disk full (ENOSPC)",
                ));
            }
        }
        self.written_bytes += persist as u64;
        Ok((persist, err))
    }
}

/// A fault-injecting file handle produced by [`FaultVfs`].
#[derive(Debug)]
struct FaultFile {
    inner: Box<dyn VfsFile>,
    state: Arc<Mutex<FaultState>>,
}

impl FaultFile {
    fn state(&self) -> std::sync::MutexGuard<'_, FaultState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }
}

impl VfsFile for FaultFile {
    fn read_exact_at(&mut self, offset: u64, out: &mut [u8]) -> io::Result<()> {
        self.state().check_alive()?;
        self.inner.read_exact_at(offset, out)?;
        self.state().maybe_flip(out);
        Ok(())
    }

    fn write_all(&mut self, data: &[u8]) -> io::Result<()> {
        let (persist, err) = self.state().gate_write(data.len())?;
        self.inner.write_all(&data[..persist])?;
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn seek_to(&mut self, offset: u64) -> io::Result<()> {
        self.state().check_alive()?;
        self.inner.seek_to(offset)
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.state().check_alive()?;
        self.inner.set_len(len)
    }

    fn sync_all(&mut self) -> io::Result<()> {
        {
            let mut st = self.state();
            st.sync_event()?;
            st.fsyncs += 1;
            if st.plan.fail_fsync == Some(st.fsyncs) {
                return Err(io::Error::other("injected fsync failure (EIO)"));
            }
        }
        self.inner.sync_all()
    }

    fn len(&mut self) -> io::Result<u64> {
        self.state().check_alive()?;
        self.inner.len()
    }
}

/// A read-bandwidth-limited [`Vfs`] wrapper: every byte delivered by
/// [`VfsFile::read_exact_at`] or [`Vfs::read`] drains a shared token
/// bucket refilled at `bytes_per_sec`, and a caller that outruns the
/// bucket sleeps off its debt before the next read proceeds. This is the
/// integrity scrubber's read path: scrub traffic is pinned below a
/// bandwidth ceiling so it cannot starve foreground queries of disk,
/// while writes (repairs) pass through unthrottled.
///
/// The bucket allows a burst of up to one second's budget, carries debt
/// (a single oversized read completes, then pays for itself), and a rate
/// of `u64::MAX` disables throttling entirely.
#[derive(Debug)]
pub struct ThrottledVfs {
    inner: Arc<dyn Vfs>,
    bucket: Arc<Mutex<TokenBucket>>,
}

#[derive(Debug)]
struct TokenBucket {
    /// Refill rate in bytes per second; `f64` for sub-byte carry.
    rate: f64,
    /// Current balance in bytes. Negative = debt to sleep off.
    tokens: f64,
    last_refill: std::time::Instant,
    throttled_bytes: u64,
}

impl ThrottledVfs {
    /// Wrap `inner`, limiting read bandwidth to `bytes_per_sec`.
    pub fn new(inner: Arc<dyn Vfs>, bytes_per_sec: u64) -> Arc<ThrottledVfs> {
        Arc::new(ThrottledVfs {
            inner,
            bucket: Arc::new(Mutex::new(TokenBucket {
                rate: bytes_per_sec as f64,
                tokens: bytes_per_sec as f64,
                last_refill: std::time::Instant::now(),
                throttled_bytes: 0,
            })),
        })
    }

    /// Total bytes that have drained the bucket since creation.
    pub fn throttled_bytes(&self) -> u64 {
        self.bucket
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .throttled_bytes
    }
}

/// Drain `n` bytes from the bucket, sleeping off any debt *outside* the
/// lock so concurrent readers are paced, not serialized.
fn acquire(bucket: &Arc<Mutex<TokenBucket>>, n: u64) {
    let wait = {
        let mut b = bucket.lock().unwrap_or_else(|p| p.into_inner());
        if b.rate >= u64::MAX as f64 {
            return;
        }
        let now = std::time::Instant::now();
        let refill = now.duration_since(b.last_refill).as_secs_f64() * b.rate;
        // Burst capacity: at most one second's budget banks up.
        b.tokens = (b.tokens + refill).min(b.rate);
        b.last_refill = now;
        b.tokens -= n as f64;
        b.throttled_bytes += n;
        if b.tokens < 0.0 {
            std::time::Duration::from_secs_f64(-b.tokens / b.rate)
        } else {
            return;
        }
    };
    std::thread::sleep(wait);
}

impl Vfs for ThrottledVfs {
    fn open_read(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(ThrottledFile {
            inner: self.inner.open_read(path)?,
            bucket: Arc::clone(&self.bucket),
        }))
    }
    fn open_read_write(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(ThrottledFile {
            inner: self.inner.open_read_write(path)?,
            bucket: Arc::clone(&self.bucket),
        }))
    }
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        // Writes pass through unthrottled; only reads are paced.
        self.inner.create(path)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.inner.rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.inner.remove_file(path)
    }
    fn sync_parent_dir(&self, path: &Path) -> io::Result<()> {
        self.inner.sync_parent_dir(path)
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let bytes = self.inner.read(path)?;
        acquire(&self.bucket, bytes.len() as u64);
        Ok(bytes)
    }
}

/// A rate-limited read handle produced by [`ThrottledVfs`].
#[derive(Debug)]
struct ThrottledFile {
    inner: Box<dyn VfsFile>,
    bucket: Arc<Mutex<TokenBucket>>,
}

impl VfsFile for ThrottledFile {
    fn read_exact_at(&mut self, offset: u64, out: &mut [u8]) -> io::Result<()> {
        acquire(&self.bucket, out.len() as u64);
        self.inner.read_exact_at(offset, out)
    }
    fn write_all(&mut self, data: &[u8]) -> io::Result<()> {
        self.inner.write_all(data)
    }
    fn seek_to(&mut self, offset: u64) -> io::Result<()> {
        self.inner.seek_to(offset)
    }
    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.inner.set_len(len)
    }
    fn sync_all(&mut self) -> io::Result<()> {
        self.inner.sync_all()
    }
    fn len(&mut self) -> io::Result<u64> {
        self.inner.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;

    fn setup() -> (TempDir, std::path::PathBuf) {
        let dir = TempDir::new("vfstest").unwrap();
        let path = dir.path().join("f.bin");
        (dir, path)
    }

    #[test]
    fn std_vfs_round_trips_and_positional_read_keeps_cursor() {
        let (_d, path) = setup();
        let vfs = StdVfs;
        let mut f = vfs.create(&path).unwrap();
        f.write_all(b"hello ").unwrap();
        let mut head = [0u8; 3];
        f.read_exact_at(0, &mut head).unwrap();
        assert_eq!(&head, b"hel");
        // The positional read must not have moved the append cursor.
        f.write_all(b"world").unwrap();
        f.sync_all().unwrap();
        assert_eq!(vfs.read(&path).unwrap(), b"hello world");
        assert_eq!(f.len().unwrap(), 11);
    }

    #[test]
    fn nth_fsync_fails_once() {
        let (_d, path) = setup();
        let vfs = FaultVfs::new(FaultPlan {
            fail_fsync: Some(2),
            ..FaultPlan::default()
        });
        let mut f = vfs.create(&path).unwrap();
        f.write_all(b"x").unwrap();
        f.sync_all().unwrap();
        assert!(f.sync_all().is_err());
        f.sync_all().unwrap();
    }

    #[test]
    fn short_write_persists_prefix_then_errors() {
        let (_d, path) = setup();
        let vfs = FaultVfs::new(FaultPlan {
            short_write: Some((2, 3)),
            ..FaultPlan::default()
        });
        let mut f = vfs.create(&path).unwrap();
        f.write_all(b"aaaa").unwrap();
        assert!(f.write_all(b"bbbb").is_err());
        drop(f);
        assert_eq!(StdVfs.read(&path).unwrap(), b"aaaabbb");
    }

    #[test]
    fn enospc_after_budget() {
        let (_d, path) = setup();
        let vfs = FaultVfs::new(FaultPlan {
            enospc_after: Some(6),
            ..FaultPlan::default()
        });
        let mut f = vfs.create(&path).unwrap();
        f.write_all(b"aaaa").unwrap();
        let err = f.write_all(b"bbbb").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        drop(f);
        assert_eq!(StdVfs.read(&path).unwrap(), b"aaaabb");
    }

    #[test]
    fn bit_flip_corrupts_exactly_one_read() {
        let (_d, path) = setup();
        std::fs::write(&path, [0u8; 16]).unwrap();
        let vfs = FaultVfs::new(FaultPlan {
            bit_flip_read: Some((2, 5)),
            ..FaultPlan::default()
        });
        let mut f = vfs.open_read(&path).unwrap();
        let mut buf = [0u8; 16];
        f.read_exact_at(0, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 16]);
        f.read_exact_at(0, &mut buf).unwrap();
        assert_eq!(buf.iter().filter(|&&b| b != 0).count(), 1);
        assert_eq!(buf[5], 1 << 5);
    }

    #[test]
    fn crash_before_sync_stops_the_world() {
        let (_d, path) = setup();
        let vfs = FaultVfs::new(FaultPlan {
            crash_before_sync: Some(2),
            ..FaultPlan::default()
        });
        let mut f = vfs.create(&path).unwrap();
        f.write_all(b"v1").unwrap();
        f.sync_all().unwrap(); // sync event 1
        f.write_all(b"v2").unwrap();
        let err = f.sync_all().unwrap_err(); // would be event 2: crash
        assert_eq!(err.to_string(), CRASH_MSG);
        assert!(vfs.crashed());
        // Everything after the crash fails, including plain ops.
        assert!(f.write_all(b"v3").is_err());
        assert!(vfs.create(&path).is_err());
        assert_eq!(vfs.sync_events(), 1);
        // Completed writes persisted; nothing after the crash did.
        assert_eq!(StdVfs.read(&path).unwrap(), b"v1v2");
    }

    #[test]
    fn renames_and_dir_syncs_are_sync_events() {
        let (_d, path) = setup();
        let vfs = FaultVfs::new(FaultPlan::default());
        let mut f = vfs.create(&path).unwrap();
        f.write_all(b"x").unwrap();
        f.sync_all().unwrap();
        drop(f);
        let dst = path.with_extension("renamed");
        vfs.rename(&path, &dst).unwrap();
        vfs.sync_parent_dir(&dst).unwrap();
        assert_eq!(vfs.sync_events(), 3);
    }

    #[test]
    fn set_plan_rearms_relative_to_now() {
        let (_d, path) = setup();
        let vfs = FaultVfs::new(FaultPlan::default());
        let mut f = vfs.create(&path).unwrap();
        f.write_all(b"x").unwrap();
        f.sync_all().unwrap();
        vfs.set_plan(FaultPlan {
            fail_fsync: Some(1),
            ..FaultPlan::default()
        });
        assert_eq!(vfs.sync_events(), 0);
        assert!(f.sync_all().is_err());
        f.sync_all().unwrap();
    }

    #[test]
    fn throttled_vfs_paces_reads_and_counts_bytes() {
        let (_d, path) = setup();
        std::fs::write(&path, vec![7u8; 4096]).unwrap();
        // 8 KiB/s with a 8 KiB burst: the first 8 KiB is free, the next
        // 4 KiB must wait ~half a second.
        let vfs = ThrottledVfs::new(StdVfs::arc(), 8 * 1024);
        let mut f = vfs.open_read(&path).unwrap();
        let mut buf = vec![0u8; 4096];
        let start = std::time::Instant::now();
        f.read_exact_at(0, &mut buf).unwrap();
        f.read_exact_at(0, &mut buf).unwrap();
        assert!(start.elapsed() < std::time::Duration::from_millis(200));
        f.read_exact_at(0, &mut buf).unwrap();
        assert!(
            start.elapsed() >= std::time::Duration::from_millis(400),
            "third read should have slept off ~0.5s of bucket debt"
        );
        assert_eq!(vfs.throttled_bytes(), 3 * 4096);
        assert_eq!(buf, vec![7u8; 4096]);
    }

    #[test]
    fn throttled_vfs_max_rate_is_a_passthrough() {
        let (_d, path) = setup();
        std::fs::write(&path, vec![1u8; 64 * 1024]).unwrap();
        let vfs = ThrottledVfs::new(StdVfs::arc(), u64::MAX);
        let start = std::time::Instant::now();
        for _ in 0..64 {
            assert_eq!(vfs.read(&path).unwrap().len(), 64 * 1024);
        }
        assert!(start.elapsed() < std::time::Duration::from_secs(2));
    }

    #[test]
    fn from_seed_is_deterministic_and_always_arms_something() {
        for seed in 0..64u64 {
            let a = FaultPlan::from_seed(seed);
            let b = FaultPlan::from_seed(seed);
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
            assert!(
                a.fail_fsync.is_some()
                    || a.short_write.is_some()
                    || a.enospc_after.is_some()
                    || a.crash_before_sync.is_some()
            );
        }
    }
}
