//! Error type shared by all storage operations.

use std::fmt;

/// Result alias used throughout the storage crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by the disk graph substrate.
///
/// Corruption and argument errors are reported as structured variants so that
/// callers (and tests) can distinguish "the file is damaged" from "the caller
/// asked for something impossible" without string matching.
#[derive(Debug)]
pub enum Error {
    /// An underlying I/O operation failed.
    Io(std::io::Error),
    /// The file exists but its contents are not a valid graph.
    Corrupt {
        /// Human-readable description of what failed to validate.
        reason: String,
    },
    /// A node id outside `0..n` was requested.
    NodeOutOfRange {
        /// The offending node id.
        node: u32,
        /// Number of nodes in the graph.
        num_nodes: u32,
    },
    /// An API contract was violated (e.g. scanning backwards).
    InvalidArgument(String),
    /// The graph would exceed a structural limit (e.g. more than `u32::MAX` nodes).
    TooLarge(String),
    /// The serving layer's admission controller shed this request: the
    /// tenant's working set cannot be granted without blowing the
    /// configured charge budget, and the wait queue is already full (or the
    /// request alone exceeds the whole budget). Unlike [`Error::Quarantined`]
    /// this is a *load* condition, not damage — retrying later, raising the
    /// budget, or evicting idle tenants all clear it.
    Overloaded {
        /// Tenant (graph name) whose request was shed.
        tenant: String,
        /// Why admission refused it.
        reason: String,
    },
    /// The named graph has been quarantined by the serving layer: an earlier
    /// I/O failure, corruption, or a panicked operation left its in-memory
    /// state untrusted, so further operations are rejected until it is
    /// evicted and re-opened. Other graphs keep serving.
    Quarantined {
        /// Name of the quarantined graph.
        graph: String,
        /// What sent the graph into quarantine.
        reason: String,
    },
    /// The named graph is serving in degraded read-only mode: a disk-full
    /// condition (or another recoverable durability failure) stopped the
    /// journal and checkpoint writers, so mutations are refused while
    /// queries keep serving the last committed state. Unlike
    /// [`Error::Quarantined`] the in-memory state is still trusted; the
    /// graph auto-promotes back to read-write once space returns.
    ReadOnly {
        /// Name of the degraded graph.
        graph: String,
        /// Why mutations are refused.
        reason: String,
    },
    /// The operation exceeded its per-op deadline and was cancelled at a
    /// safe point. No maintained state was mutated; the admission claim is
    /// released. A retry (or a raised `--op-timeout-ms`) may succeed.
    Timeout {
        /// What ran out of time.
        reason: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::Corrupt { reason } => write!(f, "corrupt graph file: {reason}"),
            Error::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node {node} out of range (graph has {num_nodes} nodes)")
            }
            Error::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            Error::TooLarge(msg) => write!(f, "graph too large: {msg}"),
            Error::Overloaded { tenant, reason } => {
                write!(f, "tenant {tenant:?} overloaded: {reason}")
            }
            Error::Quarantined { graph, reason } => {
                write!(f, "graph {graph:?} is quarantined: {reason}")
            }
            Error::ReadOnly { graph, reason } => {
                write!(f, "graph {graph:?} is read-only: {reason}")
            }
            Error::Timeout { reason } => write!(f, "operation timed out: {reason}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl Error {
    /// Construct a corruption error from anything displayable.
    pub fn corrupt(reason: impl Into<String>) -> Self {
        Error::Corrupt {
            reason: reason.into(),
        }
    }

    /// True when the error indicates damaged on-disk data.
    pub fn is_corrupt(&self) -> bool {
        matches!(self, Error::Corrupt { .. })
    }

    /// True when the error reports a quarantined graph.
    pub fn is_quarantined(&self) -> bool {
        matches!(self, Error::Quarantined { .. })
    }

    /// True when the error reports admission-control shedding (a load
    /// condition that clears on its own, unlike quarantine).
    pub fn is_overloaded(&self) -> bool {
        matches!(self, Error::Overloaded { .. })
    }

    /// True when the error reports a graph serving in degraded read-only
    /// mode.
    pub fn is_read_only(&self) -> bool {
        matches!(self, Error::ReadOnly { .. })
    }

    /// True when the error reports a per-op deadline expiry.
    pub fn is_timeout(&self) -> bool {
        matches!(self, Error::Timeout { .. })
    }

    /// True when the root cause is the filesystem running out of space
    /// (`ENOSPC`/`EDQUOT`, surfaced as [`std::io::ErrorKind::StorageFull`]).
    /// The serving layer uses this to choose degraded read-only mode over
    /// quarantine: a full disk damages nothing, it only stops writers.
    pub fn is_disk_full(&self) -> bool {
        matches!(self, Error::Io(e) if e.kind() == std::io::ErrorKind::StorageFull)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        let e = Error::corrupt("bad magic");
        assert_eq!(e.to_string(), "corrupt graph file: bad magic");
        assert!(e.is_corrupt());

        let e = Error::NodeOutOfRange {
            node: 9,
            num_nodes: 4,
        };
        assert_eq!(e.to_string(), "node 9 out of range (graph has 4 nodes)");
        assert!(!e.is_corrupt());

        let e = Error::Quarantined {
            graph: "g".into(),
            reason: "i/o failure".into(),
        };
        assert_eq!(e.to_string(), "graph \"g\" is quarantined: i/o failure");
        assert!(e.is_quarantined() && !e.is_corrupt());

        let e = Error::Overloaded {
            tenant: "t".into(),
            reason: "admission queue full".into(),
        };
        assert_eq!(
            e.to_string(),
            "tenant \"t\" overloaded: admission queue full"
        );
        assert!(e.is_overloaded() && !e.is_quarantined());
    }

    #[test]
    fn degraded_and_timeout_variants_classify() {
        let e = Error::ReadOnly {
            graph: "g".into(),
            reason: "disk full".into(),
        };
        assert_eq!(e.to_string(), "graph \"g\" is read-only: disk full");
        assert!(e.is_read_only() && !e.is_quarantined());

        let e = Error::Timeout {
            reason: "per-op deadline of 5 ms exceeded".into(),
        };
        assert_eq!(
            e.to_string(),
            "operation timed out: per-op deadline of 5 ms exceeded"
        );
        assert!(e.is_timeout() && !e.is_read_only());

        let full = Error::Io(std::io::Error::new(
            std::io::ErrorKind::StorageFull,
            "injected disk full (ENOSPC)",
        ));
        assert!(full.is_disk_full());
        let other = Error::Io(std::io::Error::other("boom"));
        assert!(!other.is_disk_full());
    }

    #[test]
    fn io_error_round_trips_through_source() {
        let inner = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: Error = inner.into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("gone"));
    }
}
