//! # graphstore — disk-resident graph substrate
//!
//! Storage layer for the semi-external k-core suite (a reproduction of
//! *"I/O Efficient Core Graph Decomposition at Web Scale"*, Wen et al.,
//! ICDE 2016). It provides everything the paper's algorithms assume from the
//! machine below them:
//!
//! * an **external-memory cost model** ([`io`]): all disk access is charged
//!   per block of `B` bytes, so algorithms report I/O exactly as the paper's
//!   plots do;
//! * the **node-table / edge-table on-disk format** ([`format`](mod@format), [`graph`])
//!   from §II of the paper, with streaming and memory-bounded builders
//!   ([`builder`]);
//! * the **edge update buffer** ([`update_buffer`]) from §V, enabling
//!   dynamic graphs under the semi-external model;
//! * **partitioned storage** ([`partition`]) for the EMCore baseline;
//! * in-memory representations ([`memgraph`]) for the in-memory baselines
//!   and for test oracles.
//!
//! ```
//! use graphstore::{AdjacencyRead, IoCounter, MemGraph, mem_to_disk, TempDir};
//!
//! let dir = TempDir::new("doc").unwrap();
//! let g = MemGraph::from_edges([(0, 1), (1, 2), (0, 2)], 3);
//! let counter = IoCounter::new(4096);
//! let mut disk = mem_to_disk(&dir.path().join("g"), &g, counter).unwrap();
//! let mut nbrs = Vec::new();
//! disk.adjacency(1, &mut nbrs).unwrap();
//! assert_eq!(nbrs, vec![0, 2]);
//! assert!(disk.io().read_ios >= 1);
//! ```

#![deny(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod access;
pub mod builder;
pub mod cache;
pub mod catalog;
pub mod codec;
pub mod edgelist;
pub mod error;
pub mod format;
pub mod graph;
pub mod io;
pub mod memgraph;
pub mod partition;
pub mod pool;
pub mod tempdir;
pub mod update_buffer;
pub mod vfs;
pub mod wal;

pub use access::{snapshot_mem, AdjacencyRead, DynamicGraph, ShardableRead};
pub use builder::{
    disk_to_mem, mem_to_disk, write_mem_graph, write_mem_graph_with, DiskGraphWriter,
    ExternalGraphBuilder,
};
pub use cache::{BlockCache, CacheStats, EvictionPolicy};
pub use catalog::{generation_base, Catalog, CatalogEntry, StateCheckpoint};
pub use error::{Error, Result};
pub use format::{FormatVersion, GraphMeta, GraphPaths};
pub use graph::DiskGraph;
pub use io::{IoCounter, IoSnapshot, DEFAULT_BLOCK_SIZE};
pub use memgraph::{DynGraph, MemGraph};
pub use partition::{LoadedPartition, PartitionStore};
pub use pool::{
    working_set_charge_budget, AdmissionController, AdmissionPermit, PendingAdmission, PoolLease,
    QosConfig, SharedPool,
};
pub use tempdir::TempDir;
pub use update_buffer::{
    rewrite_temp_base, rewrite_temp_paths, BufferedGraph, UpdateBuffer, DEFAULT_BUFFER_CAPACITY,
};
pub use vfs::{FaultPlan, FaultVfs, StdVfs, ThrottledVfs, Vfs, VfsFile};
pub use wal::{GroupCommitOptions, GroupCommitWal, Wal, WalScan, WAL_MAGIC};

/// Node identifier. The paper's largest graph (978.4M nodes) fits in `u32`.
pub type NodeId = u32;
