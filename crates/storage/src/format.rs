//! On-disk graph layout.
//!
//! Following §II "Graph Storage" of the paper, a graph is stored as two files:
//!
//! * **node table** (`<base>.nodes`): fixed-size header followed by one entry
//!   per node holding the byte offset of its adjacency list in the edge table
//!   and its degree. Entries are 12 bytes: `offset: u64, degree: u32`.
//! * **edge table** (`<base>.edges`): a short header followed by the adjacency
//!   lists `nbr(v1), nbr(v2), …, nbr(vn)` stored consecutively.
//!
//! Loading `nbr(v)` therefore takes one node-table access (offset + degree)
//! plus a contiguous edge-table read, exactly the access pattern the paper's
//! algorithms assume. Each neighbour list is stored sorted ascending, which
//! the update buffer relies on for merging.
//!
//! ## Format versions
//!
//! Three edge-table encodings exist, negotiated by the version field of the
//! node-table header (older files keep opening unchanged):
//!
//! * **v1** ([`FormatVersion::V1`]): raw little-endian `u32` ids, 4 bytes per
//!   neighbour. Node header is 32 bytes; the edge-table length is derived
//!   (`8 + 4 · degree_sum`). Supports the zero-copy borrowed-slice visit.
//! * **v2** ([`FormatVersion::V2`]): delta-gap varints — each list stores its
//!   first id absolute and every later id as the gap to its predecessor,
//!   LEB128-encoded ([`crate::codec::encode_gap_run`]). Sorted neighbour
//!   lists typically shrink 2–3×, which under the block-charged cost model
//!   is proportionally fewer `read_ios` on every edge-table path. The node
//!   header grows to 40 bytes to record the (now data-dependent) edge-table
//!   payload length; node *entries* are unchanged (byte offset + degree).
//! * **v3** ([`FormatVersion::V3`]): stream-vbyte groups — the same delta
//!   model as v2 but with control and data bytes separated per list:
//!   `ceil(degree / 4)` control bytes (one 2-bit length code per value,
//!   packed four per byte) followed by the raw little-endian payload
//!   ([`crate::codec::encode_group_run`]). Because the lengths are not
//!   interleaved with the data, a decoder processes four values per control
//!   byte with table-driven gathers (SSSE3 `pshufb` when available, an
//!   unaligned-load scalar quad otherwise) instead of v2's byte-at-a-time
//!   branchy loop. Later values store `gap − 1`, so consecutive ids cost
//!   zero data bytes. Header layout is identical to v2 (40 bytes, recorded
//!   payload length); only the envelope check and the edge magic differ.

use std::path::{Path, PathBuf};

use crate::codec;
use crate::error::{Error, Result};

/// Magic bytes opening the node table file (both format versions).
pub const NODE_MAGIC: &[u8; 8] = b"KCORNOD1";
/// Magic bytes opening a v1 (raw `u32`) edge table file.
pub const EDGE_MAGIC: &[u8; 8] = b"KCOREDG1";
/// Magic bytes opening a v2 (delta-varint) edge table file.
pub const EDGE_MAGIC_V2: &[u8; 8] = b"KCOREDG2";
/// Magic bytes opening a v3 (stream-vbyte group) edge table file.
pub const EDGE_MAGIC_V3: &[u8; 8] = b"KCOREDG3";

/// Size of the v1 node-table header in bytes.
pub const NODE_HEADER_LEN_V1: u64 = 32;
/// Size of the v2 node-table header in bytes (v1 plus the edge-table
/// payload length, which varint encoding makes data-dependent). The v3
/// header shares this layout and length.
pub const NODE_HEADER_LEN_V2: u64 = 40;
/// The largest node-table header across versions — what an opener reads
/// before it knows the version.
pub const MAX_NODE_HEADER_LEN: u64 = NODE_HEADER_LEN_V2;
/// Size of one node-table entry in bytes (`offset: u64, degree: u32`).
pub const NODE_ENTRY_LEN: u64 = 12;
/// Size of the edge-table header in bytes (both versions).
pub const EDGE_HEADER_LEN: u64 = 8;

/// Edge-table encoding of a stored graph. See the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FormatVersion {
    /// Raw little-endian `u32` ids (4 bytes per neighbour).
    #[default]
    V1,
    /// Delta-gap LEB128 varints (first id absolute, then gaps).
    V2,
    /// Stream-vbyte groups (2-bit length codes packed four per control
    /// byte, then raw little-endian data; later values store `gap − 1`).
    V3,
}

impl FormatVersion {
    /// The version number written into the node-table header.
    pub fn as_u32(self) -> u32 {
        match self {
            FormatVersion::V1 => 1,
            FormatVersion::V2 => 2,
            FormatVersion::V3 => 3,
        }
    }

    /// Parse a header version number.
    pub fn from_u32(v: u32) -> Result<FormatVersion> {
        match v {
            1 => Ok(FormatVersion::V1),
            2 => Ok(FormatVersion::V2),
            3 => Ok(FormatVersion::V3),
            other => Err(Error::corrupt(format!(
                "unsupported format version {other} (expected 1, 2 or 3)"
            ))),
        }
    }

    /// The magic bytes this version's edge table must open with.
    pub fn edge_magic(self) -> &'static [u8; 8] {
        match self {
            FormatVersion::V1 => EDGE_MAGIC,
            FormatVersion::V2 => EDGE_MAGIC_V2,
            FormatVersion::V3 => EDGE_MAGIC_V3,
        }
    }

    /// Short human-readable tag (`"v1"` / `"v2"` / `"v3"`), as the CLI
    /// reports it.
    pub fn tag(self) -> &'static str {
        match self {
            FormatVersion::V1 => "v1",
            FormatVersion::V2 => "v2",
            FormatVersion::V3 => "v3",
        }
    }
}

/// Graph-level metadata stored in the node-table header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphMeta {
    /// Number of nodes `n`. Node ids are `0..n`.
    pub num_nodes: u32,
    /// Sum of degrees (twice the number of undirected edges).
    pub degree_sum: u64,
    /// Edge-table encoding.
    pub version: FormatVersion,
    /// Edge-table payload length in bytes (excluding its 8-byte header).
    /// For v1 this is always `4 · degree_sum`; for v2/v3 it is
    /// data-dependent and recorded in the header.
    pub edge_bytes: u64,
}

impl GraphMeta {
    /// Metadata of a v1 (raw `u32`) graph.
    pub fn v1(num_nodes: u32, degree_sum: u64) -> GraphMeta {
        GraphMeta {
            num_nodes,
            degree_sum,
            version: FormatVersion::V1,
            edge_bytes: 4 * degree_sum,
        }
    }

    /// Metadata of a v2 (delta-varint) graph whose encoded adjacency lists
    /// total `edge_bytes` bytes.
    pub fn v2(num_nodes: u32, degree_sum: u64, edge_bytes: u64) -> GraphMeta {
        GraphMeta {
            num_nodes,
            degree_sum,
            version: FormatVersion::V2,
            edge_bytes,
        }
    }

    /// Metadata of a v3 (stream-vbyte group) graph whose encoded adjacency
    /// lists total `edge_bytes` bytes.
    pub fn v3(num_nodes: u32, degree_sum: u64, edge_bytes: u64) -> GraphMeta {
        GraphMeta {
            num_nodes,
            degree_sum,
            version: FormatVersion::V3,
            edge_bytes,
        }
    }

    /// Number of undirected edges `m`.
    pub fn num_edges(&self) -> u64 {
        self.degree_sum / 2
    }

    /// Size of this graph's node-table header.
    pub fn node_header_len(&self) -> u64 {
        match self.version {
            FormatVersion::V1 => NODE_HEADER_LEN_V1,
            FormatVersion::V2 | FormatVersion::V3 => NODE_HEADER_LEN_V2,
        }
    }

    /// Byte offset of node `v`'s entry within the node table file.
    pub fn node_entry_offset(&self, v: u32) -> u64 {
        self.node_header_len() + NODE_ENTRY_LEN * v as u64
    }

    /// Expected node table file length.
    pub fn node_file_len(&self) -> u64 {
        self.node_header_len() + NODE_ENTRY_LEN * self.num_nodes as u64
    }

    /// Expected edge table file length.
    pub fn edge_file_len(&self) -> u64 {
        EDGE_HEADER_LEN + self.edge_bytes
    }
}

/// Encode the node-table header (32 bytes for v1, 40 for v2/v3).
pub fn encode_node_header(meta: &GraphMeta) -> Vec<u8> {
    let mut h = vec![0u8; meta.node_header_len() as usize];
    h[0..8].copy_from_slice(NODE_MAGIC);
    codec::put_u32(&mut h, 8, meta.version.as_u32());
    // h[12..16] reserved, zero.
    codec::put_u64(&mut h, 16, meta.num_nodes as u64);
    codec::put_u64(&mut h, 24, meta.degree_sum);
    if meta.version != FormatVersion::V1 {
        codec::put_u64(&mut h, 32, meta.edge_bytes);
    }
    h
}

/// Decode and validate the node-table header. Pass at least
/// [`MAX_NODE_HEADER_LEN`] bytes when the file is long enough — the version
/// field decides how much is actually consumed.
pub fn decode_node_header(h: &[u8]) -> Result<GraphMeta> {
    if h.len() < NODE_HEADER_LEN_V1 as usize {
        return Err(Error::corrupt("node table shorter than header"));
    }
    if &h[0..8] != NODE_MAGIC {
        return Err(Error::corrupt("bad node table magic"));
    }
    let version = FormatVersion::from_u32(codec::try_get_u32(h, 8, "format version")?)?;
    let n = codec::try_get_u64(h, 16, "node count")?;
    if n > u32::MAX as u64 {
        return Err(Error::corrupt(format!("node count {n} exceeds u32 range")));
    }
    let degree_sum = codec::try_get_u64(h, 24, "degree sum")?;
    // Reject degree sums whose edge-table byte extent cannot fit in u64
    // (up to MAX_VARINT_LEN bytes per id plus the table header): these are
    // raw disk bytes, and letting them through would overflow the length
    // arithmetic below and in the size accessors.
    if degree_sum > (u64::MAX - EDGE_HEADER_LEN) / codec::MAX_VARINT_LEN as u64 {
        return Err(Error::corrupt(format!(
            "degree sum {degree_sum} exceeds the representable edge-table extent"
        )));
    }
    match version {
        FormatVersion::V1 => Ok(GraphMeta::v1(n as u32, degree_sum)),
        FormatVersion::V2 => {
            let edge_bytes = codec::try_get_u64(h, 32, "edge table payload length")?;
            // Every id encodes to 1–5 varint bytes; a payload outside that
            // envelope cannot be a well-formed v2 edge table.
            if edge_bytes < degree_sum || edge_bytes > codec::MAX_VARINT_LEN as u64 * degree_sum {
                return Err(Error::corrupt(format!(
                    "v2 edge payload of {edge_bytes} B impossible for degree sum {degree_sum}"
                )));
            }
            Ok(GraphMeta::v2(n as u32, degree_sum, edge_bytes))
        }
        FormatVersion::V3 => {
            let edge_bytes = codec::try_get_u64(h, 32, "edge table payload length")?;
            // Every id costs at least a quarter control byte (per-list
            // ceil sums are only larger) and at most 1 control share + 4
            // data bytes; a payload outside that envelope cannot be a
            // well-formed v3 edge table.
            if edge_bytes < degree_sum.div_ceil(4)
                || edge_bytes > codec::MAX_GROUP_BYTES_PER_ID as u64 * degree_sum
            {
                return Err(Error::corrupt(format!(
                    "v3 edge payload of {edge_bytes} B impossible for degree sum {degree_sum}"
                )));
            }
            Ok(GraphMeta::v3(n as u32, degree_sum, edge_bytes))
        }
    }
}

/// Encode one node-table entry.
#[inline]
pub fn encode_node_entry(offset: u64, degree: u32) -> [u8; NODE_ENTRY_LEN as usize] {
    let mut e = [0u8; NODE_ENTRY_LEN as usize];
    codec::put_u64(&mut e, 0, offset);
    codec::put_u32(&mut e, 8, degree);
    e
}

/// Decode one node-table entry into `(offset, degree)`.
#[inline]
pub fn decode_node_entry(e: &[u8]) -> (u64, u32) {
    (codec::get_u64(e, 0), codec::get_u32(e, 8))
}

/// Paths of the two files comprising a stored graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphPaths {
    /// Node table path (`<base>.nodes`).
    pub nodes: PathBuf,
    /// Edge table path (`<base>.edges`).
    pub edges: PathBuf,
}

impl GraphPaths {
    /// Derive the file pair from a base path (extension is appended).
    pub fn from_base(base: &Path) -> Self {
        let mut nodes = base.as_os_str().to_owned();
        nodes.push(".nodes");
        let mut edges = base.as_os_str().to_owned();
        edges.push(".edges");
        GraphPaths {
            nodes: PathBuf::from(nodes),
            edges: PathBuf::from(edges),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trip_v1() {
        let meta = GraphMeta::v1(12345, 99_999);
        let h = encode_node_header(&meta);
        assert_eq!(h.len() as u64, NODE_HEADER_LEN_V1);
        assert_eq!(decode_node_header(&h).unwrap(), meta);
    }

    #[test]
    fn header_round_trip_v2() {
        let meta = GraphMeta::v2(12345, 99_999, 150_000);
        let h = encode_node_header(&meta);
        assert_eq!(h.len() as u64, NODE_HEADER_LEN_V2);
        assert_eq!(decode_node_header(&h).unwrap(), meta);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut h = encode_node_header(&GraphMeta::v1(1, 0));
        h[0] = b'X';
        assert!(decode_node_header(&h).unwrap_err().is_corrupt());
    }

    #[test]
    fn bad_version_rejected() {
        let mut h = encode_node_header(&GraphMeta::v1(1, 0));
        codec::put_u32(&mut h, 8, 77);
        let err = decode_node_header(&h).unwrap_err();
        assert!(err.to_string().contains("version 77"));
    }

    #[test]
    fn short_header_rejected() {
        assert!(decode_node_header(&[0u8; 5]).unwrap_err().is_corrupt());
        // A v2 header truncated to v1 length must not decode.
        let h = encode_node_header(&GraphMeta::v2(3, 6, 9));
        assert!(decode_node_header(&h[..NODE_HEADER_LEN_V1 as usize])
            .unwrap_err()
            .is_corrupt());
    }

    #[test]
    fn absurd_degree_sum_is_corrupt_not_a_panic() {
        // A crafted header whose degree sum implies an edge-table extent
        // past u64 must decode to a corruption error; unchecked length
        // arithmetic would overflow (a panic in debug builds).
        for version in [1u32, 2, 3] {
            let mut h = encode_node_header(&GraphMeta::v2(3, 6, 9));
            codec::put_u32(&mut h, 8, version);
            codec::put_u64(&mut h, 24, u64::MAX / 2);
            assert!(decode_node_header(&h).unwrap_err().is_corrupt());
        }
    }

    #[test]
    fn v2_payload_envelope_enforced() {
        // Fewer than one byte per id is impossible.
        let h = encode_node_header(&GraphMeta::v2(10, 30, 29));
        assert!(decode_node_header(&h).unwrap_err().is_corrupt());
        // More than five bytes per id is impossible.
        let h = encode_node_header(&GraphMeta::v2(10, 30, 151));
        assert!(decode_node_header(&h).unwrap_err().is_corrupt());
    }

    #[test]
    fn header_round_trip_v3() {
        let meta = GraphMeta::v3(12345, 99_999, 80_000);
        let h = encode_node_header(&meta);
        assert_eq!(h.len() as u64, NODE_HEADER_LEN_V2);
        assert_eq!(decode_node_header(&h).unwrap(), meta);
    }

    #[test]
    fn v3_payload_envelope_enforced() {
        // Fewer than a quarter byte per id is impossible (30 ids need at
        // least 8 control bytes even when every data length is zero).
        let h = encode_node_header(&GraphMeta::v3(10, 30, 7));
        assert!(decode_node_header(&h).unwrap_err().is_corrupt());
        assert!(decode_node_header(&encode_node_header(&GraphMeta::v3(10, 30, 8))).is_ok());
        // More than five bytes per id is impossible.
        let h = encode_node_header(&GraphMeta::v3(10, 30, 151));
        assert!(decode_node_header(&h).unwrap_err().is_corrupt());
    }

    #[test]
    fn entry_round_trip() {
        let e = encode_node_entry(1 << 40, 777);
        assert_eq!(decode_node_entry(&e), (1 << 40, 777));
    }

    #[test]
    fn meta_derived_sizes() {
        let meta = GraphMeta::v1(10, 30);
        assert_eq!(meta.num_edges(), 15);
        assert_eq!(meta.node_file_len(), 32 + 120);
        assert_eq!(meta.edge_file_len(), 8 + 120);
        assert_eq!(meta.node_entry_offset(0), 32);
        assert_eq!(meta.node_entry_offset(3), 32 + 36);

        let meta = GraphMeta::v2(10, 30, 45);
        assert_eq!(meta.node_file_len(), 40 + 120);
        assert_eq!(meta.edge_file_len(), 8 + 45);
        assert_eq!(meta.node_entry_offset(0), 40);
    }

    #[test]
    fn version_tags_and_magic() {
        assert_eq!(FormatVersion::V1.tag(), "v1");
        assert_eq!(FormatVersion::V2.tag(), "v2");
        assert_eq!(FormatVersion::V3.tag(), "v3");
        assert_eq!(FormatVersion::from_u32(2).unwrap(), FormatVersion::V2);
        assert_eq!(FormatVersion::from_u32(3).unwrap(), FormatVersion::V3);
        assert!(FormatVersion::from_u32(0).is_err());
        assert!(FormatVersion::from_u32(4).is_err());
        assert_ne!(
            FormatVersion::V1.edge_magic(),
            FormatVersion::V2.edge_magic()
        );
        assert_ne!(
            FormatVersion::V2.edge_magic(),
            FormatVersion::V3.edge_magic()
        );
    }

    #[test]
    fn paths_from_base() {
        let p = GraphPaths::from_base(Path::new("/tmp/foo/g"));
        assert_eq!(p.nodes, Path::new("/tmp/foo/g.nodes"));
        assert_eq!(p.edges, Path::new("/tmp/foo/g.edges"));
    }
}
