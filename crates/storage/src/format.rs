//! On-disk graph layout.
//!
//! Following §II "Graph Storage" of the paper, a graph is stored as two files:
//!
//! * **node table** (`<base>.nodes`): fixed-size header followed by one entry
//!   per node holding the byte offset of its adjacency list in the edge table
//!   and its degree. Entries are 12 bytes: `offset: u64, degree: u32`.
//! * **edge table** (`<base>.edges`): a short header followed by the adjacency
//!   lists `nbr(v1), nbr(v2), …, nbr(vn)` stored consecutively as raw
//!   little-endian `u32` node ids.
//!
//! Loading `nbr(v)` therefore takes one node-table access (offset + degree)
//! plus a contiguous edge-table read, exactly the access pattern the paper's
//! algorithms assume. Each neighbour list is stored sorted ascending, which
//! the update buffer relies on for merging.

use std::path::{Path, PathBuf};

use crate::codec;
use crate::error::{Error, Result};

/// Magic bytes opening the node table file.
pub const NODE_MAGIC: &[u8; 8] = b"KCORNOD1";
/// Magic bytes opening the edge table file.
pub const EDGE_MAGIC: &[u8; 8] = b"KCOREDG1";
/// Format version written into the node table header.
pub const FORMAT_VERSION: u32 = 1;

/// Size of the node-table header in bytes.
pub const NODE_HEADER_LEN: u64 = 32;
/// Size of one node-table entry in bytes (`offset: u64, degree: u32`).
pub const NODE_ENTRY_LEN: u64 = 12;
/// Size of the edge-table header in bytes.
pub const EDGE_HEADER_LEN: u64 = 8;

/// Graph-level metadata stored in the node-table header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphMeta {
    /// Number of nodes `n`. Node ids are `0..n`.
    pub num_nodes: u32,
    /// Sum of degrees (twice the number of undirected edges).
    pub degree_sum: u64,
}

impl GraphMeta {
    /// Number of undirected edges `m`.
    pub fn num_edges(&self) -> u64 {
        self.degree_sum / 2
    }

    /// Byte offset of node `v`'s entry within the node table file.
    pub fn node_entry_offset(&self, v: u32) -> u64 {
        NODE_HEADER_LEN + NODE_ENTRY_LEN * v as u64
    }

    /// Expected node table file length.
    pub fn node_file_len(&self) -> u64 {
        NODE_HEADER_LEN + NODE_ENTRY_LEN * self.num_nodes as u64
    }

    /// Expected edge table file length.
    pub fn edge_file_len(&self) -> u64 {
        EDGE_HEADER_LEN + 4 * self.degree_sum
    }
}

/// Encode the node-table header.
pub fn encode_node_header(meta: &GraphMeta) -> [u8; NODE_HEADER_LEN as usize] {
    let mut h = [0u8; NODE_HEADER_LEN as usize];
    h[0..8].copy_from_slice(NODE_MAGIC);
    codec::put_u32(&mut h, 8, FORMAT_VERSION);
    // h[12..16] reserved, zero.
    codec::put_u64(&mut h, 16, meta.num_nodes as u64);
    codec::put_u64(&mut h, 24, meta.degree_sum);
    h
}

/// Decode and validate the node-table header.
pub fn decode_node_header(h: &[u8]) -> Result<GraphMeta> {
    if h.len() < NODE_HEADER_LEN as usize {
        return Err(Error::corrupt("node table shorter than header"));
    }
    if &h[0..8] != NODE_MAGIC {
        return Err(Error::corrupt("bad node table magic"));
    }
    let version = codec::try_get_u32(h, 8, "format version")?;
    if version != FORMAT_VERSION {
        return Err(Error::corrupt(format!(
            "unsupported format version {version} (expected {FORMAT_VERSION})"
        )));
    }
    let n = codec::try_get_u64(h, 16, "node count")?;
    if n > u32::MAX as u64 {
        return Err(Error::corrupt(format!("node count {n} exceeds u32 range")));
    }
    let degree_sum = codec::try_get_u64(h, 24, "degree sum")?;
    Ok(GraphMeta {
        num_nodes: n as u32,
        degree_sum,
    })
}

/// Encode one node-table entry.
#[inline]
pub fn encode_node_entry(offset: u64, degree: u32) -> [u8; NODE_ENTRY_LEN as usize] {
    let mut e = [0u8; NODE_ENTRY_LEN as usize];
    codec::put_u64(&mut e, 0, offset);
    codec::put_u32(&mut e, 8, degree);
    e
}

/// Decode one node-table entry into `(offset, degree)`.
#[inline]
pub fn decode_node_entry(e: &[u8]) -> (u64, u32) {
    (codec::get_u64(e, 0), codec::get_u32(e, 8))
}

/// Paths of the two files comprising a stored graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphPaths {
    /// Node table path (`<base>.nodes`).
    pub nodes: PathBuf,
    /// Edge table path (`<base>.edges`).
    pub edges: PathBuf,
}

impl GraphPaths {
    /// Derive the file pair from a base path (extension is appended).
    pub fn from_base(base: &Path) -> Self {
        let mut nodes = base.as_os_str().to_owned();
        nodes.push(".nodes");
        let mut edges = base.as_os_str().to_owned();
        edges.push(".edges");
        GraphPaths {
            nodes: PathBuf::from(nodes),
            edges: PathBuf::from(edges),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trip() {
        let meta = GraphMeta {
            num_nodes: 12345,
            degree_sum: 99_999,
        };
        let h = encode_node_header(&meta);
        assert_eq!(decode_node_header(&h).unwrap(), meta);
    }

    #[test]
    fn bad_magic_rejected() {
        let meta = GraphMeta {
            num_nodes: 1,
            degree_sum: 0,
        };
        let mut h = encode_node_header(&meta);
        h[0] = b'X';
        assert!(decode_node_header(&h).unwrap_err().is_corrupt());
    }

    #[test]
    fn bad_version_rejected() {
        let meta = GraphMeta {
            num_nodes: 1,
            degree_sum: 0,
        };
        let mut h = encode_node_header(&meta);
        codec::put_u32(&mut h, 8, 77);
        let err = decode_node_header(&h).unwrap_err();
        assert!(err.to_string().contains("version 77"));
    }

    #[test]
    fn short_header_rejected() {
        assert!(decode_node_header(&[0u8; 5]).unwrap_err().is_corrupt());
    }

    #[test]
    fn entry_round_trip() {
        let e = encode_node_entry(1 << 40, 777);
        assert_eq!(decode_node_entry(&e), (1 << 40, 777));
    }

    #[test]
    fn meta_derived_sizes() {
        let meta = GraphMeta {
            num_nodes: 10,
            degree_sum: 30,
        };
        assert_eq!(meta.num_edges(), 15);
        assert_eq!(meta.node_file_len(), 32 + 120);
        assert_eq!(meta.edge_file_len(), 8 + 120);
        assert_eq!(meta.node_entry_offset(0), 32);
        assert_eq!(meta.node_entry_offset(3), 32 + 36);
    }

    #[test]
    fn paths_from_base() {
        let p = GraphPaths::from_base(Path::new("/tmp/foo/g"));
        assert_eq!(p.nodes, Path::new("/tmp/foo/g.nodes"));
        assert_eq!(p.edges, Path::new("/tmp/foo/g.edges"));
    }
}
