//! Dynamic graph support: an in-memory edge update buffer over a disk graph.
//!
//! §V "Graph Maintenance" of the paper: *"we allow a memory buffer to
//! maintain the latest inserted / deleted edges. We also index the edges in
//! the memory buffer. When the buffer is full, we update the graph on disk
//! and clear the buffer. Each time when we load `nbr(v)` from disk, we also
//! need to obtain the inserted / deleted edges for `v` from the memory buffer
//! and use them to compute the updated `nbr(v)`."*
//!
//! [`UpdateBuffer`] is that buffer; [`BufferedGraph`] pairs it with a
//! [`DiskGraph`] and exposes the merged view through
//! [`AdjacencyRead`], so every maintenance algorithm sees the up-to-date
//! graph while paying disk I/O only for the base adjacency lists.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use crate::access::AdjacencyRead;
use crate::builder::DiskGraphWriter;
use crate::error::{Error, Result};
use crate::format::{FormatVersion, GraphPaths};
use crate::graph::DiskGraph;
use crate::io::IoSnapshot;

/// Pending edits for one node: sorted inserted and deleted neighbour ids.
#[derive(Debug, Default, Clone)]
struct NodeEdits {
    ins: Vec<u32>,
    del: Vec<u32>,
}

impl NodeEdits {
    fn is_empty(&self) -> bool {
        self.ins.is_empty() && self.del.is_empty()
    }

    fn len(&self) -> usize {
        self.ins.len() + self.del.len()
    }
}

/// Indexed buffer of not-yet-flushed edge insertions and deletions.
#[derive(Debug, Default)]
pub struct UpdateBuffer {
    per_node: HashMap<u32, NodeEdits>,
    entries: usize,
}

/// Insert `x` into the sorted vec if absent; returns true when inserted.
fn sorted_insert(v: &mut Vec<u32>, x: u32) -> bool {
    match v.binary_search(&x) {
        Ok(_) => false,
        Err(i) => {
            v.insert(i, x);
            true
        }
    }
}

/// Remove `x` from the sorted vec if present; returns true when removed.
fn sorted_remove(v: &mut Vec<u32>, x: u32) -> bool {
    match v.binary_search(&x) {
        Ok(i) => {
            v.remove(i);
            true
        }
        Err(_) => false,
    }
}

impl UpdateBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        UpdateBuffer::default()
    }

    /// Number of (node, neighbour) edit entries held (each undirected edge
    /// contributes two).
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True when no edits are pending.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    fn edit_one(&mut self, node: u32, nbr: u32, insert: bool) {
        let edits = self.per_node.entry(node).or_default();
        let before = edits.len();
        if insert {
            // An insert cancels a pending delete of the same edge.
            if !sorted_remove(&mut edits.del, nbr) {
                sorted_insert(&mut edits.ins, nbr);
            }
        } else if !sorted_remove(&mut edits.ins, nbr) {
            sorted_insert(&mut edits.del, nbr);
        }
        let after = edits.len();
        if after >= before {
            self.entries += after - before;
        } else {
            self.entries -= before - after;
        }
        if edits.is_empty() {
            self.per_node.remove(&node);
        }
    }

    /// Record insertion of undirected edge `(u, v)`.
    ///
    /// The caller guarantees the edge is not already present in the merged
    /// view (checked variants live on [`BufferedGraph`]).
    pub fn record_insert(&mut self, u: u32, v: u32) {
        self.edit_one(u, v, true);
        self.edit_one(v, u, true);
    }

    /// Record deletion of undirected edge `(u, v)` (present in merged view).
    pub fn record_delete(&mut self, u: u32, v: u32) {
        self.edit_one(u, v, false);
        self.edit_one(v, u, false);
    }

    /// True when `v` has pending inserted or deleted neighbours.
    pub fn has_edits(&self, v: u32) -> bool {
        self.per_node.contains_key(&v)
    }

    /// Net degree change for `v` relative to the on-disk graph.
    pub fn degree_delta(&self, v: u32) -> i64 {
        match self.per_node.get(&v) {
            None => 0,
            Some(e) => e.ins.len() as i64 - e.del.len() as i64,
        }
    }

    /// Merge the base (sorted) adjacency of `v` with pending edits into
    /// `out` (cleared first), keeping sort order.
    pub fn apply(&self, v: u32, base: &[u32], out: &mut Vec<u32>) {
        out.clear();
        match self.per_node.get(&v) {
            None => out.extend_from_slice(base),
            Some(e) => {
                // Merge base \ del with ins; both inputs sorted.
                let mut bi = 0usize;
                let mut ii = 0usize;
                while bi < base.len() || ii < e.ins.len() {
                    let take_base = match (base.get(bi), e.ins.get(ii)) {
                        (Some(&b), Some(&i)) => b <= i,
                        (Some(_), None) => true,
                        (None, Some(_)) => false,
                        (None, None) => unreachable!(),
                    };
                    if take_base {
                        let b = base[bi];
                        bi += 1;
                        if e.del.binary_search(&b).is_err() {
                            // Defensive dedup: skip if equal to the pending
                            // insert about to be emitted.
                            if e.ins.get(ii) == Some(&b) {
                                ii += 1;
                            }
                            out.push(b);
                        }
                    } else {
                        out.push(e.ins[ii]);
                        ii += 1;
                    }
                }
            }
        }
    }

    /// The buffer's net content as undirected edge edits `(u, v, inserted)`
    /// with `u < v`, sorted — the canonical serialization checkpoints
    /// persist. Each undirected edit is stored twice internally (once per
    /// endpoint); this emits it once.
    pub fn net_edits(&self) -> Vec<(u32, u32, bool)> {
        let mut out = Vec::with_capacity(self.entries / 2);
        for (&u, edits) in &self.per_node {
            for &v in &edits.ins {
                if u < v {
                    out.push((u, v, true));
                }
            }
            for &v in &edits.del {
                if u < v {
                    out.push((u, v, false));
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Drop all pending edits.
    pub fn clear(&mut self) {
        self.per_node.clear();
        self.entries = 0;
    }

    /// Approximate resident bytes (for memory reporting).
    pub fn resident_bytes(&self) -> u64 {
        let per_entry = std::mem::size_of::<u32>() as u64;
        let map_overhead = (self.per_node.len()
            * (std::mem::size_of::<u32>() + std::mem::size_of::<NodeEdits>() + 16))
            as u64;
        self.entries as u64 * per_entry + map_overhead
    }
}

/// A disk graph plus pending updates, presenting the merged view.
#[derive(Debug)]
pub struct BufferedGraph {
    disk: DiskGraph,
    buffer: UpdateBuffer,
    /// Flush once the buffer holds this many edit entries.
    capacity: usize,
    /// Net degree-sum change not yet flushed.
    degree_sum_delta: i64,
    /// Number of flushes performed (observable for tests/benches).
    flushes: u64,
    scratch: Vec<u32>,
    /// Second reusable buffer for the borrowed-visit merge path.
    merge_scratch: Vec<u32>,
}

/// Default edit-entry capacity of the in-memory buffer.
pub const DEFAULT_BUFFER_CAPACITY: usize = 1 << 20;

/// The temp base path a flush rewrite of `paths` goes through before the
/// rename: the node table path with `.rewrite` appended. The writer then
/// materialises `<temp base>.nodes` / `<temp base>.edges` — see
/// [`rewrite_temp_paths`] for the concrete pair a crashed flush leaves
/// behind.
pub fn rewrite_temp_base(paths: &GraphPaths) -> PathBuf {
    let mut s = paths.nodes.as_os_str().to_owned();
    s.push(".rewrite");
    PathBuf::from(s)
}

/// The concrete temp file pair a flush of `paths` writes (and a crashed
/// flush strands): the [`rewrite_temp_base`] expanded to its node/edge
/// tables. `fsck` scans for these; [`BufferedGraph::clean_stale_temps`]
/// removes them.
pub fn rewrite_temp_paths(paths: &GraphPaths) -> GraphPaths {
    GraphPaths::from_base(&rewrite_temp_base(paths))
}

impl BufferedGraph {
    /// Wrap `disk` with an update buffer of the given capacity (edit entries).
    pub fn new(disk: DiskGraph, capacity: usize) -> Self {
        BufferedGraph {
            disk,
            buffer: UpdateBuffer::new(),
            capacity: capacity.max(2),
            degree_sum_delta: 0,
            flushes: 0,
            scratch: Vec::new(),
            merge_scratch: Vec::new(),
        }
    }

    /// Wrap with [`DEFAULT_BUFFER_CAPACITY`].
    pub fn with_default_capacity(disk: DiskGraph) -> Self {
        Self::new(disk, DEFAULT_BUFFER_CAPACITY)
    }

    /// The underlying disk graph.
    pub fn disk(&self) -> &DiskGraph {
        &self.disk
    }

    /// Number of buffer flushes performed so far.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Pending edit entries.
    pub fn pending_edits(&self) -> usize {
        self.buffer.len()
    }

    /// The buffer's net content as sorted undirected edits `(u, v,
    /// inserted)` with `u < v` — what a durability checkpoint persists and
    /// re-plays through [`BufferedGraph::insert_edge`] /
    /// [`BufferedGraph::delete_edge`] on recovery.
    pub fn pending_net_edits(&self) -> Vec<(u32, u32, bool)> {
        self.buffer.net_edits()
    }

    fn check_pair(&self, u: u32, v: u32) -> Result<()> {
        let n = self.num_nodes();
        if u >= n {
            return Err(Error::NodeOutOfRange {
                node: u,
                num_nodes: n,
            });
        }
        if v >= n {
            return Err(Error::NodeOutOfRange {
                node: v,
                num_nodes: n,
            });
        }
        if u == v {
            return Err(Error::InvalidArgument(
                "self-loops are not supported".into(),
            ));
        }
        Ok(())
    }

    /// True when `(u, v)` exists in the merged view (costs one adjacency read).
    pub fn has_edge(&mut self, u: u32, v: u32) -> Result<bool> {
        self.check_pair(u, v)?;
        let mut merged = Vec::new();
        self.adjacency(u, &mut merged)?;
        Ok(merged.binary_search(&v).is_ok())
    }

    /// Insert `(u, v)`, which must not already exist (unchecked for I/O
    /// economy — use [`BufferedGraph::has_edge`] first when unsure).
    /// Flushes to disk when the buffer is full.
    pub fn insert_edge(&mut self, u: u32, v: u32) -> Result<()> {
        self.check_pair(u, v)?;
        self.buffer.record_insert(u, v);
        self.degree_sum_delta += 2;
        self.maybe_flush()
    }

    /// Delete `(u, v)`, which must exist in the merged view.
    pub fn delete_edge(&mut self, u: u32, v: u32) -> Result<()> {
        self.check_pair(u, v)?;
        self.buffer.record_delete(u, v);
        self.degree_sum_delta -= 2;
        self.maybe_flush()
    }

    /// [`BufferedGraph::insert_edge`] with the precondition enforced:
    /// inserting an edge already present in the merged view is rejected
    /// with [`Error::InvalidArgument`] *before* any state changes, instead
    /// of silently double-counting `degree_sum_delta` the way the unchecked
    /// variant (documented as such) would. Costs one extra adjacency read —
    /// the price the durable serving path pays for never drifting.
    pub fn insert_edge_checked(&mut self, u: u32, v: u32) -> Result<()> {
        if self.has_edge(u, v)? {
            return Err(Error::InvalidArgument(format!(
                "edge ({u}, {v}) already exists"
            )));
        }
        self.insert_edge(u, v)
    }

    /// [`BufferedGraph::delete_edge`] with the precondition enforced:
    /// deleting an edge absent from the merged view is rejected with
    /// [`Error::InvalidArgument`] before any state changes (the unchecked
    /// variant would under-count `degree_sum_delta` and strand a phantom
    /// delete in the buffer). Costs one extra adjacency read.
    pub fn delete_edge_checked(&mut self, u: u32, v: u32) -> Result<()> {
        if !self.has_edge(u, v)? {
            return Err(Error::InvalidArgument(format!(
                "edge ({u}, {v}) does not exist"
            )));
        }
        self.delete_edge(u, v)
    }

    fn maybe_flush(&mut self) -> Result<()> {
        if self.buffer.len() >= self.capacity {
            self.flush()?;
        }
        Ok(())
    }

    /// Apply all pending edits to the on-disk graph: sequentially rewrite the
    /// node and edge tables (charged as write I/Os), atomically replace the
    /// files, and clear the buffer.
    ///
    /// Any stale temp pair a crashed prior flush stranded at the
    /// [`rewrite_temp_paths`] location is removed first, so the rewrite
    /// never collides with (or is confused by) leftover bytes.
    pub fn flush(&mut self) -> Result<()> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        self.clean_stale_temps()?;
        let paths = self.disk.paths().clone();
        let tmp_base = rewrite_temp_base(&paths);
        // The rewrite preserves the graph's edge-table encoding: a v2 graph
        // stays compressed across flushes (the merge itself works on
        // decoded lists, so it is format-agnostic).
        let new_paths = self.rewrite_to(&tmp_base, self.disk.format_version())?;
        let vfs = self.disk.counter().vfs().clone();
        vfs.rename(&new_paths.nodes, &paths.nodes)?;
        vfs.rename(&new_paths.edges, &paths.edges)?;
        // The renamed entries must survive a crash just like the bytes.
        crate::io::sync_parent_dir(vfs.as_ref(), &paths.nodes)?;
        self.disk.reopen()?;
        self.disk.invalidate_buffers();
        self.buffer.clear();
        self.degree_sum_delta = 0;
        self.flushes += 1;
        Ok(())
    }

    /// Write the merged view — base tables plus every pending edit — into a
    /// fresh, fully fsynced table pair at `target_base`, encoded as
    /// `format`. The live graph, the buffer and the original files are left
    /// untouched: the caller owns the commit (a flush renames over the
    /// source; a generational compaction publishes the new base through the
    /// catalog instead). Returns the new pair's paths.
    pub fn rewrite_to(&mut self, target_base: &Path, format: FormatVersion) -> Result<GraphPaths> {
        let n = self.disk.num_nodes();
        let counter = self.disk.counter().clone();
        let mut writer = DiskGraphWriter::create_with_format(target_base, n, counter, format)?;
        let mut base = Vec::new();
        let mut merged = Vec::new();
        for v in 0..n {
            self.disk.adjacency(v, &mut base)?;
            self.buffer.apply(v, &base, &mut merged);
            writer.append_adjacency(v, &merged)?;
        }
        writer.finish()
    }

    /// Remove any stale flush temp files left at [`rewrite_temp_paths`] by
    /// a crash between a prior flush's writes and its renames. Returns how
    /// many files were removed. Removal is plain unlink work — no sync
    /// points — so calling this at open adds no crash windows.
    pub fn clean_stale_temps(&mut self) -> Result<usize> {
        let tmp = rewrite_temp_paths(self.disk.paths());
        let vfs = self.disk.counter().vfs().clone();
        let mut removed = 0;
        for p in [&tmp.nodes, &tmp.edges] {
            if p.exists() {
                vfs.remove_file(p)?;
                removed += 1;
            }
        }
        Ok(removed)
    }

    /// Resident bytes of the buffer (the only O(updates) memory held).
    pub fn buffer_bytes(&self) -> u64 {
        self.buffer.resident_bytes()
    }
}

impl AdjacencyRead for BufferedGraph {
    fn num_nodes(&self) -> u32 {
        self.disk.num_nodes()
    }

    fn degree_sum(&self) -> u64 {
        (self.disk.degree_sum() as i64 + self.degree_sum_delta) as u64
    }

    fn read_degrees(&mut self) -> Result<Vec<u32>> {
        let mut degrees = self.disk.read_degrees()?;
        for (v, d) in degrees.iter_mut().enumerate() {
            let delta = self.buffer.degree_delta(v as u32);
            *d = (*d as i64 + delta).max(0) as u32;
        }
        Ok(degrees)
    }

    fn adjacency(&mut self, v: u32, buf: &mut Vec<u32>) -> Result<()> {
        let mut scratch = std::mem::take(&mut self.scratch);
        let res = self.disk.adjacency(v, &mut scratch);
        if res.is_ok() {
            self.buffer.apply(v, &scratch, buf);
        }
        self.scratch = scratch;
        res
    }

    fn with_adjacency<R>(&mut self, v: u32, f: impl FnOnce(&[u32]) -> R) -> Result<R> {
        if !self.buffer.has_edits(v) {
            // No pending edits: expose the disk adjacency without merging —
            // the common case pays zero extra copies.
            return self.disk.with_adjacency(v, f);
        }
        let mut base = std::mem::take(&mut self.scratch);
        let mut merged = std::mem::take(&mut self.merge_scratch);
        let res = self.disk.adjacency(v, &mut base);
        let out = res.map(|()| {
            self.buffer.apply(v, &base, &mut merged);
            f(&merged)
        });
        self.scratch = base;
        self.merge_scratch = merged;
        out
    }

    fn io(&self) -> IoSnapshot {
        self.disk.io()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::mem_to_disk;
    use crate::io::{IoCounter, DEFAULT_BLOCK_SIZE};
    use crate::memgraph::{DynGraph, MemGraph};
    use crate::tempdir::TempDir;

    fn setup(capacity: usize) -> (TempDir, BufferedGraph, DynGraph) {
        let g = MemGraph::from_edges([(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)], 6);
        let dir = TempDir::new("buftest").unwrap();
        let disk = mem_to_disk(
            &dir.path().join("g"),
            &g,
            IoCounter::new(DEFAULT_BLOCK_SIZE),
        )
        .unwrap();
        let mirror = DynGraph::from_mem(&g);
        (dir, BufferedGraph::new(disk, capacity), mirror)
    }

    fn assert_same_view(bg: &mut BufferedGraph, mirror: &DynGraph) {
        let mut buf = Vec::new();
        for v in 0..bg.num_nodes() {
            bg.adjacency(v, &mut buf).unwrap();
            assert_eq!(buf.as_slice(), mirror.neighbors(v), "node {v}");
        }
        assert_eq!(bg.degree_sum(), mirror.num_edges() * 2);
        assert_eq!(
            bg.read_degrees().unwrap(),
            (0..mirror.num_nodes())
                .map(|v| mirror.degree(v))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn buffer_merges_inserts_and_deletes() {
        let (_d, mut bg, mut mirror) = setup(1 << 20);
        bg.insert_edge(4, 5).unwrap();
        mirror.insert_edge(4, 5).unwrap();
        bg.delete_edge(0, 1).unwrap();
        mirror.delete_edge(0, 1).unwrap();
        bg.insert_edge(0, 5).unwrap();
        mirror.insert_edge(0, 5).unwrap();
        assert_eq!(bg.flushes(), 0);
        assert_same_view(&mut bg, &mirror);
    }

    #[test]
    fn delete_then_reinsert_cancels() {
        let (_d, mut bg, mirror) = setup(1 << 20);
        bg.delete_edge(0, 1).unwrap();
        bg.insert_edge(0, 1).unwrap();
        assert_eq!(bg.pending_edits(), 0);
        let mut bg = bg;
        assert_same_view(&mut bg, &mirror);
    }

    #[test]
    fn flush_rewrites_disk_and_preserves_view() {
        let (_d, mut bg, mut mirror) = setup(1 << 20);
        bg.insert_edge(4, 5).unwrap();
        mirror.insert_edge(4, 5).unwrap();
        bg.delete_edge(2, 3).unwrap();
        mirror.delete_edge(2, 3).unwrap();
        let writes_before = bg.io().write_ios;
        bg.flush().unwrap();
        assert!(
            bg.io().write_ios > writes_before,
            "flush must cost write I/Os"
        );
        assert_eq!(bg.pending_edits(), 0);
        assert_eq!(bg.flushes(), 1);
        assert_same_view(&mut bg, &mirror);
    }

    #[test]
    fn auto_flush_when_capacity_reached() {
        let (_d, mut bg, mut mirror) = setup(4);
        bg.insert_edge(0, 4).unwrap(); // 2 entries
        mirror.insert_edge(0, 4).unwrap();
        assert_eq!(bg.flushes(), 0);
        bg.insert_edge(1, 5).unwrap(); // 4 entries -> flush
        mirror.insert_edge(1, 5).unwrap();
        assert_eq!(bg.flushes(), 1);
        assert_same_view(&mut bg, &mirror);
    }

    #[test]
    fn has_edge_sees_merged_view() {
        let (_d, mut bg, _m) = setup(1 << 20);
        assert!(bg.has_edge(0, 1).unwrap());
        bg.delete_edge(0, 1).unwrap();
        assert!(!bg.has_edge(0, 1).unwrap());
        bg.insert_edge(4, 5).unwrap();
        assert!(bg.has_edge(5, 4).unwrap());
    }

    #[test]
    fn rejects_invalid_pairs() {
        let (_d, mut bg, _m) = setup(1 << 20);
        assert!(bg.insert_edge(0, 0).is_err());
        assert!(bg.insert_edge(0, 99).is_err());
        assert!(bg.delete_edge(99, 0).is_err());
    }

    #[test]
    fn randomised_update_stream_matches_mirror() {
        let (_d, mut bg, mut mirror) = setup(8);
        // Deterministic pseudo-random stream of toggles.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        for _ in 0..300 {
            let u = (next() % 6) as u32;
            let v = (next() % 6) as u32;
            if u == v {
                continue;
            }
            if mirror.has_edge(u, v) {
                mirror.delete_edge(u, v).unwrap();
                bg.delete_edge(u, v).unwrap();
            } else {
                mirror.insert_edge(u, v).unwrap();
                bg.insert_edge(u, v).unwrap();
            }
        }
        assert!(bg.flushes() > 0, "stream should have forced flushes");
        assert_same_view(&mut bg, &mirror);
    }

    #[test]
    fn checked_mutations_reject_instead_of_drifting() {
        let (_d, mut bg, _m) = setup(1 << 20);
        let before = bg.degree_sum();
        // (0, 1) exists on disk; (0, 3) does not.
        assert!(matches!(
            bg.insert_edge_checked(0, 1),
            Err(Error::InvalidArgument(_))
        ));
        assert!(matches!(
            bg.delete_edge_checked(0, 3),
            Err(Error::InvalidArgument(_))
        ));
        // Rejected ops leave no trace: no pending edits, no delta drift.
        assert_eq!(bg.pending_edits(), 0);
        assert_eq!(bg.degree_sum(), before);
        // The happy path still mutates.
        bg.insert_edge_checked(0, 3).unwrap();
        bg.delete_edge_checked(0, 1).unwrap();
        assert!(bg.has_edge(0, 3).unwrap());
        assert!(!bg.has_edge(0, 1).unwrap());
        assert_eq!(bg.degree_sum(), before);
    }

    #[test]
    fn stale_rewrite_temps_are_cleaned_before_flush() {
        let (_d, mut bg, mut mirror) = setup(1 << 20);
        // Strand a fake temp pair the way a crashed flush would.
        let tmp = rewrite_temp_paths(bg.disk().paths());
        std::fs::write(&tmp.nodes, b"stale").unwrap();
        std::fs::write(&tmp.edges, b"stale").unwrap();
        assert_eq!(bg.clean_stale_temps().unwrap(), 2);
        assert!(!tmp.nodes.exists() && !tmp.edges.exists());
        // And a flush over freshly stranded temps succeeds end to end.
        std::fs::write(&tmp.nodes, b"stale").unwrap();
        bg.insert_edge(4, 5).unwrap();
        mirror.insert_edge(4, 5).unwrap();
        bg.flush().unwrap();
        assert!(!tmp.nodes.exists(), "flush must consume the stale temp");
        assert_same_view(&mut bg, &mirror);
    }

    #[test]
    fn rewrite_to_writes_merged_view_and_leaves_source_untouched() {
        let (dir, mut bg, mut mirror) = setup(1 << 20);
        bg.insert_edge(4, 5).unwrap();
        mirror.insert_edge(4, 5).unwrap();
        bg.delete_edge(0, 1).unwrap();
        mirror.delete_edge(0, 1).unwrap();
        let target = dir.path().join("g.g1");
        let new_paths = bg
            .rewrite_to(&target, crate::format::FormatVersion::V2)
            .unwrap();
        // The source pair and the pending buffer are untouched.
        assert_eq!(bg.pending_edits(), 4);
        assert_same_view(&mut bg, &mirror);
        // The new pair holds the merged view, re-encoded as v2.
        let mut out =
            DiskGraph::open(&target, crate::io::IoCounter::new(DEFAULT_BLOCK_SIZE)).unwrap();
        assert_eq!(out.format_version(), crate::format::FormatVersion::V2);
        assert_eq!(new_paths, GraphPaths::from_base(&target));
        let mut buf = Vec::new();
        for v in 0..out.num_nodes() {
            out.adjacency(v, &mut buf).unwrap();
            assert_eq!(buf.as_slice(), mirror.neighbors(v), "node {v}");
        }
    }

    #[test]
    fn update_buffer_apply_handles_defensive_duplicate() {
        // Inserting an edge already on disk must not produce duplicates in
        // the merged view.
        let mut ub = UpdateBuffer::new();
        ub.record_insert(0, 2);
        let mut out = Vec::new();
        ub.apply(0, &[1, 2, 3], &mut out);
        assert_eq!(out, vec![1, 2, 3]);
    }
}
