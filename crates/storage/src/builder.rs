//! Writers that lay graphs out on disk, including a memory-bounded external
//! build path for edge lists that do not fit in memory.

use std::collections::BinaryHeap;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::format::{self, FormatVersion, GraphPaths};
use crate::graph::DiskGraph;
use crate::io::{BlockWriter, IoCounter};
use crate::memgraph::MemGraph;
use crate::tempdir::TempDir;

/// Streaming writer producing the node-table/edge-table pair.
///
/// Adjacency lists must be appended in ascending node order; nodes skipped
/// over get degree zero. Node entries (12 bytes each) are accumulated in
/// memory — `O(n)`, which the semi-external model permits — and flushed as
/// the node table at [`DiskGraphWriter::finish`].
///
/// The edge-table encoding is chosen at creation
/// ([`DiskGraphWriter::create_with_format`]): raw `u32` runs (v1) or
/// delta-gap varints (v2, typically 2–3× smaller — see
/// [`FormatVersion`]). The appended lists and every reader-visible byte of
/// the node entries are identical either way.
pub struct DiskGraphWriter {
    paths: GraphPaths,
    counter: Arc<IoCounter>,
    version: FormatVersion,
    num_nodes: u32,
    node_entries: Vec<u8>,
    edge_writer: BlockWriter,
    next_node: u32,
    degree_sum: u64,
    /// Reusable encode buffer, so appends allocate nothing per list.
    encode_buf: Vec<u8>,
}

impl DiskGraphWriter {
    /// Begin writing a v1 graph with `num_nodes` nodes at
    /// `<base>.nodes/.edges`.
    pub fn create(base: &Path, num_nodes: u32, counter: Arc<IoCounter>) -> Result<Self> {
        Self::create_with_format(base, num_nodes, counter, FormatVersion::V1)
    }

    /// [`DiskGraphWriter::create`] with an explicit edge-table encoding.
    pub fn create_with_format(
        base: &Path,
        num_nodes: u32,
        counter: Arc<IoCounter>,
        version: FormatVersion,
    ) -> Result<Self> {
        let paths = GraphPaths::from_base(base);
        if let Some(parent) = paths.nodes.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut edge_writer = BlockWriter::create(&paths.edges, counter.clone())?;
        edge_writer.write_all(version.edge_magic())?;
        Ok(DiskGraphWriter {
            paths,
            counter,
            version,
            num_nodes,
            node_entries: Vec::with_capacity(num_nodes as usize * 12),
            edge_writer,
            next_node: 0,
            degree_sum: 0,
            encode_buf: Vec::new(),
        })
    }

    /// The edge-table encoding this writer produces.
    pub fn format_version(&self) -> FormatVersion {
        self.version
    }

    fn pad_to(&mut self, v: u32) {
        // Nodes without adjacency get (current offset, degree 0).
        let offset = self.edge_writer.position();
        while self.next_node < v {
            self.node_entries
                .extend_from_slice(&format::encode_node_entry(offset, 0));
            self.next_node += 1;
        }
    }

    /// Append `nbr(v)`; `v` must be ≥ every node appended so far and `nbrs`
    /// strictly sorted with ids in `0..num_nodes`, no self-loop.
    pub fn append_adjacency(&mut self, v: u32, nbrs: &[u32]) -> Result<()> {
        if v >= self.num_nodes {
            return Err(Error::NodeOutOfRange {
                node: v,
                num_nodes: self.num_nodes,
            });
        }
        if v < self.next_node {
            return Err(Error::InvalidArgument(format!(
                "adjacency lists must be appended in ascending order (got {v} after {})",
                self.next_node
            )));
        }
        for (i, &u) in nbrs.iter().enumerate() {
            if u >= self.num_nodes {
                return Err(Error::NodeOutOfRange {
                    node: u,
                    num_nodes: self.num_nodes,
                });
            }
            if u == v {
                return Err(Error::InvalidArgument(format!("self-loop at node {v}")));
            }
            if i > 0 && nbrs[i - 1] >= u {
                return Err(Error::InvalidArgument(format!(
                    "adjacency of node {v} not strictly sorted"
                )));
            }
        }
        self.pad_to(v);
        let offset = self.edge_writer.position();
        self.encode_buf.clear();
        match self.version {
            FormatVersion::V1 => crate::codec::encode_u32_run(nbrs, &mut self.encode_buf),
            FormatVersion::V2 => crate::codec::encode_gap_run(nbrs, &mut self.encode_buf),
            FormatVersion::V3 => crate::codec::encode_group_run(nbrs, &mut self.encode_buf),
        }
        self.edge_writer.write_all(&self.encode_buf)?;
        self.node_entries
            .extend_from_slice(&format::encode_node_entry(offset, nbrs.len() as u32));
        self.next_node = v + 1;
        self.degree_sum += nbrs.len() as u64;
        Ok(())
    }

    /// Flush everything, fsync both tables (and their directory entries)
    /// and return the final file pair.
    ///
    /// The fsyncs matter: `flush` only drains userspace buffers into the
    /// page cache, so a power loss after "successful" build could lose the
    /// tables on a real filesystem — fatal now that checkpoints and the
    /// maintenance WAL assume the base tables they reference are durable.
    pub fn finish(mut self) -> Result<GraphPaths> {
        self.pad_to(self.num_nodes);
        let edge_bytes = self.edge_writer.position() - format::EDGE_HEADER_LEN;
        self.edge_writer.finish()?.sync_all()?;

        let meta = match self.version {
            FormatVersion::V1 => format::GraphMeta::v1(self.num_nodes, self.degree_sum),
            FormatVersion::V2 => format::GraphMeta::v2(self.num_nodes, self.degree_sum, edge_bytes),
            FormatVersion::V3 => format::GraphMeta::v3(self.num_nodes, self.degree_sum, edge_bytes),
        };
        let mut w = BlockWriter::create(&self.paths.nodes, self.counter.clone())?;
        w.write_all(&format::encode_node_header(&meta))?;
        w.write_all(&self.node_entries)?;
        w.finish()?.sync_all()?;
        // Both files are durable; now make their directory entries so.
        crate::io::sync_parent_dir(self.counter.vfs().as_ref(), &self.paths.nodes)?;
        Ok(self.paths)
    }
}

/// Write an in-memory graph to disk (format v1) and return the file pair.
pub fn write_mem_graph(base: &Path, g: &MemGraph, counter: Arc<IoCounter>) -> Result<GraphPaths> {
    write_mem_graph_with(base, g, counter, FormatVersion::V1)
}

/// [`write_mem_graph`] with an explicit edge-table encoding.
pub fn write_mem_graph_with(
    base: &Path,
    g: &MemGraph,
    counter: Arc<IoCounter>,
    version: FormatVersion,
) -> Result<GraphPaths> {
    let mut w = DiskGraphWriter::create_with_format(base, g.num_nodes(), counter, version)?;
    for v in 0..g.num_nodes() {
        w.append_adjacency(v, g.neighbors(v))?;
    }
    w.finish()
}

/// Convenience: write `g` at `base` (format v1) and open it as a
/// [`DiskGraph`].
pub fn mem_to_disk(base: &Path, g: &MemGraph, counter: Arc<IoCounter>) -> Result<DiskGraph> {
    write_mem_graph(base, g, counter.clone())?;
    DiskGraph::open(base, counter)
}

/// Load a disk graph fully into memory (used by in-memory baselines, which
/// the paper charges with reading the whole graph once).
pub fn disk_to_mem(g: &mut DiskGraph) -> Result<MemGraph> {
    let n = g.num_nodes();
    let mut adj = Vec::with_capacity(n as usize);
    let mut buf = Vec::new();
    for v in 0..n {
        g.adjacency(v, &mut buf)?;
        adj.push(buf.clone());
    }
    Ok(MemGraph::from_adjacency(adj))
}

/// Memory-bounded external graph builder.
///
/// Edges are accumulated into a bounded in-memory run; full runs are sorted
/// and spilled to disk; [`ExternalGraphBuilder::finish`] k-way-merges the
/// runs (deduplicating) and streams adjacency lists straight into a
/// [`DiskGraphWriter`]. Peak memory is `O(run_capacity)` regardless of `m`,
/// mirroring how a web-scale edge list would actually be ingested.
///
/// Scratch-run I/O is intentionally *not* charged to the graph's counter:
/// the paper measures algorithm I/O, not one-off ingest cost.
pub struct ExternalGraphBuilder {
    scratch: TempDir,
    runs: Vec<PathBuf>,
    buf: Vec<u64>,
    run_capacity: usize,
    max_node: u32,
    saw_edge: bool,
    version: FormatVersion,
}

/// Pack a directed edge into a sortable u64.
#[inline]
fn pack(u: u32, v: u32) -> u64 {
    ((u as u64) << 32) | v as u64
}

#[inline]
fn unpack(x: u64) -> (u32, u32) {
    ((x >> 32) as u32, x as u32)
}

impl ExternalGraphBuilder {
    /// Create a builder spilling runs of at most `run_capacity` directed
    /// edges (two per undirected input edge), producing a v1 graph.
    pub fn new(run_capacity: usize) -> Result<Self> {
        Self::new_with_format(run_capacity, FormatVersion::V1)
    }

    /// [`ExternalGraphBuilder::new`] with an explicit edge-table encoding
    /// for the final graph.
    pub fn new_with_format(run_capacity: usize, version: FormatVersion) -> Result<Self> {
        if run_capacity < 2 {
            return Err(Error::InvalidArgument(
                "run capacity must hold at least one undirected edge".into(),
            ));
        }
        Ok(ExternalGraphBuilder {
            scratch: TempDir::new("kcore-build")?,
            runs: Vec::new(),
            buf: Vec::with_capacity(run_capacity),
            run_capacity,
            max_node: 0,
            saw_edge: false,
            version,
        })
    }

    /// Add one undirected edge. Self-loops are dropped silently.
    pub fn add_edge(&mut self, u: u32, v: u32) -> Result<()> {
        if u == v {
            return Ok(());
        }
        self.max_node = self.max_node.max(u).max(v);
        self.saw_edge = true;
        self.buf.push(pack(u, v));
        self.buf.push(pack(v, u));
        if self.buf.len() >= self.run_capacity {
            self.spill()?;
        }
        Ok(())
    }

    fn spill(&mut self) -> Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        self.buf.sort_unstable();
        self.buf.dedup();
        let path = self
            .scratch
            .path()
            .join(format!("run{}.bin", self.runs.len()));
        let mut w = BufWriter::new(std::fs::File::create(&path)?);
        for &x in &self.buf {
            w.write_all(&x.to_le_bytes())?;
        }
        w.flush()?;
        self.runs.push(path);
        self.buf.clear();
        Ok(())
    }

    /// Merge all runs and write the final graph with at least `min_nodes`
    /// nodes at `base`, charging only the final graph writes to `counter`.
    pub fn finish(
        mut self,
        base: &Path,
        min_nodes: u32,
        counter: Arc<IoCounter>,
    ) -> Result<DiskGraph> {
        self.spill()?;
        let n = if self.saw_edge {
            (self.max_node + 1).max(min_nodes)
        } else {
            min_nodes
        };
        let mut writer =
            DiskGraphWriter::create_with_format(base, n, counter.clone(), self.version)?;

        // K-way merge with global dedup.
        let mut sources: Vec<RunReader> = Vec::with_capacity(self.runs.len());
        for p in &self.runs {
            sources.push(RunReader::open(p)?);
        }
        let mut heap: BinaryHeap<std::cmp::Reverse<(u64, usize)>> = BinaryHeap::new();
        for (i, s) in sources.iter_mut().enumerate() {
            if let Some(x) = s.next()? {
                heap.push(std::cmp::Reverse((x, i)));
            }
        }
        let mut cur_node: Option<u32> = None;
        let mut nbrs: Vec<u32> = Vec::new();
        let mut last: Option<u64> = None;
        while let Some(std::cmp::Reverse((x, i))) = heap.pop() {
            if let Some(nx) = sources[i].next()? {
                heap.push(std::cmp::Reverse((nx, i)));
            }
            if last == Some(x) {
                continue;
            }
            last = Some(x);
            let (u, v) = unpack(x);
            if cur_node != Some(u) {
                if let Some(c) = cur_node {
                    writer.append_adjacency(c, &nbrs)?;
                }
                cur_node = Some(u);
                nbrs.clear();
            }
            nbrs.push(v);
        }
        if let Some(c) = cur_node {
            writer.append_adjacency(c, &nbrs)?;
        }
        writer.finish()?;
        DiskGraph::open(base, counter)
    }
}

/// Buffered reader over one spilled run of packed edges.
struct RunReader {
    reader: BufReader<std::fs::File>,
}

impl RunReader {
    fn open(path: &Path) -> Result<Self> {
        Ok(RunReader {
            reader: BufReader::with_capacity(1 << 16, std::fs::File::open(path)?),
        })
    }

    fn next(&mut self) -> Result<Option<u64>> {
        let mut b = [0u8; 8];
        match self.reader.read_exact(&mut b) {
            Ok(()) => Ok(Some(u64::from_le_bytes(b))),
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => Ok(None),
            Err(e) => Err(e.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::DEFAULT_BLOCK_SIZE;

    fn counter() -> Arc<IoCounter> {
        IoCounter::new(DEFAULT_BLOCK_SIZE)
    }

    #[test]
    fn writer_round_trip_with_isolated_tail() {
        let dir = TempDir::new("buildtest").unwrap();
        let g = MemGraph::from_edges([(0, 1), (1, 2)], 5);
        let mut dg = mem_to_disk(&dir.path().join("g"), &g, counter()).unwrap();
        assert_eq!(dg.num_nodes(), 5);
        let back = disk_to_mem(&mut dg).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn writer_rejects_unsorted_adjacency() {
        let dir = TempDir::new("buildtest").unwrap();
        let mut w = DiskGraphWriter::create(&dir.path().join("g"), 3, counter()).unwrap();
        assert!(w.append_adjacency(0, &[2, 1]).is_err());
    }

    #[test]
    fn writer_rejects_descending_nodes() {
        let dir = TempDir::new("buildtest").unwrap();
        let mut w = DiskGraphWriter::create(&dir.path().join("g"), 3, counter()).unwrap();
        w.append_adjacency(1, &[2]).unwrap();
        assert!(w.append_adjacency(0, &[1]).is_err());
    }

    #[test]
    fn writer_rejects_self_loop_and_out_of_range() {
        let dir = TempDir::new("buildtest").unwrap();
        let mut w = DiskGraphWriter::create(&dir.path().join("g"), 3, counter()).unwrap();
        assert!(w.append_adjacency(0, &[0]).is_err());
        assert!(w.append_adjacency(0, &[5]).is_err());
    }

    #[test]
    fn external_build_matches_in_memory_build() {
        // Small run capacity forces several spills and a real merge.
        let edges: Vec<(u32, u32)> = (0..500u32)
            .flat_map(|i| [(i, (i * 13 + 1) % 500), (i, (i * 29 + 7) % 500)])
            .collect();
        let expect = MemGraph::from_edges(edges.iter().copied(), 500);

        let dir = TempDir::new("buildtest").unwrap();
        let mut b = ExternalGraphBuilder::new(64).unwrap();
        for &(u, v) in &edges {
            b.add_edge(u, v).unwrap();
        }
        let mut dg = b.finish(&dir.path().join("g"), 500, counter()).unwrap();
        let got = disk_to_mem(&mut dg).unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn external_build_dedups_across_runs() {
        let dir = TempDir::new("buildtest").unwrap();
        let mut b = ExternalGraphBuilder::new(4).unwrap();
        for _ in 0..10 {
            b.add_edge(0, 1).unwrap();
            b.add_edge(1, 2).unwrap();
        }
        let dg = b.finish(&dir.path().join("g"), 0, counter()).unwrap();
        assert_eq!(dg.num_edges(), 2);
    }

    #[test]
    fn external_build_empty_graph() {
        let dir = TempDir::new("buildtest").unwrap();
        let b = ExternalGraphBuilder::new(8).unwrap();
        let dg = b.finish(&dir.path().join("g"), 4, counter()).unwrap();
        assert_eq!(dg.num_nodes(), 4);
        assert_eq!(dg.num_edges(), 0);
    }
}
