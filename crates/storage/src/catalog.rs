//! Persistent serving catalog: the manifest and state checkpoints behind a
//! durable graph registry.
//!
//! A serving process that maintains core numbers incrementally has three
//! things to lose on restart: *which* graphs it was serving, the maintained
//! per-node state the incremental algorithms exist to preserve, and the
//! not-yet-compacted edge edits sitting in each graph's update buffer. This
//! module persists all three:
//!
//! * [`Catalog`] — a versioned, checksummed manifest (`catalog.kc` in the
//!   data directory) recording the pool configuration and, per graph, the
//!   name, base path, charge budget and last checkpoint sequence number.
//!   Rewritten atomically (temp file + rename + directory fsync) on every
//!   registry change.
//! * [`StateCheckpoint`] — one file per graph (`<name>.ckpt`) holding the
//!   maintained state at a journal sequence number: core numbers, the
//!   Eq. 2 counters, and the pending update-buffer edits relative to the
//!   immutable on-disk tables. Restoring it is one sequential scan — the
//!   whole point, versus re-running a multi-pass decomposition.
//!
//! Both files carry a magic, a format version and a trailing CRC-32; a
//! failed validation surfaces as [`Error::Corrupt`], never a panic or an
//! unbounded allocation. The recovery invariants tying these artefacts to
//! the per-graph write-ahead journal ([`crate::wal`]) are documented in
//! ARCHITECTURE.md ("Durability").

use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::cache::EvictionPolicy;
use crate::codec;
use crate::error::{Error, Result};
use crate::format::FormatVersion;
use crate::io::{sync_parent_dir, IoCounter};
use crate::vfs::{StdVfs, Vfs};

/// Magic bytes opening the catalog manifest.
pub const CATALOG_MAGIC: &[u8; 8] = b"KCORCAT1";
/// Magic bytes opening a state checkpoint file.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"KCORCKP1";
/// Format version written into state checkpoints.
pub const DURABILITY_VERSION: u32 = 1;
/// Format version written into new catalog manifests. Version 1 manifests
/// (no per-entry edge-table format flag; all entries default to
/// [`FormatVersion::V1`]) and version 2 manifests (no per-entry table
/// generation; all entries default to generation 0) keep opening unchanged.
pub const CATALOG_VERSION: u32 = 3;

/// Name of the manifest file within a data directory.
pub const CATALOG_FILE: &str = "catalog.kc";

/// One served graph as recorded in the [`Catalog`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogEntry {
    /// Registry name of the graph (also names its `.ckpt`/`.wal` files).
    pub name: String,
    /// Base path of the immutable `<base>.nodes`/`.edges` table pair.
    pub base: PathBuf,
    /// The per-graph charge budget `M` its `read_ios` is priced against.
    pub charge_bytes: u64,
    /// Journal sequence number of a completed checkpoint. Advisory and
    /// possibly stale: the checkpoint file's own sequence number is
    /// authoritative, and the manifest is only rewritten when the registry
    /// shape changes — not on every checkpoint.
    pub checkpoint_seq: u64,
    /// Edge-table encoding of the base tables at registration time.
    /// Recovery cross-checks this against the node header actually on
    /// disk, so a base table swapped behind the catalog's back surfaces as
    /// corruption instead of silently serving a different file.
    pub format: FormatVersion,
    /// Table generation of the base file pair. Generation 0 names the
    /// registered base path verbatim; generation `g > 0` names
    /// `<base>.g<g>` — the output of the `g`-th compaction rewrite. The
    /// catalog rewrite that bumps this field is the single commit point of
    /// a compaction: until it lands, recovery keeps reading the old tables
    /// and the new-generation files are dead weight `fsck` can sweep.
    pub generation: u64,
}

impl CatalogEntry {
    /// Base path of the table pair this entry's generation actually names:
    /// the registered base for generation 0, `<base>.g<generation>`
    /// otherwise. All openers (recovery, fsck, the CLI) must resolve
    /// through this, never through [`CatalogEntry::base`] directly.
    pub fn table_base(&self) -> PathBuf {
        generation_base(&self.base, self.generation)
    }
}

/// The table base path of generation `generation` for a graph registered at
/// `base`: the base itself at generation 0, `<base>.g<generation>` beyond.
pub fn generation_base(base: &Path, generation: u64) -> PathBuf {
    if generation == 0 {
        base.to_path_buf()
    } else {
        let mut s = base.as_os_str().to_owned();
        s.push(format!(".g{generation}"));
        PathBuf::from(s)
    }
}

/// The persistent manifest of a durable serving directory: pool
/// configuration plus one [`CatalogEntry`] per served graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Catalog {
    /// Block size `B` of the shared pool (and of all charged accounting).
    pub block_size: usize,
    /// Global pool budget in bytes, arbitrated across all entries.
    pub budget_bytes: u64,
    /// Eviction policy of the pool (and of each graph's charge cache).
    pub policy: EvictionPolicy,
    /// The served graphs, in registration order.
    pub entries: Vec<CatalogEntry>,
}

impl Catalog {
    /// Path of the manifest inside `dir`.
    pub fn path_in(dir: &Path) -> PathBuf {
        dir.join(CATALOG_FILE)
    }

    /// True when `dir` holds a manifest.
    pub fn exists_in(dir: &Path) -> bool {
        Self::path_in(dir).is_file()
    }

    /// Serialize and atomically replace the manifest in `dir`: write to a
    /// temp file, fsync, rename over [`CATALOG_FILE`], fsync the directory.
    /// A crash at any point leaves either the old or the new manifest,
    /// never a mixture.
    pub fn write(&self, dir: &Path) -> Result<()> {
        self.write_with(dir, &StdVfs)
    }

    /// [`Catalog::write`] through an explicit [`Vfs`] — the seam the
    /// fault-schedule tests drive.
    pub fn write_with(&self, dir: &Path, vfs: &dyn Vfs) -> Result<()> {
        // Stamp the oldest version that can represent this registry: a
        // manifest whose graphs are all format v1 needs no per-entry format
        // byte, one whose graphs are all generation 0 needs no per-entry
        // generation — and writing the oldest layout keeps the data
        // directory openable by older binaries after a rollback.
        let needs_v2 = self.entries.iter().any(|e| e.format != FormatVersion::V1);
        let needs_v3 = self.entries.iter().any(|e| e.generation != 0);
        let version = if needs_v3 {
            CATALOG_VERSION
        } else if needs_v2 {
            2
        } else {
            1
        };
        let mut body = Vec::new();
        codec_put_u32(&mut body, version);
        codec_put_u32(&mut body, self.block_size as u32);
        body.extend_from_slice(&self.budget_bytes.to_le_bytes());
        body.push(encode_policy(self.policy));
        codec_put_u32(&mut body, self.entries.len() as u32);
        for e in &self.entries {
            put_str(&mut body, &e.name)?;
            let base = e.base.to_str().ok_or_else(|| {
                Error::InvalidArgument(format!(
                    "graph base path {:?} is not valid UTF-8 and cannot be catalogued",
                    e.base
                ))
            })?;
            put_str(&mut body, base)?;
            body.extend_from_slice(&e.charge_bytes.to_le_bytes());
            body.extend_from_slice(&e.checkpoint_seq.to_le_bytes());
            if version >= 2 {
                body.push(e.format.as_u32() as u8);
            }
            if version >= 3 {
                body.extend_from_slice(&e.generation.to_le_bytes());
            }
        }
        let mut bytes = Vec::with_capacity(body.len() + 12);
        bytes.extend_from_slice(CATALOG_MAGIC);
        bytes.extend_from_slice(&body);
        bytes.extend_from_slice(&codec::crc32(&body).to_le_bytes());

        let path = Self::path_in(dir);
        write_atomically(vfs, &path, &bytes)
    }

    /// Read and validate the manifest in `dir`.
    pub fn read(dir: &Path) -> Result<Catalog> {
        Self::read_with(dir, &StdVfs)
    }

    /// [`Catalog::read`] through an explicit [`Vfs`].
    pub fn read_with(dir: &Path, vfs: &dyn Vfs) -> Result<Catalog> {
        let path = Self::path_in(dir);
        let bytes = vfs.read(&path)?;
        let body = checked_body(&bytes, CATALOG_MAGIC, "catalog")?;
        let mut cur = Cursor::new(body);
        let version = cur.u32("catalog version")?;
        if version == 0 || version > CATALOG_VERSION {
            return Err(Error::corrupt(format!(
                "unsupported catalog version {version} (expected 1..={CATALOG_VERSION})"
            )));
        }
        let block_size = cur.u32("catalog block size")? as usize;
        if block_size == 0 {
            return Err(Error::corrupt("catalog block size is zero"));
        }
        let budget_bytes = cur.u64("catalog budget")?;
        let policy = decode_policy(cur.u8("catalog policy")?)?;
        let count = cur.u32("catalog entry count")? as usize;
        let mut entries = Vec::new();
        for _ in 0..count {
            let name = cur.str("entry name")?;
            let base = PathBuf::from(cur.str("entry base path")?);
            let charge_bytes = cur.u64("entry charge budget")?;
            let checkpoint_seq = cur.u64("entry checkpoint seq")?;
            // Version-1 manifests predate the edge-table format flag; every
            // graph they catalogue is a v1 graph.
            let format = if version >= 2 {
                FormatVersion::from_u32(cur.u8("entry format flag")? as u32)?
            } else {
                FormatVersion::V1
            };
            // Versions 1/2 predate table generations; every graph they
            // catalogue still lives at its registered base path.
            let generation = if version >= 3 {
                cur.u64("entry generation")?
            } else {
                0
            };
            entries.push(CatalogEntry {
                name,
                base,
                charge_bytes,
                checkpoint_seq,
                format,
                generation,
            });
        }
        cur.finish("catalog")?;
        Ok(Catalog {
            block_size,
            budget_bytes,
            policy,
            entries,
        })
    }
}

/// A graph's maintained per-node state frozen at journal sequence number
/// [`seq`](StateCheckpoint::seq), plus the update-buffer edits pending
/// against the immutable on-disk tables at that moment.
///
/// This is deliberately typed as raw vectors rather than any algorithm
/// structure: the storage layer persists *state*, the layers above decide
/// what it means. Restoring one is a single sequential read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateCheckpoint {
    /// Sequence number of the last maintenance op reflected in this state.
    pub seq: u64,
    /// Per-node core numbers.
    pub cores: Vec<u32>,
    /// Per-node Eq. 2 counters.
    pub cnt: Vec<i32>,
    /// Pending undirected edge edits `(u, v, inserted)` with `u < v`,
    /// relative to the on-disk tables (the update buffer's net content).
    pub edits: Vec<(u32, u32, bool)>,
}

impl StateCheckpoint {
    /// Serialize and atomically replace the checkpoint at `path` (temp
    /// file + rename + directory fsync), charging the sequential write to
    /// `counter`. The rename is the durability commit point the recovery
    /// protocol builds on.
    pub fn write(&self, path: &Path, counter: &Arc<IoCounter>) -> Result<()> {
        Self::write_parts(path, counter, self.seq, &self.cores, &self.cnt, &self.edits)
    }

    /// [`StateCheckpoint::write`] from borrowed parts — the hot-path form:
    /// the serving layer checkpoints every `checkpoint_every` ops while
    /// holding the graph's lock, and cloning two `O(n)` vectors per
    /// checkpoint just to feed an owned struct would betray the bounded
    /// semi-external footprint everything else maintains.
    pub fn write_parts(
        path: &Path,
        counter: &Arc<IoCounter>,
        seq: u64,
        cores: &[u32],
        cnt: &[i32],
        edits: &[(u32, u32, bool)],
    ) -> Result<()> {
        if cores.len() != cnt.len() {
            return Err(Error::InvalidArgument(format!(
                "checkpoint vectors disagree: {} cores vs {} counters",
                cores.len(),
                cnt.len()
            )));
        }
        let mut body = Vec::with_capacity(24 + cores.len() * 8 + edits.len() * 9);
        codec_put_u32(&mut body, DURABILITY_VERSION);
        body.extend_from_slice(&seq.to_le_bytes());
        codec_put_u32(&mut body, cores.len() as u32);
        codec_put_u32(&mut body, edits.len() as u32);
        for &c in cores {
            body.extend_from_slice(&c.to_le_bytes());
        }
        for &c in cnt {
            body.extend_from_slice(&c.to_le_bytes());
        }
        for &(u, v, inserted) in edits {
            body.extend_from_slice(&u.to_le_bytes());
            body.extend_from_slice(&v.to_le_bytes());
            body.push(inserted as u8);
        }
        let mut bytes = Vec::with_capacity(body.len() + 12);
        bytes.extend_from_slice(CHECKPOINT_MAGIC);
        bytes.extend_from_slice(&body);
        bytes.extend_from_slice(&codec::crc32(&body).to_le_bytes());

        let b = counter.block_size() as u64;
        counter.charge_write((bytes.len() as u64).div_ceil(b), bytes.len() as u64);
        write_atomically(counter.vfs().as_ref(), path, &bytes)
    }

    /// Read and validate the checkpoint at `path`, charging the sequential
    /// read to `counter`.
    pub fn read(path: &Path, counter: &Arc<IoCounter>) -> Result<StateCheckpoint> {
        let bytes = counter.vfs().read(path)?;
        let b = counter.block_size() as u64;
        counter.charge_read((bytes.len() as u64).div_ceil(b).max(1), bytes.len() as u64);

        let body = checked_body(&bytes, CHECKPOINT_MAGIC, "checkpoint")?;
        let mut cur = Cursor::new(body);
        let version = cur.u32("checkpoint version")?;
        if version != DURABILITY_VERSION {
            return Err(Error::corrupt(format!(
                "unsupported checkpoint version {version} (expected {DURABILITY_VERSION})"
            )));
        }
        let seq = cur.u64("checkpoint seq")?;
        let n = cur.u32("checkpoint node count")? as usize;
        let edits_len = cur.u32("checkpoint edit count")? as usize;
        // Validate the declared sizes against the actual payload before
        // allocating: corrupt counts must not drive unbounded allocations.
        let want = n
            .checked_mul(8)
            .and_then(|x| x.checked_add(edits_len.checked_mul(9)?))
            .ok_or_else(|| Error::corrupt("checkpoint sizes overflow"))?;
        if cur.remaining() != want {
            return Err(Error::corrupt(format!(
                "checkpoint declares {n} nodes and {edits_len} edits but holds {} payload bytes",
                cur.remaining()
            )));
        }
        let mut cores = Vec::with_capacity(n);
        for _ in 0..n {
            cores.push(cur.u32("core number")?);
        }
        let mut cnt = Vec::with_capacity(n);
        for _ in 0..n {
            cnt.push(cur.u32("cnt counter")? as i32);
        }
        let mut edits = Vec::with_capacity(edits_len);
        for _ in 0..edits_len {
            let u = cur.u32("edit endpoint")?;
            let v = cur.u32("edit endpoint")?;
            let flag = cur.u8("edit flag")?;
            if flag > 1 {
                return Err(Error::corrupt(format!("invalid edit flag {flag}")));
            }
            edits.push((u, v, flag == 1));
        }
        cur.finish("checkpoint")?;
        Ok(StateCheckpoint {
            seq,
            cores,
            cnt,
            edits,
        })
    }
}

/// Write `bytes` at `path` atomically: temp sibling, fsync, rename, fsync
/// the directory entry. Routed through `vfs` so every step — including
/// the rename that is the commit point — is fault-injectable.
fn write_atomically(vfs: &dyn Vfs, path: &Path, bytes: &[u8]) -> Result<()> {
    let tmp = {
        let mut s = path.as_os_str().to_owned();
        s.push(".tmp");
        PathBuf::from(s)
    };
    let mut f = vfs.create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    vfs.rename(&tmp, path)?;
    sync_parent_dir(vfs, path)
}

/// Strip and verify magic + trailing CRC, returning the body in between.
fn checked_body<'a>(bytes: &'a [u8], magic: &[u8; 8], what: &str) -> Result<&'a [u8]> {
    if bytes.len() < magic.len() + 4 {
        return Err(Error::corrupt(format!("{what} file shorter than framing")));
    }
    if &bytes[..magic.len()] != magic {
        return Err(Error::corrupt(format!("bad {what} magic")));
    }
    let body = &bytes[magic.len()..bytes.len() - 4];
    let stored = codec::get_u32(bytes, bytes.len() - 4);
    if codec::crc32(body) != stored {
        return Err(Error::corrupt(format!("{what} checksum mismatch")));
    }
    Ok(body)
}

fn codec_put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) -> Result<()> {
    if s.len() > u16::MAX as usize {
        return Err(Error::InvalidArgument(format!(
            "catalog string of {} bytes exceeds the u16 length prefix",
            s.len()
        )));
    }
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

fn encode_policy(p: EvictionPolicy) -> u8 {
    match p {
        EvictionPolicy::Lru => 0,
        EvictionPolicy::ScanLifo => 1,
    }
}

fn decode_policy(b: u8) -> Result<EvictionPolicy> {
    match b {
        0 => Ok(EvictionPolicy::Lru),
        1 => Ok(EvictionPolicy::ScanLifo),
        other => Err(Error::corrupt(format!("unknown eviction policy {other}"))),
    }
}

/// Bounds-checked sequential reader over a validated body.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn u8(&mut self, what: &str) -> Result<u8> {
        if self.remaining() < 1 {
            return Err(Error::corrupt(format!("truncated while reading {what}")));
        }
        let v = self.bytes[self.pos];
        self.pos += 1;
        Ok(v)
    }

    fn u32(&mut self, what: &str) -> Result<u32> {
        let v = codec::try_get_u32(self.bytes, self.pos, what)?;
        self.pos += 4;
        Ok(v)
    }

    fn u64(&mut self, what: &str) -> Result<u64> {
        let v = codec::try_get_u64(self.bytes, self.pos, what)?;
        self.pos += 8;
        Ok(v)
    }

    fn str(&mut self, what: &str) -> Result<String> {
        if self.remaining() < 2 {
            return Err(Error::corrupt(format!("truncated while reading {what}")));
        }
        let len = u16::from_le_bytes([self.bytes[self.pos], self.bytes[self.pos + 1]]) as usize;
        self.pos += 2;
        if self.remaining() < len {
            return Err(Error::corrupt(format!("truncated while reading {what}")));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + len])
            .map_err(|_| Error::corrupt(format!("{what} is not valid UTF-8")))?;
        self.pos += len;
        Ok(s.to_string())
    }

    fn finish(&self, what: &str) -> Result<()> {
        if self.remaining() != 0 {
            return Err(Error::corrupt(format!(
                "{} trailing bytes after {what} payload",
                self.remaining()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::DEFAULT_BLOCK_SIZE;
    use crate::tempdir::TempDir;

    fn sample_catalog() -> Catalog {
        Catalog {
            block_size: 4096,
            budget_bytes: 1 << 20,
            policy: EvictionPolicy::ScanLifo,
            entries: vec![
                CatalogEntry {
                    name: "alpha".into(),
                    base: PathBuf::from("/data/alpha"),
                    charge_bytes: 123_456,
                    checkpoint_seq: 7,
                    format: FormatVersion::V2,
                    generation: 0,
                },
                CatalogEntry {
                    name: "beta".into(),
                    base: PathBuf::from("rel/beta"),
                    charge_bytes: 0,
                    checkpoint_seq: 0,
                    format: FormatVersion::V1,
                    generation: 0,
                },
            ],
        }
    }

    #[test]
    fn version_1_manifest_still_opens_with_v1_entries() {
        // Hand-craft a pre-format-flag (version 1) manifest body.
        let mut body = Vec::new();
        body.extend_from_slice(&1u32.to_le_bytes()); // catalog version 1
        body.extend_from_slice(&4096u32.to_le_bytes());
        body.extend_from_slice(&(1u64 << 20).to_le_bytes());
        body.push(1); // ScanLifo
        body.extend_from_slice(&1u32.to_le_bytes()); // one entry
        body.extend_from_slice(&2u16.to_le_bytes());
        body.extend_from_slice(b"gg");
        body.extend_from_slice(&7u16.to_le_bytes());
        body.extend_from_slice(b"/old/gg");
        body.extend_from_slice(&42u64.to_le_bytes());
        body.extend_from_slice(&3u64.to_le_bytes());
        let mut bytes = Vec::new();
        bytes.extend_from_slice(CATALOG_MAGIC);
        bytes.extend_from_slice(&body);
        bytes.extend_from_slice(&codec::crc32(&body).to_le_bytes());

        let dir = TempDir::new("cat-v1").unwrap();
        std::fs::write(Catalog::path_in(dir.path()), &bytes).unwrap();
        let cat = Catalog::read(dir.path()).unwrap();
        assert_eq!(cat.entries.len(), 1);
        assert_eq!(cat.entries[0].name, "gg");
        assert_eq!(cat.entries[0].format, FormatVersion::V1);
    }

    #[test]
    fn all_v1_registry_writes_a_version_1_manifest() {
        // Downgrade safety: no v2 graph in the registry → the manifest is
        // written in the version-1 layout a pre-v2 binary can still open.
        let dir = TempDir::new("cat-down").unwrap();
        let mut cat = sample_catalog();
        for e in &mut cat.entries {
            e.format = FormatVersion::V1;
        }
        cat.write(dir.path()).unwrap();
        let bytes = std::fs::read(Catalog::path_in(dir.path())).unwrap();
        // The version field sits right after the 8-byte magic.
        assert_eq!(&bytes[8..12], &1u32.to_le_bytes());
        assert_eq!(Catalog::read(dir.path()).unwrap(), cat);
    }

    #[test]
    fn zero_generation_registry_writes_a_version_2_manifest() {
        // A registry with v2 graphs but no compacted generation stays in
        // the version-2 layout a pre-generation binary can still open.
        let dir = TempDir::new("cat-v2").unwrap();
        let cat = sample_catalog();
        cat.write(dir.path()).unwrap();
        let bytes = std::fs::read(Catalog::path_in(dir.path())).unwrap();
        assert_eq!(&bytes[8..12], &2u32.to_le_bytes());
        assert_eq!(Catalog::read(dir.path()).unwrap(), cat);
    }

    #[test]
    fn compacted_generation_round_trips_through_a_v3_manifest() {
        let dir = TempDir::new("cat-v3").unwrap();
        let mut cat = sample_catalog();
        cat.entries[0].generation = 5;
        cat.write(dir.path()).unwrap();
        let bytes = std::fs::read(Catalog::path_in(dir.path())).unwrap();
        assert_eq!(&bytes[8..12], &3u32.to_le_bytes());
        let back = Catalog::read(dir.path()).unwrap();
        assert_eq!(back, cat);
        assert_eq!(
            back.entries[0].table_base(),
            PathBuf::from("/data/alpha.g5")
        );
        assert_eq!(back.entries[1].table_base(), PathBuf::from("rel/beta"));
    }

    #[test]
    fn catalog_round_trip() {
        let dir = TempDir::new("cat").unwrap();
        let cat = sample_catalog();
        assert!(!Catalog::exists_in(dir.path()));
        cat.write(dir.path()).unwrap();
        assert!(Catalog::exists_in(dir.path()));
        assert_eq!(Catalog::read(dir.path()).unwrap(), cat);
    }

    #[test]
    fn catalog_rewrite_replaces() {
        let dir = TempDir::new("cat").unwrap();
        let mut cat = sample_catalog();
        cat.write(dir.path()).unwrap();
        cat.entries.pop();
        cat.entries[0].checkpoint_seq = 99;
        cat.write(dir.path()).unwrap();
        assert_eq!(Catalog::read(dir.path()).unwrap(), cat);
    }

    #[test]
    fn catalog_flipped_bit_is_corrupt() {
        let dir = TempDir::new("cat").unwrap();
        sample_catalog().write(dir.path()).unwrap();
        let path = Catalog::path_in(dir.path());
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 1;
        std::fs::write(&path, &bytes).unwrap();
        assert!(Catalog::read(dir.path()).unwrap_err().is_corrupt());
    }

    #[test]
    fn catalog_truncation_is_corrupt_not_panic() {
        let dir = TempDir::new("cat").unwrap();
        sample_catalog().write(dir.path()).unwrap();
        let path = Catalog::path_in(dir.path());
        let bytes = std::fs::read(&path).unwrap();
        for cut in 0..bytes.len() {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let err = Catalog::read(dir.path()).unwrap_err();
            assert!(
                err.is_corrupt() || matches!(err, Error::Io(_)),
                "cut {cut}: {err}"
            );
        }
    }

    fn sample_checkpoint() -> StateCheckpoint {
        StateCheckpoint {
            seq: 42,
            cores: vec![3, 2, 2, 0],
            cnt: vec![2, -1, 3, 0],
            edits: vec![(0, 3, true), (1, 2, false)],
        }
    }

    #[test]
    fn checkpoint_round_trip_charges_io() {
        let dir = TempDir::new("ckp").unwrap();
        let path = dir.path().join("g.ckpt");
        let c = IoCounter::new(DEFAULT_BLOCK_SIZE);
        let ck = sample_checkpoint();
        ck.write(&path, &c).unwrap();
        assert!(c.snapshot().write_ios >= 1);
        let back = StateCheckpoint::read(&path, &c).unwrap();
        assert_eq!(back, ck);
        assert!(c.snapshot().read_ios >= 1);
    }

    #[test]
    fn checkpoint_rejects_mismatched_vectors() {
        let dir = TempDir::new("ckp").unwrap();
        let c = IoCounter::new(DEFAULT_BLOCK_SIZE);
        let bad = StateCheckpoint {
            seq: 0,
            cores: vec![1, 2],
            cnt: vec![0],
            edits: vec![],
        };
        assert!(bad.write(&dir.path().join("x.ckpt"), &c).is_err());
    }

    #[test]
    fn checkpoint_corruption_detected_at_every_truncation() {
        let dir = TempDir::new("ckp").unwrap();
        let path = dir.path().join("g.ckpt");
        let c = IoCounter::new(DEFAULT_BLOCK_SIZE);
        sample_checkpoint().write(&path, &c).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        for cut in 0..bytes.len() {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            assert!(StateCheckpoint::read(&path, &c).unwrap_err().is_corrupt());
        }
        // Oversized declared counts must not allocate: craft a body with a
        // huge node count and a valid CRC.
        let mut body = Vec::new();
        body.extend_from_slice(&DURABILITY_VERSION.to_le_bytes());
        body.extend_from_slice(&0u64.to_le_bytes());
        body.extend_from_slice(&u32::MAX.to_le_bytes()); // nodes
        body.extend_from_slice(&u32::MAX.to_le_bytes()); // edits
        let mut forged = Vec::new();
        forged.extend_from_slice(CHECKPOINT_MAGIC);
        forged.extend_from_slice(&body);
        forged.extend_from_slice(&codec::crc32(&body).to_le_bytes());
        std::fs::write(&path, &forged).unwrap();
        assert!(StateCheckpoint::read(&path, &c).unwrap_err().is_corrupt());
    }

    #[test]
    fn atomic_write_leaves_no_temp_file() {
        let dir = TempDir::new("cat").unwrap();
        sample_catalog().write(dir.path()).unwrap();
        let names: Vec<String> = std::fs::read_dir(dir.path())
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec![CATALOG_FILE.to_string()]);
    }
}
