//! Memory-budgeted block cache (buffer pool) for disk graphs.
//!
//! The paper's external-memory model gives every algorithm a memory budget
//! `M` alongside the block size `B`; the seed storage layer only modelled
//! `B`, keeping O(1) buffered state and physically re-fetching every hot
//! block the random-access phases of SemiCore\* / SemiInsert\* / SemiDelete\*
//! touch. [`BlockCache`] makes the `M` side operational: a pool of `B`-sized
//! frames under a byte budget, shared by the node- and edge-table readers of
//! one [`DiskGraph`](crate::DiskGraph).
//!
//! Accounting contract: a read served from a resident frame charges **no**
//! read I/O; a miss charges exactly one read I/O for the block fetched. A
//! cold sequential scan therefore still costs `ceil(N / B)` I/Os — identical
//! to the uncached model — while re-visits of resident blocks are free, so
//! `read_ios` reports *blocks physically fetched*. A budget of zero frames
//! is expressed by simply not attaching a cache (see
//! [`DiskGraph::open_with_cache`](crate::DiskGraph::open_with_cache)).
//!
//! ## Eviction policies
//!
//! No single policy can guarantee both of the properties below at every
//! pool size (a current-block exemption is content-dependent state, which
//! is exactly what the stack-policy proof forbids), so each policy owns one:
//!
//! * [`EvictionPolicy::Lru`] — strict least-recently-used, no exemptions.
//!   A stack policy: re-running an access sequence against a warm cache can
//!   never charge more than the cold run did. The safe choice for
//!   unpredictable access patterns.
//! * [`EvictionPolicy::ScanLifo`] — CLOCK over re-referenced frames plus
//!   newest-first eviction among never-re-referenced ones, with each file's
//!   most-recently-touched frame **pinned**. The pin reproduces the
//!   uncached reader's "current block stays buffered" freebie, so (with one
//!   frame per file) attaching a cache of *any* size never charges more
//!   than no cache, request by request. One-shot scan traffic displaces
//!   itself instead of flushing the retained prefix, which is what earns
//!   cross-iteration hits under the *ascending re-scan* pattern of the
//!   semi-external convergence loops — a pattern where pure recency
//!   retention yields zero reuse. Not a stack policy: adversarial patterns
//!   can exhibit Bélády-style anomalies (a warm start charging slightly
//!   more than a cold one), the price of scan resistance. The default for
//!   [`DiskGraph`](crate::DiskGraph), whose workloads are exactly those
//!   convergence scans.
//!
//! ## Concurrency
//!
//! The pool is wrapped in `Arc<Mutex<..>>` by its users and is shared by
//! every reader of one graph — including the per-worker shard handles the
//! parallel scan executor opens (see
//! [`DiskGraph::try_clone`](crate::DiskGraph::try_clone)). Frame contents
//! are handed out as [`Arc`] clones, so the pool lock protects only the
//! lookup/eviction bookkeeping: decoding and visiting a block's bytes
//! happens entirely *outside* the lock, which is what lets concurrent
//! workers make progress on cache hits. An evicted frame's bytes stay alive
//! until the last in-flight reader drops its handle (resident memory can
//! transiently exceed the budget by one block per concurrent reader).
//!
//! A missed block is still fetched while the lock is held, serializing
//! concurrent *cold* fetches — a faithful model of the single disk
//! underneath, and the reason the charged miss count stays deterministic:
//! each distinct block misses exactly once per residency, no matter how
//! many workers race for it.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::error::Result;

/// Key of one cached block: (file id within the pool, block index).
type BlockKey = (u32, u64);

/// Sentinel for "no frame" in the intrusive LRU list.
const NONE: u32 = u32::MAX;

/// How the pool picks eviction victims. See the module docs for the
/// trade-off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// Strict least-recently-used (anomaly-free stack policy).
    #[default]
    Lru,
    /// Scan-resistant hybrid: CLOCK for re-referenced frames, newest-first
    /// for one-shot traffic. Best for cyclic ascending scans.
    ScanLifo,
}

/// One `B`-sized frame (the tail block of a file may be shorter).
///
/// `data` is `Arc`-shared with in-flight readers so block bytes can be
/// visited outside the pool lock; eviction swaps the `Arc` rather than
/// mutating through it.
#[derive(Debug)]
struct Frame {
    key: Option<BlockKey>,
    data: Arc<Vec<u8>>,
    /// Re-referenced since load (ScanLifo protection bit; streak hits on the
    /// pinned frame do not count — see `get_or_load`).
    referenced: bool,
    /// Intrusive LRU list links (Lru policy).
    prev: u32,
    next: u32,
}

/// Hit/miss/eviction counters of one pool.
///
/// Counts *pool lookups* only: streak re-reads of a reader's current block
/// are served from that reader's frame memo (see
/// [`BlockReader`](crate::io::BlockReader)) and never reach the pool, so
/// `hits` measures block-transition reuse, not raw request volume. Charged
/// I/O is unaffected either way (memo traffic and pool hits both charge
/// nothing).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Block requests served from a resident frame (not charged).
    pub hits: u64,
    /// Block requests that required a physical fetch (charged 1 I/O each).
    pub misses: u64,
    /// Frames whose contents were discarded to make room.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]` (0 when nothing was requested).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A bounded pool of disk blocks. See the module docs for policy and
/// accounting contracts.
#[derive(Debug)]
pub struct BlockCache {
    block_size: usize,
    max_frames: usize,
    policy: EvictionPolicy,
    frames: Vec<Frame>,
    map: HashMap<BlockKey, usize>,
    /// CLOCK hand (ScanLifo fallback sweep).
    hand: usize,
    /// Keyless frames (invalidated or failed loads) to reuse before evicting.
    free: Vec<usize>,
    /// Insertion-ordered stack of never-re-referenced frames (ScanLifo).
    cold_stack: Vec<usize>,
    /// LRU list endpoints (Lru): `lru_head` is the coldest frame.
    lru_head: u32,
    lru_tail: u32,
    /// Per-file most-recently-touched frame, exempt from eviction.
    pinned: HashMap<u32, usize>,
    stats: CacheStats,
}

impl BlockCache {
    /// Pool of `B`-sized frames under `budget_bytes` of memory
    /// (`M / B` frames).
    ///
    /// Errors when the budget cannot hold even one frame — a degenerate
    /// pool would silently realise a different budget than the caller
    /// asked for. Callers expressing "no cache" should skip construction
    /// entirely; see [`BlockCache::shared`] for the budget-aware
    /// constructor that maps an insufficient budget to `None`.
    pub fn new(block_size: usize, budget_bytes: u64, policy: EvictionPolicy) -> Result<BlockCache> {
        Self::new_with_min_frames(block_size, budget_bytes, 1, policy)
    }

    /// [`BlockCache::new`] requiring room for at least `min_frames` frames
    /// (pass the number of files sharing the pool, so every reader keeps
    /// its pinned current block). Errors when `budget_bytes` is too small.
    pub fn new_with_min_frames(
        block_size: usize,
        budget_bytes: u64,
        min_frames: u64,
        policy: EvictionPolicy,
    ) -> Result<BlockCache> {
        assert!(block_size > 0, "block size must be positive");
        if budget_bytes < min_frames.max(1) * block_size as u64 {
            return Err(crate::error::Error::InvalidArgument(format!(
                "cache budget of {budget_bytes} B holds fewer than {} {block_size} B frame(s)",
                min_frames.max(1)
            )));
        }
        let max_frames = (budget_bytes / block_size as u64) as usize;
        Ok(BlockCache {
            block_size,
            max_frames,
            policy,
            frames: Vec::new(),
            map: HashMap::new(),
            hand: 0,
            free: Vec::new(),
            cold_stack: Vec::new(),
            lru_head: NONE,
            lru_tail: NONE,
            pinned: HashMap::new(),
            stats: CacheStats::default(),
        })
    }

    /// Budget-aware shared-pool constructor: `None` when the budget cannot
    /// hold `min_frames` blocks (the uncached behaviour), otherwise a pool
    /// ready to be shared by several readers. Pass the number of files that
    /// will share the pool as `min_frames` so every reader keeps its pinned
    /// current block.
    pub fn shared(
        block_size: usize,
        budget_bytes: u64,
        min_frames: u64,
        policy: EvictionPolicy,
    ) -> Option<Arc<Mutex<BlockCache>>> {
        Self::new_with_min_frames(block_size, budget_bytes, min_frames, policy)
            .ok()
            .map(|c| Arc::new(Mutex::new(c)))
    }

    /// The frame size `B`.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// The configured eviction policy.
    pub fn policy(&self) -> EvictionPolicy {
        self.policy
    }

    /// Maximum number of resident frames (`M / B`).
    pub fn capacity_frames(&self) -> usize {
        self.max_frames
    }

    /// Frames currently holding a block.
    pub fn resident_frames(&self) -> usize {
        self.map.len()
    }

    /// Bytes currently held in frames.
    pub fn resident_bytes(&self) -> u64 {
        self.frames.iter().map(|f| f.data.len() as u64).sum()
    }

    /// Counters since construction (or the last [`BlockCache::reset_stats`]).
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Keys of all resident blocks (diagnostics; order unspecified).
    pub fn resident_keys(&self) -> Vec<(u32, u64)> {
        self.map.keys().copied().collect()
    }

    /// Zero the hit/miss/eviction counters.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Look up `(file, block)`; on miss, fill a frame of `len` bytes via
    /// `load` and insert it. Returns a shared handle to the frame's bytes
    /// and whether a miss occurred (the caller charges one read I/O per
    /// miss).
    ///
    /// The returned [`Arc`] stays valid after the pool lock is released —
    /// callers should drop the lock *before* decoding or visiting the
    /// bytes, so concurrent readers only serialize on the bookkeeping.
    pub fn get_or_load(
        &mut self,
        file: u32,
        block: u64,
        len: usize,
        load: impl FnOnce(&mut [u8]) -> Result<()>,
    ) -> Result<(Arc<Vec<u8>>, bool)> {
        debug_assert!(len <= self.block_size);
        if let Some(&idx) = self.map.get(&(file, block)) {
            self.stats.hits += 1;
            match self.policy {
                EvictionPolicy::Lru => {
                    // Recency refreshes on *every* touch — canonical stack
                    // behaviour is what makes the warm-start guarantee hold.
                    self.lru_unlink(idx);
                    self.lru_push_mru(idx);
                }
                EvictionPolicy::ScanLifo => {
                    // A hit on the file's current (pinned) frame is streak
                    // continuation — traffic the uncached single-window
                    // reader serves for free — and carries no reuse signal.
                    // Only a return to a *different* resident block counts
                    // as a genuine re-reference.
                    if self.pinned.get(&file) != Some(&idx) {
                        self.frames[idx].referenced = true;
                        self.pinned.insert(file, idx);
                    }
                }
            }
            return Ok((Arc::clone(&self.frames[idx].data), false));
        }
        self.stats.misses += 1;
        let idx = self.grab_frame(file);
        // Reuse the frame's buffer when no reader still holds it; otherwise
        // the old bytes belong to an in-flight visit and a fresh allocation
        // takes their place (never `make_mut`: that would memcpy doomed
        // bytes only for `load` to overwrite every one of them).
        if Arc::get_mut(&mut self.frames[idx].data).is_none() {
            self.frames[idx].data = Arc::new(Vec::with_capacity(len));
        }
        // Audited: the branch above guarantees uniqueness (a shared Arc was
        // just replaced by a fresh one), so this cannot fail.
        #[allow(clippy::expect_used)]
        let buf = Arc::get_mut(&mut self.frames[idx].data).expect("frame buffer uniquely owned");
        buf.resize(len, 0);
        if let Err(e) = load(buf) {
            // The frame holds no valid block; recycle it first next time.
            self.free.push(idx);
            return Err(e);
        }
        let frame = &mut self.frames[idx];
        frame.key = Some((file, block));
        // Inserted with the reference bit clear: a block must be revisited
        // to earn protection, which keeps one-shot scan traffic from
        // flushing the genuinely hot set.
        frame.referenced = false;
        self.map.insert((file, block), idx);
        match self.policy {
            EvictionPolicy::Lru => self.lru_push_mru(idx),
            EvictionPolicy::ScanLifo => {
                self.pinned.insert(file, idx);
                self.cold_stack.push(idx);
            }
        }
        Ok((Arc::clone(&self.frames[idx].data), true))
    }

    /// Drop every frame belonging to `file` (its backing file was replaced).
    pub fn invalidate_file(&mut self, file: u32) {
        self.pinned.remove(&file);
        self.map.retain(|&(f, _), _| f != file);
        for idx in 0..self.frames.len() {
            if self.frames[idx].key.is_some_and(|(f, _)| f == file) {
                self.drop_frame(idx);
            }
        }
    }

    /// Drop all frames.
    pub fn clear(&mut self) {
        self.pinned.clear();
        self.map.clear();
        for idx in 0..self.frames.len() {
            if self.frames[idx].key.is_some() {
                self.drop_frame(idx);
            }
        }
    }

    /// Drop every frame belonging to a file id in `[first, first + count)`
    /// in **one** bookkeeping pass. Semantically identical to calling
    /// [`BlockCache::invalidate_file`] per id, but a pool lease can span
    /// billions of ids (most never used), so teardown must cost O(frames),
    /// not O(ids) — see [`crate::pool::PoolLease`].
    pub fn invalidate_file_range(&mut self, first: u32, count: u32) {
        let end = first.checked_add(count); // None: range reaches u32::MAX inclusive
        let in_range = |f: u32| f >= first && end.is_none_or(|e| f < e);
        self.pinned.retain(|&f, _| !in_range(f));
        self.map.retain(|&(f, _), _| !in_range(f));
        for idx in 0..self.frames.len() {
            if self.frames[idx].key.is_some_and(|(f, _)| in_range(f)) {
                self.drop_frame(idx);
            }
        }
    }

    /// Detach `idx` from all bookkeeping and add it to the free pool.
    /// The map entry must already be gone.
    fn drop_frame(&mut self, idx: usize) {
        if self.policy == EvictionPolicy::Lru {
            self.lru_unlink(idx);
        }
        let frame = &mut self.frames[idx];
        frame.key = None;
        frame.referenced = false;
        // Length drives resident_bytes(). In-flight readers sharing the Arc
        // keep the old bytes alive; the pool's view becomes empty either way.
        match Arc::get_mut(&mut frame.data) {
            Some(buf) => buf.clear(),
            None => frame.data = Arc::new(Vec::new()),
        }
        self.free.push(idx);
    }

    /// Index of a frame free to overwrite for a block of `for_file`:
    /// recycle invalidated frames, grow the pool while under budget,
    /// otherwise evict per policy. Pinned frames are passed over while any
    /// ordinary victim exists; when only pins remain, the requesting file's
    /// own pin is sacrificed first, so each file degrades to exactly the
    /// one-current-block buffer of the uncached reader rather than files
    /// evicting each other's position.
    fn grab_frame(&mut self, for_file: u32) -> usize {
        while let Some(idx) = self.free.pop() {
            // Invalidation and load failure can enqueue an index twice; skip
            // entries that regained a key in the meantime.
            if self.frames[idx].key.is_none() {
                return idx;
            }
        }
        if self.frames.len() < self.max_frames {
            // Buffers are allocated lazily by the first load's `resize`: a
            // pool whose loads are zero-length (a charge cache — see
            // [`crate::pool`]) then never allocates frame bytes at all.
            self.frames.push(Frame {
                key: None,
                data: Arc::new(Vec::new()),
                referenced: false,
                prev: NONE,
                next: NONE,
            });
            return self.frames.len() - 1;
        }
        let idx = match self.policy {
            EvictionPolicy::Lru => self.pick_lru_victim(),
            EvictionPolicy::ScanLifo => self.pick_scan_victim(for_file),
        };
        if self.policy == EvictionPolicy::Lru {
            self.lru_unlink(idx);
        }
        let frame = &mut self.frames[idx];
        if let Some(key) = frame.key.take() {
            self.map.remove(&key);
            self.stats.evictions += 1;
        }
        frame.referenced = false;
        // A forced eviction can take another file's pinned frame; drop any
        // pin still pointing here so it cannot shield the new occupant.
        self.pinned.retain(|_, &mut p| p != idx);
        idx
    }

    /// Lru victim: the globally coldest frame. No pin exemptions — any
    /// content-dependent exemption would break the stack (inclusion)
    /// property behind the warm-start guarantee.
    fn pick_lru_victim(&mut self) -> usize {
        debug_assert!(self.lru_head != NONE, "full pool has a list head");
        self.lru_head as usize
    }

    /// ScanLifo victim: newest never-re-referenced frame, falling back to
    /// escalating CLOCK sweeps.
    fn pick_scan_victim(&mut self, for_file: u32) -> usize {
        // Pop insertion-stack entries, discarding stale ones (re-referenced
        // since load — they earned CLOCK protection). Entries pinned by
        // *other* files are set aside and restored: they are merely
        // *currently* exempt, not protected forever.
        let mut still_pinned: Vec<usize> = Vec::with_capacity(self.pinned.len());
        let mut victim = None;
        while let Some(idx) = self.cold_stack.pop() {
            let frame = &self.frames[idx];
            if frame.referenced || frame.key.is_none() {
                continue;
            }
            if self.pinned.iter().any(|(&f, &p)| p == idx && f != for_file) {
                still_pinned.push(idx);
                continue;
            }
            victim = Some(idx);
            break;
        }
        while let Some(idx) = still_pinned.pop() {
            self.cold_stack.push(idx);
        }
        if let Some(idx) = victim {
            return idx;
        }
        // Escalating sweeps: (1) CLOCK over frames not pinned by other
        // files, clearing reference bits; (2) allow anything (a pool
        // smaller than its foreign pin set cannot honour the exemption).
        let len = self.frames.len();
        let mut scanned = 0usize;
        loop {
            let idx = self.hand;
            self.hand = (self.hand + 1) % len;
            scanned += 1;
            let forced = scanned > 2 * len + 1;
            if !forced {
                let pinned_by_other = self.pinned.iter().any(|(&f, &p)| p == idx && f != for_file);
                if pinned_by_other {
                    continue;
                }
            }
            let frame = &mut self.frames[idx];
            if frame.referenced && !forced {
                frame.referenced = false;
                continue;
            }
            return idx;
        }
    }

    fn lru_unlink(&mut self, idx: usize) {
        let (prev, next) = {
            let f = &self.frames[idx];
            (f.prev, f.next)
        };
        if prev != NONE {
            self.frames[prev as usize].next = next;
        } else if self.lru_head == idx as u32 {
            self.lru_head = next;
        }
        if next != NONE {
            self.frames[next as usize].prev = prev;
        } else if self.lru_tail == idx as u32 {
            self.lru_tail = prev;
        }
        let f = &mut self.frames[idx];
        f.prev = NONE;
        f.next = NONE;
    }

    fn lru_push_mru(&mut self, idx: usize) {
        let tail = self.lru_tail;
        let f = &mut self.frames[idx];
        f.prev = tail;
        f.next = NONE;
        if tail != NONE {
            self.frames[tail as usize].next = idx as u32;
        } else {
            self.lru_head = idx as u32;
        }
        self.lru_tail = idx as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill_with(cache: &mut BlockCache, file: u32, block: u64, byte: u8) -> bool {
        let (_, miss) = cache
            .get_or_load(file, block, 4, |buf| {
                buf.fill(byte);
                Ok(())
            })
            .unwrap();
        miss
    }

    fn lru(frames: u64) -> BlockCache {
        BlockCache::new(4, frames * 4, EvictionPolicy::Lru).unwrap()
    }

    fn scan_lifo(frames: u64) -> BlockCache {
        BlockCache::new(4, frames * 4, EvictionPolicy::ScanLifo).unwrap()
    }

    #[test]
    fn invalidate_file_range_matches_per_file_invalidation() {
        for mut c in [lru(16), scan_lifo(16)] {
            for f in 0..6u32 {
                fill_with(&mut c, f, 0, f as u8);
                fill_with(&mut c, f, 1, f as u8);
            }
            c.invalidate_file_range(2, 3); // files 2, 3, 4
            let mut left: Vec<u32> = c.resident_keys().iter().map(|&(f, _)| f).collect();
            left.sort_unstable();
            left.dedup();
            assert_eq!(left, vec![0, 1, 5]);
            // The saturating end: a range reaching past u32::MAX clears
            // everything from `first` up.
            c.invalidate_file_range(1, u32::MAX);
            let left: Vec<u32> = c.resident_keys().iter().map(|&(f, _)| f).collect();
            assert_eq!(left, vec![0, 0]);
        }
    }

    #[test]
    fn sub_frame_budget_is_an_error_not_a_clamp() {
        // The old behaviour silently clamped to one frame, realising a
        // bigger budget than requested; now it errors like
        // `new_with_min_frames`.
        assert!(BlockCache::new(4096, 0, EvictionPolicy::Lru).is_err());
        assert!(BlockCache::new(4096, 4095, EvictionPolicy::Lru).is_err());
        assert!(BlockCache::new(4096, 4096, EvictionPolicy::Lru).is_ok());
        assert!(BlockCache::new_with_min_frames(4096, 4096, 2, EvictionPolicy::Lru).is_err());
        assert!(BlockCache::new_with_min_frames(4096, 8192, 2, EvictionPolicy::Lru).is_ok());
    }

    #[test]
    fn hits_after_first_load_both_policies() {
        for mut c in [lru(16), scan_lifo(16)] {
            assert!(fill_with(&mut c, 0, 7, 0xAB));
            assert!(!fill_with(&mut c, 0, 7, 0xCD));
            let (data, miss) = c.get_or_load(0, 7, 4, |_| unreachable!()).unwrap();
            assert!(!miss);
            assert_eq!(
                data.as_slice(),
                &[0xAB; 4],
                "hit returns the originally loaded bytes"
            );
            assert_eq!(c.stats().hits, 2);
            assert_eq!(c.stats().misses, 1);
        }
    }

    #[test]
    fn files_do_not_collide() {
        for mut c in [lru(16), scan_lifo(16)] {
            fill_with(&mut c, 0, 1, 1);
            fill_with(&mut c, 1, 1, 2);
            let (a, _) = c.get_or_load(0, 1, 4, |_| unreachable!()).unwrap();
            assert_eq!(a.as_slice(), &[1; 4]);
            let (b, _) = c.get_or_load(1, 1, 4, |_| unreachable!()).unwrap();
            assert_eq!(b.as_slice(), &[2; 4]);
        }
    }

    #[test]
    fn capacity_is_enforced() {
        for mut c in [lru(4), scan_lifo(4)] {
            for blk in 0..4 {
                fill_with(&mut c, 0, blk, blk as u8);
            }
            assert_eq!(c.resident_frames(), 4);
            fill_with(&mut c, 0, 99, 99);
            assert_eq!(c.resident_frames(), 4);
            assert_eq!(c.stats().evictions, 1);
        }
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = lru(3);
        fill_with(&mut c, 0, 0, 0);
        fill_with(&mut c, 0, 1, 1);
        fill_with(&mut c, 0, 2, 2);
        // Touch 0 so 1 becomes the coldest; a new block must evict 1.
        assert!(!fill_with(&mut c, 0, 0, 0));
        fill_with(&mut c, 0, 3, 3);
        assert!(!fill_with(&mut c, 0, 0, 0), "recently used survived");
        assert!(fill_with(&mut c, 0, 1, 1), "coldest was evicted");
    }

    #[test]
    fn scan_lifo_retains_prefix_under_cyclic_scan() {
        // Cycle over 12 blocks with 5 frames (one consumed as the rotating
        // slot). Pure recency retention scores zero hits on every lap; the
        // scan-resistant policy must keep a stable prefix instead.
        let mut c = scan_lifo(5);
        for _lap in 0..3 {
            for blk in 0..12 {
                fill_with(&mut c, 0, blk, blk as u8);
            }
        }
        let s = c.stats();
        assert!(
            s.hits >= 6,
            "cyclic scan should hit the retained prefix (hits {})",
            s.hits
        );
    }

    #[test]
    fn pinned_current_block_survives_other_files_traffic() {
        let mut c = scan_lifo(2);
        fill_with(&mut c, 0, 5, 5);
        // A burst of single-use traffic from the other file must not evict
        // file 0's current block (the uncached-parity pin).
        for blk in 0..6 {
            fill_with(&mut c, 1, blk, blk as u8);
        }
        assert!(!fill_with(&mut c, 0, 5, 5), "pinned block was evicted");
    }

    #[test]
    fn invalidate_file_drops_only_that_file() {
        for mut c in [lru(16), scan_lifo(16)] {
            fill_with(&mut c, 0, 0, 1);
            fill_with(&mut c, 1, 0, 2);
            c.invalidate_file(0);
            assert!(fill_with(&mut c, 0, 0, 3), "file 0 must reload");
            assert!(!fill_with(&mut c, 1, 0, 2), "file 1 untouched");
        }
    }

    #[test]
    fn load_failure_leaves_no_mapping() {
        for mut c in [lru(4), scan_lifo(4)] {
            let err = c.get_or_load(0, 0, 4, |_| Err(crate::error::Error::corrupt("injected")));
            assert!(err.is_err());
            assert_eq!(c.resident_frames(), 0);
            assert!(fill_with(&mut c, 0, 0, 5), "same block fetches again");
        }
    }

    #[test]
    fn handed_out_bytes_survive_eviction() {
        // The visit-outside-lock contract: a reader holding a frame handle
        // keeps the original bytes even after the pool evicts and refills
        // the frame underneath it.
        let mut c = lru(2);
        fill_with(&mut c, 0, 0, 7);
        let (held, _) = c.get_or_load(0, 0, 4, |_| unreachable!()).unwrap();
        for blk in 1..5 {
            fill_with(&mut c, 0, blk, blk as u8);
        }
        assert!(fill_with(&mut c, 0, 0, 9), "block 0 was evicted");
        assert_eq!(held.as_slice(), &[7; 4], "in-flight handle kept its bytes");
    }

    #[test]
    fn shared_enforces_minimum_frames() {
        let p = EvictionPolicy::Lru;
        assert!(BlockCache::shared(4096, 0, 2, p).is_none());
        assert!(BlockCache::shared(4096, 8191, 2, p).is_none());
        assert!(BlockCache::shared(4096, 8192, 2, p).is_some());
    }

    #[test]
    fn clear_empties_the_pool() {
        for mut c in [lru(8), scan_lifo(8)] {
            for blk in 0..8 {
                fill_with(&mut c, 0, blk, 1);
            }
            c.clear();
            assert_eq!(c.resident_frames(), 0);
            // Everything reloads; the recycled frames must behave.
            for blk in 0..8 {
                assert!(fill_with(&mut c, 0, blk, 2));
            }
        }
    }

    #[test]
    fn stats_hit_rate() {
        let mut c = lru(16);
        assert_eq!(c.stats().hit_rate(), 0.0);
        fill_with(&mut c, 0, 0, 0);
        fill_with(&mut c, 0, 1, 0);
        fill_with(&mut c, 0, 0, 0);
        fill_with(&mut c, 0, 1, 0);
        let s = c.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 2);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    /// Exhaustive-ish randomised check of the LRU warm-start guarantee: a
    /// warm replay of any access sequence charges no more than the cold run.
    #[test]
    fn lru_warm_replay_never_costs_more() {
        let mut state = 0xC0FFEEu64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for trial in 0..50 {
            let frames = 2 + next() % 6;
            let blocks = 1 + next() % 14;
            let pattern: Vec<(u32, u64)> = (0..(20 + next() % 60))
                .map(|_| ((next() % 2) as u32, next() % blocks))
                .collect();
            let mut c = lru(frames);
            let run = |c: &mut BlockCache| {
                let before = c.stats().misses;
                for &(f, b) in &pattern {
                    fill_with(c, f, b, 1);
                }
                c.stats().misses - before
            };
            let cold = run(&mut c);
            let warm = run(&mut c);
            assert!(
                warm <= cold,
                "trial {trial}: warm {warm} > cold {cold} (frames {frames}, blocks {blocks})\npattern: {pattern:?}"
            );
        }
    }
}
