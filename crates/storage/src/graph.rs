//! Disk-resident graph: open, random access and sequential scans.

use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::cache::{BlockCache, CacheStats, EvictionPolicy};
use crate::error::{Error, Result};
use crate::format::{self, FormatVersion, GraphMeta, GraphPaths};
use crate::io::{BlockReader, IoCounter, IoSnapshot};
use crate::pool::{PoolLease, SharedPool};

/// File id of the node table within a graph-private cache (also the node
/// table's id inside a pooled graph's charge cache).
const NODE_FILE: u32 = 0;
/// File id of the edge table within a graph-private cache (also the edge
/// table's id inside a pooled graph's charge cache).
const EDGE_FILE: u32 = 1;

/// How a [`DiskGraph`]'s readers attach to a frame pool.
///
/// Private opens ([`DiskGraph::open_with_cache`]) use a cache of their own
/// under the fixed ids 0/1 and charge model I/O per pool miss. Pooled opens
/// ([`DiskGraph::open_pooled`]) read through a process-wide
/// [`SharedPool`] under leased ids, with a private deterministic *charge
/// cache* deciding the model I/O (see [`crate::pool`] for the contract).
#[derive(Debug, Clone)]
struct CacheBinding {
    /// The frame store actually serving bytes (private or process-wide).
    pool: Arc<Mutex<BlockCache>>,
    /// The node table's file id within `pool`.
    node_file: u32,
    /// The edge table's file id within `pool`.
    edge_file: u32,
    /// Deterministic per-graph charge cache (pooled opens only); its file
    /// ids are always `NODE_FILE`/`EDGE_FILE`.
    charge: Option<Arc<Mutex<BlockCache>>>,
    /// Keeps the pool's file ids reserved; shared by every
    /// [`DiskGraph::try_clone`] handle so the last drop invalidates the
    /// graph's frames (pooled opens only).
    lease: Option<Arc<PoolLease>>,
}

/// A read-only graph stored on disk as a node table + edge table pair.
///
/// All reads are charged to the [`IoCounter`] supplied at open time, so the
/// semi-external algorithms can report I/O exactly as the paper does. By
/// default the struct holds only O(1) memory (two single-window block
/// readers); the node table is *not* cached in memory — the semi-external
/// model keeps node *state* (core numbers, counts) in memory, not the node
/// table itself, which is re-scanned from disk every iteration (§IV-A).
///
/// [`DiskGraph::open_with_cache`] attaches a memory-budgeted buffer pool
/// shared by both tables, realising the model's `M` parameter: resident
/// blocks are re-read for free and `read_ios` counts blocks physically
/// fetched. With the budget at zero the behaviour (and every charged count)
/// is identical to [`DiskGraph::open`].
///
/// [`DiskGraph::open_pooled`] instead serves blocks from a process-wide
/// [`SharedPool`] arbitrating one byte budget across many graphs; charged
/// `read_ios` then follows the graph's private deterministic charge cache
/// while [`IoSnapshot::physical_reads`] tracks actual pool fetches (see
/// [`crate::pool`]).
#[derive(Debug)]
pub struct DiskGraph {
    paths: GraphPaths,
    meta: GraphMeta,
    counter: Arc<IoCounter>,
    node_reader: BlockReader,
    edge_reader: BlockReader,
    /// Frame pool attachment when opened with a cache budget or against a
    /// shared pool.
    binding: Option<CacheBinding>,
    /// Reusable decode buffer for the borrowed-adjacency path.
    adj_scratch: Vec<u32>,
}

impl DiskGraph {
    /// Open the graph stored at `<base>.nodes` / `<base>.edges`.
    pub fn open(base: &Path, counter: Arc<IoCounter>) -> Result<DiskGraph> {
        Self::open_paths(GraphPaths::from_base(base), counter)
    }

    /// Open with a block-cache budget of `cache_bytes` (the model's `M`),
    /// using the scan-resistant eviction policy tuned for the semi-external
    /// convergence loops ([`EvictionPolicy::ScanLifo`]).
    ///
    /// A budget below one frame per table (two blocks) behaves exactly like
    /// [`DiskGraph::open`] — zero remains the semantics-preserving default
    /// everywhere else in the crate.
    ///
    /// ```
    /// use graphstore::{mem_to_disk, DiskGraph, IoCounter, MemGraph, TempDir};
    ///
    /// let dir = TempDir::new("doc").unwrap();
    /// let g = MemGraph::from_edges([(0, 1), (1, 2), (0, 2)], 3);
    /// mem_to_disk(&dir.path().join("g"), &g, IoCounter::new(4096)).unwrap();
    ///
    /// // Attach a 1 MiB buffer pool: re-reads of resident blocks are free.
    /// let counter = IoCounter::new(4096);
    /// let mut disk =
    ///     DiskGraph::open_with_cache(&dir.path().join("g"), counter, 1 << 20).unwrap();
    /// let mut nbrs = Vec::new();
    /// disk.adjacency(1, &mut nbrs).unwrap();
    /// let cold = disk.io().read_ios;
    /// disk.adjacency(0, &mut nbrs).unwrap(); // resident: charges nothing
    /// disk.adjacency(2, &mut nbrs).unwrap();
    /// assert_eq!(disk.io().read_ios, cold);
    /// ```
    pub fn open_with_cache(
        base: &Path,
        counter: Arc<IoCounter>,
        cache_bytes: u64,
    ) -> Result<DiskGraph> {
        Self::open_with_cache_policy(base, counter, cache_bytes, EvictionPolicy::ScanLifo)
    }

    /// [`DiskGraph::open_with_cache`] with an explicit eviction policy.
    pub fn open_with_cache_policy(
        base: &Path,
        counter: Arc<IoCounter>,
        cache_bytes: u64,
        policy: EvictionPolicy,
    ) -> Result<DiskGraph> {
        // One pinned frame per table, so any attached cache dominates the
        // uncached per-reader buffers request by request.
        let binding =
            BlockCache::shared(counter.block_size(), cache_bytes, 2, policy).map(|pool| {
                CacheBinding {
                    pool,
                    node_file: NODE_FILE,
                    edge_file: EDGE_FILE,
                    charge: None,
                    lease: None,
                }
            });
        Self::open_paths_impl(GraphPaths::from_base(base), counter, binding)
    }

    /// Open against a process-wide [`SharedPool`]: bytes are served from
    /// the pool's globally budgeted frames (under freshly leased file ids,
    /// freed again when the last handle of this graph drops), while charged
    /// `read_ios` follows a private deterministic *charge cache* of
    /// `charge_bytes` — the graph's own model budget `M`. Physical fetches
    /// land in [`IoSnapshot::physical_reads`] and move with pool
    /// contention; the charge does not. See [`crate::pool`] for the full
    /// contract.
    ///
    /// A `charge_bytes` below two frames disables the charge cache: the
    /// graph then charges one read I/O per shared-pool miss, which is
    /// honest but dependent on the other graphs' traffic.
    ///
    /// Errors when `counter` and `pool` disagree on the block size.
    pub fn open_pooled(
        base: &Path,
        counter: Arc<IoCounter>,
        pool: &SharedPool,
        charge_bytes: u64,
    ) -> Result<DiskGraph> {
        if pool.block_size() != counter.block_size() {
            return Err(Error::InvalidArgument(format!(
                "pool block size {} does not match counter block size {}",
                pool.block_size(),
                counter.block_size()
            )));
        }
        let lease = pool.register(2)?;
        let charge = BlockCache::shared(counter.block_size(), charge_bytes, 2, pool.policy());
        let binding = CacheBinding {
            pool: pool.cache(),
            node_file: lease.file_id(0),
            edge_file: lease.file_id(1),
            charge,
            lease: Some(Arc::new(lease)),
        };
        Self::open_paths_impl(GraphPaths::from_base(base), counter, Some(binding))
    }

    /// Open from an explicit file pair.
    pub fn open_paths(paths: GraphPaths, counter: Arc<IoCounter>) -> Result<DiskGraph> {
        Self::open_paths_impl(paths, counter, None)
    }

    fn open_paths_impl(
        paths: GraphPaths,
        counter: Arc<IoCounter>,
        binding: Option<CacheBinding>,
    ) -> Result<DiskGraph> {
        let (mut node_reader, mut edge_reader) = Self::open_readers(&paths, &counter, &binding)?;

        let meta = read_meta(&mut node_reader)?;
        if node_reader.file_len() != meta.node_file_len() {
            return Err(Error::corrupt(format!(
                "node table length {} does not match header (expected {})",
                node_reader.file_len(),
                meta.node_file_len()
            )));
        }
        if edge_reader.file_len() != meta.edge_file_len() {
            return Err(Error::corrupt(format!(
                "edge table length {} does not match header (expected {})",
                edge_reader.file_len(),
                meta.edge_file_len()
            )));
        }
        // The edge table must carry the magic of the node header's version:
        // a mismatched pair (e.g. a v1 edge table renamed under a v2 node
        // table) would otherwise decode garbage.
        let mut edge_magic = [0u8; format::EDGE_HEADER_LEN as usize];
        edge_reader.read_exact_at(0, &mut edge_magic)?;
        if &edge_magic != meta.version.edge_magic() {
            return Err(Error::corrupt(format!(
                "edge table magic does not match format {}",
                meta.version.tag()
            )));
        }
        // Opening a graph is metadata work, not part of any measured run:
        // drop the buffered reader state (and cached frames) the header and
        // magic reads seeded, then zero the counters — otherwise the
        // current-block freebie would make the first measured request of
        // block 0 free, skewing every cold-run figure.
        node_reader.invalidate();
        edge_reader.invalidate();
        counter.reset();
        if let Some(b) = binding.as_ref() {
            // A graph-private cache starts its measurement fresh; a shared
            // pool's counters belong to every registered graph and must
            // survive another graph opening mid-measurement.
            if b.lease.is_none() {
                crate::io::lock_cache(&b.pool).reset_stats();
            }
            if let Some(ghost) = b.charge.as_ref() {
                crate::io::lock_cache(ghost).reset_stats();
            }
        }
        Ok(DiskGraph {
            paths,
            meta,
            counter,
            node_reader,
            edge_reader,
            binding,
            adj_scratch: Vec::new(),
        })
    }

    /// Construct the reader pair, cached when a binding is supplied.
    fn open_readers(
        paths: &GraphPaths,
        counter: &Arc<IoCounter>,
        binding: &Option<CacheBinding>,
    ) -> Result<(BlockReader, BlockReader)> {
        Ok(match binding {
            Some(b) => (
                BlockReader::open_cached_with_charge(
                    &paths.nodes,
                    counter.clone(),
                    b.pool.clone(),
                    b.node_file,
                    b.charge.as_ref().map(|g| (g.clone(), NODE_FILE)),
                )?,
                BlockReader::open_cached_with_charge(
                    &paths.edges,
                    counter.clone(),
                    b.pool.clone(),
                    b.edge_file,
                    b.charge.as_ref().map(|g| (g.clone(), EDGE_FILE)),
                )?,
            ),
            None => (
                BlockReader::open(&paths.nodes, counter.clone())?,
                BlockReader::open(&paths.edges, counter.clone())?,
            ),
        })
    }

    /// Open an additional read handle over the same file pair, sharing this
    /// handle's [`IoCounter`] and (when attached) block-cache pool.
    ///
    /// This is what the parallel scan executor hands each worker thread:
    /// every handle owns its own O(1) reader state (read-ahead window,
    /// decode scratch) so scans proceed concurrently, while charged I/O
    /// accumulates in the one shared counter and fetched blocks land in the
    /// one shared pool — a block fetched by any worker is a free hit for
    /// all of them. Unlike [`DiskGraph::open`], cloning does **not** reset
    /// the counter or the cache statistics: the clone joins the measurement
    /// in progress.
    pub fn try_clone(&self) -> Result<DiskGraph> {
        let (node_reader, edge_reader) =
            Self::open_readers(&self.paths, &self.counter, &self.binding)?;
        Ok(DiskGraph {
            paths: self.paths.clone(),
            meta: self.meta,
            counter: self.counter.clone(),
            node_reader,
            edge_reader,
            binding: self.binding.clone(),
            adj_scratch: Vec::new(),
        })
    }

    /// Hit/miss counters of the attached block cache (`None` when opened
    /// without one). For pooled opens these are the **shared pool's**
    /// counters — all registered graphs combined.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.binding
            .as_ref()
            .map(|b| crate::io::lock_cache(&b.pool).stats())
    }

    /// Hit/miss counters of this graph's deterministic charge cache
    /// (`None` unless opened via [`DiskGraph::open_pooled`] with a charge
    /// budget of at least two frames). Misses here are exactly the charged
    /// `read_ios` of the cached paths.
    pub fn charge_stats(&self) -> Option<CacheStats> {
        self.binding
            .as_ref()
            .and_then(|b| b.charge.as_ref())
            .map(|g| crate::io::lock_cache(g).stats())
    }

    /// Resident cache blocks as `(file, block)` keys (diagnostics). For
    /// pooled opens this lists the whole pool, every graph's frames; this
    /// graph's own ids are [`DiskGraph::cache_file_ids`].
    pub fn cache_resident_keys(&self) -> Vec<(u32, u64)> {
        self.binding
            .as_ref()
            .map_or_else(Vec::new, |b| crate::io::lock_cache(&b.pool).resident_keys())
    }

    /// The `(node table, edge table)` file ids this graph's blocks are
    /// keyed under in its frame pool (`None` uncached).
    pub fn cache_file_ids(&self) -> Option<(u32, u32)> {
        self.binding.as_ref().map(|b| (b.node_file, b.edge_file))
    }

    /// Memory budget realised by the attached cache, in bytes (0 uncached).
    /// For pooled opens this is the **shared pool's** global budget, not a
    /// per-graph reservation.
    pub fn cache_budget_bytes(&self) -> u64 {
        self.binding.as_ref().map_or(0, |b| {
            let pool = crate::io::lock_cache(&b.pool);
            (pool.capacity_frames() * pool.block_size()) as u64
        })
    }

    /// Graph metadata.
    pub fn meta(&self) -> GraphMeta {
        self.meta
    }

    /// Edge-table encoding of this graph (see [`FormatVersion`]).
    pub fn format_version(&self) -> FormatVersion {
        self.meta.version
    }

    /// Number of nodes `n`.
    pub fn num_nodes(&self) -> u32 {
        self.meta.num_nodes
    }

    /// Number of undirected edges `m`.
    pub fn num_edges(&self) -> u64 {
        self.meta.num_edges()
    }

    /// Sum of degrees (`2m`).
    pub fn degree_sum(&self) -> u64 {
        self.meta.degree_sum
    }

    /// The file pair backing this graph.
    pub fn paths(&self) -> &GraphPaths {
        &self.paths
    }

    /// The shared I/O counter.
    pub fn counter(&self) -> &Arc<IoCounter> {
        &self.counter
    }

    /// Current I/O counters.
    pub fn io(&self) -> IoSnapshot {
        self.counter.snapshot()
    }

    fn check_node(&self, v: u32) -> Result<()> {
        if v >= self.meta.num_nodes {
            return Err(Error::NodeOutOfRange {
                node: v,
                num_nodes: self.meta.num_nodes,
            });
        }
        Ok(())
    }

    /// Read node `v`'s `(offset, degree)` entry from the node table (charged).
    pub fn node_entry(&mut self, v: u32) -> Result<(u64, u32)> {
        self.check_node(v)?;
        let mut e = [0u8; format::NODE_ENTRY_LEN as usize];
        self.node_reader
            .read_exact_at(self.meta.node_entry_offset(v), &mut e)?;
        let (offset, degree) = format::decode_node_entry(&e);
        // Lower bound of the run's extent: 4 bytes per id raw, at least one
        // byte per varint, at least the control region for v3 groups. The
        // v2/v3 decoders enforce the exact end themselves.
        let min_bytes: u128 = match self.meta.version {
            FormatVersion::V1 => 4 * degree as u128,
            FormatVersion::V2 => degree as u128,
            FormatVersion::V3 => (degree as u128).div_ceil(4),
        };
        let end = offset as u128 + min_bytes;
        if offset < format::EDGE_HEADER_LEN || end > self.meta.edge_file_len() as u128 {
            return Err(Error::corrupt(format!(
                "node {v} entry points outside the edge table (offset {offset}, degree {degree})"
            )));
        }
        Ok((offset, degree))
    }

    /// Load `nbr(v)` into `buf` (cleared first). One node-table access plus a
    /// contiguous edge-table read, both charged.
    pub fn adjacency(&mut self, v: u32, buf: &mut Vec<u32>) -> Result<()> {
        let (offset, degree) = self.node_entry(v)?;
        buf.clear();
        if degree == 0 {
            return Ok(());
        }
        match self.meta.version {
            FormatVersion::V1 => {
                buf.resize(degree as usize, 0);
                read_u32_run(&mut self.edge_reader, offset, buf)?;
                validate_run(v, self.meta.num_nodes, buf)
            }
            FormatVersion::V2 => {
                self.edge_reader
                    .read_gap_run(offset, degree as usize, buf)?;
                validate_sorted_run(v, self.meta.num_nodes, buf)
            }
            FormatVersion::V3 => {
                self.edge_reader
                    .read_group_run(offset, degree as usize, buf)?;
                validate_sorted_run(v, self.meta.num_nodes, buf)
            }
        }
    }

    /// Visit `nbr(v)` as a borrowed slice, avoiding the caller-side copy.
    ///
    /// For v1 graphs, when the run sits inside a single resident cache frame
    /// (and the platform is little-endian, matching the on-disk encoding)
    /// the slice is decoded **in place from the frame** — no bytes are
    /// copied at all. The frame handle is taken with the pool lock released
    /// before `f` runs, so parallel shard scans (see
    /// [`DiskGraph::try_clone`]) never serialize on each other's visit
    /// closures. Otherwise — and always for v2/v3 graphs, whose encoded
    /// runs have no in-place representation — the run is decoded into an
    /// internal per-handle scratch buffer that is reused across calls, so
    /// no hot loop allocates. Charged identically to
    /// [`DiskGraph::adjacency`].
    pub fn with_adjacency<R>(&mut self, v: u32, f: impl FnOnce(&[u32]) -> R) -> Result<R> {
        let (offset, degree) = self.node_entry(v)?;
        if degree == 0 {
            return Ok(f(&[]));
        }
        let n = self.meta.num_nodes;
        if self.meta.version != FormatVersion::V1 {
            // Decode-into-scratch: the cached path decodes straight from
            // pool frames (no byte copy), the uncached path streams through
            // the reader's reusable chunk buffer.
            match self.meta.version {
                FormatVersion::V2 => {
                    self.edge_reader
                        .read_gap_run(offset, degree as usize, &mut self.adj_scratch)?
                }
                _ => self.edge_reader.read_group_run(
                    offset,
                    degree as usize,
                    &mut self.adj_scratch,
                )?,
            };
            validate_sorted_run(v, n, &self.adj_scratch)?;
            return Ok(f(&self.adj_scratch));
        }
        let len_bytes = degree as usize * 4;
        if let Some((frame, from)) = self.edge_reader.cached_run(offset, len_bytes)? {
            let run = borrow_or_decode(&frame[from..from + len_bytes], &mut self.adj_scratch);
            validate_run(v, self.meta.num_nodes, run)?;
            return Ok(f(run));
        }
        // Uncached reader or multi-block run: decode a copy.
        self.adj_scratch.clear();
        self.adj_scratch.resize(degree as usize, 0);
        read_u32_run(&mut self.edge_reader, offset, &mut self.adj_scratch)?;
        validate_run(v, n, &self.adj_scratch)?;
        Ok(f(&self.adj_scratch))
    }

    /// Read all degrees with one sequential node-table scan (charged).
    ///
    /// This is how the semi-external algorithms initialise
    /// `core(v) := deg(v)` — a single pass over the node table.
    pub fn read_degrees(&mut self) -> Result<Vec<u32>> {
        let n = self.meta.num_nodes as usize;
        let mut degrees = Vec::with_capacity(n);
        // Read entries in chunks to keep syscalls low; accounting is
        // unaffected (sequential blocks are charged once either way).
        const CHUNK: usize = 4096;
        let mut raw = vec![0u8; CHUNK * format::NODE_ENTRY_LEN as usize];
        let mut v = 0usize;
        while v < n {
            let take = CHUNK.min(n - v);
            let bytes = take * format::NODE_ENTRY_LEN as usize;
            self.node_reader
                .read_exact_at(self.meta.node_entry_offset(v as u32), &mut raw[..bytes])?;
            for i in 0..take {
                let entry = &raw[i * format::NODE_ENTRY_LEN as usize..];
                let (_, degree) = format::decode_node_entry(entry);
                degrees.push(degree);
            }
            v += take;
        }
        Ok(degrees)
    }

    /// Drop buffered windows (and any cached frames), so subsequent reads
    /// are charged in full — e.g. to measure a fresh cold run. Note this
    /// does not re-open the files: after an on-disk replacement the graph
    /// must be re-opened (the update buffer's flush does both).
    pub fn invalidate_buffers(&mut self) {
        self.node_reader.invalidate();
        self.edge_reader.invalidate();
    }

    /// Enable (or disable) background readahead pipelining on both table
    /// readers: while a sequential scan decodes the current read-ahead
    /// window, a worker thread fetches the next one (see
    /// [`BlockReader::set_readahead`](crate::io::BlockReader::set_readahead)).
    /// Physical pipelining only — every charged counter is bit-identical
    /// with readahead on or off, which the format-v3 differential suite
    /// asserts. Off by default; clones do not inherit it.
    pub fn set_readahead(&mut self, enabled: bool) -> Result<()> {
        self.node_reader.set_readahead(enabled)?;
        self.edge_reader.set_readahead(enabled)
    }

    /// Re-open the file pair in place (after a rewrite replaced the files).
    pub(crate) fn reopen(&mut self) -> Result<()> {
        if let Some(b) = self.binding.as_ref() {
            {
                let mut pool = crate::io::lock_cache(&b.pool);
                pool.invalidate_file(b.node_file);
                pool.invalidate_file(b.edge_file);
            }
            // The charge cache models the graph's own budget: a rewrite
            // makes its tracked blocks stale the same way, so the next
            // reads charge in full — identical to a private cache's reopen.
            if let Some(ghost) = b.charge.as_ref() {
                let mut ghost = crate::io::lock_cache(ghost);
                ghost.invalidate_file(NODE_FILE);
                ghost.invalidate_file(EDGE_FILE);
            }
        }
        let (mut node_reader, edge_reader) =
            Self::open_readers(&self.paths, &self.counter, &self.binding)?;
        self.meta = read_meta(&mut node_reader)?;
        self.node_reader = node_reader;
        self.edge_reader = edge_reader;
        Ok(())
    }
}

/// Read and decode the node-table header from `reader` (as many bytes as
/// the file offers up to the largest version's header).
fn read_meta(reader: &mut BlockReader) -> Result<GraphMeta> {
    let want = format::MAX_NODE_HEADER_LEN.min(reader.file_len()) as usize;
    let mut header = [0u8; format::MAX_NODE_HEADER_LEN as usize];
    reader.read_exact_at(0, &mut header[..want])?;
    format::decode_node_header(&header[..want])
}

/// Check a run the v2/v3 decoders produced: both enforce strict ascent
/// structurally (a zero gap is corrupt in v2; v3 stores `gap − 1`, making
/// unsorted lists unrepresentable), so only the range of the maximum — the
/// last element — needs checking. No re-walk of the run.
fn validate_sorted_run(v: u32, num_nodes: u32, run: &[u32]) -> Result<()> {
    if let Some(&last) = run.last() {
        if last >= num_nodes {
            return Err(Error::corrupt(format!(
                "neighbour {last} of node {v} out of range"
            )));
        }
    }
    Ok(())
}

/// Check a decoded adjacency run: ids in range, strictly sorted.
fn validate_run(v: u32, num_nodes: u32, run: &[u32]) -> Result<()> {
    for (i, &u) in run.iter().enumerate() {
        if u >= num_nodes {
            return Err(Error::corrupt(format!(
                "neighbour {u} of node {v} out of range"
            )));
        }
        if i > 0 && run[i - 1] >= u {
            return Err(Error::corrupt(format!(
                "adjacency list of node {v} not strictly sorted"
            )));
        }
    }
    Ok(())
}

/// Reinterpret raw little-endian frame bytes as a `u32` run without copying
/// when alignment allows, falling back to a decode into `scratch`.
fn borrow_or_decode<'a>(bytes: &'a [u8], scratch: &'a mut Vec<u32>) -> &'a [u32] {
    #[cfg(target_endian = "little")]
    {
        // SAFETY: every bit pattern is a valid u32; align_to only yields a
        // non-empty prefix/suffix when the pointer or length is misaligned,
        // in which case we take the copy path below.
        let (prefix, mid, suffix) = unsafe { bytes.align_to::<u32>() };
        if prefix.is_empty() && suffix.is_empty() {
            return mid;
        }
    }
    scratch.clear();
    scratch.extend(bytes.chunks_exact(4).map(|c| {
        let mut b = [0u8; 4];
        b.copy_from_slice(c);
        u32::from_le_bytes(b)
    }));
    scratch
}

/// Read `out.len()` little-endian u32 values starting at byte `offset`.
pub(crate) fn read_u32_run(reader: &mut BlockReader, offset: u64, out: &mut [u32]) -> Result<()> {
    // Decode through a byte staging buffer; adjacency lists are short-lived
    // so a thread-local scratch would buy little.
    let mut bytes = vec![0u8; out.len() * 4];
    reader.read_exact_at(offset, &mut bytes)?;
    for (i, chunk) in bytes.chunks_exact(4).enumerate() {
        let mut b = [0u8; 4];
        b.copy_from_slice(chunk);
        out[i] = u32::from_le_bytes(b);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::write_mem_graph;
    use crate::io::DEFAULT_BLOCK_SIZE;
    use crate::memgraph::MemGraph;
    use crate::tempdir::TempDir;

    fn sample() -> MemGraph {
        MemGraph::from_edges([(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)], 6)
    }

    fn on_disk(g: &MemGraph) -> (TempDir, DiskGraph) {
        let dir = TempDir::new("graphtest").unwrap();
        let base = dir.path().join("g");
        let counter = IoCounter::new(DEFAULT_BLOCK_SIZE);
        write_mem_graph(&base, g, counter.clone()).unwrap();
        let dg = DiskGraph::open(&base, counter).unwrap();
        (dir, dg)
    }

    #[test]
    fn metadata_matches_source() {
        let g = sample();
        let (_dir, dg) = on_disk(&g);
        assert_eq!(dg.num_nodes(), 6);
        assert_eq!(dg.num_edges(), 5);
        assert_eq!(dg.degree_sum(), 10);
    }

    #[test]
    fn adjacency_round_trips() {
        let g = sample();
        let (_dir, mut dg) = on_disk(&g);
        let mut buf = Vec::new();
        for v in 0..g.num_nodes() {
            dg.adjacency(v, &mut buf).unwrap();
            assert_eq!(buf.as_slice(), g.neighbors(v), "node {v}");
        }
    }

    #[test]
    fn degrees_round_trip() {
        let g = sample();
        let (_dir, mut dg) = on_disk(&g);
        assert_eq!(dg.read_degrees().unwrap(), g.degrees());
    }

    #[test]
    fn out_of_range_node_rejected() {
        let (_dir, mut dg) = on_disk(&sample());
        let mut buf = Vec::new();
        assert!(matches!(
            dg.adjacency(100, &mut buf),
            Err(Error::NodeOutOfRange { node: 100, .. })
        ));
    }

    #[test]
    fn truncated_edge_file_detected_at_open() {
        let g = sample();
        let dir = TempDir::new("graphtest").unwrap();
        let base = dir.path().join("g");
        let counter = IoCounter::new(DEFAULT_BLOCK_SIZE);
        write_mem_graph(&base, &g, counter.clone()).unwrap();
        let paths = GraphPaths::from_base(&base);
        let len = std::fs::metadata(&paths.edges).unwrap().len();
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(&paths.edges)
            .unwrap();
        f.set_len(len - 4).unwrap();
        let err = DiskGraph::open(&base, counter).unwrap_err();
        assert!(err.is_corrupt());
    }

    #[test]
    fn corrupted_entry_detected_on_access() {
        let g = sample();
        let dir = TempDir::new("graphtest").unwrap();
        let base = dir.path().join("g");
        let counter = IoCounter::new(DEFAULT_BLOCK_SIZE);
        write_mem_graph(&base, &g, counter.clone()).unwrap();
        let paths = GraphPaths::from_base(&base);
        // Stamp a bogus offset into node 1's entry.
        let mut bytes = std::fs::read(&paths.nodes).unwrap();
        let at = format::NODE_HEADER_LEN_V1 as usize + format::NODE_ENTRY_LEN as usize;
        crate::codec::put_u64(&mut bytes, at, 1 << 40);
        std::fs::write(&paths.nodes, &bytes).unwrap();
        let mut dg = DiskGraph::open(&base, counter).unwrap();
        let mut buf = Vec::new();
        assert!(dg.adjacency(1, &mut buf).unwrap_err().is_corrupt());
    }

    #[test]
    fn pooled_charge_is_contention_independent() {
        use crate::pool::SharedPool;

        // Two graphs spanning many 512 B blocks.
        let n = 2000u32;
        let g = MemGraph::from_edges((0..n).map(|i| (i, (i + 1) % n)), n);
        let h = MemGraph::from_edges((0..n).map(|i| (i, (i + 7) % n)), n);
        let dir = TempDir::new("pooledtest").unwrap();
        let block = 512usize;
        write_mem_graph(&dir.path().join("g"), &g, IoCounter::new(block)).unwrap();
        write_mem_graph(&dir.path().join("h"), &h, IoCounter::new(block)).unwrap();

        // The workload: two full ascending adjacency sweeps (the second is
        // re-read traffic a private budget would absorb).
        let sweep = |dg: &mut DiskGraph| {
            let mut buf = Vec::new();
            for _ in 0..2 {
                for v in 0..n {
                    dg.adjacency(v, &mut buf).unwrap();
                }
            }
        };
        let charge_budget = 1 << 20; // absorbs either graph's working set

        // Solo: g alone on a tight 8-frame pool.
        let pool = SharedPool::new(block, 8 * block as u64).unwrap();
        let counter = IoCounter::new(block);
        let mut dg =
            DiskGraph::open_pooled(&dir.path().join("g"), counter.clone(), &pool, charge_budget)
                .unwrap();
        sweep(&mut dg);
        let solo = counter.snapshot();

        // Contended: same tight pool, but h's sweep interleaves per node.
        let pool = SharedPool::new(block, 8 * block as u64).unwrap();
        let counter = IoCounter::new(block);
        let mut dg =
            DiskGraph::open_pooled(&dir.path().join("g"), counter.clone(), &pool, charge_budget)
                .unwrap();
        let mut dh = DiskGraph::open_pooled(
            &dir.path().join("h"),
            IoCounter::new(block),
            &pool,
            charge_budget,
        )
        .unwrap();
        let mut buf = Vec::new();
        for _ in 0..2 {
            for v in 0..n {
                dg.adjacency(v, &mut buf).unwrap();
                dh.adjacency(v, &mut buf).unwrap();
            }
        }
        let shared = counter.snapshot();

        assert_eq!(
            solo.read_ios, shared.read_ios,
            "charged reads must not see the neighbour's traffic"
        );
        assert!(
            shared.physical_reads > solo.physical_reads,
            "interleaved traffic on a thrashing pool must cost extra physical \
             fetches (solo {}, shared {})",
            solo.physical_reads,
            shared.physical_reads
        );
        // With a working-set charge budget, the second sweep charges
        // nothing: charged = distinct blocks touched.
        let distinct = (dg.meta().node_file_len().div_ceil(block as u64) + 1)
            + (dg.meta().edge_file_len().div_ceil(block as u64) + 1);
        assert!(
            solo.read_ios <= distinct,
            "charged {} exceeds distinct-block bound {}",
            solo.read_ios,
            distinct
        );
        // The pool itself never exceeded its 8-frame budget.
        assert!(pool.resident_bytes() <= pool.budget_bytes());
        assert!(pool.resident_frames() <= 8);
    }

    #[test]
    fn pooled_open_rejects_block_size_mismatch() {
        use crate::pool::SharedPool;
        let g = sample();
        let dir = TempDir::new("pooledtest").unwrap();
        let base = dir.path().join("g");
        write_mem_graph(&base, &g, IoCounter::new(DEFAULT_BLOCK_SIZE)).unwrap();
        let pool = SharedPool::new(1024, 64 * 1024).unwrap();
        let err = DiskGraph::open_pooled(&base, IoCounter::new(4096), &pool, 0).unwrap_err();
        assert!(matches!(err, Error::InvalidArgument(_)));
    }

    #[test]
    fn dropping_all_pooled_handles_frees_the_graphs_frames() {
        use crate::pool::SharedPool;
        let g = sample();
        let dir = TempDir::new("pooledtest").unwrap();
        let base = dir.path().join("g");
        write_mem_graph(&base, &g, IoCounter::new(DEFAULT_BLOCK_SIZE)).unwrap();
        let pool = SharedPool::new(DEFAULT_BLOCK_SIZE, 1 << 20).unwrap();
        let dg = DiskGraph::open_pooled(&base, IoCounter::new(DEFAULT_BLOCK_SIZE), &pool, 1 << 20)
            .unwrap();
        let mut clone = dg.try_clone().unwrap();
        let mut buf = Vec::new();
        clone.adjacency(0, &mut buf).unwrap();
        assert!(pool.resident_frames() > 0);
        assert_eq!(pool.registered_graphs(), 1);
        drop(dg);
        assert!(
            pool.resident_frames() > 0,
            "a surviving clone keeps the lease alive"
        );
        drop(clone);
        assert_eq!(pool.resident_frames(), 0);
        assert_eq!(pool.registered_graphs(), 0);
    }

    #[test]
    fn sequential_scan_io_is_linear() {
        // A graph big enough to span many blocks.
        let n = 20_000u32;
        let g = MemGraph::from_edges((0..n).map(|i| (i, (i + 1) % n)), n);
        let dir = TempDir::new("graphtest").unwrap();
        let base = dir.path().join("g");
        let counter = IoCounter::new(DEFAULT_BLOCK_SIZE);
        write_mem_graph(&base, &g, counter.clone()).unwrap();
        let mut dg = DiskGraph::open(&base, counter.clone()).unwrap();
        let mut buf = Vec::new();
        for v in 0..n {
            dg.adjacency(v, &mut buf).unwrap();
        }
        let snap = counter.snapshot();
        let expected =
            (dg.meta().node_file_len() + dg.meta().edge_file_len()) / DEFAULT_BLOCK_SIZE as u64;
        // One full pass over both tables: within a couple of blocks of ideal.
        assert!(
            snap.read_ios <= expected + 4,
            "read_ios {} vs expected {}",
            snap.read_ios,
            expected
        );
    }
}
